#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run.

Equivalent to ``repro-knl all``; prints each experiment as an ASCII
table and summarizes fidelity against the published numbers.

Run: ``python examples/reproduce_paper.py``
"""

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.report import render_table


def main() -> None:
    deviations = []
    for name, driver in ALL_EXPERIMENTS.items():
        result = driver()
        print(render_table(result))
        print()
        for row in result.rows:
            if isinstance(row.get("deviation"), float):
                deviations.append(abs(row["deviation"]))
    if deviations:
        print(
            f"Table 1 fidelity: mean |deviation| = "
            f"{sum(deviations) / len(deviations):.1%} over "
            f"{len(deviations)} cells"
        )


if __name__ == "__main__":
    main()
