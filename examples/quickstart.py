#!/usr/bin/env python3
"""Quickstart: simulate a KNL node and run a chunked kernel on it.

Demonstrates the core workflow in ~40 lines:

1. boot a simulated KNL node in a memory mode,
2. describe a streaming kernel and a data set,
3. let the planner pick chunk size and thread split,
4. run the triple-buffered pipeline and read back time + traffic.

Run: ``python examples/quickstart.py``
"""

from repro.core import BufferedPipeline, Chunker, StreamKernel
from repro.core.modes import UsageMode
from repro.core.planner import plan_chunk_bytes, plan_pools
from repro.model.params import ModelParams
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode
from repro.units import GB


def main() -> None:
    # A 30 GB data set: twice the MCDRAM, the paper's regime.
    data_bytes = int(30 * GB) // 8 * 8
    kernel = StreamKernel(passes=8, name="my-kernel")
    params = ModelParams().with_data_size(data_bytes)

    print("workload: 30 GB, 8 read+write passes per chunk\n")
    for mode, bios in (
        (UsageMode.FLAT, MemoryMode.FLAT),
        (UsageMode.IMPLICIT, MemoryMode.CACHE),
        (UsageMode.DDR, MemoryMode.FLAT),
    ):
        node = KNLNode(KNLNodeConfig(mode=bios))
        chunk = plan_chunk_bytes(node, mode, data_bytes)
        pools = plan_pools(node, mode, params, passes=kernel.passes(chunk))
        pipe = BufferedPipeline(
            node, mode, pools, Chunker(data_bytes, chunk), kernel, params
        )
        res = pipe.run()
        print(
            f"{mode.value:9s}: {res.elapsed:6.3f} s   "
            f"chunks={res.num_chunks:3d}  "
            f"copy-threads={pools.copy_threads:3d}  "
            f"DDR traffic={res.traffic_gb('ddr'):6.1f} GB  "
            f"MCDRAM traffic={res.traffic_gb('mcdram'):7.1f} GB"
        )

    print(
        "\nflat beats DDR-only by exploiting MCDRAM bandwidth; implicit"
        "\nkeeps most of that win with zero explicit data movement —"
        "\nthe paper's central observation."
    )


if __name__ == "__main__":
    main()
