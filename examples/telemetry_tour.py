#!/usr/bin/env python3
"""Tour of the telemetry layer: metrics, events, exporters.

Runs one Table 1 sort variant inside a telemetry session and shows
what the stack recorded along the way — engine phase counters, the
allocator high-water gauge, per-device traffic — plus the structured
event log and the Prometheus/Perfetto export paths. The full metric
and event catalog lives in ``docs/OBSERVABILITY.md``.

Run: ``python examples/telemetry_tour.py [metrics.prom] [events.perfetto.json]``
"""

import sys

from repro.experiments.runner import sort_variant_seconds
from repro.telemetry import (
    metrics_to_prometheus,
    telemetry_session,
    write_events,
    write_metrics,
)


def main(
    metrics_path: str | None = None, events_path: str | None = None
) -> None:
    with telemetry_session() as tel:
        seconds = sort_variant_seconds("MLM-sort", 2_000_000_000, "random")
    print(f"MLM-sort, 2B random elements: {seconds:.2f} s simulated\n")

    snap = tel.snapshot()
    print("metrics snapshot (selected):")
    for name in (
        "engine.phases_total",
        "engine.traffic_bytes_total",
        "alloc.high_water_bytes",
        "sort.megachunks_total",
    ):
        for point in snap["metrics"][name]["series"]:
            tag = "".join(
                f"{{{k}={v}}}" for k, v in sorted(point["labels"].items())
            )
            print(f"  {name}{tag} = {point['value']:g}")

    print(f"\nevent log: {len(tel.events)} events, kinds {sorted(tel.events.names())}")
    for ev in list(tel.events)[:5]:
        print(f"  t={ev.time:8.3f}  {ev.name}  {ev.attrs}")
    print("  ...")

    prom = metrics_to_prometheus(tel)
    print(f"\nPrometheus exposition: {len(prom.splitlines())} lines, e.g.")
    for line in prom.splitlines()[:3]:
        print(f"  {line}")

    if metrics_path:
        write_metrics(metrics_path, tel)
        print(f"\nwrote metrics to {metrics_path}")
    if events_path:
        write_events(events_path, tel)
        print(f"wrote events to {events_path} (open in ui.perfetto.dev)")


if __name__ == "__main__":
    main(
        sys.argv[1] if len(sys.argv) > 1 else None,
        sys.argv[2] if len(sys.argv) > 2 else None,
    )
