#!/usr/bin/env python3
"""Fault injection and graceful degradation on the simulated KNL.

Three demonstrations:

1. *Correctness under faults*: MLM-sort a real array through the
   resilient pipeline while a seeded fault plan fails HBW allocations
   and degrades MCDRAM bandwidth — the result is still sorted and a
   permutation of the input, with every recovery event counted.
2. *Replay determinism*: the same fault plan with the same seed
   produces bit-identical simulated times and fault logs.
3. *Graceful vs. cliff*: sweep fault intensity at paper scale and
   compare the chunked resilient MLM-sort against a monolithic
   GNU-cache sort on the same degraded node.

Run: ``python examples/fault_injection.py [intensity]``
"""

import sys
import warnings

import numpy as np

from repro.algorithms.mlm_sort import (
    MLMSortConfig,
    resilient_mlm_sort,
    resilient_mlm_sort_plan_run,
)
from repro.core.modes import UsageMode
from repro.errors import DegradedModeWarning
from repro.faults import FaultPlan
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode


def flat_node() -> KNLNode:
    return KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))


def functional_demo(intensity: float) -> None:
    rng = np.random.default_rng(7)
    a = rng.integers(0, 10**9, size=100_000).astype(np.int64)
    inj = FaultPlan.degraded_mcdram(seed=42, intensity=intensity).injector()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedModeWarning)
        out = resilient_mlm_sort(
            a, megachunk_elements=10_000, threads=4, injector=inj
        )
    ok = np.array_equal(out, np.sort(a, kind="stable"))
    print(f"functional MLM-sort of {len(a):,} int64 under intensity "
          f"{intensity}: sorted={ok}")
    counters = {k: v for k, v in inj.counters.as_dict().items() if v}
    print(f"  fault counters: {counters}")
    print(f"  recovery events: {inj.counters.recovery_events}\n")


def timed_run(intensity: float, seed: int = 42):
    cfg = MLMSortConfig(
        n=2_000_000_000, megachunk_elements=250_000_000, mode=UsageMode.FLAT
    )
    inj = FaultPlan.degraded_mcdram(seed=seed, intensity=intensity).injector()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedModeWarning)
        return resilient_mlm_sort_plan_run(flat_node(), cfg, injector=inj)


def replay_demo(intensity: float) -> None:
    r1, r2 = timed_run(intensity), timed_run(intensity)
    same = (
        r1.elapsed == r2.elapsed
        and r1.fault_log == r2.fault_log
        and [c.elapsed for c in r1.chunks] == [c.elapsed for c in r2.chunks]
    )
    print(f"replay with same seed: identical times and fault log = {same}")
    for line in r1.fault_log[:4]:
        print(f"  {line}")
    if len(r1.fault_log) > 4:
        print(f"  ... ({len(r1.fault_log)} log lines total)")
    print()


def degradation_report(intensity: float) -> None:
    clean = timed_run(0.0)
    faulted = timed_run(intensity)
    slowdown = faulted.elapsed / clean.elapsed
    print("timed MLM-sort, 2B int64 (16 GB > MCDRAM):")
    print(f"  clean run        {clean.elapsed:8.2f} s")
    print(f"  intensity {intensity:.2f}   {faulted.elapsed:8.2f} s "
          f"({slowdown:.2f}x, mode={faulted.mode.name}, "
          f"degraded={faulted.degraded_mode})")
    devices = [c.device for c in faulted.chunks]
    print(f"  chunk devices: {devices}")
    print(f"  recovery events: {faulted.counters.recovery_events}")
    print("\nfull intensity sweep: repro-knl faults")


def main(intensity: float = 0.5) -> None:
    functional_demo(intensity)
    replay_demo(intensity)
    degradation_report(intensity)


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.5)
