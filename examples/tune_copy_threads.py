#!/usr/bin/env python3
"""Tune the copy-thread count for a buffered kernel — without
exhaustive benchmarking.

This is the workflow Section 3.2's model exists for: you have a
streaming kernel with a known compute intensity (passes over each
chunk), and need to decide how many of your OpenMP threads should
copy instead of compute. The model's sweep takes microseconds; the
empirical sweep on the simulated node validates it (Table 3 / Fig 8).

Run: ``python examples/tune_copy_threads.py [passes]``
"""

import sys

from repro.algorithms.merge_bench import sweep_merge_bench
from repro.model.optimizer import optimal_copy_threads
from repro.model.params import ModelParams
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode


def main(passes: float = 8.0) -> None:
    params = ModelParams()
    node = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))

    print(f"kernel: {passes:g} read+write passes per chunk, 14.9 GB data\n")

    result = optimal_copy_threads(params, total_threads=256, passes=passes)
    print(
        f"model recommends: {result.p_in} copy-in + {result.p_in} copy-out "
        f"threads (predicted {result.t_total:.3f} s)"
    )
    best = result.best
    regime = "copy (data movement)" if best.copy_bound else "compute"
    print(f"predicted bottleneck: {regime}\n")

    print("empirical sweep on the simulated node (powers of two):")
    times = sweep_merge_bench(node, int(passes), [1, 2, 4, 8, 16, 32])
    t_best = min(times.values())
    for p, t in times.items():
        marker = "  <-- best" if t <= t_best * 1.001 else ""
        print(f"  copy threads {p:3d}: {t:7.3f} s{marker}")

    print(
        "\nthe model's pick lands within the empirical near-tie band, "
        "as the paper reports (Table 3)."
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 8.0)
