#!/usr/bin/env python3
"""Cache and replay: warm an on-disk result store, then re-render free.

Demonstrates the experiment result store (docs/EXPERIMENTS_STORE.md):

1. run Figure 7 cold against a store — every sweep cell is simulated
   once and persisted as ``config_hash -> result``,
2. run it again — warm, from the *in-memory* memo tier this time
   (same process), zero simulation,
3. replay it — resolved from the *disk* tier alone, exactly what a
   fresh process or CI run would see, and provably compute-free:
   inside a replay session the cell function is never invoked, and a
   missing cell is a hard error instead of a silent recompute.

Equivalent CLI: ``repro-knl figure7 --store DIR`` then
``repro-knl replay figure7 --store DIR``.

Run: ``python examples/store_replay.py [store-dir]``
"""

import sys
import tempfile
import time

from repro.experiments import ResultStore, replay_session, run_figure7


def timed(label: str, fn):
    t0 = time.perf_counter()
    result = fn()
    print(f"{label:<30} {time.perf_counter() - t0:8.3f} s wall")
    return result


def main() -> None:
    root = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="repro-store-"
    )
    store = ResultStore(root)
    print(f"result store: {root}\n")

    cold = timed(
        "cold run (simulate + persist)", lambda: run_figure7(store=store)
    )
    print(
        f"  store: {store.stats.writes} cells written, "
        f"{store.nbytes()} bytes\n"
    )

    warm = timed(
        "warm run (in-memory memo)", lambda: run_figure7(store=store)
    )
    print(f"  store: {store.stats.hits} disk hits (tier 1 answered)\n")

    def replayed():
        with replay_session(store):
            return run_figure7()

    replay = timed("replay (disk tier only)", replayed)
    print(
        f"  store: {store.stats.hits} disk hits — what a fresh "
        "process pays: file reads, no simulation\n"
    )

    assert warm.rows == cold.rows
    assert replay.rows == cold.rows
    print("all three renders are identical, row for row:")
    for row in replay.rows[:3]:
        print(f"  {row}")
    print(f"  ... ({len(replay.rows)} rows total)")


if __name__ == "__main__":
    main()
