#!/usr/bin/env python3
"""Sort a data set larger than near memory with MLM-sort.

Shows both faces of the library:

* **functional** — MLM-sort actually sorting a NumPy array at laptop
  scale, validated against ``np.sort``;
* **timed** — the same algorithm at the paper's 2-billion-element
  scale on the simulated KNL, comparing all five Table-1 variants.

Run: ``python examples/out_of_core_sort.py``
"""

import numpy as np

from repro.algorithms.mlm_sort import mlm_sort
from repro.experiments.runner import VARIANTS, sort_variant_seconds
from repro.workloads import generate


def functional_demo() -> None:
    print("== functional: sorting 2M elements with MLM-sort ==")
    arr = generate(2_000_000, "random", seed=42)
    out = mlm_sort(arr, megachunk_elements=500_000, threads=8)
    assert np.array_equal(out, np.sort(arr)), "sorted output mismatch"
    print(f"sorted {len(out):,} elements; head: {out[:5]} ... tail: {out[-5:]}")
    print("matches np.sort: True\n")


def timed_demo() -> None:
    print("== timed: 2B int64 elements on the simulated KNL ==")
    for order in ("random", "reverse"):
        print(f"[{order} input]")
        base = sort_variant_seconds("GNU-flat", 2_000_000_000, order)
        for variant in VARIANTS:
            t = sort_variant_seconds(variant, 2_000_000_000, order)
            print(f"  {variant:13s} {t:6.2f} s   speedup {base / t:4.2f}x")
        print()


if __name__ == "__main__":
    functional_demo()
    timed_demo()
