#!/usr/bin/env python3
"""Future work, realized: a third memory level and double chunking.

The paper's conclusion sketches nodes with a high-capacity NVM level
below DDR ("there may be double levels of chunking to consider"). This
example stages a 100 GiB data set out of simulated 3D-XPoint-class
memory three ways and compares.

Run: ``python examples/three_level_memory.py [data_gib]``
"""

import sys

from repro.core.kernel import StreamKernel
from repro.core.multilevel import ThreeLevelConfig, ThreeLevelPipeline
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode
from repro.units import GiB


def main(data_gib: float = 100.0) -> None:
    node = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))
    cfg = ThreeLevelConfig(data_bytes=int(data_gib * GiB))
    pipe = ThreeLevelPipeline(node, StreamKernel(passes=8), cfg)

    print(f"data: {data_gib:g} GiB in NVM (10 GB/s), kernel: 8 passes\n")
    results = pipe.compare()
    base = results["direct"].elapsed
    for strategy, res in results.items():
        print(
            f"{strategy:7s}: {res.elapsed:8.2f} s  ({base / res.elapsed:4.1f}x)"
            f"  nvm={res.traffic.get('nvm', 0) / 1e9:7.1f} GB"
            f"  ddr={res.traffic.get('ddr', 0) / 1e9:7.1f} GB"
            f"  mcdram={res.traffic.get('mcdram', 0) / 1e9:8.1f} GB"
        )
    print(
        "\nchunking into fast memory beats streaming from NVM by ~7x;"
        "\ndouble-level staging matches single-level for streaming kernels"
        "\nwhile keeping an outer-chunk-sized working set resident in DDR."
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 100.0)
