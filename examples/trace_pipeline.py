#!/usr/bin/env python3
"""Visualize a buffered pipeline: Gantt chart, utilization, energy.

Runs the Section 5 merge benchmark and shows what the simulator
actually scheduled — the Fig. 2 overlap of copy-in / compute /
copy-out steps — plus per-device utilization and the energy bill.
Optionally writes a Chrome-trace JSON loadable in chrome://tracing
or Perfetto.

Run: ``python examples/trace_pipeline.py [trace.json]``
"""

import sys

from repro.algorithms.merge_bench import MergeBenchConfig, run_merge_bench
from repro.simknl.energy import EnergyModel
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode
from repro.simknl.trace import (
    phase_utilizations,
    render_gantt,
    to_chrome_trace,
)
from repro.units import GB


def main(trace_path: str | None = None) -> None:
    node = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))
    cfg = MergeBenchConfig(
        repeats=8, copy_in_threads=5, data_bytes=8 * 10**9, chunk_bytes=10**9
    )
    res = run_merge_bench(node, cfg)
    print(f"merge benchmark: {res.elapsed:.3f} s over {res.num_chunks} chunks\n")

    print(render_gantt(res.plan, res.run, width=50))

    print("\nper-phase device utilization:")
    utils = phase_utilizations(
        res.plan, res.run, {"ddr": 90 * GB, "mcdram": 400 * GB}
    )
    for u in utils[:6]:
        ddr = u.device_utilization.get("ddr", 0.0)
        mc = u.device_utilization.get("mcdram", 0.0)
        print(
            f"  {u.name:8s} {u.duration * 1e3:7.2f} ms  "
            f"ddr {ddr:5.1%}  mcdram {mc:5.1%}"
        )
    print(f"  ... ({len(utils)} phases total)")

    rep = EnergyModel().report(res.run)
    print(
        f"\nenergy: {rep.total_joules:.1f} J total "
        f"(dynamic ddr {rep.dynamic_joules.get('ddr', 0):.1f} J, "
        f"mcdram {rep.dynamic_joules.get('mcdram', 0):.1f} J); "
        f"EDP {rep.energy_delay_product:.1f} J*s"
    )

    if trace_path:
        with open(trace_path, "w", encoding="utf-8") as fh:
            fh.write(to_chrome_trace(res.plan, res.run))
        print(f"\nwrote Chrome trace to {trace_path}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
