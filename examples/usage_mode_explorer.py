#!/usr/bin/env python3
"""Explore every MCDRAM usage mode for a workload you describe.

Walks through the decision the paper frames for application
developers: given a kernel's data size and compute intensity, which
usage mode (flat / hybrid / implicit / hardware cache / DDR) wins, and
by how much? Also demos the memkind allocation layer each mode implies.

Run: ``python examples/usage_mode_explorer.py [data_gb] [passes]``
"""

import sys

from repro.core import BufferedPipeline, Chunker, StreamKernel
from repro.core.modes import UsageMode, mode_label
from repro.core.planner import plan_chunk_bytes, plan_pools
from repro.errors import ReproError
from repro.memkind import MEMKIND_HBW, MEMKIND_HBW_PREFERRED, Heap, HbwAPI
from repro.model.params import ModelParams
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode
from repro.units import GB, GiB

BIOS_FOR_MODE = {
    UsageMode.FLAT: MemoryMode.FLAT,
    UsageMode.HYBRID: MemoryMode.HYBRID,
    UsageMode.IMPLICIT: MemoryMode.CACHE,
    UsageMode.CACHE: MemoryMode.CACHE,
    UsageMode.DDR: MemoryMode.FLAT,
}


def explore(data_gb: float, passes: float) -> None:
    data_bytes = int(data_gb * GB) // 8 * 8
    kernel = StreamKernel(passes=passes, name="user-kernel")
    params = ModelParams().with_data_size(data_bytes)
    print(f"workload: {data_gb:g} GB, {passes:g} passes/chunk\n")

    results = {}
    for mode in UsageMode:
        node = KNLNode(KNLNodeConfig(mode=BIOS_FOR_MODE[mode]))
        try:
            chunk = plan_chunk_bytes(node, mode, data_bytes)
            if mode is UsageMode.CACHE:
                # Unchunked legacy code: the whole data set is "one chunk".
                chunk = data_bytes
            pools = plan_pools(node, mode, params, passes=passes)
            pipe = BufferedPipeline(
                node, mode, pools, Chunker(data_bytes, chunk), kernel, params
            )
            res = pipe.run()
        except ReproError as exc:
            print(f"{mode.value:9s}: not runnable ({exc})")
            continue
        results[mode] = res.elapsed
        print(
            f"{mode.value:9s}: {res.elapsed:7.3f} s  "
            f"({mode_label(mode)}; DDR {res.traffic_gb('ddr'):6.1f} GB)"
        )

    best = min(results, key=results.get)
    print(f"\nbest usage mode for this workload: {best.value}\n")

    print("== what allocation looks like in each mode (memkind) ==")
    for bios in (MemoryMode.FLAT, MemoryMode.CACHE):
        node = KNLNode(KNLNodeConfig(mode=bios))
        api = HbwAPI(Heap(node))
        print(f"[BIOS {bios.value}] hbw available: {api.check_available()}")
        try:
            buf = api.malloc(int(1 * GiB))
            print(f"  hbw_malloc(1 GiB) -> {sorted(buf.devices)}")
            api.free(buf)
        except ReproError as exc:
            print(f"  hbw_malloc(1 GiB) -> fails: {exc}")
            api.set_policy(preferred=True)
            buf = api.malloc(int(1 * GiB))
            print(f"  with PREFERRED policy -> {sorted(buf.devices)}")
            api.free(buf)


if __name__ == "__main__":
    gb = float(sys.argv[1]) if len(sys.argv) > 1 else 30.0
    passes = float(sys.argv[2]) if len(sys.argv) > 2 else 8.0
    explore(gb, passes)
