"""Search for the near-optimal number of copy threads (Table 3).

The paper fixes the total thread budget (one hardware thread per
core-slot given to the kernel) and asks: how many of them should copy?
:func:`optimal_copy_threads` sweeps ``p_in`` (with ``p_out = p_in`` and
``p_comp = budget - 2 p_in``), evaluates Eq. 1 for each split, and
returns the argmin — reproducing the "Model" column of Table 3.
:func:`sweep_copy_threads` returns the full curve behind Fig. 8(a).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.model.analytic import ModelPrediction
from repro.model.params import ModelParams


@dataclass(frozen=True)
class OptimizerResult:
    """Best split found by the model sweep."""

    best: ModelPrediction
    curve: tuple[ModelPrediction, ...]

    @property
    def p_in(self) -> int:
        """Optimal copy-in thread count (same number copy out)."""
        return self.best.p_in

    @property
    def t_total(self) -> float:
        """Predicted execution time at the optimum."""
        return self.best.t_total


def predict_sweep(
    params: ModelParams,
    p_comp,
    p_in,
    p_out=None,
    passes: float = 1.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Eqs. 1-5 over parallel arrays of thread splits, in one shot.

    Bit-identical elementwise to :func:`repro.model.analytic.predict`:
    every arithmetic step applies the same operation in the same order
    to the same IEEE-754 operands, just across whole arrays at once.
    Returns ``(c_copy, c_comp, t_copy, t_comp, t_total)`` arrays.
    """
    p_comp = np.asarray(p_comp, dtype=np.int64)
    p_in = np.asarray(p_in, dtype=np.int64)
    p_out = p_in if p_out is None else np.asarray(p_out, dtype=np.int64)
    if (p_comp < 1).any():
        raise ConfigError("compute thread counts must be >= 1")
    if (p_in < 0).any() or (p_out < 0).any():
        raise ConfigError("copy thread counts must be non-negative")
    if passes < 0:
        raise ConfigError("passes must be non-negative")
    p = p_in + p_out
    with np.errstate(divide="ignore", invalid="ignore"):
        # Eq. 3: saturated threads share DDR; p == 0 means no copying.
        c_copy = np.where(
            p == 0,
            0.0,
            np.where(
                p * params.s_copy <= params.ddr_max,
                params.s_copy,
                params.ddr_max / p,
            ),
        )
        # Eq. 2.
        t_copy = np.where(p == 0, np.inf, 2.0 * params.b_copy / (p * c_copy))
        # Eq. 5: copy pools take their share first, compute splits the rest.
        demand = p_comp * params.s_comp + p * params.s_copy
        leftover = params.mcdram_max - p * c_copy
        c_comp = np.where(
            demand <= params.mcdram_max,
            params.s_comp,
            np.where(
                leftover <= 0,
                0.0,
                np.minimum(params.s_comp, leftover / p_comp),
            ),
        )
        # Eq. 4.
        if passes == 0:
            t_comp = np.zeros_like(c_comp)
        else:
            t_comp = np.where(
                c_comp <= 0,
                np.inf,
                2.0 * params.b_copy * passes / (p_comp * c_comp),
            )
    # Eq. 1.
    t_total = np.maximum(t_copy, t_comp)
    return c_copy, c_comp, t_copy, t_comp, t_total


def sweep_copy_threads(
    params: ModelParams,
    total_threads: int = 256,
    passes: float = 1.0,
    p_in_values: list[int] | None = None,
) -> list[ModelPrediction]:
    """Model predictions for each candidate ``p_in``.

    Parameters
    ----------
    params:
        Model parameters (Table 2).
    total_threads:
        Thread budget ``p_comp + p_in + p_out``.
    passes:
        Compute passes over the data per chunk (the merge benchmark's
        ``repeats``).
    p_in_values:
        Candidate copy-in counts; default is every feasible value
        ``1 .. (total_threads - 1) // 2``.
    """
    if total_threads < 3:
        raise ConfigError("need at least 3 threads (1 compute + 1 in + 1 out)")
    if p_in_values is None:
        p_in_values = list(range(1, (total_threads - 1) // 2 + 1))
    feasible = [
        (total_threads - 2 * p_in, p_in)
        for p_in in p_in_values
        if total_threads - 2 * p_in >= 1
    ]
    if not feasible:
        raise ConfigError("no feasible thread split")
    p_comp_arr = np.array([pc for pc, _ in feasible], dtype=np.int64)
    p_in_arr = np.array([pi for _, pi in feasible], dtype=np.int64)
    c_copy, c_comp, t_copy, t_comp, t_total = predict_sweep(
        params, p_comp_arr, p_in_arr, passes=passes
    )
    return [
        ModelPrediction(
            p_comp=int(pc),
            p_in=int(pi),
            p_out=int(pi),
            passes=passes,
            c_copy=float(c_copy[i]),
            c_comp=float(c_comp[i]),
            t_copy=float(t_copy[i]),
            t_comp=float(t_comp[i]),
            t_total=float(t_total[i]),
        )
        for i, (pc, pi) in enumerate(feasible)
    ]


def optimal_copy_threads(
    params: ModelParams,
    total_threads: int = 256,
    passes: float = 1.0,
    p_in_values: list[int] | None = None,
) -> OptimizerResult:
    """The model's predicted optimal ``p_in`` (ties go to fewer threads)."""
    curve = sweep_copy_threads(params, total_threads, passes, p_in_values)
    # On the copy-bound plateau every saturating p_in yields the same
    # time up to floating-point division noise; prefer the fewest copy
    # threads among near-ties (they free compute resources).
    t_min = min(m.t_total for m in curve)
    tol = t_min * 1e-9
    best = min(
        (m for m in curve if m.t_total <= t_min + tol), key=lambda m: m.p_in
    )
    return OptimizerResult(best=best, curve=tuple(curve))
