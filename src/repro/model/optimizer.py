"""Search for the near-optimal number of copy threads (Table 3).

The paper fixes the total thread budget (one hardware thread per
core-slot given to the kernel) and asks: how many of them should copy?
:func:`optimal_copy_threads` sweeps ``p_in`` (with ``p_out = p_in`` and
``p_comp = budget - 2 p_in``), evaluates Eq. 1 for each split, and
returns the argmin — reproducing the "Model" column of Table 3.
:func:`sweep_copy_threads` returns the full curve behind Fig. 8(a).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.model.analytic import ModelPrediction, predict
from repro.model.params import ModelParams


@dataclass(frozen=True)
class OptimizerResult:
    """Best split found by the model sweep."""

    best: ModelPrediction
    curve: tuple[ModelPrediction, ...]

    @property
    def p_in(self) -> int:
        """Optimal copy-in thread count (same number copy out)."""
        return self.best.p_in

    @property
    def t_total(self) -> float:
        """Predicted execution time at the optimum."""
        return self.best.t_total


def sweep_copy_threads(
    params: ModelParams,
    total_threads: int = 256,
    passes: float = 1.0,
    p_in_values: list[int] | None = None,
) -> list[ModelPrediction]:
    """Model predictions for each candidate ``p_in``.

    Parameters
    ----------
    params:
        Model parameters (Table 2).
    total_threads:
        Thread budget ``p_comp + p_in + p_out``.
    passes:
        Compute passes over the data per chunk (the merge benchmark's
        ``repeats``).
    p_in_values:
        Candidate copy-in counts; default is every feasible value
        ``1 .. (total_threads - 1) // 2``.
    """
    if total_threads < 3:
        raise ConfigError("need at least 3 threads (1 compute + 1 in + 1 out)")
    if p_in_values is None:
        p_in_values = list(range(1, (total_threads - 1) // 2 + 1))
    out = []
    for p_in in p_in_values:
        p_comp = total_threads - 2 * p_in
        if p_comp < 1:
            continue
        out.append(predict(params, p_comp, p_in, p_in, passes))
    if not out:
        raise ConfigError("no feasible thread split")
    return out


def optimal_copy_threads(
    params: ModelParams,
    total_threads: int = 256,
    passes: float = 1.0,
    p_in_values: list[int] | None = None,
) -> OptimizerResult:
    """The model's predicted optimal ``p_in`` (ties go to fewer threads)."""
    curve = sweep_copy_threads(params, total_threads, passes, p_in_values)
    # On the copy-bound plateau every saturating p_in yields the same
    # time up to floating-point division noise; prefer the fewest copy
    # threads among near-ties (they free compute resources).
    t_min = min(m.t_total for m in curve)
    tol = t_min * 1e-9
    best = min(
        (m for m in curve if m.t_total <= t_min + tol), key=lambda m: m.p_in
    )
    return OptimizerResult(best=best, curve=tuple(curve))
