"""Equations 1-5 of the paper, implemented verbatim.

Notation (paper -> code):

* ``T_total = max(T_copy, T_comp)``                      — Eq. 1
* ``T_copy = 2 B / ((p_in + p_out) C_copy)``             — Eq. 2
* ``C_copy = S_copy`` if unsaturated else ``DDR_max/p``  — Eq. 3
* ``T_comp = 2 B Passes / (p_comp C_comp)``              — Eq. 4
* ``C_comp = S_comp`` if MCDRAM unsaturated else the
  per-thread share of what the copy pools leave over     — Eq. 5

All byte quantities are plain bytes; rates are bytes/s. The model
assumes symmetric copy-in/copy-out pools with equal workloads and that
compute threads touch only MCDRAM while copy threads touch both
levels — exactly the Section 3.2 assumptions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.model.params import ModelParams


def copy_rate_coefficient(params: ModelParams, p_in: int, p_out: int) -> float:
    """Eq. 3: per-thread copy rate ``C_copy`` in bytes/s."""
    if p_in < 0 or p_out < 0:
        raise ConfigError("copy thread counts must be non-negative")
    p = p_in + p_out
    if p == 0:
        return 0.0
    if p * params.s_copy <= params.ddr_max:
        return params.s_copy
    return params.ddr_max / p


def copy_time(params: ModelParams, p_in: int, p_out: int) -> float:
    """Eq. 2: time to move the data set into and back out of MCDRAM."""
    p = p_in + p_out
    if p == 0:
        return math.inf
    c_copy = copy_rate_coefficient(params, p_in, p_out)
    return 2.0 * params.b_copy / (p * c_copy)


def compute_rate_coefficient(
    params: ModelParams, p_comp: int, p_in: int, p_out: int
) -> float:
    """Eq. 5: per-thread compute rate ``C_comp`` in bytes/s.

    When the combined compute + copy demand exceeds MCDRAM bandwidth,
    the copy pools take their Eq. 3 share first and the compute pool
    divides the remainder.
    """
    if p_comp < 0:
        raise ConfigError("compute thread count must be non-negative")
    if p_comp == 0:
        return 0.0
    p_copy = p_in + p_out
    demand = p_comp * params.s_comp + p_copy * params.s_copy
    if demand <= params.mcdram_max:
        return params.s_comp
    c_copy = copy_rate_coefficient(params, p_in, p_out)
    leftover = params.mcdram_max - p_copy * c_copy
    if leftover <= 0:
        return 0.0
    return min(params.s_comp, leftover / p_comp)


def compute_time(
    params: ModelParams,
    p_comp: int,
    p_in: int,
    p_out: int,
    passes: float = 1.0,
) -> float:
    """Eq. 4: time for the compute pool to stream the data ``passes`` times."""
    if passes < 0:
        raise ConfigError("passes must be non-negative")
    if passes == 0:
        return 0.0
    if p_comp == 0:
        return math.inf
    c_comp = compute_rate_coefficient(params, p_comp, p_in, p_out)
    if c_comp <= 0:
        return math.inf
    return 2.0 * params.b_copy * passes / (p_comp * c_comp)


def total_time(
    params: ModelParams,
    p_comp: int,
    p_in: int,
    p_out: int,
    passes: float = 1.0,
) -> float:
    """Eq. 1: overall time — the slower of copying and computing."""
    return max(
        copy_time(params, p_in, p_out),
        compute_time(params, p_comp, p_in, p_out, passes),
    )


@dataclass(frozen=True)
class ModelPrediction:
    """Full model output for one thread configuration."""

    p_comp: int
    p_in: int
    p_out: int
    passes: float
    c_copy: float
    c_comp: float
    t_copy: float
    t_comp: float
    t_total: float

    @property
    def copy_bound(self) -> bool:
        """True when the pipeline is limited by data movement."""
        return self.t_copy >= self.t_comp


def predict(
    params: ModelParams,
    p_comp: int,
    p_in: int,
    p_out: int | None = None,
    passes: float = 1.0,
) -> ModelPrediction:
    """Evaluate the whole model for one configuration.

    ``p_out`` defaults to ``p_in`` per the symmetric-pool assumption.
    """
    if p_out is None:
        p_out = p_in
    return ModelPrediction(
        p_comp=p_comp,
        p_in=p_in,
        p_out=p_out,
        passes=passes,
        c_copy=copy_rate_coefficient(params, p_in, p_out),
        c_comp=compute_rate_coefficient(params, p_comp, p_in, p_out),
        t_copy=copy_time(params, p_in, p_out),
        t_comp=compute_time(params, p_comp, p_in, p_out, passes),
        t_total=total_time(params, p_comp, p_in, p_out, passes),
    )
