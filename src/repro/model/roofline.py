"""Bandwidth-boundedness tests (Snir's rule and a simple roofline).

Bender et al. relay a rule of thumb due to Marc Snir for deciding
whether a computation is memory-bandwidth bound on a manycore node:
compare the kernel's *operational intensity* (operations per byte of
memory traffic) against the *machine balance* (aggregate compute
throughput over memory bandwidth). Intensity below balance means the
memory system, not the cores, sets the execution time — the regime in
which MCDRAM helps and the paper's chunking machinery pays off.

Backs the Section 5 corroboration that the studied sorts are bandwidth
bound on the Table 2 machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class RooflinePoint:
    """A kernel placed on the roofline.

    Attributes
    ----------
    intensity:
        Operations per byte of traffic.
    attainable:
        Attainable op throughput given the roof (ops/s).
    bandwidth_bound:
        Whether the sloped (bandwidth) part of the roof applies.
    """

    intensity: float
    attainable: float
    bandwidth_bound: bool


def machine_balance(peak_ops: float, bandwidth: float) -> float:
    """Machine balance in ops per byte."""
    if peak_ops <= 0 or bandwidth <= 0:
        raise ConfigError("peak_ops and bandwidth must be positive")
    return peak_ops / bandwidth


def is_bandwidth_bound(
    ops: float, traffic_bytes: float, peak_ops: float, bandwidth: float
) -> bool:
    """Snir's test: intensity below machine balance ⇒ bandwidth bound."""
    if traffic_bytes <= 0:
        raise ConfigError("traffic must be positive")
    intensity = ops / traffic_bytes
    return intensity < machine_balance(peak_ops, bandwidth)


def roofline(
    ops: float, traffic_bytes: float, peak_ops: float, bandwidth: float
) -> RooflinePoint:
    """Place a kernel on the classic roofline model."""
    if traffic_bytes <= 0:
        raise ConfigError("traffic must be positive")
    intensity = ops / traffic_bytes
    bw_roof = intensity * bandwidth
    attainable = min(peak_ops, bw_roof)
    return RooflinePoint(
        intensity=intensity,
        attainable=attainable,
        bandwidth_bound=bw_roof < peak_ops,
    )


def sort_is_bandwidth_bound(
    n: int,
    element_size: int,
    compare_ops_per_element_pass: float,
    passes: float,
    peak_ops: float,
    bandwidth: float,
) -> bool:
    """Apply the Snir test to a multi-pass sort.

    A mergesort streams ``2 * n * element_size`` bytes per pass and
    performs roughly ``compare_ops_per_element_pass`` operations per
    element per pass; for large core counts the intensity is far below
    the machine balance, predicting bandwidth-boundedness (and hence
    MCDRAM benefit), as Bender et al. argued for KNL.
    """
    if n <= 0 or element_size <= 0 or passes <= 0:
        raise ConfigError("n, element_size, and passes must be positive")
    ops = n * compare_ops_per_element_pass * passes
    traffic = 2.0 * n * element_size * passes
    return is_bandwidth_bound(ops, traffic, peak_ops, bandwidth)
