"""Hardware design-space exploration with the Section 3.2 model.

The paper's conclusion: "using a variation of the model, we will
explore alternative configurations that may be possible in future
technologies, in hopes of suggesting more optimal design points for
both hardware and applications." This module does exactly that: sweep
hypothetical device bandwidths and thread budgets, and for each point
report the best achievable time, the optimal copy-thread split, and
whether the workload is copy- or compute-bound.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigError
from repro.model.optimizer import optimal_copy_threads
from repro.model.params import ModelParams


def pareto_front(points) -> np.ndarray:
    """Boolean mask of the minimization Pareto front of ``points``.

    ``points`` is an ``(n, k)`` array-like of objective vectors, every
    objective minimized. A point is on the front when no other point is
    at least as good in every objective and strictly better in one.
    Duplicates of a front point are all kept (neither strictly
    dominates the other). One vectorized ``(n, n, k)`` comparison —
    fine for the few-hundred-point design sweeps this module runs.
    """
    arr = np.asarray(points, dtype=float)
    if arr.ndim != 2 or arr.shape[0] == 0 or arr.shape[1] == 0:
        raise ConfigError("points must be a non-empty (n, k) array")
    # dom[i, j]: point j dominates point i.
    dom = (arr[None, :, :] <= arr[:, None, :]).all(axis=-1) & (
        arr[None, :, :] < arr[:, None, :]
    ).any(axis=-1)
    return ~dom.any(axis=1)


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated hardware configuration."""

    ddr_max: float
    mcdram_max: float
    total_threads: int
    passes: float
    best_p_in: int
    best_time: float
    copy_bound: bool

    @property
    def bandwidth_ratio(self) -> float:
        """Near-memory to far-memory bandwidth ratio."""
        return self.mcdram_max / self.ddr_max


def evaluate_point(
    params: ModelParams,
    total_threads: int = 256,
    passes: float = 1.0,
) -> DesignPoint:
    """Optimal configuration of one hardware point."""
    res = optimal_copy_threads(params, total_threads, passes)
    return DesignPoint(
        ddr_max=params.ddr_max,
        mcdram_max=params.mcdram_max,
        total_threads=total_threads,
        passes=passes,
        best_p_in=res.p_in,
        best_time=res.t_total,
        copy_bound=res.best.copy_bound,
    )


def sweep_bandwidth_ratio(
    base: ModelParams | None = None,
    ratios: list[float] | None = None,
    total_threads: int = 256,
    passes: float = 1.0,
) -> list[DesignPoint]:
    """Vary MCDRAM bandwidth at fixed DDR bandwidth.

    Reveals where extra near-memory bandwidth stops helping: once the
    pipeline is copy-bound (DDR-limited), a faster MCDRAM buys
    nothing — the co-design argument for balancing levels.
    """
    base = base or ModelParams()
    if ratios is None:
        ratios = [1.0, 2.0, 3.0, 4.44, 6.0, 8.0, 16.0]
    points = []
    for r in ratios:
        if r <= 0:
            raise ConfigError("bandwidth ratio must be positive")
        p = replace(base, mcdram_max=base.ddr_max * r)
        points.append(evaluate_point(p, total_threads, passes))
    return points


def sweep_far_bandwidth(
    base: ModelParams | None = None,
    ddr_values: list[float] | None = None,
    total_threads: int = 256,
    passes: float = 1.0,
) -> list[DesignPoint]:
    """Vary DDR bandwidth at fixed MCDRAM bandwidth.

    Shows how far-memory bandwidth sets the copy-bound floor
    ``2 B / DDR_max`` (Eq. 2) for low-intensity kernels.
    """
    base = base or ModelParams()
    if ddr_values is None:
        ddr_values = [g * 1e9 for g in (45, 90, 135, 180, 270, 400)]
    points = []
    for bw in ddr_values:
        if bw <= 0:
            raise ConfigError("bandwidth must be positive")
        p = replace(base, ddr_max=bw)
        points.append(evaluate_point(p, total_threads, passes))
    return points


def crossover_passes(
    params: ModelParams | None = None,
    total_threads: int = 256,
    lo: float = 0.1,
    hi: float = 512.0,
    tol: float = 1e-3,
) -> float:
    """The compute intensity at which the best achievable time lifts
    off the copy floor ``2 B / DDR_max`` — the design point where the
    workload stops being data-movement limited and adding copy threads
    stops paying. Found by bisection; the lift-off predicate is
    monotone in ``passes`` (unlike the optimum's raw copy/compute flag,
    which flickers at the knee where both sides tie).
    """
    params = params or ModelParams()
    if not (0 < lo < hi):
        raise ConfigError("need 0 < lo < hi")
    floor = 2.0 * params.b_copy / params.ddr_max

    def on_floor(passes: float) -> bool:
        t = evaluate_point(params, total_threads, passes).best_time
        return t <= floor * (1 + 1e-6)

    if not on_floor(lo):
        return lo
    if on_floor(hi):
        return hi
    while hi - lo > tol * max(1.0, lo):
        mid = (lo + hi) / 2
        if on_floor(mid):
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2
