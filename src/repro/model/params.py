"""Model parameters (the paper's Table 2) and their measurement.

The five parameters:

=============  =========  ====================================================
``b_copy``     14.9 GB    data set size
``ddr_max``    90 GB/s    max DDR bandwidth (STREAM)
``mcdram_max`` 400 GB/s   max MCDRAM bandwidth (STREAM)
``s_copy``     4.8 GB/s   per-thread MCDRAM<->DDR transfer rate, unconstrained
``s_comp``     6.78 GB/s  per-thread compute streaming rate, unconstrained
=============  =========  ====================================================

:func:`measure_params` recovers the bandwidth ceilings by running the
STREAM benchmark *on the simulated node* and the per-thread rates by
single-thread micro-measurements, closing the loop the paper describes
("values for these parameters from system measurements and problem
characteristics").
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.units import GB


@dataclass(frozen=True)
class ModelParams:
    """Parameters of the Section 3.2 model, in bytes and bytes/s."""

    b_copy: float = 14.9 * GB
    ddr_max: float = 90 * GB
    mcdram_max: float = 400 * GB
    s_copy: float = 4.8 * GB
    s_comp: float = 6.78 * GB

    def __post_init__(self) -> None:
        for name in ("b_copy", "ddr_max", "mcdram_max", "s_copy", "s_comp"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")

    def with_data_size(self, b_copy: float) -> "ModelParams":
        """Copy of these parameters for a different data set size."""
        return replace(self, b_copy=b_copy)

    def ddr_saturating_copy_threads(self) -> int:
        """Smallest copy-thread total that saturates DDR (ceil)."""
        return int(-(-self.ddr_max // self.s_copy))


def paper_params() -> ModelParams:
    """The exact Table 2 values."""
    return ModelParams()


def measure_params(node, b_copy: float = 14.9 * GB) -> ModelParams:
    """Measure model parameters from a simulated node.

    Bandwidth ceilings come from STREAM-triad runs against each
    device; per-thread rates from single-thread micro-transfers. The
    import of :mod:`repro.algorithms.stream` is deferred to avoid a
    package cycle (algorithms use the model's parameters).
    """
    from repro.algorithms.stream import measure_bandwidth, measure_per_thread_rates

    ddr_max = measure_bandwidth(node, device="ddr")
    mcdram_max = measure_bandwidth(node, device="mcdram")
    s_copy, s_comp = measure_per_thread_rates(node)
    return ModelParams(
        b_copy=b_copy,
        ddr_max=ddr_max,
        mcdram_max=mcdram_max,
        s_copy=s_copy,
        s_comp=s_comp,
    )
