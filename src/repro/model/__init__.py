"""The paper's analytical performance model (Section 3.2).

Equations 1-5 predict the execution time of a buffered chunking
algorithm from five parameters (Table 2): data size ``B_copy``, the
device bandwidth ceilings ``DDR_max`` and ``MCDRAM_max``, and the
unconstrained per-thread rates ``S_copy`` and ``S_comp``. The model's
purpose is to choose a near-optimal number of copy threads without
exhaustive benchmarking; :mod:`repro.model.optimizer` performs that
search, and :mod:`repro.model.roofline` implements the Snir-style
bandwidth-boundedness test the paper cites from Bender et al.
"""

from repro.model.params import ModelParams, measure_params
from repro.model.analytic import (
    copy_rate_coefficient,
    compute_rate_coefficient,
    copy_time,
    compute_time,
    total_time,
    predict,
    ModelPrediction,
)
from repro.model.optimizer import (
    OptimizerResult,
    optimal_copy_threads,
    sweep_copy_threads,
)
from repro.model.roofline import RooflinePoint, machine_balance, is_bandwidth_bound

__all__ = [
    "ModelParams",
    "measure_params",
    "copy_rate_coefficient",
    "compute_rate_coefficient",
    "copy_time",
    "compute_time",
    "total_time",
    "predict",
    "ModelPrediction",
    "OptimizerResult",
    "optimal_copy_threads",
    "sweep_copy_threads",
    "RooflinePoint",
    "machine_balance",
    "is_bandwidth_bound",
]
