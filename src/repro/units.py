"""Unit helpers and constants shared across the simulator and model.

The paper reports bandwidths in GB/s (decimal gigabytes, as STREAM does)
and data sizes in GB/GiB somewhat loosely; we standardise on *bytes* for
all internal accounting and provide conversion helpers at the edges.

The bandwidth constants trace to Table 2 and the data-set sizes to
Table 1.
"""

from __future__ import annotations

from repro.errors import ConfigError

# Decimal units (used for bandwidths, matching STREAM / the paper's GB/s).
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

# Binary units (used for capacities: "16GB MCDRAM" is 16 GiB on KNL).
KiB = 1 << 10
MiB = 1 << 20
GiB = 1 << 30

#: Size in bytes of the element type used throughout the paper (int64).
INT64 = 8

#: MCDRAM/L1/L2 cache line size on KNL (bytes).
CACHE_LINE = 64


def gb(x: float) -> float:
    """Convert decimal gigabytes to bytes."""
    return x * GB


def gib(x: float) -> float:
    """Convert binary gibibytes to bytes."""
    return x * GiB


def to_gb(nbytes: float) -> float:
    """Convert bytes to decimal gigabytes."""
    return nbytes / GB


def to_gib(nbytes: float) -> float:
    """Convert bytes to binary gibibytes."""
    return nbytes / GiB


def elements_to_bytes(n: int, element_size: int = INT64) -> int:
    """Size in bytes of ``n`` elements of ``element_size`` bytes each."""
    if n < 0:
        raise ConfigError(f"element count must be non-negative, got {n}")
    if element_size <= 0:
        raise ConfigError(f"element size must be positive, got {element_size}")
    return n * element_size


def bytes_to_elements(nbytes: float, element_size: int = INT64) -> int:
    """Number of whole elements of ``element_size`` that fit in ``nbytes``."""
    if element_size <= 0:
        raise ConfigError(f"element size must be positive, got {element_size}")
    return int(nbytes // element_size)
