"""Figure 7: chunk-size sweep for the 6-billion-element sort.

The paper varies the megachunk size with a fixed problem size and
thread count and reports that (a) larger chunks are better in both
flat and implicit modes, (b) 1-1.5 GB chunks already give near-minimal
times, (c) hybrid tracks flat at equal chunk size, and (d) implicit
keeps improving as the megachunk exceeds MCDRAM capacity.
"""

from __future__ import annotations

from typing import Any

from repro.algorithms.costs import SortCostModel
from repro.algorithms.mlm_sort import MLMSortConfig, mlm_sort_plan
from repro.core.modes import UsageMode
from repro.experiments.runner import ExperimentResult, SeriesSpec, sweep_map
from repro.simknl.batch import PlanBatch, PlanBatchSpec
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode

#: Default chunk sizes swept, in elements (0.125B .. 6B).
DEFAULT_CHUNKS = (
    125_000_000,
    250_000_000,
    500_000_000,
    1_000_000_000,
    1_500_000_000,
    1_900_000_000,
    3_000_000_000,
    6_000_000_000,
)

#: Largest chunk that fits addressable MCDRAM in flat mode (~15.2 GB of
#: the 16 GiB) and in 50 % hybrid mode.
FLAT_CHUNK_LIMIT = 2_000_000_000
HYBRID_CHUNK_LIMIT = 1_000_000_000


def _variant_plan(mode: UsageMode, n: int, mega: int, cost):
    """The ``(node, plan)`` pair behind one figure7 cell."""
    if mode is UsageMode.FLAT:
        node = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))
    elif mode is UsageMode.HYBRID:
        node = KNLNode(
            KNLNodeConfig(mode=MemoryMode.HYBRID, hybrid_cache_fraction=0.5)
        )
    else:
        node = KNLNode(KNLNodeConfig(mode=MemoryMode.CACHE))
    cfg = MLMSortConfig(n=n, megachunk_elements=mega, mode=mode)
    return node, mlm_sort_plan(node, cfg, cost)


def _variant_time(mode: UsageMode, n: int, mega: int, cost) -> float:
    node, plan = _variant_plan(mode, n, mega, cost)
    return node.run(plan).elapsed


def _variant_time_batch(mode: UsageMode, n: int, mega: int, cost) -> PlanBatch:
    node, plan = _variant_plan(mode, n, mega, cost)
    return PlanBatch(
        resources=tuple(node.resources()),
        plans=(plan,),
        finish=lambda runs: runs[0].elapsed,
    )


_variant_time.plan_batch = PlanBatchSpec(build=_variant_time_batch)


def run_figure7(
    cost: SortCostModel | None = None,
    n: int = 6_000_000_000,
    chunks: tuple[int, ...] = DEFAULT_CHUNKS,
    jobs: int = 1,
    pool: str | None = None,
    store: Any | None = None,
) -> ExperimentResult:
    """Time vs chunk size for MLM-sort in flat, hybrid, and implicit."""
    cells: list[tuple] = []
    labels: list[tuple[int, str]] = []
    for mega in chunks:
        if mega <= FLAT_CHUNK_LIMIT:
            cells.append((UsageMode.FLAT, n, mega, cost))
            labels.append((mega, "flat_s"))
        if mega <= HYBRID_CHUNK_LIMIT:
            cells.append((UsageMode.HYBRID, n, mega, cost))
            labels.append((mega, "hybrid_s"))
        cells.append((UsageMode.IMPLICIT, n, mega, cost))
        labels.append((mega, "implicit_s"))
    times = sweep_map(_variant_time, cells, jobs=jobs, pool=pool, store=store)
    by_chunk: dict[int, dict] = {
        mega: {"chunk_elements": mega} for mega in chunks
    }
    for (mega, column), t in zip(labels, times):
        by_chunk[mega][column] = t
    rows = [by_chunk[mega] for mega in chunks]
    return ExperimentResult(
        experiment="figure7",
        title=f"Figure 7: time vs chunk size, {n} int64 elements",
        columns=["chunk_elements", "flat_s", "hybrid_s", "implicit_s"],
        rows=rows,
        notes=[
            "flat is limited to chunks fitting addressable MCDRAM; hybrid "
            "(50% cache) to half of that; implicit is uncapped",
            "paper: 1-1.5 GB chunks give near-minimal times; hybrid tracks "
            "flat; implicit tolerates megachunks beyond MCDRAM",
        ],
    )


run_figure7.series_spec = SeriesSpec(
    "chunk_elements", ("flat_s", "implicit_s")
)
run_figure7.supports_jobs = True
run_figure7.supports_store = True
run_figure7.supports_replay = True
