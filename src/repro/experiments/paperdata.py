"""The paper's published numbers, transcribed for side-by-side reports.

Source: Butcher et al., ICPP 2018, Tables 1-3. Where we suspect a typo
in the published table, the value is kept as printed and the suspicion
recorded in the driver's notes.
"""

from __future__ import annotations

#: Table 1: (elements, order, algorithm) -> mean seconds, as printed.
TABLE1_SECONDS: dict[tuple[int, str, str], float] = {
    (2_000_000_000, "random", "GNU-flat"): 11.92,
    (2_000_000_000, "random", "GNU-cache"): 9.73,
    (2_000_000_000, "random", "MLM-ddr"): 9.28,
    (2_000_000_000, "random", "MLM-sort"): 8.09,
    (2_000_000_000, "random", "MLM-implicit"): 7.37,
    (4_000_000_000, "random", "GNU-flat"): 24.21,
    (4_000_000_000, "random", "GNU-cache"): 19.76,
    (4_000_000_000, "random", "MLM-ddr"): 18.74,
    (4_000_000_000, "random", "MLM-sort"): 16.28,
    (4_000_000_000, "random", "MLM-implicit"): 14.56,
    (6_000_000_000, "random", "GNU-flat"): 36.52,
    (6_000_000_000, "random", "GNU-cache"): 29.53,
    # As printed; duplicates the 4B row and is likely a typo (~28 s by
    # linear scaling of the neighbouring MLM-ddr cells).
    (6_000_000_000, "random", "MLM-ddr"): 18.74,
    (6_000_000_000, "random", "MLM-sort"): 22.71,
    (6_000_000_000, "random", "MLM-implicit"): 21.66,
    (2_000_000_000, "reverse", "GNU-flat"): 7.97,
    (2_000_000_000, "reverse", "GNU-cache"): 7.19,
    (2_000_000_000, "reverse", "MLM-ddr"): 4.79,
    (2_000_000_000, "reverse", "MLM-sort"): 4.46,
    (2_000_000_000, "reverse", "MLM-implicit"): 4.10,
    (4_000_000_000, "reverse", "GNU-flat"): 16.06,
    (4_000_000_000, "reverse", "GNU-cache"): 14.27,
    (4_000_000_000, "reverse", "MLM-ddr"): 9.53,
    (4_000_000_000, "reverse", "MLM-sort"): 9.02,
    (4_000_000_000, "reverse", "MLM-implicit"): 8.31,
    (6_000_000_000, "reverse", "GNU-flat"): 23.94,
    (6_000_000_000, "reverse", "GNU-cache"): 21.85,
    (6_000_000_000, "reverse", "MLM-ddr"): 14.48,
    (6_000_000_000, "reverse", "MLM-sort"): 12.56,
    (6_000_000_000, "reverse", "MLM-implicit"): 12.76,
}

#: Table 2 parameter values (bytes and bytes/s).
TABLE2_PARAMS = {
    "B_copy": 14.9e9,
    "DDR_max": 90e9,
    "MCDRAM_max": 400e9,
    "S_copy": 4.8e9,
    "S_comp": 6.78e9,
}

#: Table 3: repeats -> (model-optimal p_in, empirical power-of-two p_in).
TABLE3_OPTIMAL = {
    1: (10, 16),
    2: (10, 16),
    4: (10, 8),
    8: (8, 4),
    16: (3, 2),
    32: (2, 2),
    64: (1, 1),
}

#: Conclusions quoted in Section 6.
HEADLINE_SPEEDUP_RANGE = (1.6, 1.9)

#: Bender et al. predictions the paper corroborates (Sections 2.3, 4).
BENDER_PREDICTED_SPEEDUP = 1.30
BENDER_PREDICTED_DDR_TRAFFIC_REDUCTION = 2.5
