"""Table 2: model parameters, re-measured on the simulated node.

The paper obtained DDR/MCDRAM ceilings from STREAM and the per-thread
rates from micro-measurements; we run the same procedure against the
simulator and report both alongside the published values. The
measurement runs as a single :func:`~repro.experiments.runner.sweep_map`
cell so its result lands in the config-hash memo and the on-disk
result store like every other experiment cell — `repro-knl replay
table2` re-renders the table with zero measurement runs.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.paperdata import TABLE2_PARAMS
from repro.experiments.runner import ExperimentResult, sweep_map
from repro.model.params import measure_params
from repro.simknl.batch import PlanBatch, PlanBatchSpec
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode
from repro.units import GB

#: Parameter order of the measurement cell's result tuple.
_PARAM_KEYS = ("B_copy", "DDR_max", "MCDRAM_max", "S_copy", "S_comp")


def _table2_cell() -> tuple[float, float, float, float, float]:
    """Measure the five model parameters, in ``_PARAM_KEYS`` order."""
    node = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))
    p = measure_params(node)
    return (
        float(p.b_copy),
        float(p.ddr_max),
        float(p.mcdram_max),
        float(p.s_copy),
        float(p.s_comp),
    )


def _table2_batch() -> PlanBatch:
    """The measurement cell as four engine plans: two STREAM triads
    (bandwidth ceilings) plus the two single-thread micro-runs
    (per-thread rates), divided back into rates by ``finish``."""
    from repro.algorithms.stream import micro_rate_plans, stream_triad_plan

    node = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))
    ddr_plan = stream_triad_plan(node, device="ddr")
    mc_plan = stream_triad_plan(node, device="mcdram")
    copy_plan, comp_plan, nbytes = micro_rate_plans(node)

    def finish(runs):
        ddr_r, mc_r, copy_r, comp_r = runs
        return (
            float(14.9 * GB),
            float(ddr_plan.total_bytes / ddr_r.elapsed),
            float(mc_plan.total_bytes / mc_r.elapsed),
            float(nbytes / copy_r.elapsed),
            float(nbytes / comp_r.elapsed),
        )

    return PlanBatch(
        resources=tuple(node.resources()),
        plans=(ddr_plan, mc_plan, copy_plan, comp_plan),
        finish=finish,
    )


_table2_cell.plan_batch = PlanBatchSpec(build=_table2_batch)


def run_table2(store: Any | None = None) -> ExperimentResult:
    """Measure B_copy/DDR_max/MCDRAM_max/S_copy/S_comp."""
    (values,) = sweep_map(_table2_cell, [()], store=store)
    measured = dict(zip(_PARAM_KEYS, values))
    descriptions = {
        "B_copy": "data size (GB)",
        "DDR_max": "max DDR bandwidth, STREAM (GB/s)",
        "MCDRAM_max": "max MCDRAM bandwidth, STREAM (GB/s)",
        "S_copy": "per-thread DDR<->MCDRAM copy rate (GB/s)",
        "S_comp": "per-thread compute streaming rate (GB/s)",
    }
    rows = []
    for key, paper_v in TABLE2_PARAMS.items():
        rows.append(
            {
                "parameter": key,
                "measured_gb": measured[key] / 1e9,
                "paper_gb": paper_v / 1e9,
                "description": descriptions[key],
            }
        )
    return ExperimentResult(
        experiment="table2",
        title="Table 2: model parameters (measured on simulator vs paper)",
        columns=["parameter", "measured_gb", "paper_gb", "description"],
        rows=rows,
        notes=[
            "bandwidth ceilings measured by running STREAM-triad on the "
            "simulated node; per-thread rates from single-stream runs "
            "bounded by memory-level parallelism"
        ],
    )


run_table2.supports_store = True
run_table2.supports_replay = True
