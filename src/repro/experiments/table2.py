"""Table 2: model parameters, re-measured on the simulated node.

The paper obtained DDR/MCDRAM ceilings from STREAM and the per-thread
rates from micro-measurements; we run the same procedure against the
simulator and report both alongside the published values.
"""

from __future__ import annotations

from repro.experiments.paperdata import TABLE2_PARAMS
from repro.experiments.runner import ExperimentResult
from repro.model.params import measure_params
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode


def run_table2() -> ExperimentResult:
    """Measure B_copy/DDR_max/MCDRAM_max/S_copy/S_comp."""
    node = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))
    p = measure_params(node)
    measured = {
        "B_copy": p.b_copy,
        "DDR_max": p.ddr_max,
        "MCDRAM_max": p.mcdram_max,
        "S_copy": p.s_copy,
        "S_comp": p.s_comp,
    }
    descriptions = {
        "B_copy": "data size (GB)",
        "DDR_max": "max DDR bandwidth, STREAM (GB/s)",
        "MCDRAM_max": "max MCDRAM bandwidth, STREAM (GB/s)",
        "S_copy": "per-thread DDR<->MCDRAM copy rate (GB/s)",
        "S_comp": "per-thread compute streaming rate (GB/s)",
    }
    rows = []
    for key, paper_v in TABLE2_PARAMS.items():
        rows.append(
            {
                "parameter": key,
                "measured_gb": measured[key] / 1e9,
                "paper_gb": paper_v / 1e9,
                "description": descriptions[key],
            }
        )
    return ExperimentResult(
        experiment="table2",
        title="Table 2: model parameters (measured on simulator vs paper)",
        columns=["parameter", "measured_gb", "paper_gb", "description"],
        rows=rows,
        notes=[
            "bandwidth ceilings measured by running STREAM-triad on the "
            "simulated node; per-thread rates from single-stream runs "
            "bounded by memory-level parallelism"
        ],
    )
