"""Blocking client for the sweep service's NDJSON-over-TCP protocol.

Used by ``repro-knl submit`` and by tests; any language that can open
a TCP socket and write one JSON line can speak the same protocol (see
``docs/SERVICE.md``). One request line gets exactly one response
line; a connection may carry any number of request/response pairs.

Responses are plain dicts straight from :func:`json.loads`. Because
JSON round-trips Python floats exactly, a result reconstructed with
:func:`~repro.experiments.service.result_from_wire` renders tables
and CSV byte-identical to a direct in-process driver run.
"""

from __future__ import annotations

import json
import socket
from typing import Any

from repro.errors import AdmissionError, ServiceError


class ServiceClient:
    """One TCP connection to a ``repro-knl serve`` instance.

    Usable as a context manager::

        with ServiceClient("127.0.0.1", 7077) as client:
            response = client.submit("figure7", tenant="alice")
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7077,
        timeout: float | None = 300.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._file: Any = None

    def __enter__(self) -> "ServiceClient":
        self.connect()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def connect(self) -> None:
        """Open the connection (idempotent)."""
        if self._sock is not None:
            return
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            raise ServiceError(
                f"cannot reach sweep service at {self.host}:{self.port}: "
                f"{exc}"
            ) from exc
        self._file = self._sock.makefile("rwb")

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One round trip: send ``payload``, return the decoded reply.

        Protocol-level failures (``ok: false``) raise
        :class:`~repro.errors.ServiceError` — admission rejections as
        :class:`~repro.errors.AdmissionError` carrying the server's
        ``reason`` and ``retry_after_s`` so callers can back off.
        """
        self.connect()
        try:
            self._file.write(json.dumps(payload).encode() + b"\n")
            self._file.flush()
            line = self._file.readline()
        except OSError as exc:
            self.close()
            raise ServiceError(
                f"connection to sweep service lost: {exc}"
            ) from exc
        if not line:
            self.close()
            raise ServiceError(
                "sweep service closed the connection mid-request"
            )
        try:
            response = json.loads(line)
        except ValueError as exc:
            raise ServiceError(
                f"malformed response from sweep service: {exc}"
            ) from exc
        if not isinstance(response, dict):
            raise ServiceError("malformed response: not a JSON object")
        if not response.get("ok", False):
            message = response.get("message", "request failed")
            if response.get("reason") is not None:
                raise AdmissionError(
                    message,
                    reason=response["reason"],
                    retry_after_s=float(
                        response.get("retry_after_s", 1.0)
                    ),
                )
            raise ServiceError(message)
        return response

    # ---- verbs -------------------------------------------------------------

    def ping(self) -> bool:
        """Liveness probe."""
        return bool(self.request({"op": "ping"}).get("pong"))

    def submit(
        self,
        experiment: str,
        tenant: str = "default",
        params: dict[str, Any] | None = None,
        wait: bool = True,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """Submit a job; with ``wait`` (default) block until terminal."""
        request: dict[str, Any] = {
            "op": "submit",
            "tenant": tenant,
            "experiment": experiment,
            "params": params or {},
            "wait": wait,
        }
        if timeout is not None:
            request["timeout"] = timeout
        return self.request(request)

    def status(self, job_id: str) -> dict[str, Any]:
        """Current lifecycle state of one job."""
        return self.request({"op": "status", "job_id": job_id})

    def wait(
        self, job_id: str, timeout: float | None = None
    ) -> dict[str, Any]:
        """Block until a job reaches a terminal state."""
        request: dict[str, Any] = {"op": "wait", "job_id": job_id}
        if timeout is not None:
            request["timeout"] = timeout
        return self.request(request)

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; False if it already ran (or finished)."""
        return bool(self.request(
            {"op": "cancel", "job_id": job_id}
        ).get("cancelled"))

    def metrics(self) -> str:
        """The server's ``service.*`` Prometheus exposition text."""
        return str(self.request({"op": "metrics"}).get("prometheus", ""))
