"""Table 3: optimal number of copy threads, model vs empirical."""

from __future__ import annotations

from typing import Any

from repro.algorithms.merge_bench import (
    MergeBenchConfig,
    build_merge_bench,
    empirical_optimal_copy_threads,
    pick_optimal_copy_threads,
)
from repro.experiments.paperdata import TABLE3_OPTIMAL
from repro.experiments.runner import ExperimentResult, sweep_map
from repro.model.optimizer import optimal_copy_threads
from repro.model.params import ModelParams
from repro.simknl.batch import PlanBatch, PlanBatchSpec
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode

#: The paper's empirical candidates: powers of two, 1..32.
_CANDIDATES = (1, 2, 4, 8, 16, 32)


def _table3_cell(r: int, total_threads: int) -> tuple[int, int]:
    """One repeats row: (model-optimal, empirical-optimal) copy threads."""
    params = ModelParams()
    node = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))
    model_p = optimal_copy_threads(params, total_threads, passes=r).p_in
    emp_p = empirical_optimal_copy_threads(
        node, r, list(_CANDIDATES), total_threads=total_threads
    )
    return int(model_p), int(emp_p)


def _table3_batch(r: int, total_threads: int) -> PlanBatch:
    """Lower one row to its six candidate merge-bench plans; ``finish``
    replays the empirical argmin over the batched times."""
    params = ModelParams()
    node = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))
    model_p = optimal_copy_threads(params, total_threads, passes=r).p_in
    plans = [
        build_merge_bench(
            node,
            MergeBenchConfig(
                repeats=r, copy_in_threads=p, total_threads=total_threads
            ),
        ).prepare()
        for p in _CANDIDATES
    ]

    def finish(runs):
        times = {p: run.elapsed for p, run in zip(_CANDIDATES, runs)}
        return int(model_p), int(pick_optimal_copy_threads(times))

    return PlanBatch(
        resources=tuple(node.resources()), plans=plans, finish=finish
    )


_table3_cell.plan_batch = PlanBatchSpec(build=_table3_batch)


def run_table3(
    repeats: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
    total_threads: int = 256,
    jobs: int = 1,
    pool: str | None = None,
    store: Any | None = None,
) -> ExperimentResult:
    """Model-predicted and simulator-empirical optimal copy threads."""
    cells = [(r, total_threads) for r in repeats]
    optima = sweep_map(
        _table3_cell, cells, jobs=jobs, pool=pool, store=store
    )
    rows = []
    for r, (model_p, emp_p) in zip(repeats, optima):
        paper_model, paper_emp = TABLE3_OPTIMAL.get(r, (None, None))
        rows.append(
            {
                "repeats": r,
                "model": model_p,
                "paper_model": paper_model,
                "empirical_pow2": emp_p,
                "paper_empirical_pow2": paper_emp,
            }
        )
    return ExperimentResult(
        experiment="table3",
        title="Table 3: optimal copy threads for the merge benchmark",
        columns=[
            "repeats",
            "model",
            "paper_model",
            "empirical_pow2",
            "paper_empirical_pow2",
        ],
        rows=rows,
        notes=[
            "empirical column sweeps powers of two (1..32) as in the paper",
            "the paper itself reports model and empirical only 'nearby'; "
            "our model matches its model column at 5 of 7 rows",
        ],
    )


run_table3.supports_jobs = True
run_table3.supports_store = True
run_table3.supports_replay = True
