"""On-disk experiment result store: the sweep memo's second tier.

:func:`~repro.experiments.runner.sweep_map` memoizes cell results on
:func:`~repro.experiments.runner.config_hash`, but the in-memory memo
dies with the process — every new CI run, figure re-render, and
analysis session pays the full simulation cost again. This module
persists the same ``config_hash -> result`` mapping on disk so warm
results survive across processes bit-identically, the cache-and-replay
experiment workflow of delphyne's experiments README (SNIPPETS.md §1):
run once against a store, then re-render any artifact purely from the
cached results.

Layout (``docs/EXPERIMENTS_STORE.md`` is the user guide)::

    <root>/v1/<hh>/<config_hash>.json

* ``v1`` is the layout version; an incompatible future layout gets a
  new directory and old entries are simply never consulted.
* ``<hh>`` is the first two hex digits of the key, sharding entries so
  no directory grows unboundedly.
* Each entry file is a single JSON object carrying a per-entry
  ``schema`` stamp, the full key, the producing function's qualname,
  and the encoded result value.

Durability and safety properties:

* **Atomic writes.** Entries are written to a temp file in the shard
  directory and published with :func:`os.replace`, so a reader never
  observes a half-written entry and two processes racing to write the
  same key (deterministic cells produce identical bytes) both land a
  complete file.
* **Corruption tolerance.** A load that fails to parse, fails its
  schema/key/function checks, or fails value decoding is *skipped and
  reported* (``store.corrupt_total``, :attr:`StoreStats.corrupt`, one
  warning per store instance) — never raised. The entry is treated as
  a miss and the next write replaces it.
* **Bounded size.** The store holds at most ``max_entries`` entries
  (``REPRO_STORE_MAX_ENTRIES``, default 65536). Hits refresh an
  entry's mtime, and :meth:`ResultStore.gc` evicts
  least-recently-used entries once the bound is exceeded — LRU in the
  same spirit as the in-memory tier's cap, but visible
  (``store.evictions_total``).

Only JSON-representable results (floats, ints, bools, strings,
``None``, and lists/tuples/str-keyed dicts of those) are persisted;
tuples round-trip type-exactly through a tagged encoding, and floats
round-trip bit-identically through ``repr``-based JSON serialization.
A cell returning anything else is computed normally and simply never
cached on disk.

Telemetry: the ``store.*`` metric family (hits/misses/writes/
evictions/corrupt counters and a bytes gauge) is emitted while a
session is active; :attr:`ResultStore.stats` keeps the same counts
unconditionally.
"""

from __future__ import annotations

import itertools
import json
import os
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import ConfigError, StoreError
from repro.telemetry import names as _tn
from repro.telemetry import runtime as _tm

#: Per-entry schema stamp; bump when the entry dict shape changes.
SCHEMA_VERSION = 1
#: On-disk layout version directory; bump when the file layout changes.
LAYOUT = "v1"
#: Default entry bound (matches the in-memory memo's cap).
DEFAULT_MAX_ENTRIES = 65536

#: Tag key marking a tuple in the JSON value encoding.
_TUPLE_TAG = "__tuple__"

#: Per-process serial for temp-file names: the PID alone is not unique
#: enough — two *threads* writing the same key would share a temp path
#: and one ``os.replace`` would steal the other's file.
_TMP_SERIAL = itertools.count()


class _Unstorable(Exception):
    """A result value has no faithful JSON encoding (internal)."""


def _encode_value(value: Any) -> Any:
    """JSON-ready encoding of a cell result, or raise :class:`_Unstorable`.

    Floats/ints/bools/strings/``None`` pass through (JSON round-trips
    finite floats bit-identically via shortest-repr); tuples become
    ``{"__tuple__": [...]}`` so decoding is type-exact; lists and
    str-keyed dicts recurse. Everything else is unstorable.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {_TUPLE_TAG: [_encode_value(v) for v in value]}
    if isinstance(value, list):
        return [_encode_value(v) for v in value]
    if isinstance(value, dict):
        if any(not isinstance(k, str) or k == _TUPLE_TAG for k in value):
            raise _Unstorable(value)
        return {k: _encode_value(v) for k, v in value.items()}
    raise _Unstorable(value)


def _decode_value(value: Any) -> Any:
    """Inverse of :func:`_encode_value`."""
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    if isinstance(value, dict):
        if set(value) == {_TUPLE_TAG}:
            return tuple(_decode_value(v) for v in value[_TUPLE_TAG])
        return {k: _decode_value(v) for k, v in value.items()}
    return value


@dataclass
class StoreStats:
    """Cumulative counters of one :class:`ResultStore` instance.

    Mirrors the ``store.*`` telemetry family, but counts
    unconditionally so scripts can report cache behavior without a
    telemetry session.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    corrupt: int = 0
    unstorable: int = 0


class ResultStore:
    """A ``config_hash``-keyed, file-backed result store.

    Parameters
    ----------
    root:
        Directory holding the store (created if missing). The same
        directory can be shared by concurrent writers — writes are
        atomic and deterministic cells produce identical entries.
    max_entries:
        LRU bound on stored entries, enforced by :meth:`gc` after each
        write. ``None`` falls back to ``REPRO_STORE_MAX_ENTRIES`` or
        :data:`DEFAULT_MAX_ENTRIES`.
    """

    def __init__(
        self, root: str | os.PathLike, max_entries: int | None = None
    ) -> None:
        if max_entries is None:
            raw = os.environ.get("REPRO_STORE_MAX_ENTRIES")
            max_entries = int(raw) if raw else DEFAULT_MAX_ENTRIES
        if max_entries < 1:
            raise ConfigError(
                f"store max_entries must be >= 1, got {max_entries}"
            )
        self.root = Path(root)
        self.max_entries = max_entries
        self.stats = StoreStats()
        self._dir = self.root / LAYOUT
        self._dir.mkdir(parents=True, exist_ok=True)
        self._count: int | None = None  # lazily scanned
        self._bytes = 0
        self._warned_corrupt = False

    # ---- bookkeeping -------------------------------------------------------

    def _entry_paths(self) -> list[Path]:
        return [
            p
            for shard in sorted(self._dir.iterdir())
            if shard.is_dir()
            for p in sorted(shard.glob("*.json"))
        ]

    def _ensure_scanned(self) -> None:
        """Count pre-existing entries once, on first write/GC."""
        if self._count is not None:
            return
        count = 0
        total = 0
        for path in self._entry_paths():
            try:
                total += path.stat().st_size
                count += 1
            except OSError:
                continue  # concurrently evicted
        self._count = count
        self._bytes = total

    def entries(self) -> int:
        """Number of entries currently in the store."""
        self._ensure_scanned()
        assert self._count is not None
        return self._count

    def nbytes(self) -> int:
        """Approximate total size of stored entries, in bytes."""
        self._ensure_scanned()
        return self._bytes

    def _path(self, key: str) -> Path:
        return self._dir / key[:2] / f"{key}.json"

    def _report_corrupt(self, path: Path, why: str) -> None:
        self.stats.corrupt += 1
        tel = _tm.current()
        if tel.enabled:
            tel.metrics.counter(_tn.STORE_CORRUPT_TOTAL).inc()
        if not self._warned_corrupt:
            self._warned_corrupt = True
            warnings.warn(
                f"result store {self.root}: skipping corrupt entry "
                f"{path.name} ({why}); further corrupt entries in this "
                "store are counted silently (see store.corrupt_total / "
                "StoreStats.corrupt)",
                stacklevel=4,
            )

    def _set_bytes_gauge(self) -> None:
        tel = _tm.current()
        if tel.enabled:
            tel.metrics.gauge(_tn.STORE_BYTES).set(self._bytes)

    # ---- lookup ------------------------------------------------------------

    @staticmethod
    def _validate_entry(raw: str, key: str, fn: str | None) -> Any:
        """Parse and validate one entry's text, returning its value.

        The single validating loader behind both :meth:`get` and
        :meth:`probe` — schema stamp, key echo, producing-function
        qualname, and value decoding all have to pass, or the entry
        reads as corrupt. Raises :class:`ValueError` (or
        ``TypeError``/``KeyError`` from hostile JSON) on any mismatch.
        """
        entry = json.loads(raw)
        if not isinstance(entry, dict):
            raise ValueError("entry is not an object")
        if entry.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"schema {entry.get('schema')!r} != {SCHEMA_VERSION}"
            )
        if entry.get("key") != key:
            raise ValueError(f"key {entry.get('key')!r} != {key!r}")
        if fn is not None and entry.get("fn") != fn:
            raise ValueError(f"fn {entry.get('fn')!r} != {fn!r}")
        if "value" not in entry:
            raise ValueError("no value field")
        return _decode_value(entry["value"])

    def get(self, key: str, fn: str | None = None) -> tuple[bool, Any]:
        """Look up one entry; returns ``(found, value)``.

        ``fn``, when given, must match the qualname recorded at write
        time — a hash collision across functions (or a store shared by
        incompatible code) reads as corruption, not as a hit. A hit
        refreshes the entry's mtime, which is the LRU clock
        :meth:`gc` evicts by.
        """
        path = self._path(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except (FileNotFoundError, NotADirectoryError):
            self._miss()
            return False, None
        except OSError as exc:
            self._report_corrupt(path, f"unreadable: {exc}")
            self._miss()
            return False, None
        try:
            value = self._validate_entry(raw, key, fn)
        except (ValueError, TypeError, KeyError) as exc:
            self._report_corrupt(path, str(exc))
            self._miss()
            return False, None
        try:
            os.utime(path)  # LRU touch
        except OSError:
            pass  # concurrently evicted; the value is still good
        self.stats.hits += 1
        tel = _tm.current()
        if tel.enabled:
            tel.metrics.counter(_tn.STORE_HITS_TOTAL).inc()
        return True, value

    def contains(self, key: str) -> bool:
        """Whether an entry *file* exists for ``key``.

        A bare existence check — no validation, no stats, no LRU
        touch. A present-but-corrupt entry still reads ``True`` here,
        so decisions about whether an entry needs (re)writing must go
        through :meth:`probe` instead; this remains only for cheap
        "has anything ever been written" introspection.
        """
        return self._path(key).exists()

    def probe(self, key: str, fn: str | None = None) -> bool:
        """Whether ``key`` holds a *loadable* entry (validating probe).

        Runs the same parse + schema/key/function validation as
        :meth:`get` but records no hit or miss and never touches the
        entry's mtime — probing whether a backfill is needed must not
        promote the entry in the LRU order or skew the cache
        statistics. A present-but-corrupt entry returns ``False`` (and
        is counted by ``store.corrupt_total``), so callers rewrite it:
        this is what keeps a warm :func:`~repro.experiments.runner.sweep_map`
        run replay-complete even when an on-disk entry behind an
        in-memory memo hit was truncated or written by a different
        cell function.
        """
        path = self._path(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except (FileNotFoundError, NotADirectoryError):
            return False
        except OSError as exc:
            self._report_corrupt(path, f"unreadable: {exc}")
            return False
        try:
            self._validate_entry(raw, key, fn)
        except (ValueError, TypeError, KeyError) as exc:
            self._report_corrupt(path, str(exc))
            return False
        return True

    def _miss(self) -> None:
        self.stats.misses += 1
        tel = _tm.current()
        if tel.enabled:
            tel.metrics.counter(_tn.STORE_MISSES_TOTAL).inc()

    # ---- write -------------------------------------------------------------

    def put(self, key: str, value: Any, fn: str = "") -> bool:
        """Persist one entry atomically; returns False if unstorable.

        The entry is serialized to a temp file in its shard directory
        and published with :func:`os.replace`, so concurrent readers
        and writers never see partial entries. Exceeding
        ``max_entries`` triggers an LRU :meth:`gc`.
        """
        try:
            encoded = _encode_value(value)
        except _Unstorable:
            self.stats.unstorable += 1
            return False
        self._ensure_scanned()
        entry = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "fn": fn,
            "value": encoded,
        }
        data = json.dumps(entry, separators=(",", ":")) + "\n"
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / (
            f".{key}.{os.getpid()}.{next(_TMP_SERIAL)}.tmp"
        )
        try:
            tmp.write_text(data, encoding="utf-8")
            existed = path.exists()
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        if not existed:
            self._count = (self._count or 0) + 1
        self._bytes += len(data)
        self.stats.writes += 1
        tel = _tm.current()
        if tel.enabled:
            tel.metrics.counter(_tn.STORE_WRITES_TOTAL).inc()
        if self._count is not None and self._count > self.max_entries:
            self.gc()
        self._set_bytes_gauge()
        return True

    # ---- garbage collection ------------------------------------------------

    def gc(self) -> int:
        """Evict least-recently-used entries down to ``max_entries``.

        Returns the number of entries evicted. Safe under concurrent
        writers: a file another process already removed is simply
        skipped. The scan re-derives the authoritative entry count, so
        drift from concurrent writers corrects itself here.
        """
        aged: list[tuple[float, int, Path]] = []
        for path in self._entry_paths():
            try:
                st = path.stat()
            except OSError:
                continue
            aged.append((st.st_mtime, st.st_size, path))
        self._count = len(aged)
        self._bytes = sum(size for _, size, _ in aged)
        excess = len(aged) - self.max_entries
        if excess <= 0:
            return 0
        aged.sort()  # oldest mtime first; path breaks ties stably
        evicted = 0
        for _, size, path in aged[:excess]:
            try:
                path.unlink()
            except OSError:
                continue
            evicted += 1
            self._count -= 1
            self._bytes -= size
        self.stats.evictions += evicted
        tel = _tm.current()
        if tel.enabled:
            tel.metrics.counter(_tn.STORE_EVICTIONS_TOTAL).inc(evicted)
        self._set_bytes_gauge()
        return evicted


#: Stores opened by path, one instance per resolved root.
_STORES: dict[Path, ResultStore] = {}


def get_store(root: str | os.PathLike | ResultStore) -> ResultStore:
    """The store at ``root``, cached per resolved path.

    Passing a :class:`ResultStore` returns it unchanged, so APIs can
    accept "a store or a path" uniformly.
    """
    if isinstance(root, ResultStore):
        return root
    resolved = Path(root).resolve()
    store = _STORES.get(resolved)
    if store is None:
        store = ResultStore(resolved)
        _STORES[resolved] = store
    return store


def default_store() -> ResultStore | None:
    """The process-default store from ``REPRO_STORE``, if set.

    Returns ``None`` when the environment variable is absent or empty —
    sweeps then run with the in-memory memo only.
    """
    root = os.environ.get("REPRO_STORE")
    if not root:
        return None
    return get_store(root)


def require_store(
    root: str | os.PathLike | ResultStore | None,
) -> ResultStore:
    """Resolve ``root`` or the default store, or fail loudly.

    Replay needs a store to replay *from*; this is the one place a
    missing store is an error rather than "no second tier".
    """
    if root is not None:
        return get_store(root)
    store = default_store()
    if store is None:
        raise StoreError(
            "no result store: pass --store DIR (or set REPRO_STORE) "
            "pointing at a store warmed by a previous run"
        )
    return store
