"""Sweep-as-a-service: an asyncio job queue over the pool and store.

The ROADMAP's delivery vehicle for "explore any scenario": a
long-running front end that lets many clients drive mode x chunk x
copy-thread sweeps (Figures 6-8, the ``pareto`` design-space endpoint)
without forking a CLI process per request. Three layers:

* :class:`SweepService` — the network-free core: a bounded job queue
  with per-tenant admission control (max in-flight jobs, max queued
  cell weight), explicit backpressure (a full queue *rejects* with a
  structured retry-after, never stalls), job lifecycle
  ``submitted -> queued -> running -> done/failed/cancelled`` with
  cancellation and deterministic job IDs, and a signal-safe drain.
  Jobs execute on a small thread pool; each thread calls the ordinary
  experiment driver, so everything already proven bit-identical in
  :func:`~repro.experiments.runner.sweep_map` — tensor batching, chaos
  hardening, adaptive dispatch, the two-tier memo — is reused, not
  reimplemented.
* :func:`start_server` / :func:`run_server` — a line-delimited-JSON
  over TCP protocol on stdlib :func:`asyncio.start_server` (no new
  dependencies). Verbs: ``submit``, ``status``, ``wait``, ``cancel``,
  ``metrics`` (Prometheus exposition of the ``service.*`` family).
  See ``docs/SERVICE.md`` for the wire format.
* ``repro-knl serve`` / ``repro-knl submit`` — the CLI front ends
  (:mod:`repro.cli`, :mod:`repro.experiments.client`).

Warm-store guarantee: when the configured result store already holds
every cell of a job, the job is served through
:func:`~repro.experiments.runner.replay_session` — zero engine
invocations, the same guarantee as ``repro-knl replay`` — and its
response is marked ``served: "store"``. A cold or partial store falls
back to a normal computing run (``served: "engine"``), bit-identical
either way.

Telemetry: the service emits the ``service.*`` catalog family on its
own private :class:`~repro.telemetry.Telemetry` registry, touched only
from the event-loop thread. Job threads deliberately run *outside* any
telemetry session (``run_in_executor`` does not propagate context
variables), so sweeps keep their fast path: a telemetry session would
force :func:`sweep_map` into serial in-process execution.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro.errors import (
    AdmissionError,
    ServiceError,
    StoreMissError,
)
from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.pool import current_pool, shutdown_pool
from repro.experiments.runner import config_hash, replay_session
from repro.experiments.store import get_store
from repro.telemetry import Telemetry, metrics_to_prometheus
from repro.telemetry import names as _tn

#: Protocol schema version, echoed in every response.
PROTOCOL_VERSION = 1

#: Byte limit for one request/response line (asyncio's default 64 KiB
#: stream limit is too small for multi-row result payloads).
STREAM_LIMIT = 1 << 20

#: Job lifecycle states (terminal: done / failed / cancelled).
JOB_STATES = (
    "queued", "running", "done", "failed", "cancelled",
)

#: Approximate sweep-cell dispatch weight per experiment, used by the
#: per-tenant queued-cell budget. These are admission-control
#: estimates, not exact counts — close enough to stop one tenant from
#: parking a pathological backlog behind everyone else's jobs.
CELL_WEIGHTS = {
    "table1": 30,
    "figure6": 30,
    "figure7": 24,
    "figure8": 32,
    "table2": 4,
    "table3": 12,
    "bender": 12,
    "pareto": 64,
}
DEFAULT_CELL_WEIGHT = 16

#: Infra kwargs the service owns; client params may not override them.
_RESERVED_PARAMS = frozenset({"jobs", "pool", "store"})


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs for a :class:`SweepService`.

    Attributes
    ----------
    max_queue:
        Global bound on jobs admitted but not yet running; the
        ``max_queue + 1``-th submission is rejected, never queued.
    max_tenant_jobs:
        Per-tenant bound on in-flight jobs (queued + running).
    max_tenant_cells:
        Per-tenant bound on queued sweep-cell weight
        (:data:`CELL_WEIGHTS`).
    job_workers:
        Threads executing jobs concurrently. Sweep dispatch inside the
        persistent pool serializes on the pool's own lock, so this
        bounds driver-level concurrency, not worker processes.
    jobs:
        Worker processes requested from the persistent pool for
        drivers that support ``jobs=``.
    store:
        Result-store root backing every job's sweep memo (and the
        warm-store replay path). ``None`` disables tier 2.
    drain_timeout_s:
        How long :meth:`SweepService.drain` waits for running jobs
        before abandoning their threads.
    retry_after_s:
        Backoff hint attached to admission rejections.
    idle_reap_s:
        Retire the persistent pool's workers after this much pool
        idleness (``None`` disables the reaper).
    """

    max_queue: int = 16
    max_tenant_jobs: int = 4
    max_tenant_cells: int = 256
    job_workers: int = 2
    jobs: int = 2
    store: str | None = None
    drain_timeout_s: float = 30.0
    retry_after_s: float = 1.0
    idle_reap_s: float | None = 300.0


@dataclass
class Job:
    """One submitted sweep job and its lifecycle record."""

    id: str
    tenant: str
    experiment: str
    params: dict[str, Any]
    cells: int
    state: str = "queued"
    served: str | None = None  # "store" | "engine" once terminal
    error: str | None = None
    result: Any = None  # ExperimentResult once done
    submitted_at: float = 0.0
    finished_at: float | None = None
    done: asyncio.Event = field(default_factory=asyncio.Event)

    def describe(self) -> dict[str, Any]:
        """The job's wire-format status payload (result excluded)."""
        out: dict[str, Any] = {
            "job_id": self.id,
            "tenant": self.tenant,
            "experiment": self.experiment,
            "state": self.state,
        }
        if self.served is not None:
            out["served"] = self.served
        if self.error is not None:
            out["error"] = self.error
        return out


def job_id_for(tenant: str, experiment: str, params: dict[str, Any]) -> str:
    """Deterministic job ID: same submission, same ID, any process.

    Reuses the sweep memo's :func:`config_hash` canonicalization, so
    an in-flight duplicate submission can be deduplicated (idempotent
    submit) and a re-submission after completion re-runs against the
    now-warm store.
    """
    return config_hash(
        ("service-job", tenant, experiment, sorted(params.items()))
    )


def cell_weight(experiment: str) -> int:
    """Approximate queued-cell admission weight of one job."""
    return CELL_WEIGHTS.get(experiment, DEFAULT_CELL_WEIGHT)


def result_to_wire(result: Any) -> dict[str, Any]:
    """An :class:`ExperimentResult` as a JSON-ready dict.

    JSON round-trips Python floats exactly (repr-shortest form), so a
    client reconstructing the result renders byte-identical tables and
    CSV to a direct in-process run.
    """
    return {
        "experiment": result.experiment,
        "title": result.title,
        "columns": list(result.columns),
        "rows": [dict(r) for r in result.rows],
        "notes": list(result.notes),
    }


def result_from_wire(payload: dict[str, Any]) -> Any:
    """Rebuild an :class:`ExperimentResult` from its wire dict."""
    from repro.experiments.runner import ExperimentResult

    try:
        return ExperimentResult(
            experiment=payload["experiment"],
            title=payload["title"],
            columns=list(payload["columns"]),
            rows=[dict(r) for r in payload["rows"]],
            notes=list(payload.get("notes", [])),
        )
    except (KeyError, TypeError) as exc:
        raise ServiceError(f"malformed result payload: {exc}") from exc


class SweepService:
    """The network-free job-queue core behind ``repro-knl serve``.

    All public methods except :meth:`run_job_blocking` must be called
    from the event-loop thread; job execution happens on an internal
    thread pool and reports back to the loop. Create, then ``await
    start()``; stop with ``await drain()``.
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        if self.config.max_queue < 1:
            raise ServiceError("max_queue must be >= 1")
        if self.config.job_workers < 1:
            raise ServiceError("job_workers must be >= 1")
        self.telemetry = Telemetry()
        self.jobs: dict[str, Job] = {}
        self._queue: asyncio.Queue[Job | None] = asyncio.Queue()
        self._queued = 0
        self._tenant_inflight: dict[str, int] = {}
        self._tenant_cells: dict[str, int] = {}
        self._running: set[str] = set()
        self._runners: list[asyncio.Task] = []
        self._reaper: asyncio.Task | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.job_workers,
            thread_name_prefix="repro-svc",
        )
        self._draining = False
        self._drained = False

    # ---- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Spawn the runner tasks (and the pool idle reaper)."""
        if self._runners:
            raise ServiceError("service already started")
        for _ in range(self.config.job_workers):
            self._runners.append(asyncio.create_task(self._run_jobs()))
        if self.config.idle_reap_s is not None:
            self._reaper = asyncio.create_task(self._reap_idle())

    async def drain(self) -> None:
        """Signal-safe shutdown: reject, cancel queued, finish running.

        Ordering matters: stop admitting first (new submissions get a
        structured ``draining`` rejection), cancel everything still
        queued, wait up to ``drain_timeout_s`` for running jobs, then
        tear down the executor and the persistent pool — the pool
        teardown is what unlinks the ``/dev/shm`` rings that a plain
        SIGTERM (which skips ``atexit``) used to leak.
        """
        if self._draining:
            return
        self._draining = True
        for job in list(self.jobs.values()):
            if job.state == "queued":
                self._finish(job, "cancelled", error="service draining")
        for _ in self._runners:
            self._queue.put_nowait(None)
        if self._runners:
            try:
                await asyncio.wait_for(
                    asyncio.gather(*self._runners, return_exceptions=True),
                    timeout=self.config.drain_timeout_s,
                )
            except asyncio.TimeoutError:
                for task in self._runners:
                    task.cancel()
        if self._reaper is not None:
            self._reaper.cancel()
        self._executor.shutdown(wait=False, cancel_futures=True)
        shutdown_pool()
        self._drained = True

    @property
    def draining(self) -> bool:
        """Whether :meth:`drain` has begun (new submissions rejected)."""
        return self._draining

    @property
    def queue_depth(self) -> int:
        """Jobs admitted but not yet running."""
        return self._queued

    # ---- admission ---------------------------------------------------------

    def submit(
        self,
        tenant: str,
        experiment: str,
        params: dict[str, Any] | None = None,
    ) -> Job:
        """Admit one job, or raise a structured :class:`AdmissionError`.

        Submissions are idempotent on the deterministic job ID: a
        duplicate of an in-flight job returns the existing record
        without consuming queue budget. Re-submitting a *finished* job
        re-runs it — against a store the first run warmed, that second
        run is served by replay with zero engine invocations.
        """
        params = dict(params or {})
        if experiment not in ALL_EXPERIMENTS:
            raise ServiceError(
                f"unknown experiment {experiment!r}: one of "
                f"{', '.join(sorted(ALL_EXPERIMENTS))}"
            )
        if not tenant or not isinstance(tenant, str):
            raise ServiceError("tenant must be a non-empty string")
        reserved = _RESERVED_PARAMS.intersection(params)
        if reserved:
            raise ServiceError(
                f"params {sorted(reserved)} are service-owned; configure "
                "them on the server, not per submission"
            )
        job_id = job_id_for(tenant, experiment, params)
        existing = self.jobs.get(job_id)
        if existing is not None and existing.state in ("queued", "running"):
            return existing
        retry = self.config.retry_after_s
        if self._draining:
            self._reject("draining")
            raise AdmissionError(
                "service is draining", reason="draining", retry_after_s=retry
            )
        if self._queued >= self.config.max_queue:
            self._reject("queue_full")
            raise AdmissionError(
                f"job queue is full ({self.config.max_queue} queued)",
                reason="queue_full",
                retry_after_s=retry,
            )
        if (
            self._tenant_inflight.get(tenant, 0)
            >= self.config.max_tenant_jobs
        ):
            self._reject("tenant_jobs")
            raise AdmissionError(
                f"tenant {tenant!r} already has "
                f"{self.config.max_tenant_jobs} jobs in flight",
                reason="tenant_jobs",
                retry_after_s=retry,
            )
        weight = cell_weight(experiment)
        if (
            self._tenant_cells.get(tenant, 0) + weight
            > self.config.max_tenant_cells
        ):
            self._reject("tenant_cells")
            raise AdmissionError(
                f"tenant {tenant!r} queued-cell budget exceeded "
                f"({self.config.max_tenant_cells} cells)",
                reason="tenant_cells",
                retry_after_s=retry,
            )
        job = Job(
            id=job_id,
            tenant=tenant,
            experiment=experiment,
            params=params,
            cells=weight,
            submitted_at=time.monotonic(),
        )
        self.jobs[job_id] = job
        self._queued += 1
        self._tenant_inflight[tenant] = (
            self._tenant_inflight.get(tenant, 0) + 1
        )
        self._tenant_cells[tenant] = (
            self._tenant_cells.get(tenant, 0) + weight
        )
        m = self.telemetry.metrics
        m.counter(_tn.SERVICE_ADMITTED_TOTAL).inc()
        m.gauge(_tn.SERVICE_QUEUE_DEPTH).set(self._queued)
        self._queue.put_nowait(job)
        return job

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; running/terminal jobs are not touched."""
        job = self.jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        if job.state != "queued":
            return False
        self._finish(job, "cancelled", error="cancelled by client")
        return True

    def _reject(self, reason: str) -> None:
        self.telemetry.metrics.counter(
            _tn.SERVICE_REJECTED_TOTAL
        ).inc(reason=reason)

    # ---- execution ---------------------------------------------------------

    async def _run_jobs(self) -> None:
        """One runner task: dequeue, execute on a thread, settle."""
        while True:
            job = await self._queue.get()
            if job is None:
                return
            if job.state != "queued":
                continue  # cancelled while queued
            self._dequeue(job)
            job.state = "running"
            self._running.add(job.id)
            loop = asyncio.get_running_loop()
            try:
                result, served = await loop.run_in_executor(
                    self._executor, self.run_job_blocking, job
                )
            except Exception as exc:  # driver bugs must not kill runners
                job.error = f"{type(exc).__name__}: {exc}"
                self._settle(job, "failed")
            else:
                job.result = result
                job.served = served
                self._settle(job, "done")

    def run_job_blocking(self, job: Job) -> tuple[Any, str]:
        """Execute one job's driver on the calling (worker) thread.

        Tries the replay path first when a store is configured and the
        driver supports it: a fully warm store serves the job with
        zero engine invocations (``served == "store"``), exactly like
        ``repro-knl replay``. Any missing cell falls back to a normal
        computing run (``served == "engine"``) whose results are
        bit-identical and which warms the store for next time.
        """
        driver = ALL_EXPERIMENTS[job.experiment]
        params = dict(job.params)
        if "seed" in params and not getattr(
            driver, "supports_seed", False
        ):
            # Mirror the CLI: --seed is ignored by deterministic
            # drivers rather than rejected.
            params.pop("seed")
        if self.config.store is not None and getattr(
            driver, "supports_replay", False
        ):
            store = get_store(self.config.store)
            try:
                with replay_session(store):
                    return driver(**params), "store"
            except StoreMissError:
                pass
        kwargs = dict(params)
        if self.config.jobs > 1 and getattr(driver, "supports_jobs", False):
            kwargs["jobs"] = self.config.jobs
            kwargs["pool"] = "persistent"
        if self.config.store is not None and getattr(
            driver, "supports_store", False
        ):
            kwargs["store"] = self.config.store
        return driver(**kwargs), "engine"

    # ---- bookkeeping (loop thread only) ------------------------------------

    def _dequeue(self, job: Job) -> None:
        """Release the queue/tenant-cell budget a queued job held."""
        self._queued -= 1
        self._tenant_cells[job.tenant] = (
            self._tenant_cells.get(job.tenant, 0) - job.cells
        )
        self.telemetry.metrics.gauge(
            _tn.SERVICE_QUEUE_DEPTH
        ).set(self._queued)

    def _finish(self, job: Job, state: str, error: str | None = None) -> None:
        """Terminal transition for a job that never ran (cancelled)."""
        if job.state == "queued":
            self._dequeue(job)
        job.state = state
        if error is not None:
            job.error = error
        self._release(job)

    def _settle(self, job: Job, state: str) -> None:
        """Terminal transition for a job that ran (done/failed)."""
        self._running.discard(job.id)
        job.state = state
        self._release(job)

    def _release(self, job: Job) -> None:
        """Common terminal bookkeeping: budgets, metrics, waiters."""
        job.finished_at = time.monotonic()
        self._tenant_inflight[job.tenant] = (
            self._tenant_inflight.get(job.tenant, 1) - 1
        )
        m = self.telemetry.metrics
        m.counter(_tn.SERVICE_COMPLETED_TOTAL).inc(state=job.state)
        m.histogram(_tn.SERVICE_JOB_SECONDS).observe(
            job.finished_at - job.submitted_at
        )
        job.done.set()

    # ---- pool idle reaper --------------------------------------------------

    async def _reap_idle(self) -> None:
        """Periodically retire pool workers after sustained idleness.

        A quiet service should not pin ``jobs`` worker processes (and
        their shared-memory rings) forever; the pool respawns them on
        the next sweep.
        """
        limit = self.config.idle_reap_s
        assert limit is not None
        while True:
            await asyncio.sleep(max(limit / 2.0, 0.05))
            pool = current_pool()
            if pool is not None:
                pool.reap_idle(limit)


# ---- NDJSON-over-TCP front end ---------------------------------------------


def _error_payload(exc: Exception) -> dict[str, Any]:
    """The structured error body for one failed request."""
    out: dict[str, Any] = {
        "v": PROTOCOL_VERSION,
        "ok": False,
        "error": type(exc).__name__,
        "message": str(exc),
    }
    if isinstance(exc, AdmissionError):
        out["reason"] = exc.reason
        out["retry_after_s"] = exc.retry_after_s
    return out


async def _handle_request(
    service: SweepService, request: dict[str, Any]
) -> dict[str, Any]:
    """Dispatch one decoded request to the service."""
    op = request.get("op")
    if op == "submit":
        job = service.submit(
            tenant=request.get("tenant", "default"),
            experiment=request.get("experiment", ""),
            params=request.get("params") or {},
        )
        payload = job.describe()
        if request.get("wait", True):
            timeout = request.get("timeout")
            await asyncio.wait_for(job.done.wait(), timeout=timeout)
            payload = job.describe()
            if job.state == "done":
                payload["result"] = result_to_wire(job.result)
        return {"v": PROTOCOL_VERSION, "ok": True, **payload}
    if op == "status":
        job = service.jobs.get(request.get("job_id", ""))
        if job is None:
            raise ServiceError(f"unknown job {request.get('job_id')!r}")
        return {"v": PROTOCOL_VERSION, "ok": True, **job.describe()}
    if op == "wait":
        job = service.jobs.get(request.get("job_id", ""))
        if job is None:
            raise ServiceError(f"unknown job {request.get('job_id')!r}")
        await asyncio.wait_for(
            job.done.wait(), timeout=request.get("timeout")
        )
        payload = job.describe()
        if job.state == "done":
            payload["result"] = result_to_wire(job.result)
        return {"v": PROTOCOL_VERSION, "ok": True, **payload}
    if op == "cancel":
        cancelled = service.cancel(request.get("job_id", ""))
        job = service.jobs[request["job_id"]]
        return {
            "v": PROTOCOL_VERSION,
            "ok": True,
            "cancelled": cancelled,
            **job.describe(),
        }
    if op == "metrics":
        return {
            "v": PROTOCOL_VERSION,
            "ok": True,
            "prometheus": metrics_to_prometheus(service.telemetry),
        }
    if op == "ping":
        return {"v": PROTOCOL_VERSION, "ok": True, "pong": True}
    raise ServiceError(
        f"unknown op {op!r}: one of submit, status, wait, cancel, "
        "metrics, ping"
    )


async def _handle_connection(
    service: SweepService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one client connection: one JSON line in, one line out."""
    try:
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                writer.write(
                    json.dumps(
                        _error_payload(
                            ServiceError("request line too long")
                        )
                    ).encode() + b"\n"
                )
                break
            if not line:
                break
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ServiceError("request must be a JSON object")
                response = await _handle_request(service, request)
            except asyncio.TimeoutError:
                response = _error_payload(
                    ServiceError("wait timed out; job still in flight")
                )
            except (ServiceError, ValueError) as exc:
                response = _error_payload(exc)
            writer.write(json.dumps(response).encode() + b"\n")
            await writer.drain()
    except (ConnectionResetError, BrokenPipeError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def start_server(
    service: SweepService, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Bind the NDJSON protocol for ``service`` on ``host:port``.

    ``port=0`` binds an ephemeral port; read the real one from
    ``server.sockets[0].getsockname()[1]``.
    """

    async def handler(reader, writer):
        await _handle_connection(service, reader, writer)

    return await asyncio.start_server(
        handler, host, port, limit=STREAM_LIMIT
    )


async def _serve_async(
    host: str, port: int, config: ServiceConfig
) -> None:
    """Run a server until SIGTERM/SIGINT, then drain and exit."""
    import signal
    import sys

    service = SweepService(config)
    await service.start()
    server = await start_server(service, host, port)
    bound = server.sockets[0].getsockname()
    print(
        f"repro-knl serve: listening on {bound[0]}:{bound[1]}",
        file=sys.stderr,
        flush=True,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        # atexit does not run on SIGTERM, so without this a killed
        # service leaks every worker's /dev/shm ring; the drain below
        # is the signal-safe teardown path.
        loop.add_signal_handler(sig, stop.set)
    await stop.wait()
    print("repro-knl serve: draining", file=sys.stderr, flush=True)
    await service.drain()
    server.close()
    await server.wait_closed()


def run_server(
    host: str = "127.0.0.1",
    port: int = 0,
    config: ServiceConfig | None = None,
) -> int:
    """Blocking entry point behind ``repro-knl serve``."""
    asyncio.run(_serve_async(host, port, config or ServiceConfig()))
    return 0
