"""Figure 6: speedups over GNU parallel sort in DDR (GNU-flat).

Fig. 6(a) covers randomized inputs, Fig. 6(b) reverse-sorted inputs.
"""

from __future__ import annotations

from typing import Any

from repro.algorithms.costs import SortCostModel
from repro.experiments.paperdata import TABLE1_SECONDS
from repro.experiments.runner import (
    VARIANTS,
    ExperimentResult,
    SeriesSpec,
    sort_variant_seconds,
    sweep_map,
)


def run_figure6(
    cost: SortCostModel | None = None,
    sizes: tuple[int, ...] = (2_000_000_000, 4_000_000_000, 6_000_000_000),
    orders: tuple[str, ...] = ("random", "reverse"),
    jobs: int = 1,
    pool: str | None = None,
    store: Any | None = None,
) -> ExperimentResult:
    """Speedup of each variant over GNU-flat, per size and order."""
    cells = [
        (variant, n, order, cost)
        for order in orders
        for n in sizes
        for variant in VARIANTS
    ]
    times = dict(
        zip(
            cells,
            sweep_map(
                sort_variant_seconds, cells,
                jobs=jobs, pool=pool, store=store,
            ),
        )
    )
    rows = []
    for order in orders:
        for n in sizes:
            base = times[("GNU-flat", n, order, cost)]
            paper_base = TABLE1_SECONDS.get((n, order, "GNU-flat"))
            for variant in VARIANTS:
                sim = times[(variant, n, order, cost)]
                paper = TABLE1_SECONDS.get((n, order, variant))
                rows.append(
                    {
                        "panel": "6a" if order == "random" else "6b",
                        "elements": n,
                        "order": order,
                        "algorithm": variant,
                        "speedup": base / sim,
                        "paper_speedup": (
                            paper_base / paper if paper and paper_base else None
                        ),
                    }
                )
    return ExperimentResult(
        experiment="figure6",
        title="Figure 6: speedup over GNU-flat",
        columns=[
            "panel",
            "elements",
            "order",
            "algorithm",
            "speedup",
            "paper_speedup",
        ],
        rows=rows,
        notes=[
            "paper headline: 1.6-1.9x for the best MLM variant over GNU-flat"
        ],
    )


run_figure6.series_spec = SeriesSpec("algorithm", ("speedup",))
run_figure6.supports_jobs = True
run_figure6.supports_store = True
run_figure6.supports_replay = True
