"""Corroboration of Bender et al.'s co-design predictions.

The paper's first contribution is corroborating, on real hardware,
the simulation results of Bender et al. [4]: a chunking sort should
gain roughly 30 % over the unchunked baseline and cut DDR traffic by
about 2.5x. We run the basic buffered chunked sort against GNU-flat
on the simulated node and report both ratios, plus the Snir-style
bandwidth-boundedness check that underpins the whole premise.

Backs the Bender-corroboration rows of the Section 5 evaluation.
"""

from __future__ import annotations

from repro.algorithms.costs import SortCostModel
from repro.algorithms.mlm_sort import basic_chunked_sort_plan
from repro.algorithms.parallel_sort import gnu_sort_plan
from repro.core.modes import UsageMode
from repro.experiments.paperdata import (
    BENDER_PREDICTED_DDR_TRAFFIC_REDUCTION,
    BENDER_PREDICTED_SPEEDUP,
)
from repro.experiments.runner import ExperimentResult
from repro.model.roofline import sort_is_bandwidth_bound
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode
from repro.units import GB


def run_bender(
    n: int = 2_000_000_000,
    chunk_elements: int = 600_000_000,
    cost: SortCostModel | None = None,
) -> ExperimentResult:
    """Basic chunked sort vs unchunked GNU-flat: speedup and traffic."""
    node = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))
    r_gnu = node.run(gnu_sort_plan(node, n, "random", UsageMode.DDR, cost=cost))
    r_basic = node.run(basic_chunked_sort_plan(node, n, chunk_elements, cost=cost))
    speedup = r_gnu.elapsed / r_basic.elapsed
    traffic_ratio = r_gnu.traffic["ddr"] / r_basic.traffic["ddr"]
    bandwidth_bound = sort_is_bandwidth_bound(
        n=n,
        element_size=8,
        compare_ops_per_element_pass=8.0,
        passes=30.0,
        peak_ops=68 * 1.4e9 * 2,
        bandwidth=90 * GB,
    )
    rows = [
        {
            "metric": "chunking speedup over GNU-flat",
            "simulated": speedup,
            "bender_prediction": BENDER_PREDICTED_SPEEDUP,
        },
        {
            "metric": "DDR traffic reduction",
            "simulated": traffic_ratio,
            "bender_prediction": BENDER_PREDICTED_DDR_TRAFFIC_REDUCTION,
        },
        {
            "metric": "sort is memory-bandwidth bound (Snir test)",
            "simulated": float(bandwidth_bound),
            "bender_prediction": 1.0,
        },
    ]
    return ExperimentResult(
        experiment="bender",
        title="Corroboration of Bender et al. (chunked vs unchunked sort)",
        columns=["metric", "simulated", "bender_prediction"],
        rows=rows,
        notes=[
            "traffic reduction exceeds Bender's 2.5x because the baseline's "
            "effective-level calibration routes all level traffic to DDR "
            "(the simulator has no L2 absorbing deep recursion levels)",
            f"GNU-flat: {r_gnu.elapsed:.2f}s / "
            f"{r_gnu.traffic['ddr'] / 1e9:.0f} GB DDR; basic chunked: "
            f"{r_basic.elapsed:.2f}s / "
            f"{r_basic.traffic['ddr'] / 1e9:.0f} GB DDR",
        ],
    )
