"""Plain-text rendering of experiment results.

ASCII tables for the paper's tables, simple series charts for the
figures, and CSV export for downstream plotting.

Renders the paper's Tables 1-3 and Figures 6-8 as plain text.
"""

from __future__ import annotations

import csv
import io
from typing import Any

from repro.errors import ConfigError
from repro.experiments.runner import ExperimentResult


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)


def render_table(result: ExperimentResult) -> str:
    """Render a result as a fixed-width ASCII table."""
    cols = result.columns
    rows = [[_fmt(r.get(c, "")) for c in cols] for r in result.rows]
    widths = [
        max(len(c), *(len(row[i]) for row in rows)) if rows else len(c)
        for i, c in enumerate(cols)
    ]
    sep = "-+-".join("-" * w for w in widths)
    out = [result.title, ""]
    out.append(" | ".join(c.ljust(w) for c, w in zip(cols, widths)))
    out.append(sep)
    for row in rows:
        out.append(" | ".join(v.rjust(w) for v, w in zip(row, widths)))
    for note in result.notes:
        out.append(f"note: {note}")
    return "\n".join(out)


def render_series(
    result: ExperimentResult,
    x: str,
    ys: list[str],
    width: int = 48,
) -> str:
    """Render columns as horizontal bar series (one block per y)."""
    for c in [x, *ys]:
        if c not in result.columns:
            raise ConfigError(f"unknown column {c!r}")
    values = [
        v
        for yc in ys
        for v in result.column(yc)
        if isinstance(v, (int, float))
    ]
    if not values:
        raise ConfigError("no numeric values to chart")
    vmax = max(values) or 1.0
    out = [result.title, ""]
    for yc in ys:
        out.append(f"[{yc}]")
        for row in result.rows:
            v = row.get(yc)
            if not isinstance(v, (int, float)):
                continue
            bar = "#" * max(1, int(round(v / vmax * width)))
            out.append(f"  {str(row[x]).rjust(14)} | {bar} {_fmt(v)}")
        out.append("")
    for note in result.notes:
        out.append(f"note: {note}")
    return "\n".join(out)


def to_csv(result: ExperimentResult) -> str:
    """Serialize the rows to CSV text."""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=result.columns)
    writer.writeheader()
    for row in result.rows:
        writer.writerow({c: row.get(c, "") for c in result.columns})
    return buf.getvalue()
