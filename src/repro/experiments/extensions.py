"""Extension experiments beyond the paper's published artifacts.

These implement the paper's stated future work and the ablations
DESIGN.md calls out:

* ``nvm``        — three-level memory (NVM/DDR/MCDRAM) with double
  chunking (conclusion's future work);
* ``designspace``— model-driven hardware design-point exploration
  (conclusion's future work);
* ``hybrid``     — hybrid-mode cache-fraction sweep (Section 4.2
  reports "near identical to flat"; we verify across fractions);
* ``ablation``   — switch off individual cost-model mechanisms and
  observe which paper phenomena disappear;
* ``oblivious``  — cache-oblivious mergesort vs the cache-aware MLM
  variants (Section 2.1's conjecture);
* ``energy``     — energy and energy-delay comparison of the Table 1
  variants (the introduction's energy motivation);
* ``faults``     — graceful degradation under injected MCDRAM faults:
  chunked MLM-sort through the resilient pipeline vs the monolithic
  GNU-cache baseline.
"""

from __future__ import annotations

import warnings

from repro.algorithms.costs import SortCostModel
from repro.algorithms.mlm_sort import MLMSortConfig, mlm_sort_plan
from repro.algorithms.oblivious import oblivious_sort_plan
from repro.core.kernel import StreamKernel
from repro.core.modes import UsageMode
from repro.core.multilevel import ThreeLevelConfig, ThreeLevelPipeline
from repro.errors import ConfigError
from repro.experiments.runner import (
    ExperimentResult,
    SeriesSpec,
    VARIANTS,
    sort_variant_run,
    sweep_map,
)
from repro.model.designspace import (
    crossover_passes,
    sweep_bandwidth_ratio,
    sweep_far_bandwidth,
)
from repro.simknl.energy import EnergyModel
from repro.simknl.engine import RunResult
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode
from repro.units import GiB


def run_nvm(
    data_gib: float = 100.0, passes: float = 8.0
) -> ExperimentResult:
    """Three-level chunking strategies over NVM-resident data."""
    node = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))
    cfg = ThreeLevelConfig(data_bytes=int(data_gib * GiB))
    pipe = ThreeLevelPipeline(node, StreamKernel(passes=passes), cfg)
    rows = []
    for strategy, res in pipe.compare().items():
        rows.append(
            {
                "strategy": strategy,
                "seconds": res.elapsed,
                "nvm_gb": res.traffic.get("nvm", 0.0) / 1e9,
                "ddr_gb": res.traffic.get("ddr", 0.0) / 1e9,
                "mcdram_gb": res.traffic.get("mcdram", 0.0) / 1e9,
            }
        )
    return ExperimentResult(
        experiment="nvm",
        title=f"Extension: three-level memory, {data_gib:g} GiB in NVM",
        columns=["strategy", "seconds", "nvm_gb", "ddr_gb", "mcdram_gb"],
        rows=rows,
        notes=[
            "paper future work: 'there may be double levels of chunking to "
            "consider' for NVM-class capacity levels",
            "for streaming kernels double-level chunking matches "
            "single-level (the DDR hop adds traffic but hides behind NVM); "
            "its value is enabling outer-chunk-sized working sets",
        ],
    )


def run_designspace(passes: float = 4.0) -> ExperimentResult:
    """Model-driven sweep of hypothetical device bandwidths."""
    rows = []
    for pt in sweep_bandwidth_ratio(passes=passes):
        rows.append(
            {
                "sweep": "mcdram/ddr ratio",
                "x": round(pt.bandwidth_ratio, 2),
                "best_p_in": pt.best_p_in,
                "best_time_s": pt.best_time,
                "bound": "copy" if pt.copy_bound else "compute",
            }
        )
    for pt in sweep_far_bandwidth(passes=passes):
        rows.append(
            {
                "sweep": "ddr GB/s",
                "x": round(pt.ddr_max / 1e9, 1),
                "best_p_in": pt.best_p_in,
                "best_time_s": pt.best_time,
                "bound": "copy" if pt.copy_bound else "compute",
            }
        )
    xover = crossover_passes()
    return ExperimentResult(
        experiment="designspace",
        title="Extension: hardware design-space exploration (Eqs. 1-5)",
        columns=["sweep", "x", "best_p_in", "best_time_s", "bound"],
        rows=rows,
        notes=[
            f"copy->compute bound crossover at ~{xover:.1f} passes for the "
            "Table 2 machine",
            "paper future work: 'explore alternative configurations ... "
            "suggesting more optimal design points'",
        ],
    )


def run_hybrid(
    n: int = 2_000_000_000,
    fractions: tuple[float, ...] = (0.25, 0.5, 0.75),
    megachunk: int = 500_000_000,
) -> ExperimentResult:
    """MLM-sort across hybrid cache fractions vs pure flat."""
    flat_node = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))
    t_flat = flat_node.run(
        mlm_sort_plan(flat_node, MLMSortConfig(n, megachunk, UsageMode.FLAT))
    ).elapsed
    rows = [
        {
            "config": "flat",
            "cache_fraction": 0.0,
            "seconds": t_flat,
            "vs_flat": 1.0,
        }
    ]
    for frac in fractions:
        node = KNLNode(
            KNLNodeConfig(mode=MemoryMode.HYBRID, hybrid_cache_fraction=frac)
        )
        t = node.run(
            mlm_sort_plan(node, MLMSortConfig(n, megachunk, UsageMode.HYBRID))
        ).elapsed
        rows.append(
            {
                "config": f"hybrid-{int(frac * 100)}",
                "cache_fraction": frac,
                "seconds": t,
                "vs_flat": t / t_flat,
            }
        )
    return ExperimentResult(
        experiment="hybrid",
        title="Extension: hybrid cache-fraction sweep (MLM-sort, 2B random)",
        columns=["config", "cache_fraction", "seconds", "vs_flat"],
        rows=rows,
        notes=[
            "paper Section 4.2: 'hybrid mode shows near identical "
            "performance to flat, given a chunk size' — verified across "
            "fractions at a chunk that fits every split",
        ],
    )


def run_ablation(n: int = 2_000_000_000) -> ExperimentResult:
    """Disable individual cost mechanisms and watch phenomena vanish."""
    base = SortCostModel()
    scenarios = {
        "full model": base,
        "no chunk overhead": base.replace(chunk_overhead_s=0.0),
        "no thrash penalty": base.replace(thrash_rate_factor=1.0),
        "no gnu overhead": base.replace(
            gnu_level_overhead=base.level_overhead
        ),
        "no reverse shortcut": base.replace(
            reverse_factor_mlm=1.0, reverse_factor_gnu=1.0
        ),
    }
    rows = []
    for label, cost in scenarios.items():
        gnu = sort_variant_run("GNU-flat", n, "random", cost).elapsed
        sort_t = sort_variant_run("MLM-sort", n, "random", cost).elapsed
        imp = sort_variant_run("MLM-implicit", n, "random", cost).elapsed
        rev = sort_variant_run("MLM-implicit", n, "reverse", cost).elapsed
        rows.append(
            {
                "scenario": label,
                "gnu_flat_s": gnu,
                "mlm_sort_s": sort_t,
                "mlm_implicit_s": imp,
                "implicit_reverse_s": rev,
                "headline_speedup": gnu / imp,
            }
        )
    return ExperimentResult(
        experiment="ablation",
        title="Extension: cost-model ablations (2B elements)",
        columns=[
            "scenario",
            "gnu_flat_s",
            "mlm_sort_s",
            "mlm_implicit_s",
            "implicit_reverse_s",
            "headline_speedup",
        ],
        rows=rows,
        notes=[
            "'no gnu overhead' collapses the MLM-ddr vs GNU-flat gap; "
            "'no reverse shortcut' removes the reverse-order advantage",
        ],
    )


def run_oblivious(n: int = 2_000_000_000) -> ExperimentResult:
    """Cache-oblivious sorts vs cache-aware MLM variants."""
    from repro.algorithms.funnelsort import funnelsort_plan

    rows = []
    for order in ("random", "reverse"):
        cache_node = KNLNode(KNLNodeConfig(mode=MemoryMode.CACHE))
        t_obl = cache_node.run(
            oblivious_sort_plan(cache_node, n, order, UsageMode.CACHE)
        ).elapsed
        t_fun = cache_node.run(
            funnelsort_plan(cache_node, n, order, UsageMode.CACHE)
        ).elapsed
        t_imp = sort_variant_run("MLM-implicit", n, order).elapsed
        t_gnu = sort_variant_run("GNU-cache", n, order).elapsed
        rows.append(
            {
                "order": order,
                "funnelsort_s": t_fun,
                "oblivious_s": t_obl,
                "mlm_implicit_s": t_imp,
                "gnu_cache_s": t_gnu,
                "oblivious_vs_implicit": t_obl / t_imp,
            }
        )
    return ExperimentResult(
        experiment="oblivious",
        title="Extension: cache-oblivious sorts in hardware cache mode",
        columns=[
            "order",
            "funnelsort_s",
            "oblivious_s",
            "mlm_implicit_s",
            "gnu_cache_s",
            "oblivious_vs_implicit",
        ],
        rows=rows,
        notes=[
            "Section 2.1 conjecture: oblivious variants 'might eventually "
            "perform as well without requiring tuning' — ours lands between "
            "the tuned MLM variants and the GNU baseline",
        ],
    )


def run_pollution(
    victim_gib: float = 6.0,
    victim_passes: int = 16,
    copy_traffic_gib: float = 30.0,
) -> ExperimentResult:
    """Fig. 4's cache-pollution effect, quantified.

    A legacy kernel ("victim") re-reads a cache-resident working set
    ``victim_passes`` times. In hybrid mode a chunked kernel's copy
    streams flow through the same cache portion, evicting the victim's
    lines between passes. We compare the victim's time with a
    dedicated full cache, with a polluted hybrid cache half, and with
    no cache at all.
    """
    from repro.simknl.cache_analytic import StreamingCacheModel
    from repro.simknl.engine import Phase, Plan
    from repro.simknl.flows import Flow
    from repro.units import GiB

    ws = victim_gib * GiB
    pollution_per_pass = copy_traffic_gib * GiB / victim_passes

    def victim_time(cache_capacity: float | None, polluted: bool) -> float:
        node = KNLNode(
            KNLNodeConfig(
                mode=MemoryMode.CACHE
                if cache_capacity
                else MemoryMode.FLAT
            )
        )
        if cache_capacity is None:
            res = {"ddr": 1.0}
        else:
            model = StreamingCacheModel(cache_capacity)
            traffic = (
                model.stream_with_pollution(
                    ws,
                    passes=victim_passes,
                    pollution_bytes_per_pass=pollution_per_pass,
                )
                if polluted
                else model.stream(ws, passes=victim_passes)
            )
            logical = ws * victim_passes
            res = {
                "mcdram": traffic.mcdram_bytes / logical,
                "ddr": traffic.ddr_bytes / logical,
            }
        flow = Flow("victim", 256, 6.78e9, res, ws * victim_passes)
        return node.run(Plan("p", [Phase("victim", [flow])])).elapsed

    full = victim_time(16 * GiB, polluted=False)
    hybrid_clean = victim_time(8 * GiB, polluted=False)
    hybrid_polluted = victim_time(8 * GiB, polluted=True)
    ddr_only = victim_time(None, polluted=False)
    rows = [
        {"scenario": "full cache, no copies", "victim_s": full},
        {"scenario": "hybrid half-cache, no copies", "victim_s": hybrid_clean},
        {"scenario": "hybrid half-cache, copy pollution", "victim_s": hybrid_polluted},
        {"scenario": "no cache (DDR)", "victim_s": ddr_only},
    ]
    return ExperimentResult(
        experiment="pollution",
        title="Extension: hybrid-mode cache pollution (Fig. 4 effect)",
        columns=["scenario", "victim_s"],
        rows=rows,
        notes=[
            "paper Section 3.1: 'MCDRAM cache is often polluted by the "
            "copy-in and copy-out data, making it less effective'",
            f"victim: {victim_gib:g} GiB x {victim_passes} passes; "
            f"pollution: {copy_traffic_gib:g} GiB of copy traffic",
        ],
    )


def run_external(n_fits: int = 2_000_000_000) -> ExperimentResult:
    """Out-of-core sort vs in-memory MLM-sort (Section 2.2 contrast).

    When the data fits DDR the in-memory sort wins by a wide margin;
    when it exceeds DDR (the 16 B-element row: 128 GB > 96 GiB) the
    external sort is the only option, and its time is set by disk
    round-trips.
    """
    from repro.algorithms.external_sort import run_external_sort_plan
    from repro.units import GiB

    node = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))
    t_mlm = sort_variant_run("MLM-sort", n_fits, "random").elapsed
    t_ext_small = run_external_sort_plan(
        node, n_fits, memory_budget_bytes=14 * GiB
    ).elapsed
    n_big = 16_000_000_000  # 128 GB > the node's 96 GiB DDR
    t_ext_big = run_external_sort_plan(
        node, n_big, memory_budget_bytes=64 * GiB
    ).elapsed
    rows = [
        {
            "config": f"{n_fits // 10**9}B in-memory MLM-sort",
            "seconds": t_mlm,
            "feasible_in_memory": True,
        },
        {
            "config": f"{n_fits // 10**9}B external sort",
            "seconds": t_ext_small,
            "feasible_in_memory": True,
        },
        {
            "config": f"{n_big // 10**9}B external sort",
            "seconds": t_ext_big,
            "feasible_in_memory": False,
        },
    ]
    return ExperimentResult(
        experiment="external",
        title="Extension: out-of-core sorting vs in-memory MLM-sort",
        columns=["config", "seconds", "feasible_in_memory"],
        rows=rows,
        notes=[
            "Section 2.2: out-of-core algorithms handle data beyond DDR "
            "at the price of disk round-trips; in-memory MLM-sort wins "
            "whenever the data fits",
        ],
    )


def run_adaptive(
    data_gib: float = 32.0,
    passes: int = 8,
    shrink_fraction: float = 0.5,
) -> ExperimentResult:
    """Cache-adaptive behaviour under fluctuating cache capacity.

    Section 2.1 cites cache-adaptive algorithms as "useful in a future
    in which high-performance computing jobs must deal with
    fluctuating resource allocations". Scenario: a co-scheduled job
    claims half the MCDRAM cache for the middle third of the run.
    Three tunings of a chunked streaming kernel compete:

    * ``aware-full``  — chunks sized to the *full* cache (optimal when
      stable, thrashes when the cache shrinks under it);
    * ``aware-half``  — chunks conservatively sized to the shrunken
      cache (never thrashes, more chunks and cold fills always);
    * ``adaptive-dc`` — a divide-and-conquer kernel whose active sets
      halve per level: only the top level(s) feel the shrink, the
      cache-oblivious property the paper's related work describes.
    """
    from repro.simknl.cache_analytic import StreamingCacheModel
    from repro.simknl.engine import Phase, Plan
    from repro.simknl.flows import Flow
    from repro.units import GiB
    import math

    node = KNLNode(KNLNodeConfig(mode=MemoryMode.CACHE))
    full_c = node.cache_model.usable_capacity
    small_c = full_c * shrink_fraction
    data = data_gib * GiB

    def phase_caches(num_chunks: int, fluctuating: bool) -> list[float]:
        if not fluctuating:
            return [full_c] * num_chunks
        lo, hi = num_chunks // 3, 2 * num_chunks // 3
        return [
            small_c if lo <= i < hi else full_c for i in range(num_chunks)
        ]

    chunk_overhead = 0.30  # the Fig. 7 per-chunk fixed cost

    def streaming_time(chunk_bytes: float, fluctuating: bool) -> float:
        num = max(1, int(round(data / chunk_bytes)))
        plan = Plan("aware")
        for i, cap in enumerate(phase_caches(num, fluctuating)):
            model = StreamingCacheModel(cap)
            traffic = model.stream(chunk_bytes, passes=2 * passes, write_fraction=0.5)
            logical = chunk_bytes * 2 * passes
            res = {
                "mcdram": traffic.mcdram_bytes / logical,
                "ddr": traffic.ddr_bytes / logical,
            }
            plan.add(
                Phase(
                    f"chunk{i}",
                    [
                        Flow("compute", 256, 6.78e9, res, logical),
                    ],
                )
            )
            plan.add(
                Phase(
                    f"chunk{i}/setup",
                    [Flow("setup", 1, 1.0, {}, chunk_overhead)],
                )
            )
        return node.run(plan).elapsed

    def dc_time(fluctuating: bool) -> float:
        # One d&c kernel over the whole data: split its level work
        # between the full- and shrunk-cache windows.
        levels = 1.15 * (12.0 + 0.35 * math.log2(data / 256 / 8))
        plan = Plan("adaptive-dc")
        for window, cap in (
            (1 / 3, full_c),
            (1 / 3, small_c if fluctuating else full_c),
            (1 / 3, full_c),
        ):
            uncached = max(0.0, math.log2(data / cap))
            window_levels = levels * window
            thrash = min(window_levels, uncached)
            cached = window_levels - thrash
            if thrash > 0:
                model = StreamingCacheModel(cap)
                t = model.stream(data, passes=1, write_fraction=0.5)
                res = {
                    "mcdram": t.mcdram_bytes / data,
                    "ddr": t.ddr_bytes / data,
                }
                plan.add(
                    Phase(
                        f"thrash@{cap:.0f}",
                        [Flow("dc", 256, 0.21e9 * 0.7, res, data * thrash)],
                    )
                )
            plan.add(
                Phase(
                    f"cached@{cap:.0f}",
                    [Flow("dc", 256, 0.21e9, {"mcdram": 2.0 / 0.85}, data * cached)],
                )
            )
        return node.run(plan).elapsed

    rows = []
    for label, fn in (
        ("aware-full", lambda f: streaming_time(full_c, f)),
        ("aware-half", lambda f: streaming_time(small_c, f)),
        ("adaptive-dc", dc_time),
    ):
        stable = fn(False)
        fluct = fn(True)
        rows.append(
            {
                "strategy": label,
                "stable_s": stable,
                "fluctuating_s": fluct,
                "degradation": fluct / stable,
            }
        )
    return ExperimentResult(
        experiment="adaptive",
        title="Extension: fluctuating cache capacity (cache-adaptivity)",
        columns=["strategy", "stable_s", "fluctuating_s", "degradation"],
        rows=rows,
        notes=[
            "Section 2.1: cache-adaptive algorithms 'tolerate changes to "
            "system resources during the run'; the d&c kernel's shrinking "
            "active sets give it that tolerance for free",
        ],
    )


def _fault_cell(
    n: int, megachunk: int, seed: int, intensity: float
) -> tuple[float, float, int, bool]:
    """One fault-intensity cell: (resilient_s, monolithic_s,
    recovery_events, degraded_to_ddr)."""
    from repro.algorithms.mlm_sort import (
        MLMSortConfig,
        resilient_mlm_sort_plan_run,
    )
    from repro.algorithms.parallel_sort import gnu_sort_plan
    from repro.errors import DegradedModeWarning
    from repro.faults import FaultPlan

    cfg = MLMSortConfig(
        n=n,
        megachunk_elements=megachunk,
        mode=UsageMode.FLAT,
        threads=256,
    )
    flat_node = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))
    plan = FaultPlan.degraded_mcdram(seed=seed, intensity=intensity)
    inj = plan.injector()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedModeWarning)
        rep = resilient_mlm_sort_plan_run(flat_node, cfg, injector=inj)

    cache_node = KNLNode(KNLNodeConfig(mode=MemoryMode.CACHE))
    gnu_plan = gnu_sort_plan(cache_node, n, "random", UsageMode.CACHE)
    gnu = cache_node.run(
        gnu_plan,
        injector=FaultPlan.degraded_mcdram(
            seed=seed, intensity=intensity
        ).injector(),
    )
    return (
        rep.elapsed,
        gnu.elapsed,
        inj.counters.recovery_events,
        rep.degraded_mode,
    )


def run_faults(
    n: int = 2_000_000_000,
    megachunk: int = 250_000_000,
    seed: int = 42,
    intensities: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 0.9),
    jobs: int = 1,
    pool: str | None = None,
) -> ExperimentResult:
    """Degradation report: resilient chunked MLM-sort vs monolithic GNU.

    At each fault intensity the same :class:`~repro.faults.FaultPlan`
    (seeded, so replays are identical) degrades MCDRAM bandwidth,
    fails MCDRAM allocations, and perturbs spill I/O. The chunked
    MLM-sort runs through the resilient pipeline — faulted buffers
    fall back to DDR, and when degraded MCDRAM drops below DDR
    bandwidth the remaining chunks downgrade to the MLM-ddr path — so
    its time is capped near the DDR-only figure. The monolithic
    GNU-cache baseline has no such escape: every byte keeps streaming
    through the degraded cache, and its time falls off a cliff.
    """
    if not intensities:
        raise ConfigError("intensities must be non-empty")
    cells = [
        (n, megachunk, seed, intensity) for intensity in intensities
    ]
    results = sweep_map(_fault_cell, cells, jobs=jobs, pool=pool)
    # Normalize slowdowns against the lowest intensity actually run —
    # not a hard-coded 0.0, which silently degenerated every slowdown
    # column to 1.0 whenever the caller's sweep did not include it.
    base_index = min(
        range(len(intensities)), key=lambda i: intensities[i]
    )
    base_resilient = results[base_index][0]
    base_gnu = results[base_index][1]
    rows = []
    for intensity, (res_s, gnu_s, recoveries, degraded) in zip(
        intensities, results
    ):
        rows.append(
            {
                "intensity": intensity,
                "resilient_s": res_s,
                "monolithic_s": gnu_s,
                "resilient_slowdown": res_s / base_resilient,
                "monolithic_slowdown": gnu_s / base_gnu,
                "recovery_events": recoveries,
                "degraded_to_ddr": degraded,
            }
        )
    baseline_notes = []
    if intensities[base_index] != 0.0:
        baseline_notes.append(
            "slowdowns are normalized against intensity="
            f"{intensities[base_index]}, the lowest intensity run "
            "(0.0 was not in the sweep)"
        )
    return ExperimentResult(
        experiment="faults",
        title="Extension: graceful degradation under injected MCDRAM faults",
        columns=[
            "intensity",
            "resilient_s",
            "monolithic_s",
            "resilient_slowdown",
            "monolithic_slowdown",
            "recovery_events",
            "degraded_to_ddr",
        ],
        rows=rows,
        notes=[
            "fault plan per intensity i: MCDRAM bandwidth -i from phase 0, "
            "MCDRAM allocation-failure probability i, spill-I/O fault "
            f"probability 0.2*i (seed={seed}; replays are identical)",
            "the resilient chunked sort degrades gracefully — faulted "
            "buffers fall back to DDR and, once degraded MCDRAM is slower "
            "than DDR, remaining chunks downgrade to the MLM-ddr path — "
            "while the monolithic GNU-cache baseline keeps streaming "
            "through the degraded cache and falls off a cliff",
            *baseline_notes,
        ],
    )


def _energy_cell(variant: str, n: int) -> tuple[float, dict]:
    """One variant's raw run measurements: ``(elapsed, traffic)``.

    The energy conversion happens in the parent via
    :meth:`~repro.simknl.energy.EnergyModel.report_many`, vectorized
    across all variants at once.
    """
    res = sort_variant_run(variant, n, "random")
    return res.elapsed, dict(res.traffic)


def run_energy(
    n: int = 2_000_000_000, jobs: int = 1, pool: str | None = None
) -> ExperimentResult:
    """Energy and energy-delay product across the Table 1 variants.

    Idle power is charged only for devices present in each run (no NVM
    device is attached here, so no NVM idle power is paid — see
    :class:`~repro.simknl.energy.EnergyModel`).
    """
    raw = sweep_map(
        _energy_cell,
        [(variant, n) for variant in VARIANTS],
        jobs=jobs,
        pool=pool,
    )
    results = [
        RunResult(elapsed=elapsed, traffic=traffic, phase_times=[])
        for elapsed, traffic in raw
    ]
    reports = EnergyModel().report_many(results)
    rows = [
        {
            "algorithm": variant,
            "seconds": res.elapsed,
            "energy_j": rep.total_joules,
            "edp_js": rep.energy_delay_product,
            "ddr_dynamic_j": rep.dynamic_joules.get("ddr", 0.0),
        }
        for variant, res, rep in zip(VARIANTS, results, reports)
    ]
    return ExperimentResult(
        experiment="energy",
        title="Extension: energy comparison (2B random elements)",
        columns=[
            "algorithm",
            "seconds",
            "energy_j",
            "edp_js",
            "ddr_dynamic_j",
        ],
        rows=rows,
        notes=[
            "MCDRAM traffic costs ~3x less per byte than DDR, so the "
            "chunked variants win on energy as well as time",
            "idle power is charged only for devices present in the run "
            "(these runs attach no NVM device)",
        ],
    )


run_nvm.series_spec = SeriesSpec("strategy", ("seconds",))
run_hybrid.series_spec = SeriesSpec("config", ("seconds",))
run_energy.series_spec = SeriesSpec("algorithm", ("energy_j",))
run_faults.series_spec = SeriesSpec(
    "intensity", ("resilient_s", "monolithic_s")
)
run_energy.supports_jobs = True
run_faults.supports_jobs = True
run_faults.supports_seed = True
