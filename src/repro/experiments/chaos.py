"""Harness-level chaos engineering for the persistent sweep pool.

:mod:`repro.faults` injects faults into the *simulated* KNL stack; this
module points the same deterministic, seedable fault discipline at the
harness itself: the real worker processes, pipes, and shared-memory
rings of :class:`repro.experiments.pool.PersistentPool`. The sweeps the
pool serves are long out-of-core design-space runs where a single hung
or slow worker can stall hours of work, so the pool's hardening —
chunk deadlines, straggler speculation, ring-integrity framing,
respawn backoff, and graceful serial degradation — needs a chaos suite
proving it, and this module is that suite's fault source.

* :class:`HarnessFaultSpec` / :class:`HarnessFaultPlan` — declarative,
  seeded descriptions of what goes wrong, mirroring the
  :class:`~repro.faults.FaultSpec` conventions: schedule-driven
  (``at_dispatch``) or probability-driven (``probability`` per chunk
  dispatch);
* :class:`HarnessFaultInjector` — consulted by the pool once per chunk
  dispatch. Draws are *stateless*: each is seeded from
  ``(plan seed, spec index, dispatch index)``, so a given dispatch
  ordinal always receives the same verdict no matter how many
  speculative re-dispatches happened in between — the determinism the
  replay tests rely on;
* :func:`run_chaos` — the ``repro-knl chaos`` driver: sweeps harness
  fault intensity and reports completion, wall-clock slowdown, and
  degradation, mirroring the ``faults`` driver's intensity sweep.

Fault classes and who enacts them:

==============  ==========================================================
``WORKER_KILL`` worker enacts: hard ``os._exit`` on receipt
``WORKER_HANG`` worker enacts: stops consuming messages, stays alive
``WORKER_SLOW`` worker enacts: per-cell sleep of ``severity`` seconds
``RING_CORRUPT`` worker enacts: scribbles on the shm payload after
                 computing its checksum, so the parent's framing check
                 fails and the chunk is refetched over pickle
``PIPE_DROP``   parent enacts: the chunk message is silently not sent,
                 as if lost in the pipe; only the deadline recovers it
==============  ==========================================================

Because every fault is injected into a *real* process boundary, the
recovery the suite exercises is the production path, not a simulation
of it. Extension beyond the paper (ROADMAP adaptive-pool-scheduling
item), stress-testing the harness that reproduces Section 4's sweeps.
"""

from __future__ import annotations

import enum
import random
import time
from dataclasses import dataclass, fields, replace

from repro.errors import ConfigError
from repro.experiments.runner import ExperimentResult, SeriesSpec


class HarnessFaultKind(enum.Enum):
    """Categories of injectable harness faults."""

    #: Worker process exits hard on receiving the chunk.
    WORKER_KILL = "worker-kill"
    #: Worker stops consuming messages but stays alive (livelock).
    WORKER_HANG = "worker-hang"
    #: Worker sleeps ``severity`` seconds before each cell.
    WORKER_SLOW = "worker-slow"
    #: Worker scribbles on the shm ring payload after checksumming.
    RING_CORRUPT = "ring-corrupt"
    #: Parent drops the chunk message instead of sending it.
    PIPE_DROP = "pipe-drop"


#: Directive strings the pool's worker loop understands, keyed by kind.
_DIRECTIVES = {
    HarnessFaultKind.WORKER_KILL: "kill",
    HarnessFaultKind.WORKER_HANG: "hang",
    HarnessFaultKind.WORKER_SLOW: "slow",
    HarnessFaultKind.RING_CORRUPT: "corrupt",
    HarnessFaultKind.PIPE_DROP: "drop",
}


@dataclass(frozen=True)
class HarnessFaultSpec:
    """One declarative harness fault source.

    Parameters
    ----------
    kind:
        What kind of fault to inject.
    probability:
        Per-chunk-dispatch firing probability; ``0`` makes the spec
        purely schedule-driven.
    at_dispatch:
        Dispatch ordinal at which the fault fires unconditionally
        (the pool numbers every chunk send, including speculative
        re-sends, with a per-call dispatch index).
    severity:
        Kind-specific magnitude: seconds of per-cell delay for
        :attr:`HarnessFaultKind.WORKER_SLOW`; ignored by the other
        kinds.
    """

    kind: HarnessFaultKind
    probability: float = 0.0
    at_dispatch: int | None = None
    severity: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError("probability must be in [0, 1]")
        if self.severity < 0:
            raise ConfigError("severity must be non-negative")
        if self.at_dispatch is not None and self.at_dispatch < 0:
            raise ConfigError("at_dispatch must be non-negative")
        if self.probability == 0.0 and self.at_dispatch is None:
            raise ConfigError(
                "spec needs a probability or an at_dispatch to ever fire"
            )


@dataclass(frozen=True)
class HarnessFaultEvent:
    """A concrete harness fault produced by the injector."""

    kind: HarnessFaultKind
    dispatch_index: int
    chunk_id: int
    severity: float

    def describe(self) -> str:
        """One-line trace label, e.g. ``chaos: worker-kill @ dispatch 3``."""
        return (
            f"chaos: {self.kind.value} @ dispatch {self.dispatch_index} "
            f"(chunk {self.chunk_id})"
        )


@dataclass
class HarnessFaultCounters:
    """Ledger of harness faults injected into the pool."""

    dispatches: int = 0
    kills: int = 0
    hangs: int = 0
    slowdowns: int = 0
    corruptions: int = 0
    pipe_drops: int = 0

    def as_dict(self) -> dict[str, int]:
        """All counters as a plain dict (for reports/CSV)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def injected(self) -> int:
        """Total faults injected across all kinds."""
        return (
            self.kills + self.hangs + self.slowdowns
            + self.corruptions + self.pipe_drops
        )


_COUNTER_FIELDS = {
    HarnessFaultKind.WORKER_KILL: "kills",
    HarnessFaultKind.WORKER_HANG: "hangs",
    HarnessFaultKind.WORKER_SLOW: "slowdowns",
    HarnessFaultKind.RING_CORRUPT: "corruptions",
    HarnessFaultKind.PIPE_DROP: "pipe_drops",
}


class HarnessFaultPlan:
    """A seeded, declarative collection of harness fault specs.

    Immutable input, like :class:`repro.faults.FaultPlan`: all mutable
    state (counters, events) lives in the
    :class:`HarnessFaultInjector` built from it, so one plan can be
    replayed any number of times with the identical fault schedule.
    """

    def __init__(
        self, seed: int = 0, specs: list[HarnessFaultSpec] | None = None
    ) -> None:
        self.seed = int(seed)
        self.specs: list[HarnessFaultSpec] = list(specs or [])

    def add(self, spec: HarnessFaultSpec) -> "HarnessFaultPlan":
        """Append a spec and return self (chainable)."""
        self.specs.append(spec)
        return self

    def injector(self) -> "HarnessFaultInjector":
        """A fresh injector with zeroed counters."""
        return HarnessFaultInjector(self)

    def scaled(self, factor: float) -> "HarnessFaultPlan":
        """A copy with every probability scaled by ``factor`` (clamped
        to 1); used by intensity sweeps."""
        if factor < 0:
            raise ConfigError("factor must be non-negative")
        return HarnessFaultPlan(
            self.seed,
            [
                replace(s, probability=min(1.0, s.probability * factor))
                for s in self.specs
            ],
        )

    # ---- presets --------------------------------------------------------

    @classmethod
    def chaos_suite(
        cls,
        seed: int = 0,
        intensity: float = 0.5,
        slow_cell_s: float = 0.002,
    ) -> "HarnessFaultPlan":
        """All five fault classes at probabilities scaled by
        ``intensity`` — the ``repro-knl chaos`` driver's scenario.

        Kill and hang probabilities stay moderate even at intensity 1
        so a single chunk is unlikely to burn its whole delivered
        retry budget on injected deaths; slowdown/corruption/drop
        probabilities scale higher because their recovery paths
        (speculation, pickle refetch) are cheap.
        """
        if not 0.0 <= intensity <= 1.0:
            raise ConfigError("intensity must be in [0, 1]")
        plan = cls(seed)
        if intensity > 0:
            plan.add(
                HarnessFaultSpec(
                    HarnessFaultKind.WORKER_KILL,
                    probability=0.20 * intensity,
                )
            )
            plan.add(
                HarnessFaultSpec(
                    HarnessFaultKind.WORKER_HANG,
                    probability=0.10 * intensity,
                )
            )
            plan.add(
                HarnessFaultSpec(
                    HarnessFaultKind.WORKER_SLOW,
                    probability=0.30 * intensity,
                    severity=slow_cell_s,
                )
            )
            plan.add(
                HarnessFaultSpec(
                    HarnessFaultKind.RING_CORRUPT,
                    probability=0.30 * intensity,
                )
            )
            plan.add(
                HarnessFaultSpec(
                    HarnessFaultKind.PIPE_DROP,
                    probability=0.15 * intensity,
                )
            )
        return plan


class HarnessFaultInjector:
    """Runtime harness fault source consulted by the pool per dispatch.

    Unlike :class:`repro.faults.FaultInjector`'s sequential RNG
    streams, every draw here is seeded *statelessly* from
    ``(plan seed, spec index, spec kind, dispatch index)``. Speculative
    re-dispatches insert extra draws at new dispatch ordinals without
    shifting anyone else's, so the schedule over primary dispatches is
    identical across replays regardless of recovery timing.
    """

    def __init__(self, plan: HarnessFaultPlan) -> None:
        self.plan = plan
        self.counters = HarnessFaultCounters()
        self.events: list[HarnessFaultEvent] = []

    def _fires(
        self, index: int, spec: HarnessFaultSpec, dispatch_index: int
    ) -> bool:
        if spec.at_dispatch is not None and spec.at_dispatch == dispatch_index:
            return True
        if spec.probability > 0.0:
            rng = random.Random(
                f"{self.plan.seed}:{index}:{spec.kind.value}:{dispatch_index}"
            )
            return rng.random() < spec.probability
        return False

    def on_dispatch(
        self, dispatch_index: int, chunk_id: int
    ) -> tuple | None:
        """The fault directive for dispatch ``dispatch_index``, if any.

        Returns ``None`` (no fault) or a directive tuple the pool
        forwards to the worker — ``("kill",)``, ``("hang",)``,
        ``("slow", delay_s)``, ``("corrupt",)`` — or enacts itself
        (``("drop",)``). The first firing spec in plan order wins, so
        plans that combine kinds have a deterministic priority.
        """
        self.counters.dispatches += 1
        for i, spec in enumerate(self.plan.specs):
            if not self._fires(i, spec, dispatch_index):
                continue
            setattr(
                self.counters,
                _COUNTER_FIELDS[spec.kind],
                getattr(self.counters, _COUNTER_FIELDS[spec.kind]) + 1,
            )
            self.events.append(
                HarnessFaultEvent(
                    spec.kind, dispatch_index, chunk_id, spec.severity
                )
            )
            directive = _DIRECTIVES[spec.kind]
            if spec.kind is HarnessFaultKind.WORKER_SLOW:
                return (directive, spec.severity)
            return (directive,)
        return None


# ---- the `repro-knl chaos` driver ----------------------------------------


def _chaos_cell(i: int, scale: float) -> float:
    """One deterministic sweep cell of pure float work.

    Cheap enough that the chaos driver's wall time is dominated by the
    harness (dispatch, recovery, deadlines), not the cells — the same
    reasoning as the dispatch benchmarks — while still returning a
    value whose bit-identity across serial and chaotic parallel runs
    is a meaningful check.
    """
    x = float(i) + 1.0
    acc = 0.0
    for _ in range(64):
        x = (x * 1.0000001 + 0.5) % 97.0
        acc += x * scale
    return acc


def _chaos_pool(jobs: int):
    """A dedicated hardened pool with chaos-friendly tight deadlines.

    The driver never uses the process-wide singleton: injected kills
    and hangs must not perturb pools other drivers are sharing. The
    adaptive scheduler is explicitly on — skew-aware chunk sizing,
    work stealing, and worker autoscaling must all hold the
    bit-identity contract *under* fault injection, so the chaos sweep
    runs with every scheduling feature enabled.
    """
    from repro.experiments.pool import PersistentPool

    return PersistentPool(
        jobs,
        min_deadline_s=0.2,
        cold_deadline_s=2.0,
        hang_kill_factor=2.0,
        backoff_base_s=0.02,
        backoff_max_s=0.25,
        adaptive=True,
        autoscale=True,
        steal_min_s=0.05,
    )


def run_chaos(
    seed: int = 42,
    intensities: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75),
    ncells: int = 96,
    jobs: int = 4,
    pool: str | None = None,
) -> ExperimentResult:
    """Harness chaos sweep: pool resilience vs injected fault intensity.

    At each intensity the :meth:`HarnessFaultPlan.chaos_suite` preset
    (seeded, so replays inject the identical schedule) throws worker
    kills, hangs, slowdowns, ring corruption, and pipe drops at a
    dedicated :class:`~repro.experiments.pool.PersistentPool` running a
    fixed sweep. The row reports whether the sweep completed
    bit-identical to serial execution (it must — that is the pool's
    hardening contract), the wall-clock slowdown versus the lowest
    intensity, and how much of the recovery machinery fired.
    """
    if not intensities:
        raise ConfigError("intensities must be non-empty")
    if pool not in (None, "persistent"):
        raise ConfigError(
            "the chaos driver injects faults into the persistent pool; "
            f"pool={pool!r} is not supported"
        )
    cells = [(i, 1.0 + seed * 1e-9) for i in range(ncells)]
    serial = [_chaos_cell(*cell) for cell in cells]
    rows = []
    walls: list[float] = []
    for intensity in intensities:
        injector = HarnessFaultPlan.chaos_suite(
            seed=seed, intensity=intensity
        ).injector()
        worker_pool = _chaos_pool(jobs)
        try:
            t0 = time.perf_counter()
            out = worker_pool.map(_chaos_cell, cells, chaos=injector)
            wall = time.perf_counter() - t0
        finally:
            worker_pool.shutdown()
        walls.append(wall)
        stats = worker_pool.stats
        rows.append(
            {
                "intensity": intensity,
                "completed": out == serial,
                "wall_s": wall,
                "slowdown": 1.0,  # filled once the baseline is known
                "injected": injector.counters.injected,
                "deadline_blown": stats.deadline_expiries,
                "speculative": stats.speculative,
                "ring_corrupt": stats.ring_corrupt,
                "respawns": stats.respawns,
                "steals": stats.steals,
                "workers_scaled": stats.scaled_up + stats.scaled_down,
                "degraded": stats.degraded_calls > 0,
            }
        )
    base_index = min(
        range(len(intensities)), key=lambda i: intensities[i]
    )
    base_wall = walls[base_index]
    for row, wall in zip(rows, walls):
        row["slowdown"] = wall / base_wall if base_wall > 0 else 1.0
    return ExperimentResult(
        experiment="chaos",
        title="Extension: harness chaos suite (persistent sweep pool)",
        columns=[
            "intensity",
            "completed",
            "wall_s",
            "slowdown",
            "injected",
            "deadline_blown",
            "speculative",
            "ring_corrupt",
            "respawns",
            "steals",
            "workers_scaled",
            "degraded",
        ],
        rows=rows,
        notes=[
            "fault plan per intensity i: worker-kill p=0.20i, hang "
            "p=0.10i, per-cell slowdown p=0.30i, ring corruption "
            f"p=0.30i, pipe drop p=0.15i (seed={seed}; the schedule "
            "replays identically)",
            "completed=True means the chaotic parallel sweep returned "
            "results bit-identical to serial execution — kills respawn "
            "with backoff, hangs and drops are recovered by chunk "
            "deadlines + speculation, corrupt ring payloads are "
            "refetched over pickle, and a breaker-opened pool degrades "
            "to in-process serial execution rather than failing",
            "the adaptive scheduler runs fully enabled: skew-aware "
            "chunk sizing, idle-worker stealing (steals column), and "
            "worker autoscaling (workers_scaled column) must all "
            "preserve bit-identity under injected faults",
            "wall_s/slowdown are wall-clock (harness) times, not "
            "simulated seconds; they vary with machine load",
        ],
    )


run_chaos.series_spec = SeriesSpec("intensity", ("wall_s",))
run_chaos.supports_jobs = True
run_chaos.supports_seed = True
