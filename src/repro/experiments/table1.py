"""Table 1: raw sorting performance across algorithms, sizes, orders."""

from __future__ import annotations

from repro.algorithms.costs import SortCostModel
from repro.experiments.paperdata import TABLE1_SECONDS
from repro.experiments.runner import (
    VARIANTS,
    ExperimentResult,
    sort_variant_seconds,
)


def run_table1(
    cost: SortCostModel | None = None,
    sizes: tuple[int, ...] = (2_000_000_000, 4_000_000_000, 6_000_000_000),
    orders: tuple[str, ...] = ("random", "reverse"),
) -> ExperimentResult:
    """Reproduce Table 1 on the simulated node."""
    rows = []
    for order in orders:
        for n in sizes:
            for variant in VARIANTS:
                sim = sort_variant_seconds(variant, n, order, cost)
                paper = TABLE1_SECONDS.get((n, order, variant))
                row = {
                    "elements": n,
                    "order": order,
                    "algorithm": variant,
                    "simulated_s": sim,
                    "paper_s": paper,
                }
                if paper:
                    row["deviation"] = (sim - paper) / paper
                rows.append(row)
    return ExperimentResult(
        experiment="table1",
        title="Table 1: raw sorting performance (simulated KNL vs paper)",
        columns=[
            "elements",
            "order",
            "algorithm",
            "simulated_s",
            "paper_s",
            "deviation",
        ],
        rows=rows,
        notes=[
            "paper's 6B-random MLM-ddr cell (18.74 s) duplicates the 4B row "
            "and is likely a typo; ~28 s by linear scaling",
            "simulated times come from the bandwidth-contention model "
            "calibrated once against GNU-flat at 2B random",
        ],
    )
