"""Table 1: raw sorting performance across algorithms, sizes, orders."""

from __future__ import annotations

from typing import Any

from repro.algorithms.costs import SortCostModel
from repro.experiments.paperdata import TABLE1_SECONDS
from repro.experiments.runner import (
    VARIANTS,
    ExperimentResult,
    sort_variant_seconds,
    sweep_map,
)


def run_table1(
    cost: SortCostModel | None = None,
    sizes: tuple[int, ...] = (2_000_000_000, 4_000_000_000, 6_000_000_000),
    orders: tuple[str, ...] = ("random", "reverse"),
    jobs: int = 1,
    pool: str | None = None,
    store: Any | None = None,
) -> ExperimentResult:
    """Reproduce Table 1 on the simulated node."""
    cells = [
        (variant, n, order, cost)
        for order in orders
        for n in sizes
        for variant in VARIANTS
    ]
    times = sweep_map(
        sort_variant_seconds, cells, jobs=jobs, pool=pool, store=store
    )
    rows = []
    for (variant, n, order, _), sim in zip(cells, times):
        paper = TABLE1_SECONDS.get((n, order, variant))
        row = {
            "elements": n,
            "order": order,
            "algorithm": variant,
            "simulated_s": sim,
            "paper_s": paper,
        }
        if paper:
            row["deviation"] = (sim - paper) / paper
        rows.append(row)
    return ExperimentResult(
        experiment="table1",
        title="Table 1: raw sorting performance (simulated KNL vs paper)",
        columns=[
            "elements",
            "order",
            "algorithm",
            "simulated_s",
            "paper_s",
            "deviation",
        ],
        rows=rows,
        notes=[
            "paper's 6B-random MLM-ddr cell (18.74 s) duplicates the 4B row "
            "and is likely a typo; ~28 s by linear scaling",
            "simulated times come from the bandwidth-contention model "
            "calibrated once against GNU-flat at 2B random",
        ],
    )


run_table1.supports_jobs = True
run_table1.supports_store = True
run_table1.supports_replay = True
