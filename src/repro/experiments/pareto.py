"""Pareto exploration of mode x chunk x thread-split x device configs.

The paper optimizes execution time alone; its introduction motivates
multilevel memory with energy as well. This driver sweeps the joint
space — usage mode, chunk size, copy-thread split, and a hypothetical
MCDRAM bandwidth scaling — runs every configuration on the simulated
node, prices each run with the energy model (faster MCDRAM stacks pay
proportionally more idle power), and reports the Pareto front over
(time, joules, EDP). The whole sweep lowers to the cross-cell tensor
path: every cell is a static- or dynamic-phase pipeline plan, so
structurally identical cells evaluate as one NumPy batch.
"""

from __future__ import annotations

from typing import Any

from repro.core.buffering import BufferedPipeline
from repro.core.chunking import Chunker
from repro.core.kernel import StreamKernel
from repro.core.modes import UsageMode
from repro.errors import ConfigError
from repro.experiments.runner import ExperimentResult, sweep_map
from repro.model.designspace import pareto_front
from repro.simknl.batch import PlanBatch, PlanBatchSpec
from repro.simknl.energy import (
    DEFAULT_ENERGY_PER_BYTE,
    DEFAULT_IDLE_POWER,
    EnergyModel,
)
from repro.simknl.engine import RunResult
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode
from repro.threads.pool import PoolSet
from repro.units import GB, GiB, MiB

#: Compute passes per chunk for the swept kernel (a merge-class
#: intensity where copy/compute are of the same order).
_PASSES = 4.0

_BOOT_MODES = {
    "flat": MemoryMode.FLAT,
    "implicit": MemoryMode.CACHE,
    "ddr": MemoryMode.FLAT,
}


def _pareto_pipeline(
    mode_value: str,
    data_gib: float,
    chunk_mib: int,
    copy_threads: int,
    mcdram_scale: float,
) -> BufferedPipeline:
    """Assemble the pipeline behind one design-space cell."""
    boot = _BOOT_MODES.get(mode_value)
    if boot is None:
        raise ConfigError(f"unknown pareto mode {mode_value!r}")
    mode = UsageMode(mode_value)
    node = KNLNode(
        KNLNodeConfig(mode=boot, mcdram_bandwidth=400 * GB * mcdram_scale)
    )
    if mode is UsageMode.FLAT:
        pools = PoolSet.split(
            node,
            compute=node.total_threads - 2 * copy_threads,
            copy_in=copy_threads,
        )
    else:
        pools = PoolSet.compute_only(node)
    chunker = Chunker(int(data_gib * GiB), int(chunk_mib * MiB))
    return BufferedPipeline(
        node, mode, pools, chunker, StreamKernel(passes=_PASSES)
    )


def _pareto_cell(
    mode_value: str,
    data_gib: float,
    chunk_mib: int,
    copy_threads: int,
    mcdram_scale: float,
) -> tuple[float, dict]:
    """One configuration's raw measurements: ``(elapsed, traffic)``.

    Energy conversion happens in the parent (idle power depends on the
    cell's MCDRAM scaling, and :meth:`EnergyModel.report_many`
    vectorizes across the sweep).
    """
    res = _pareto_pipeline(
        mode_value, data_gib, chunk_mib, copy_threads, mcdram_scale
    ).run()
    return res.elapsed, dict(res.run.traffic)


def _pareto_batch(
    mode_value: str,
    data_gib: float,
    chunk_mib: int,
    copy_threads: int,
    mcdram_scale: float,
) -> PlanBatch:
    pipe = _pareto_pipeline(
        mode_value, data_gib, chunk_mib, copy_threads, mcdram_scale
    )
    return PlanBatch(
        resources=tuple(pipe.node.resources()),
        plans=(pipe.prepare(),),
        finish=lambda runs: (runs[0].elapsed, dict(runs[0].traffic)),
    )


_pareto_cell.plan_batch = PlanBatchSpec(build=_pareto_batch)


def _energy_model(mcdram_scale: float) -> EnergyModel:
    """Energy model for a node whose MCDRAM stack is scaled: both the
    per-byte access energy and the background power grow with the
    stack's width/clock, linearly to first order — the classic
    bandwidth-vs-energy silicon trade."""
    per_byte = dict(DEFAULT_ENERGY_PER_BYTE)
    per_byte["mcdram"] = per_byte["mcdram"] * mcdram_scale
    idle = dict(DEFAULT_IDLE_POWER)
    idle["mcdram"] = idle["mcdram"] * mcdram_scale
    return EnergyModel(energy_per_byte=per_byte, idle_power=idle)


def run_pareto(
    data_gib: float = 24.0,
    chunks_mib: tuple[int, ...] = (256, 512, 1024, 2048),
    copy_threads: tuple[int, ...] = (4, 8, 16),
    mcdram_scales: tuple[float, ...] = (0.5, 1.0, 2.0),
    jobs: int = 1,
    pool: str | None = None,
    store: Any | None = None,
) -> ExperimentResult:
    """Pareto front over (time, energy, EDP) for the joint design space.

    Flat mode sweeps chunk size x copy threads; implicit sweeps chunk
    size (no copy pools); DDR is the chunking-free floor. Every
    combination runs at each MCDRAM bandwidth scaling.
    """
    if not (chunks_mib and copy_threads and mcdram_scales):
        raise ConfigError("chunk, copy-thread, and scale sweeps must be non-empty")
    cells: list[tuple] = []
    for scale in mcdram_scales:
        for mib in chunks_mib:
            for p in copy_threads:
                cells.append(("flat", data_gib, mib, p, scale))
            cells.append(("implicit", data_gib, mib, 0, scale))
        # DDR never chunks: one whole-data "chunk".
        cells.append(("ddr", data_gib, int(data_gib * GiB) // MiB, 0, scale))
    raw = sweep_map(_pareto_cell, cells, jobs=jobs, pool=pool, store=store)
    # Energy pricing: one vectorized report per MCDRAM scaling (idle
    # power differs per scale).
    reports: dict[int, Any] = {}
    for scale in mcdram_scales:
        idx = [i for i, c in enumerate(cells) if c[4] == scale]
        runs = [
            RunResult(elapsed=raw[i][0], traffic=raw[i][1], phase_times=[])
            for i in idx
        ]
        model = _energy_model(scale)
        for i, rep in zip(idx, model.report_many(runs)):
            reports[i] = rep
    objectives = [
        (raw[i][0], reports[i].total_joules, reports[i].energy_delay_product)
        for i in range(len(cells))
    ]
    front = pareto_front(objectives)
    rows = [
        {
            "mode": mode,
            "chunk_mib": mib,
            "copy_threads": p,
            "mcdram_scale": scale,
            "seconds": objectives[i][0],
            "energy_j": objectives[i][1],
            "edp_js": objectives[i][2],
            "pareto": bool(front[i]),
        }
        for i, (mode, _, mib, p, scale) in enumerate(cells)
    ]
    return ExperimentResult(
        experiment="pareto",
        title=f"Extension: (time, energy, EDP) Pareto front, "
        f"{data_gib:g} GiB streamed x{_PASSES:g}",
        columns=[
            "mode",
            "chunk_mib",
            "copy_threads",
            "mcdram_scale",
            "seconds",
            "energy_j",
            "edp_js",
            "pareto",
        ],
        rows=rows,
        notes=[
            "objectives minimized jointly; 'pareto' marks undominated rows",
            "MCDRAM access energy and idle power scale with the "
            "hypothetical bandwidth scaling, so faster stacks trade "
            "energy for time",
            "the sweep lowers to the cross-cell tensor path: structurally "
            "identical cells evaluate as one NumPy batch",
        ],
    )


run_pareto.supports_jobs = True
run_pareto.supports_store = True
run_pareto.supports_replay = True
