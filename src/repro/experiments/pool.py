"""Persistent shared-memory worker pool for :func:`sweep_map`.

The fork-per-call backend (``pool="fork"``) re-pays process startup and
one pickle round-trip per cell on every sweep. For the small cells the
figure drivers run by the hundreds, that overhead binds long before the
simulation work does — the same staging-vs-compute economics the
paper's Section 3.2 model describes, applied to our own harness. This
module amortizes it the way the paper amortizes copies:

* **Workers are spawned once per process lifetime** (lazily, sized by
  ``jobs``) and survive across :func:`sweep_map` calls and drivers.
* **Cells are dispatched in chunks**, so the per-message IPC cost is
  paid per chunk, not per cell. Trailing chunk sizes taper (halving
  toward the end of the sweep, floor 1) so one expensive tail cell
  cannot serialize a full-size final chunk.
* **Numeric results return through a shared-memory ring buffer** — one
  :class:`multiprocessing.shared_memory.SharedMemory` segment per
  worker, written as a single-producer/single-consumer ring of float64
  slots — while mixed-type payloads (dicts, heterogeneous tuples) fall
  back to pickle over the worker's duplex pipe.
* **Reassembly is deterministic**: chunks carry their cell indices, so
  results land in cell order regardless of completion order and a
  parallel sweep stays bit-identical to a serial one.
* **Worker death is survived**: a dead worker's already-delivered
  results are drained, the worker is respawned with a fresh ring, and
  its lost chunks are resubmitted. Per-chunk attempts are bounded; the
  pool raises :class:`~repro.errors.RetryExhaustedError` (carrying the
  attempt count, the :mod:`repro.faults` retry-accounting convention)
  when a chunk keeps killing its workers.

Pool health is observable through :attr:`PersistentPool.stats` and,
when a telemetry session is active at dispatch time, through the
``sweep.*`` metrics in the telemetry catalog. (:func:`sweep_map` itself
runs serially under a session — see its docstring — so those metrics
are populated by direct :meth:`PersistentPool.map` use.)
"""

from __future__ import annotations

import atexit
import os
import time
from dataclasses import dataclass, field
from multiprocessing import get_all_start_methods, get_context
from multiprocessing.connection import Connection, wait
from multiprocessing.shared_memory import SharedMemory
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import ConfigError, RetryExhaustedError
from repro.telemetry import names as _tn
from repro.telemetry import runtime as _tm

#: float64 result slots per worker ring (512 KiB of payload).
RING_SLOTS = 1 << 16
#: Ring header bytes: one int64 read cursor (parent-written).
_HEADER_BYTES = 16
#: Chunks kept in flight per worker before its next dispatch.
_PREFETCH = 2
#: Upper bound on cells per chunk (keeps ring payloads small and load
#: balancing effective).
MAX_CHUNK_CELLS = 64
#: Hard cap on pool size, far above any sensible ``--jobs``.
_MAX_WORKERS = 64
#: Attempts per chunk before the pool gives up on a crash loop.
_MAX_CHUNK_ATTEMPTS = 3

_CTX = get_context(
    "fork" if "fork" in get_all_start_methods() else "spawn"
)


@dataclass
class PoolStats:
    """Cumulative health counters of one :class:`PersistentPool`.

    ``dispatch_seconds`` is total wall time inside :meth:`map`;
    ``ipc_wait_seconds`` the part of it spent blocked on worker
    replies. ``shm_results`` / ``pickle_results`` count chunks by
    return transport.
    """

    workers_spawned: int = 0
    respawns: int = 0
    cells: int = 0
    chunks: int = 0
    shm_results: int = 0
    pickle_results: int = 0
    dispatch_seconds: float = 0.0
    ipc_wait_seconds: float = 0.0
    chunk_cells: list[int] = field(default_factory=list)


def _encode_numeric(results: list) -> tuple[np.ndarray, int] | None:
    """Flatten a chunk's results into float64s, if losslessly possible.

    Returns ``(values, cols)`` where ``cols == 0`` marks plain float
    scalars and ``cols == k`` marks uniform k-tuples of floats; ``None``
    when any element is not exactly a float (ints, bools, dicts, …
    take the pickle path so reconstruction is type-exact).
    """
    if not results:
        return None
    first = results[0]
    if type(first) is float:
        if all(type(r) is float for r in results):
            return np.asarray(results, dtype=np.float64), 0
        return None
    if type(first) is tuple and first and len(first) <= RING_SLOTS:
        cols = len(first)
        for r in results:
            if type(r) is not tuple or len(r) != cols:
                return None
            for v in r:
                if type(v) is not float:
                    return None
        flat = np.asarray(results, dtype=np.float64).reshape(-1)
        return flat, cols
    return None


def _decode_numeric(values: np.ndarray, cols: int) -> list:
    """Inverse of :func:`_encode_numeric`."""
    if cols == 0:
        return [float(v) for v in values]
    rows = values.reshape(-1, cols)
    return [tuple(float(v) for v in row) for row in rows]


def _ring_views(shm: SharedMemory) -> tuple[np.ndarray, np.ndarray]:
    """(read-cursor int64 view, float64 data view) over a ring segment."""
    header = np.ndarray((1,), dtype=np.int64, buffer=shm.buf)
    data = np.ndarray(
        (RING_SLOTS,), dtype=np.float64, buffer=shm.buf,
        offset=_HEADER_BYTES,
    )
    return header, data


def _close_sibling_fds() -> None:
    """Close inherited pool fds in a freshly forked worker.

    A fork copies the parent's fd table, so a worker holds the parent
    ends of every *earlier* worker's pipe; while those copies stay
    open, a sibling's death never reads as EOF in the parent. The
    forked child still sees the module-global pool object, so it can
    close them all.
    """
    pool = _POOL
    if pool is None:
        return
    for worker in pool._workers:
        try:
            worker.conn.close()
        except OSError:
            pass


def _worker_main(slot: int, conn: Connection, shm_name: str) -> None:
    """Worker loop: pull chunk messages, push results until ``stop``."""
    _close_sibling_fds()
    shm = SharedMemory(name=shm_name)
    read_cursor, ring = _ring_views(shm)
    write_idx = 0
    try:
        while True:
            try:
                msg = conn.recv()
            except Exception:
                # EOF (parent gone) or an undecodable task message
                # (e.g. fn not importable in this fork) — die quietly;
                # the pool respawns from current parent state and
                # resubmits.
                break
            if msg[0] == "stop":
                break
            _, chunk_id, fn, cells = msg
            try:
                results = [fn(*cell) for cell in cells]
            except BaseException as exc:
                try:
                    conn.send(("error", slot, chunk_id, exc))
                except Exception:
                    conn.send(
                        (
                            "error", slot, chunk_id,
                            RuntimeError(
                                f"{type(exc).__name__}: {exc} "
                                "(original exception unpicklable)"
                            ),
                        )
                    )
                continue
            encoded = _encode_numeric(results)
            if encoded is not None and len(encoded[0]) <= RING_SLOTS:
                values, cols = encoded
                count = len(values)
                # SPSC flow control: monotonic cursors, parent advances
                # the read cursor after consuming each payload.
                while RING_SLOTS - (write_idx - int(read_cursor[0])) < count:
                    time.sleep(0.0005)
                pos = write_idx % RING_SLOTS
                head = min(count, RING_SLOTS - pos)
                ring[pos:pos + head] = values[:head]
                if count > head:
                    ring[:count - head] = values[head:]
                conn.send(("shm", slot, chunk_id, write_idx, count, cols))
                write_idx += count
            else:
                try:
                    conn.send(("pickle", slot, chunk_id, results))
                except Exception as exc:
                    conn.send(
                        (
                            "error", slot, chunk_id,
                            RuntimeError(
                                f"chunk {chunk_id} result unpicklable: "
                                f"{type(exc).__name__}: {exc}"
                            ),
                        )
                    )
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        shm.close()


@dataclass
class _Worker:
    """Parent-side record of one worker process."""

    slot: int
    process: Any
    conn: Connection
    shm: SharedMemory
    read_header: np.ndarray
    ring: np.ndarray


@dataclass
class _Chunk:
    """One dispatched batch of cells."""

    chunk_id: int
    indices: list[int]
    cells: list[tuple]
    attempts: int = 0


class PersistentPool:
    """A process-lifetime pool of sweep workers.

    Use :func:`get_pool` rather than constructing directly — the pool
    is meant to be a singleton whose spawn cost amortizes across every
    sweep of the process.
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ConfigError(f"pool size must be >= 1, got {size}")
        self.size = min(size, _MAX_WORKERS)
        self.stats = PoolStats()
        self._workers: list[_Worker] = []
        self._next_chunk_id = 0
        self._closed = False

    # ---- worker lifecycle --------------------------------------------------

    def _spawn(self, slot: int) -> _Worker:
        shm = SharedMemory(
            create=True, size=_HEADER_BYTES + RING_SLOTS * 8
        )
        header, ring = _ring_views(shm)
        header[0] = 0
        parent_conn, child_conn = _CTX.Pipe(duplex=True)
        process = _CTX.Process(
            target=_worker_main,
            args=(slot, child_conn, shm.name),
            daemon=True,
            name=f"repro-sweep-{slot}",
        )
        process.start()
        child_conn.close()
        self.stats.workers_spawned += 1
        return _Worker(slot, process, parent_conn, shm, header, ring)

    def _ensure_workers(self) -> None:
        if self._closed:
            raise ConfigError("pool has been shut down")
        while len(self._workers) < self.size:
            self._workers.append(self._spawn(len(self._workers)))

    def grow(self, size: int) -> None:
        """Raise the worker count (never shrinks a live pool)."""
        if size > self.size:
            self.size = min(size, _MAX_WORKERS)

    @property
    def alive(self) -> bool:
        """False once :meth:`shutdown` has run."""
        return not self._closed

    def shutdown(self) -> None:
        """Stop workers and release shared-memory rings."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.shm.close()
            try:
                worker.shm.unlink()
            except FileNotFoundError:
                pass
        self._workers = []

    # ---- dispatch ----------------------------------------------------------

    def chunk_size(self, ncells: int) -> int:
        """Cells per chunk: ~4 chunks per worker, capped for balance."""
        per_worker = -(-ncells // (self.size * 4))
        return max(1, min(MAX_CHUNK_CELLS, per_worker))

    @staticmethod
    def chunk_spans(ncells: int, step: int) -> list[tuple[int, int]]:
        """Chunk boundaries with a tapered tail, in dispatch order.

        Leading chunks carry ``step`` cells; once at most ``2 * step``
        cells remain, chunk sizes halve toward the end (floor 1). An
        expensive trailing cell (figure7's 6B-element implicit cells
        vs 125M) then serializes at most a small final chunk instead
        of a full quarter-of-a-worker's-share, while the bulk of the
        sweep still pays per-chunk IPC cost on big chunks. Spans are a
        pure function of ``(ncells, step)``, so dispatch order and
        reassembly stay deterministic.
        """
        spans: list[tuple[int, int]] = []
        lo = 0
        while ncells - lo > 2 * step:
            spans.append((lo, lo + step))
            lo += step
        while lo < ncells:
            size = max(1, min(step, (ncells - lo + 1) // 2))
            spans.append((lo, lo + size))
            lo += size
        return spans

    def map(
        self,
        fn: Callable[..., Any],
        cells: Sequence[tuple],
        chunk_cells: int | None = None,
    ) -> list[Any]:
        """Map ``fn`` over ``cells`` on the pool, in cell order.

        Exceptions raised by ``fn`` propagate. A worker that dies
        mid-chunk is respawned and the chunk resubmitted (bounded by
        ``_MAX_CHUNK_ATTEMPTS``).
        """
        if not cells:
            return []
        t_start = time.perf_counter()
        self._ensure_workers()
        step = chunk_cells or self.chunk_size(len(cells))
        chunks: list[_Chunk] = []
        for lo, hi in self.chunk_spans(len(cells), step):
            indices = list(range(lo, hi))
            chunks.append(
                _Chunk(
                    self._next_chunk_id,
                    indices,
                    [cells[i] for i in indices],
                )
            )
            self._next_chunk_id += 1
        results: list[Any] = [None] * len(cells)
        call = self._run_chunks(fn, chunks, results)
        call["dispatch_seconds"] = time.perf_counter() - t_start
        self.stats.cells += len(cells)
        self.stats.chunks += len(chunks)
        self.stats.chunk_cells.extend(len(c.indices) for c in chunks)
        self.stats.dispatch_seconds += call["dispatch_seconds"]
        self.stats.ipc_wait_seconds += call["ipc_wait_seconds"]
        self.stats.shm_results += call["shm_results"]
        self.stats.pickle_results += call["pickle_results"]
        self.stats.respawns += call["respawns"]
        self._emit_telemetry(chunks, call)
        return results

    def _run_chunks(
        self,
        fn: Callable[..., Any],
        chunks: list[_Chunk],
        results: list[Any],
    ) -> dict[str, Any]:
        """Dispatch chunks, reassemble results; returns per-call stats."""
        todo = list(reversed(chunks))  # pop() from the front of the sweep
        assigned: dict[int, dict[int, _Chunk]] = {
            w.slot: {} for w in self._workers
        }
        completed: set[int] = set()
        failure: BaseException | None = None
        call = {
            "ipc_wait_seconds": 0.0,
            "shm_results": 0,
            "pickle_results": 0,
            "respawns": 0,
        }

        def dispatch(slot: int) -> None:
            worker = self._workers[slot]
            while todo and len(assigned[slot]) < _PREFETCH:
                chunk = todo.pop()
                chunk.attempts += 1
                assigned[slot][chunk.chunk_id] = chunk
                try:
                    worker.conn.send(
                        ("run", chunk.chunk_id, fn, chunk.cells)
                    )
                except (OSError, ValueError):
                    # Worker died under us; the next reap requeues the
                    # chunk we just recorded as assigned.
                    return

        def fill() -> None:
            for slot in range(len(self._workers)):
                dispatch(slot)

        fill()
        done = 0
        while done < len(chunks):
            t_wait = time.perf_counter()
            ready = wait(
                [w.conn for w in self._workers], timeout=0.25
            )
            call["ipc_wait_seconds"] += time.perf_counter() - t_wait
            if not ready:
                call["respawns"] += self._reap_dead(assigned, todo)
                fill()
                continue
            for conn in ready:
                worker = next(
                    (w for w in self._workers if w.conn is conn), None
                )
                if worker is None:
                    continue  # conn replaced by a reap this iteration
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    call["respawns"] += self._reap_dead(assigned, todo)
                    fill()
                    continue
                chunk_id = msg[2]
                if msg[0] == "error":
                    # First failure wins; later ones are duplicates of
                    # the same sweep and are discarded with the run.
                    if failure is None:
                        failure = msg[3]
                    assigned[worker.slot].pop(chunk_id, None)
                    if chunk_id not in completed:
                        completed.add(chunk_id)
                        done += 1
                    dispatch(worker.slot)
                    continue
                chunk = assigned[worker.slot].pop(chunk_id, None)
                if msg[0] == "shm":
                    _, _, _, start, count, cols = msg
                    pos = start % RING_SLOTS
                    head = min(count, RING_SLOTS - pos)
                    values = np.empty(count, dtype=np.float64)
                    values[:head] = worker.ring[pos:pos + head]
                    if count > head:
                        values[head:] = worker.ring[:count - head]
                    worker.read_header[0] = start + count
                    payload = _decode_numeric(values, cols)
                    call["shm_results"] += 1
                else:
                    payload = msg[3]
                    call["pickle_results"] += 1
                if chunk is None or chunk_id in completed:
                    dispatch(worker.slot)
                    continue
                for index, value in zip(chunk.indices, payload):
                    results[index] = value
                completed.add(chunk_id)
                done += 1
                dispatch(worker.slot)
        if failure is not None:
            raise failure
        return call

    def _reap_dead(
        self,
        assigned: dict[int, dict[int, _Chunk]],
        todo: list[_Chunk],
    ) -> int:
        """Respawn dead workers, requeue their chunks; returns respawns."""
        respawned = 0
        for slot, worker in enumerate(self._workers):
            if worker.process.is_alive():
                continue
            lost = list(assigned[slot].values())
            assigned[slot].clear()
            for chunk in lost:
                if chunk.attempts >= _MAX_CHUNK_ATTEMPTS:
                    self.shutdown()
                    raise RetryExhaustedError(
                        f"sweep chunk {chunk.chunk_id} killed its "
                        f"worker {chunk.attempts} times "
                        f"(cells {chunk.indices[0]}..{chunk.indices[-1]})",
                        attempts=chunk.attempts,
                    )
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.process.join(timeout=0.5)
            worker.shm.close()
            try:
                worker.shm.unlink()
            except FileNotFoundError:
                pass
            self._workers[slot] = self._spawn(slot)
            respawned += 1
            # Resubmit at the front so lost work finishes promptly.
            todo.extend(reversed(lost))
        return respawned

    # ---- observability -----------------------------------------------------

    def _emit_telemetry(
        self, chunks: list[_Chunk], call: dict[str, Any]
    ) -> None:
        """Flush one call's deltas into the active telemetry session."""
        tel = _tm.current()
        if not tel.enabled:
            return
        m = tel.metrics
        m.counter(_tn.SWEEP_CELLS_TOTAL).inc(
            sum(len(c.indices) for c in chunks)
        )
        m.counter(_tn.SWEEP_CHUNKS_TOTAL).inc(len(chunks))
        for chunk in chunks:
            m.histogram(_tn.SWEEP_CHUNK_CELLS).observe(len(chunk.indices))
        m.counter(_tn.SWEEP_DISPATCH_SECONDS_TOTAL).inc(
            call["dispatch_seconds"]
        )
        m.counter(_tn.SWEEP_IPC_WAIT_SECONDS_TOTAL).inc(
            call["ipc_wait_seconds"]
        )
        m.counter(_tn.SWEEP_RESULTS_TOTAL).inc(
            call["shm_results"], transport="shm"
        )
        m.counter(_tn.SWEEP_RESULTS_TOTAL).inc(
            call["pickle_results"], transport="pickle"
        )
        m.counter(_tn.SWEEP_RESPAWNS_TOTAL).inc(call["respawns"])
        m.gauge(_tn.SWEEP_WORKERS).set(len(self._workers))


#: The process-wide pool singleton (``None`` until first use).
_POOL: PersistentPool | None = None


def get_pool(jobs: int) -> PersistentPool:
    """The shared pool, created lazily and grown to ``jobs`` workers."""
    global _POOL
    if _POOL is None or not _POOL.alive:
        _POOL = PersistentPool(jobs)
    else:
        _POOL.grow(jobs)
    return _POOL


def shutdown_pool() -> None:
    """Tear down the singleton (used by tests and the atexit hook)."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None


atexit.register(shutdown_pool)
