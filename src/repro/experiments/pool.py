"""Persistent shared-memory worker pool for :func:`sweep_map`.

The fork-per-call backend (``pool="fork"``) re-pays process startup and
one pickle round-trip per cell on every sweep. For the small cells the
figure drivers run by the hundreds, that overhead binds long before the
simulation work does — the same staging-vs-compute economics the
paper's Section 3.2 model describes, applied to our own harness. This
module amortizes it the way the paper amortizes copies:

* **Workers are spawned once per process lifetime** (lazily, sized by
  ``jobs``) and survive across :func:`sweep_map` calls and drivers.
* **Cells are dispatched in chunks**, so the per-message IPC cost is
  paid per chunk, not per cell. Chunk sizes are *skew-aware*: the pool
  keeps a per-cell-function cost model (EWMA mean plus a decaying
  per-cell peak, fed by worker-reported compute time) and shrinks
  chunks in proportion to the observed max/mean skew, so one
  expensive cell cannot serialize a full-size chunk behind it. A
  function the model has not seen yet falls back to the static
  halving taper of :meth:`PersistentPool.chunk_spans`.
* **Idle workers steal**: once the dispatch queue is empty, an idle
  worker takes the unstarted half of the most-loaded worker's
  prefetched backlog (a parent-mediated reassignment: the victim gets
  a ``cancel`` message, the thief a fresh dispatch), so a straggler
  cell no longer holds its queued neighbours hostage until a deadline
  blows.
* **The worker count autoscales** between a floor and ``size``
  against the cost model's projected sweep time — a sweep of cheap
  memo-style cells runs on a couple of workers instead of paying
  ``jobs`` pipes' worth of dispatch, and a sweep that turns out
  heavier than projected grows back mid-call against the observed
  queue depth. Scale-down only retires workers with nothing in
  flight.
* **Numeric results return through a shared-memory ring buffer** — one
  :class:`multiprocessing.shared_memory.SharedMemory` segment per
  worker, written as a single-producer/single-consumer ring of float64
  slots — while mixed-type payloads (dicts, heterogeneous tuples) fall
  back to pickle over the worker's duplex pipe.
* **Reassembly is deterministic**: chunks carry their cell indices, so
  results land in cell order regardless of completion order and a
  parallel sweep stays bit-identical to a serial one.

The pool is hardened against production-style harness failures (the
chaos suite in :mod:`repro.experiments.chaos` injects every one of
them at fixed seeds):

* **Worker death is survived**: a dead worker's already-delivered
  results are drained, the worker is respawned with a fresh ring after
  a bounded exponential backoff, and its lost chunks are resubmitted.
  Per-chunk *delivered* attempts are bounded; the pool raises
  :class:`~repro.errors.RetryExhaustedError` (carrying the attempt
  count, the :mod:`repro.faults` retry-accounting convention) when a
  chunk keeps killing its workers.
* **Hung and slow workers are survived**: every dispatched chunk
  carries a deadline derived from the per-function cost model —
  worker-reported *compute* time only, so prefetch queue wait never
  inflates the estimate, and one function's timings never contaminate
  another's deadlines. A chunk whose every outstanding assignment has blown its
  deadline is speculatively resubmitted to another worker;
  first-result-wins dedup through the ``completed`` set keeps the
  sweep bit-identical. A worker that delivers nothing long after its
  chunk completed elsewhere is declared hung and killed.
* **Ring corruption is detected, not returned**: shm payloads carry a
  per-worker sequence number and a CRC-32 of the raw float64 bytes. A
  payload failing either check is discarded and the chunk refetched
  over the type-exact pickle path.
* **An unhealthy pool degrades instead of stalling**: a slot that
  crash-loops past the circuit-breaker threshold, a call that exhausts
  its respawn or deadline budget, or a pool making no progress at all
  triggers graceful degradation — the remaining cells run in-process
  serially (bit-identical, since cell order is deterministic), a
  :class:`~repro.errors.DegradedModeWarning` is emitted, and the
  workers are reset for the next call.

Pool health is observable through :attr:`PersistentPool.stats` and,
when a telemetry session is active at dispatch time, through the
``sweep.*`` metrics in the telemetry catalog. (:func:`sweep_map` itself
runs serially under a session — see its docstring — so those metrics
are populated by direct :meth:`PersistentPool.map` use.)

Workers only *report* results over the ring/pipe; they never touch
the on-disk result store (:mod:`repro.experiments.store`). The parent
persists reassembled results after :meth:`PersistentPool.map` returns
— in :func:`sweep_map`'s write-through — so concurrent workers cannot
race on store files and a degraded-serial tail is persisted exactly
like a healthy parallel sweep.
"""

from __future__ import annotations

import atexit
import itertools
import json
import os
import threading
import time
import warnings
import weakref
import zlib
from dataclasses import dataclass, field
from multiprocessing import get_all_start_methods, get_context
from multiprocessing.connection import Connection, wait
from multiprocessing.shared_memory import SharedMemory
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import ConfigError, DegradedModeWarning, RetryExhaustedError
from repro.telemetry import names as _tn
from repro.telemetry import runtime as _tm

#: float64 result slots per worker ring (512 KiB of payload).
RING_SLOTS = 1 << 16
#: Ring header bytes: one int64 read cursor (parent-written).
_HEADER_BYTES = 16
#: Chunks kept in flight per worker before its next dispatch.
_PREFETCH = 2
#: Upper bound on cells per chunk (keeps ring payloads small and load
#: balancing effective).
MAX_CHUNK_CELLS = 64
#: Hard cap on pool size, far above any sensible ``--jobs``.
_MAX_WORKERS = 64
#: Delivered attempts per chunk before the pool gives up on a crash
#: loop (pipe failures that never reached a worker do not count).
_MAX_CHUNK_ATTEMPTS = 3
#: EWMA smoothing for the online per-cell time estimate.
_EWMA_ALPHA = 0.2
#: Per-observation decay of the tracked per-cell peak time, so a
#: one-off spike stops shrinking chunks after enough calm chunks.
_PEAK_DECAY = 0.05
#: Ceiling on chunks per call from skew-aware sizing (bounds the IPC
#: message count no matter how extreme the measured skew is).
_MAX_ADAPTIVE_CHUNKS = 1024
#: File name of the cost-model sidecar under a result-store root.
COST_SIDECAR = "cost_model.json"
#: Sidecar schema stamp; bump when the sidecar shape changes.
COST_SCHEMA = 1
#: Per-process serial for sidecar temp-file names (same uniqueness
#: argument as the store's entry temp files).
_COST_TMP_SERIAL = itertools.count()


def cost_key(fn: Callable[..., Any]) -> str:
    """Stable per-cell-function identity for cost and memo bookkeeping.

    The pool's cost model and :func:`repro.experiments.runner.sweep_map`'s
    ``config_hash`` memo key functions the same way, so a function's
    observed timings and its cached results always agree on what "the
    same function" means.
    """
    return getattr(fn, "__qualname__", None) or repr(fn)


@dataclass
class _CellCost:
    """Online cost estimate for one cell function (compute seconds).

    ``mean_s`` is an EWMA of per-cell compute time; ``max_s`` tracks
    the slowest single cell seen, decaying mildly per observation so
    the skew signal reflects the recent shape of the sweep, not one
    ancient outlier. Both are fed exclusively from worker-reported
    compute time, never parent-side round-trip time.
    """

    mean_s: float
    max_s: float
    chunks: int = 1


def load_costs(root: str | os.PathLike) -> dict[str, _CellCost]:
    """Read a cost-model sidecar, tolerating absence and corruption.

    The sidecar lives at ``<root>/cost_model.json``, next to (not
    inside) a result store's ``v1/`` entry tree, and is best-effort in
    both directions: a missing, unreadable, truncated, or
    wrong-schema sidecar simply reads as empty — the model it would
    have seeded starts cold, exactly as before the sidecar existed.
    Entries with non-numeric or negative fields are skipped
    individually, so one corrupt record cannot poison the rest.
    """
    path = Path(root) / COST_SIDECAR
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError:
        return {}
    try:
        doc = json.loads(raw)
    except ValueError:
        return {}
    if not isinstance(doc, dict) or doc.get("schema") != COST_SCHEMA:
        return {}
    records = doc.get("costs")
    if not isinstance(records, dict):
        return {}
    costs: dict[str, _CellCost] = {}
    for key, record in records.items():
        if not isinstance(key, str) or not isinstance(record, dict):
            continue
        mean_s = record.get("mean_s")
        max_s = record.get("max_s")
        chunks = record.get("chunks", 1)
        if (
            isinstance(mean_s, (int, float))
            and isinstance(max_s, (int, float))
            and isinstance(chunks, int)
            and not isinstance(mean_s, bool)
            and not isinstance(max_s, bool)
            and mean_s >= 0.0
            and max_s >= 0.0
            and chunks >= 1
        ):
            costs[key] = _CellCost(float(mean_s), float(max_s), chunks)
    return costs


def save_costs(
    root: str | os.PathLike, costs: dict[str, _CellCost]
) -> bool:
    """Persist a cost model to the sidecar atomically, best-effort.

    Published with a temp-file + :func:`os.replace` like store
    entries, so concurrent writers each land a complete file and a
    reader never observes a partial one. Any filesystem failure
    returns ``False`` instead of raising — losing the warm-start is
    an acceptable outcome, failing the sweep that produced it is not.
    """
    path = Path(root) / COST_SIDECAR
    doc = {
        "schema": COST_SCHEMA,
        "costs": {
            key: {
                "mean_s": cost.mean_s,
                "max_s": cost.max_s,
                "chunks": cost.chunks,
            }
            for key, cost in sorted(costs.items())
        },
    }
    data = json.dumps(doc, separators=(",", ":")) + "\n"
    tmp = path.parent / (
        f".{COST_SIDECAR}.{os.getpid()}.{next(_COST_TMP_SERIAL)}.tmp"
    )
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text(data, encoding="utf-8")
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass
        return False
    return True


_CTX = get_context(
    "fork" if "fork" in get_all_start_methods() else "spawn"
)

#: Every live pool, so freshly forked workers can close inherited
#: parent-side pipe fds regardless of which pool spawned them.
_REGISTRY: "weakref.WeakSet[PersistentPool]" = weakref.WeakSet()


@dataclass
class ChunkCellsSummary:
    """Bounded summary of chunk sizes dispatched over a pool's lifetime.

    Replaces an unbounded per-chunk list: a process-lifetime pool
    dispatches chunks forever, so the stats object keeps only
    count/total/min/max (the ``sweep.chunk_cells`` histogram carries
    the full distribution while a telemetry session is active).
    """

    count: int = 0
    total: int = 0
    min: int = 0
    max: int = 0

    def observe(self, ncells: int) -> None:
        """Fold one dispatched chunk's cell count into the summary."""
        if self.count == 0:
            self.min = ncells
            self.max = ncells
        else:
            self.min = min(self.min, ncells)
            self.max = max(self.max, ncells)
        self.count += 1
        self.total += ncells

    @property
    def mean(self) -> float:
        """Average cells per chunk (0.0 before any observation)."""
        return self.total / self.count if self.count else 0.0


@dataclass
class PoolStats:
    """Cumulative health counters of one :class:`PersistentPool`.

    ``dispatch_seconds`` is total wall time inside :meth:`map`;
    ``ipc_wait_seconds`` the part of it spent blocked on worker
    replies. ``shm_results`` / ``pickle_results`` count chunks by
    return transport. The hardening counters mirror the ``sweep.*``
    telemetry entries: ``deadline_expiries`` counts chunk assignments
    that blew their deadline, ``speculative`` the resubmissions that
    recovered them, ``ring_corrupt`` shm payloads that failed framing
    validation, ``backoff_seconds`` the total respawn backoff
    scheduled, and ``degraded_calls`` the :meth:`PersistentPool.map`
    calls that fell back to in-process serial execution. The
    scheduling counters track the adaptive dispatcher: ``steals``
    counts prefetched chunks reassigned from a busy worker to an idle
    one, ``scaled_up`` / ``scaled_down`` the worker-count autoscaling
    decisions taken (mid-call growth and idle retirement).
    """

    workers_spawned: int = 0
    respawns: int = 0
    cells: int = 0
    chunks: int = 0
    shm_results: int = 0
    pickle_results: int = 0
    dispatch_seconds: float = 0.0
    ipc_wait_seconds: float = 0.0
    deadline_expiries: int = 0
    speculative: int = 0
    ring_corrupt: int = 0
    backoff_seconds: float = 0.0
    degraded_calls: int = 0
    steals: int = 0
    scaled_up: int = 0
    scaled_down: int = 0
    chunk_cells: ChunkCellsSummary = field(default_factory=ChunkCellsSummary)


def _encode_numeric(results: list) -> tuple[np.ndarray, int] | None:
    """Flatten a chunk's results into float64s, if losslessly possible.

    Returns ``(values, cols)`` where ``cols == 0`` marks plain float
    scalars and ``cols == k`` marks uniform k-tuples of floats; ``None``
    when any element is not exactly a float (ints, bools, dicts, …
    take the pickle path so reconstruction is type-exact).
    """
    if not results:
        return None
    first = results[0]
    if type(first) is float:
        if all(type(r) is float for r in results):
            return np.asarray(results, dtype=np.float64), 0
        return None
    if type(first) is tuple and first and len(first) <= RING_SLOTS:
        cols = len(first)
        for r in results:
            if type(r) is not tuple or len(r) != cols:
                return None
            for v in r:
                if type(v) is not float:
                    return None
        flat = np.asarray(results, dtype=np.float64).reshape(-1)
        return flat, cols
    return None


def _decode_numeric(values: np.ndarray, cols: int) -> list:
    """Inverse of :func:`_encode_numeric`."""
    if cols == 0:
        return [float(v) for v in values]
    rows = values.reshape(-1, cols)
    return [tuple(float(v) for v in row) for row in rows]


def _ring_views(shm: SharedMemory) -> tuple[np.ndarray, np.ndarray]:
    """(read-cursor int64 view, float64 data view) over a ring segment."""
    header = np.ndarray((1,), dtype=np.int64, buffer=shm.buf)
    data = np.ndarray(
        (RING_SLOTS,), dtype=np.float64, buffer=shm.buf,
        offset=_HEADER_BYTES,
    )
    return header, data


def _close_sibling_fds() -> None:
    """Close inherited pool fds in a freshly forked worker.

    A fork copies the parent's fd table, so a worker holds the parent
    ends of every *earlier* worker's pipe; while those copies stay
    open, a sibling's death never reads as EOF in the parent. The
    forked child still sees the live pool objects through the module
    registry, so it can close them all — including the pipes of pools
    other than its own (the chaos driver runs dedicated pools next to
    the singleton).
    """
    for pool in list(_REGISTRY):
        for worker in pool._workers:
            try:
                worker.conn.close()
            except OSError:
                pass


def _payload_crc(values: np.ndarray) -> int:
    """CRC-32 of a ring payload's raw float64 bytes."""
    return zlib.crc32(values.tobytes()) & 0xFFFFFFFF


def _worker_main(slot: int, conn: Connection, shm_name: str) -> None:
    """Worker loop: pull chunk messages, push results until ``stop``.

    The worker keeps a local backlog: it blocks for one message when
    idle, then drains whatever else has already arrived. That lets a
    parent-mediated ``("cancel", chunk_id)`` overtake a prefetched-
    but-unstarted ``run`` (the pipe is FIFO, so a cancel always
    arrives after the run it voids) — the mechanism behind work
    stealing. A cancel for a chunk already executed is dropped
    harmlessly; the parent's first-result-wins dedup resolves the
    race where both the victim and the thief return the chunk.

    Each result message carries the chunk's summed per-cell *compute*
    time and the slowest single cell, measured around the ``fn`` calls
    themselves, so the parent's cost model never absorbs the time a
    chunk spent queued behind the worker's previous chunk.

    Chunk messages optionally carry a chaos directive (see
    :mod:`repro.experiments.chaos`) which the worker enacts on itself:
    ``("kill",)`` exits hard, ``("hang",)`` stops consuming messages
    while staying alive, ``("slow", s)`` sleeps ``s`` seconds before
    each cell, and ``("corrupt",)`` scribbles on the shm payload after
    checksumming it so the parent's framing check must catch it.
    """
    _close_sibling_fds()
    shm = SharedMemory(name=shm_name)
    read_cursor, ring = _ring_views(shm)
    write_idx = 0
    seq = 0
    pending: list = []
    try:
        while True:
            try:
                if not pending:
                    # Idle: block for work (EOF/undecodable message —
                    # e.g. fn not importable in this fork — dies
                    # quietly; the pool respawns and resubmits).
                    pending.append(conn.recv())
                while conn.poll(0):
                    pending.append(conn.recv())
            except Exception:
                break
            cancelled = {m[1] for m in pending if m[0] == "cancel"}
            if cancelled:
                pending = [
                    m
                    for m in pending
                    if m[0] != "cancel"
                    and not (m[0] == "run" and m[1] in cancelled)
                ]
                if not pending:
                    continue
            msg = pending.pop(0)
            if msg[0] == "stop":
                break
            _, chunk_id, fn, cells, directive, force_pickle = msg
            fault = directive[0] if directive else None
            if fault == "kill":
                os._exit(117)
            if fault == "hang":
                # Livelocked, not dead: stay alive but stop consuming.
                while True:
                    time.sleep(0.05)
            delay = directive[1] if fault == "slow" else 0.0
            compute_s = 0.0
            cell_max_s = 0.0
            results = []
            try:
                for cell in cells:
                    t_cell = time.perf_counter()
                    if delay:
                        time.sleep(delay)
                    results.append(fn(*cell))
                    dt = time.perf_counter() - t_cell
                    compute_s += dt
                    if dt > cell_max_s:
                        cell_max_s = dt
            except BaseException as exc:
                try:
                    conn.send(("error", slot, chunk_id, exc))
                except Exception:
                    conn.send(
                        (
                            "error", slot, chunk_id,
                            RuntimeError(
                                f"{type(exc).__name__}: {exc} "
                                "(original exception unpicklable)"
                            ),
                        )
                    )
                continue
            encoded = None if force_pickle else _encode_numeric(results)
            if encoded is not None and len(encoded[0]) <= RING_SLOTS:
                values, cols = encoded
                count = len(values)
                crc = _payload_crc(values)
                # SPSC flow control: monotonic cursors, parent advances
                # the read cursor after consuming each payload.
                while RING_SLOTS - (write_idx - int(read_cursor[0])) < count:
                    time.sleep(0.0005)
                pos = write_idx % RING_SLOTS
                head = min(count, RING_SLOTS - pos)
                ring[pos:pos + head] = values[:head]
                if count > head:
                    ring[:count - head] = values[head:]
                if fault == "corrupt":
                    # Flip one mantissa bit of the first slot, after
                    # the checksum: a guaranteed byte-level mismatch.
                    ring[pos:pos + 1].view(np.int64)[0] ^= 0x1
                conn.send(
                    (
                        "shm", slot, chunk_id, write_idx, count, cols,
                        seq, crc, compute_s, cell_max_s,
                    )
                )
                seq += 1
                write_idx += count
            else:
                try:
                    conn.send(
                        ("pickle", slot, chunk_id, results,
                         compute_s, cell_max_s)
                    )
                except Exception as exc:
                    conn.send(
                        (
                            "error", slot, chunk_id,
                            RuntimeError(
                                f"chunk {chunk_id} result unpicklable: "
                                f"{type(exc).__name__}: {exc}"
                            ),
                        )
                    )
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        shm.close()


@dataclass
class _Worker:
    """Parent-side record of one worker process."""

    slot: int
    process: Any
    conn: Connection
    shm: SharedMemory
    read_header: np.ndarray
    ring: np.ndarray
    #: Next shm sequence number expected from this worker.
    seq_expected: int = 0
    #: Monotonic time of the last message received from this worker.
    last_result_at: float = 0.0
    #: Harvested (conn closed, awaiting respawn) — not in the wait set.
    dead: bool = False


@dataclass
class _Chunk:
    """One dispatched batch of cells."""

    chunk_id: int
    indices: list[int]
    cells: list[tuple]
    #: Delivered attempts only: sends that reached a live worker.
    attempts: int = 0
    #: Refetch over pickle after a ring-integrity failure.
    force_pickle: bool = False
    #: At least one speculative resubmission happened.
    speculated: bool = False


@dataclass
class _Assignment:
    """One (chunk, worker) dispatch awaiting a result."""

    chunk: _Chunk
    slot: int
    sent_at: float
    deadline_s: float
    #: conn.send succeeded — the worker actually saw the chunk.
    delivered: bool = False
    #: Blew its deadline (or was superseded); no longer awaited.
    expired: bool = False


class PersistentPool:
    """A process-lifetime pool of sweep workers.

    Use :func:`get_pool` rather than constructing directly — the pool
    is meant to be a singleton whose spawn cost amortizes across every
    sweep of the process. (The chaos driver is the exception: it
    builds dedicated pools so injected faults cannot perturb sweeps
    sharing the singleton.)

    Parameters
    ----------
    size:
        Worker count ceiling (capped at ``_MAX_WORKERS``); with
        ``autoscale`` the live count floats between ``min_workers``
        and this.
    deadline_factor:
        A dispatched chunk's deadline is ``deadline_factor`` times the
        cost-model-predicted chunk time; generous by default so
        legitimately heavy cells speculate rarely.
    min_deadline_s:
        Deadline floor, so microsecond cells do not produce
        millisecond deadlines that expire on scheduler jitter.
    cold_deadline_s:
        Deadline used for a cell function the cost model has not seen
        yet (estimates are per-function, so a new function always
        starts cold no matter what earlier sweeps trained).
    hang_kill_factor:
        A live worker is declared hung and killed once an assignment
        is overdue by this multiple of its deadline *and* the chunk
        already completed elsewhere *and* the worker has delivered
        nothing since the send — it is provably contributing nothing.
    backoff_base_s / backoff_max_s:
        Exponential backoff bounds between respawns of the same slot.
    breaker_respawns:
        Consecutive respawns of one slot (no delivery in between) that
        open the circuit breaker and degrade the call to serial.
    stall_escape_s:
        Hard ceiling on time with no progress at all before degrading;
        defaults to ``max(4 * cold_deadline_s, 5.0)``.
    adaptive:
        Enables skew-aware chunk sizing and work stealing. ``False``
        pins dispatch to the static halving taper with no stealing
        (the pre-adaptive scheduler, kept as the benchmark baseline).
    autoscale:
        Enables worker-count autoscaling between ``min_workers`` and
        ``size``. ``False`` always runs ``size`` workers.
    min_workers:
        Autoscaling floor (clamped to ``size``); defaults to 2 so a
        straggling chunk always has a second worker to speculate or
        steal onto, except in single-worker pools.
    scale_quantum_s:
        Projected sweep seconds worth one worker: the target count is
        ``projected_sweep_s / scale_quantum_s``, clamped to the
        floor/'``size``' band. Mid-call, a worker is added while the
        remaining queue projects past this per live worker.
    steal_min_s:
        How long the oldest unexpired assignment of a victim worker
        must have been outstanding before an idle worker may steal
        its backlog — short sweeps finish without steal churn.
    skew_ratio:
        Minimum observed ``max_s / mean_s`` per-cell skew before
        chunks shrink below the static size.
    skew_cell_floor_s:
        Minimum observed per-cell peak before skew sizing engages at
        all; microsecond cells have noisy skew that is never worth
        extra IPC messages.
    idle_reap_s:
        Default idleness bound for :meth:`reap_idle`: a pool that has
        not dispatched for this long retires all its workers (they
        respawn lazily on the next call). ``None`` (the default)
        disables reaping unless the caller passes an explicit bound —
        one-shot CLI runs exit anyway, but a long-running service must
        not pin ``jobs`` idle processes forever.
    """

    def __init__(
        self,
        size: int,
        *,
        deadline_factor: float = 8.0,
        min_deadline_s: float = 0.25,
        cold_deadline_s: float = 30.0,
        hang_kill_factor: float = 4.0,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        breaker_respawns: int = 3,
        stall_escape_s: float | None = None,
        adaptive: bool = True,
        autoscale: bool = True,
        min_workers: int | None = None,
        scale_quantum_s: float = 0.05,
        steal_min_s: float = 0.05,
        skew_ratio: float = 4.0,
        skew_cell_floor_s: float = 0.02,
        idle_reap_s: float | None = None,
    ) -> None:
        if size < 1:
            raise ConfigError(f"pool size must be >= 1, got {size}")
        for name, value in (
            ("deadline_factor", deadline_factor),
            ("min_deadline_s", min_deadline_s),
            ("cold_deadline_s", cold_deadline_s),
            ("hang_kill_factor", hang_kill_factor),
            ("backoff_base_s", backoff_base_s),
            ("backoff_max_s", backoff_max_s),
            ("scale_quantum_s", scale_quantum_s),
            ("steal_min_s", steal_min_s),
            ("skew_cell_floor_s", skew_cell_floor_s),
        ):
            if value <= 0:
                raise ConfigError(f"{name} must be positive, got {value}")
        if breaker_respawns < 1:
            raise ConfigError(
                f"breaker_respawns must be >= 1, got {breaker_respawns}"
            )
        if skew_ratio <= 1.0:
            raise ConfigError(
                f"skew_ratio must be > 1, got {skew_ratio}"
            )
        if min_workers is not None and min_workers < 1:
            raise ConfigError(
                f"min_workers must be >= 1, got {min_workers}"
            )
        if idle_reap_s is not None and idle_reap_s < 0:
            raise ConfigError(
                f"idle_reap_s must be >= 0, got {idle_reap_s}"
            )
        self.size = min(size, _MAX_WORKERS)
        self.deadline_factor = deadline_factor
        self.min_deadline_s = min_deadline_s
        self.cold_deadline_s = cold_deadline_s
        self.hang_kill_factor = hang_kill_factor
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.breaker_respawns = breaker_respawns
        self.stall_escape_s = (
            stall_escape_s
            if stall_escape_s is not None
            else max(4.0 * cold_deadline_s, 5.0)
        )
        self.adaptive = adaptive
        self.autoscale = autoscale
        self.min_workers = (
            min(min_workers, self.size)
            if min_workers is not None
            else min(2, self.size)
        )
        self.scale_quantum_s = scale_quantum_s
        self.steal_min_s = steal_min_s
        self.skew_ratio = skew_ratio
        self.skew_cell_floor_s = skew_cell_floor_s
        self.idle_reap_s = idle_reap_s
        self.stats = PoolStats()
        self._workers: list[_Worker] = []
        self._next_chunk_id = 0
        self._closed = False
        self._cell_cost: dict[str, _CellCost] = {}
        self._slot_consecutive: dict[int, int] = {}
        self._respawn_not_before: dict[int, float] = {}
        self._last_chunks: list[_Chunk] = []
        #: Serializes map() so concurrent callers (the sweep service's
        #: job threads) cannot interleave dispatch on shared workers.
        self._lock = threading.RLock()
        self._last_used = time.monotonic()
        self._cost_seeded: set[str] = set()
        _REGISTRY.add(self)

    # ---- worker lifecycle --------------------------------------------------

    def _spawn(self, slot: int) -> _Worker:
        shm = SharedMemory(
            create=True, size=_HEADER_BYTES + RING_SLOTS * 8
        )
        header, ring = _ring_views(shm)
        header[0] = 0
        parent_conn, child_conn = _CTX.Pipe(duplex=True)
        process = _CTX.Process(
            target=_worker_main,
            args=(slot, child_conn, shm.name),
            daemon=True,
            name=f"repro-sweep-{slot}",
        )
        process.start()
        child_conn.close()
        self.stats.workers_spawned += 1
        return _Worker(slot, process, parent_conn, shm, header, ring)

    def _retire(self, worker: _Worker) -> None:
        """Close a worker's parent-side resources (process may live).

        Tolerates every partial state a worker can be in — already
        dead, already harvested (conn closed), ring already unlinked —
        so teardown paths (shutdown, reap, signal-time drains) can
        retire unconditionally without leaking the shm ring.
        """
        try:
            worker.conn.close()
        except OSError:
            pass
        try:
            if worker.process.is_alive():
                worker.process.kill()
            worker.process.join(timeout=1.0)
        except (OSError, ValueError):
            pass
        try:
            worker.shm.close()
        except OSError:
            pass
        try:
            worker.shm.unlink()
        except (FileNotFoundError, OSError):
            pass

    def _replace_worker(self, slot: int) -> None:
        """Retire the worker in ``slot`` and spawn a fresh one."""
        self._retire(self._workers[slot])
        self._workers[slot] = self._spawn(slot)
        self.stats.respawns += 1

    def _reset_workers(self) -> None:
        """Tear down every worker; the next call respawns lazily."""
        for worker in self._workers:
            self._retire(worker)
        self._workers = []
        self._slot_consecutive = {}
        self._respawn_not_before = {}

    def _ensure_workers(self, target: int | None = None) -> int:
        """Bring the live worker count to ``target`` (default ``size``).

        Growth spawns at the end of the slot list; shrinkage (only
        with ``autoscale``, and only between calls, when nothing is in
        flight) retires trailing workers, so slot numbers always equal
        list indices. Returns how many workers were retired, so the
        caller can account the scale-down.
        """
        if self._closed:
            raise ConfigError("pool has been shut down")
        if target is None:
            target = self.size
        target = max(1, min(target, self.size))
        while len(self._workers) < target:
            self._workers.append(self._spawn(len(self._workers)))
        retired = 0
        while self.autoscale and len(self._workers) > target:
            self._retire(self._workers.pop())
            retired += 1
        return retired

    def _target_workers(self, fn_key: str, ncells: int) -> int:
        """Autoscaling target for a sweep of ``ncells`` of ``fn_key``.

        A function the cost model has not seen runs at full ``size``
        (the pre-autoscale behavior — no projection, no risk); a known
        function gets one worker per ``scale_quantum_s`` of projected
        sweep time, clamped to the ``min_workers``..``size`` band.
        """
        if not self.autoscale:
            return self.size
        cost = self._cell_cost.get(fn_key)
        if cost is None:
            return self.size
        floor = max(1, min(self.min_workers, self.size))
        want = int(cost.mean_s * ncells / self.scale_quantum_s) + 1
        return max(floor, min(self.size, want))

    def grow(self, size: int) -> None:
        """Raise the worker-count ceiling (never lowers it)."""
        if size > self.size:
            self.size = min(size, _MAX_WORKERS)

    @property
    def alive(self) -> bool:
        """False once :meth:`shutdown` has run."""
        return not self._closed

    def shutdown(self) -> None:
        """Stop workers and release shared-memory rings.

        Idempotent and safe to call from signal handlers, atexit, and
        service drains alike: every step tolerates workers that are
        already dead, pipes that are already closed, and rings that
        are already unlinked. ``atexit`` alone is not enough — it does
        not run on SIGTERM, so a killed service would leak every
        worker's ``/dev/shm`` ring; whoever catches the signal calls
        this (see :mod:`repro.experiments.service`) and the rings are
        unlinked no matter what state the workers died in.
        """
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for worker in self._workers:
            try:
                worker.process.join(timeout=1.0)
            except (OSError, ValueError):
                pass
            try:
                self._retire(worker)
            except Exception:
                # Last resort: the ring segment must not outlive us.
                try:
                    worker.shm.unlink()
                except (FileNotFoundError, OSError):
                    pass
        self._workers = []

    def reap_idle(self, max_idle_s: float | None = None) -> int:
        """Retire all workers if the pool has been idle long enough.

        ``max_idle_s`` overrides the pool's ``idle_reap_s`` (both
        ``None`` disables the reap). Returns the number of workers
        retired. Never blocks a sweep: if :meth:`map` holds the
        dispatch lock the pool is by definition not idle and the reap
        is skipped. Workers respawn lazily on the next call, paying
        one spawn round-trip — the right trade for a service that may
        sit quiet for hours between tenant bursts.
        """
        limit = max_idle_s if max_idle_s is not None else self.idle_reap_s
        if limit is None or self._closed or not self._workers:
            return 0
        if not self._lock.acquire(blocking=False):
            return 0
        try:
            if time.monotonic() - self._last_used < limit:
                return 0
            reaped = len(self._workers)
            self._reset_workers()
            return reaped
        finally:
            self._lock.release()

    # ---- per-function cost model -------------------------------------------

    def _deadline_s(self, fn_key: str, ncells: int) -> float:
        """Deadline for a fresh ``ncells``-cell chunk of ``fn_key``.

        A function without observations gets ``cold_deadline_s``; a
        known one gets ``deadline_factor`` times the larger of the
        projected chunk time and the slowest single cell seen, so a
        chunk that happens to contain the sweep's one heavy cell does
        not expire spuriously.
        """
        cost = self._cell_cost.get(fn_key)
        if cost is None:
            return self.cold_deadline_s
        return max(
            self.min_deadline_s,
            self.deadline_factor * max(cost.mean_s * ncells, cost.max_s),
        )

    def _observe_chunk(
        self,
        fn_key: str,
        compute_s: float,
        cell_max_s: float,
        ncells: int,
    ) -> None:
        """Fold one chunk's worker-reported compute timing into the model."""
        per_cell = compute_s / max(1, ncells)
        cost = self._cell_cost.get(fn_key)
        if cost is None:
            self._cell_cost[fn_key] = _CellCost(per_cell, cell_max_s)
            return
        cost.mean_s = (
            _EWMA_ALPHA * per_cell + (1.0 - _EWMA_ALPHA) * cost.mean_s
        )
        cost.max_s = max(cell_max_s, (1.0 - _PEAK_DECAY) * cost.max_s)
        cost.chunks += 1

    def warm_costs(self, root: str | os.PathLike) -> int:
        """Seed cold cost-model entries from ``root``'s sidecar.

        Fixes the cold-start gap: the EWMA table dies with the
        process, so without this the first sweep of every process ran
        blind ``cold_deadline_s`` deadlines with no skew-aware
        chunking. Only functions the live model has *not* observed are
        seeded — a fresh in-process measurement always outranks a
        sidecar written by an earlier process. Each sidecar is read at
        most once per (pool, root) pair; re-warming after new sweeps is
        therefore free. Returns the number of entries seeded.
        """
        resolved = str(Path(root).resolve())
        if resolved in self._cost_seeded:
            return 0
        self._cost_seeded.add(resolved)
        seeded = 0
        for fn_key, cost in load_costs(root).items():
            if fn_key not in self._cell_cost:
                self._cell_cost[fn_key] = cost
                seeded += 1
        return seeded

    def persist_costs(self, root: str | os.PathLike) -> bool:
        """Write the live cost model to ``root``'s sidecar, best-effort.

        Called after each store-backed sweep so the next process
        warm-starts from this one's observations. No-op (``False``)
        when the model is empty or the write fails.
        """
        if not self._cell_cost:
            return False
        return save_costs(root, self._cell_cost)

    # ---- dispatch ----------------------------------------------------------

    def chunk_size(self, ncells: int) -> int:
        """Cells per chunk: ~4 chunks per worker, capped for balance."""
        per_worker = -(-ncells // (self.size * 4))
        return max(1, min(MAX_CHUNK_CELLS, per_worker))

    @staticmethod
    def chunk_spans(ncells: int, step: int) -> list[tuple[int, int]]:
        """Chunk boundaries with a tapered tail, in dispatch order.

        Leading chunks carry ``step`` cells; once at most ``2 * step``
        cells remain, chunk sizes halve toward the end (floor 1). An
        expensive trailing cell (figure7's 6B-element implicit cells
        vs 125M) then serializes at most a small final chunk instead
        of a full quarter-of-a-worker's-share, while the bulk of the
        sweep still pays per-chunk IPC cost on big chunks. Spans are a
        pure function of ``(ncells, step)``, so dispatch order and
        reassembly stay deterministic.
        """
        spans: list[tuple[int, int]] = []
        lo = 0
        while ncells - lo > 2 * step:
            spans.append((lo, lo + step))
            lo += step
        while lo < ncells:
            size = max(1, min(step, (ncells - lo + 1) // 2))
            spans.append((lo, lo + size))
            lo += size
        return spans

    def plan_spans(
        self, ncells: int, step: int, fn_key: str
    ) -> list[tuple[int, int]]:
        """Chunk boundaries for one call, sized by measured skew.

        When the cost model knows ``fn_key`` and its per-cell skew
        (``max_s / mean_s``) clears ``skew_ratio`` — with the peak
        above ``skew_cell_floor_s``, so microsecond noise never
        engages — chunks shrink uniformly to ``step / skew`` cells
        (floor 1, chunk count capped): the slowest cell observed then
        costs about one chunk, not a ``step``-cell convoy behind it.
        Otherwise (cold model, calm sweep, or ``adaptive=False``) the
        static halving taper applies. Spans depend only on model state
        at call entry, never on completion order, so reassembly stays
        deterministic within the call.
        """
        if self.adaptive:
            cost = self._cell_cost.get(fn_key)
            if (
                cost is not None
                and cost.mean_s > 0.0
                and cost.max_s >= self.skew_cell_floor_s
                and cost.max_s / cost.mean_s >= self.skew_ratio
            ):
                skew = cost.max_s / cost.mean_s
                size = max(
                    1,
                    int(step / skew),
                    -(-ncells // _MAX_ADAPTIVE_CHUNKS),
                )
                size = min(size, step)
                return [
                    (lo, min(lo + size, ncells))
                    for lo in range(0, ncells, size)
                ]
        return self.chunk_spans(ncells, step)

    def map(
        self,
        fn: Callable[..., Any],
        cells: Sequence[tuple],
        chunk_cells: int | None = None,
        chaos: Any | None = None,
    ) -> list[Any]:
        """Map ``fn`` over ``cells`` on the pool, in cell order.

        Exceptions raised by ``fn`` propagate. A worker that dies
        mid-chunk is respawned (with backoff) and the chunk
        resubmitted; hung or slow workers are recovered by chunk
        deadlines and speculative resubmission; corrupt shm payloads
        are refetched over pickle; an unhealthy pool finishes the
        sweep in-process serially under a
        :class:`~repro.errors.DegradedModeWarning` instead of raising.

        ``chaos``, when given, is a
        :class:`repro.experiments.chaos.HarnessFaultInjector` consulted
        once per chunk dispatch; its directives are injected into the
        real workers.

        Calls serialize on an internal lock: the pool's workers, pipes,
        and cost model are shared state, so concurrent callers (the
        sweep service dispatches jobs from a thread pool) queue up
        rather than interleave dispatch. Each sweep still parallelizes
        across the pool's workers internally.
        """
        with self._lock:
            try:
                return self._map_locked(fn, cells, chunk_cells, chaos)
            finally:
                self._last_used = time.monotonic()

    def _map_locked(
        self,
        fn: Callable[..., Any],
        cells: Sequence[tuple],
        chunk_cells: int | None,
        chaos: Any | None,
    ) -> list[Any]:
        if not cells:
            return []
        t_start = time.perf_counter()
        fn_key = cost_key(fn)
        retired = self._ensure_workers(
            self._target_workers(fn_key, len(cells))
        )
        for slot, worker in enumerate(self._workers):
            # Revive slots that died (or were hung-killed) between
            # calls, so every sweep starts with a full complement.
            if not worker.process.is_alive():
                self._replace_worker(slot)
        step = chunk_cells or self.chunk_size(len(cells))
        chunks: list[_Chunk] = []
        for lo, hi in self.plan_spans(len(cells), step, fn_key):
            indices = list(range(lo, hi))
            chunks.append(
                _Chunk(
                    self._next_chunk_id,
                    indices,
                    [cells[i] for i in indices],
                )
            )
            self._next_chunk_id += 1
        self._last_chunks = chunks
        results: list[Any] = [None] * len(cells)
        call = self._run_chunks(fn, fn_key, chunks, results, chaos=chaos)
        call["scaled_down"] += retired
        call["dispatch_seconds"] = time.perf_counter() - t_start
        self.stats.cells += len(cells)
        self.stats.chunks += len(chunks)
        for chunk in chunks:
            self.stats.chunk_cells.observe(len(chunk.indices))
        self.stats.dispatch_seconds += call["dispatch_seconds"]
        self.stats.ipc_wait_seconds += call["ipc_wait_seconds"]
        self.stats.shm_results += call["shm_results"]
        self.stats.pickle_results += call["pickle_results"]
        self.stats.respawns += call["respawns"]
        self.stats.deadline_expiries += call["deadline_expiries"]
        self.stats.speculative += call["speculative"]
        self.stats.ring_corrupt += call["ring_corrupt"]
        self.stats.backoff_seconds += call["backoff_seconds"]
        self.stats.degraded_calls += call["degraded"]
        self.stats.steals += call["steals"]
        self.stats.scaled_up += call["scaled_up"]
        self.stats.scaled_down += call["scaled_down"]
        self._emit_telemetry(fn_key, chunks, call)
        return results

    def _run_chunks(
        self,
        fn: Callable[..., Any],
        fn_key: str,
        chunks: list[_Chunk],
        results: list[Any],
        chaos: Any | None = None,
    ) -> dict[str, Any]:
        """Dispatch chunks, reassemble results; returns per-call stats."""
        todo = list(reversed(chunks))  # pop() from the front of the sweep
        by_id = {c.chunk_id: c for c in chunks}
        assigned: dict[int, dict[int, _Assignment]] = {
            w.slot: {} for w in self._workers
        }
        inflight: dict[int, list[_Assignment]] = {}
        completed: set[int] = set()
        failure: BaseException | None = None
        breaker_reason: str | None = None
        dispatch_counter = 0
        done = 0
        last_progress = time.monotonic()
        deadline_budget = max(16, 4 * len(chunks))
        respawn_budget = max(8, 4 * self.size)
        call: dict[str, Any] = {
            "ipc_wait_seconds": 0.0,
            "shm_results": 0,
            "pickle_results": 0,
            "respawns": 0,
            "deadline_expiries": 0,
            "speculative": 0,
            "ring_corrupt": 0,
            "backoff_seconds": 0.0,
            "degraded": 0,
            "steals": 0,
            "scaled_up": 0,
            "scaled_down": 0,
        }

        def record_failure(exc: BaseException) -> None:
            # Fail fast: keep the first error, abandon undispatched
            # chunks, and only drain what is already in flight.
            nonlocal failure, done
            if failure is None:
                failure = exc
            while todo:
                chunk = todo.pop()
                if chunk.chunk_id not in completed:
                    completed.add(chunk.chunk_id)
                    done += 1

        def send_chunk(slot: int, chunk: _Chunk) -> None:
            nonlocal dispatch_counter
            worker = self._workers[slot]
            directive = None
            if chaos is not None:
                directive = chaos.on_dispatch(
                    dispatch_counter, chunk.chunk_id
                )
            dispatch_counter += 1
            prior = len(inflight.get(chunk.chunk_id, []))
            assignment = _Assignment(
                chunk,
                slot,
                time.monotonic(),
                # Deadlines double per prior assignment so a chunk
                # that is legitimately heavy (not hung) stops
                # re-speculating once its deadline catches up.
                self._deadline_s(fn_key, len(chunk.cells))
                * (2 ** min(prior, 8)),
            )
            assigned[slot][chunk.chunk_id] = assignment
            inflight.setdefault(chunk.chunk_id, []).append(assignment)
            if directive is not None and directive[0] == "drop":
                return  # parent-enacted pipe loss: never sent
            try:
                worker.conn.send(
                    (
                        "run", chunk.chunk_id, fn, chunk.cells,
                        directive, chunk.force_pickle,
                    )
                )
            except (OSError, ValueError):
                # Worker died under us before delivery; the deadline
                # or the next harvest recovers the chunk. Not counted
                # as an attempt: the worker never saw it.
                return
            assignment.delivered = True
            chunk.attempts += 1

        def dispatch(slot: int) -> None:
            worker = self._workers[slot]
            if worker.dead:
                return
            while (
                todo
                and failure is None
                and len(assigned.setdefault(slot, {})) < _PREFETCH
            ):
                chunk = todo.pop()
                if chunk.chunk_id in completed:
                    continue
                if chunk.chunk_id in assigned[slot]:
                    todo.append(chunk)
                    break
                send_chunk(slot, chunk)

        def fill() -> None:
            for slot in range(len(self._workers)):
                dispatch(slot)

        def live_backlog(slot: int) -> list[_Assignment]:
            return [
                a
                for a in assigned.get(slot, {}).values()
                if not a.expired
            ]

        def try_steal(now: float) -> None:
            # Work stealing: with the queue drained, an idle worker
            # takes the newest (certainly unstarted — FIFO pipe, the
            # older assignment is in front of it) prefetched chunk of
            # the most-loaded worker. The victim gets a cancel so it
            # skips the chunk if it has not started it; if the cancel
            # loses the race, first-result-wins dedup keeps the sweep
            # bit-identical. Only victims provably busy for at least
            # steal_min_s are robbed, so short healthy sweeps finish
            # without steal churn.
            if not self.adaptive or todo or failure is not None:
                return
            for thief in self._workers:
                if thief.dead or live_backlog(thief.slot):
                    continue
                victim_live: list[_Assignment] = []
                for worker in self._workers:
                    if worker.dead or worker.slot == thief.slot:
                        continue
                    backlog = live_backlog(worker.slot)
                    if len(backlog) >= 2 and len(backlog) > len(
                        victim_live
                    ):
                        victim_live = backlog
                if not victim_live:
                    return
                victim_live.sort(key=lambda a: a.sent_at)
                if now - victim_live[0].sent_at < self.steal_min_s:
                    return
                prey = victim_live[-1]
                chunk = prey.chunk
                if (
                    chunk.chunk_id in completed
                    or chunk.chunk_id in assigned.get(thief.slot, {})
                ):
                    continue
                prey.expired = True
                assigned.get(prey.slot, {}).pop(chunk.chunk_id, None)
                try:
                    self._workers[prey.slot].conn.send(
                        ("cancel", chunk.chunk_id)
                    )
                except (OSError, ValueError):
                    pass  # victim dying; harvest will also skip it
                call["steals"] += 1
                send_chunk(thief.slot, chunk)

        def autoscale_tick() -> None:
            # Mid-call worker-count correction, one step per loop
            # iteration. Growth: the remaining queue projects past
            # scale_quantum_s per live worker (or the model is cold),
            # and the ceiling allows another worker. Shrink: queue
            # empty, so trailing workers with nothing in flight retire
            # down to the floor — the tail of a sweep does not hold
            # `size` idle processes.
            if not self.autoscale or failure is not None:
                return
            floor = max(1, min(self.min_workers, self.size))
            if todo:
                if len(self._workers) >= self.size:
                    return
                cost = self._cell_cost.get(fn_key)
                todo_cells = sum(len(c.cells) for c in todo)
                live = sum(1 for w in self._workers if not w.dead)
                if cost is None or (
                    cost.mean_s * todo_cells
                    > self.scale_quantum_s * max(1, live)
                ):
                    slot = len(self._workers)
                    self._workers.append(self._spawn(slot))
                    assigned.setdefault(slot, {})
                    call["scaled_up"] += 1
                return
            if len(self._workers) <= floor:
                return
            worker = self._workers[-1]
            if not live_backlog(worker.slot):
                self._workers.pop()
                self._retire(worker)
                assigned.pop(worker.slot, None)
                call["scaled_down"] += 1

        def harvest(slot: int) -> None:
            # One-shot teardown of an unusable worker (dead process or
            # EOF pipe): drop it from the wait set, recover its
            # chunks, schedule a backed-off respawn.
            nonlocal breaker_reason
            worker = self._workers[slot]
            if worker.dead:
                return
            worker.dead = True
            try:
                worker.conn.close()
            except OSError:
                pass
            lost = list(assigned[slot].values())
            assigned[slot].clear()
            for assignment in lost:
                assignment.expired = True
            # Delivered-attempt exhaustion outranks breaker
            # bookkeeping: a chunk that keeps killing workers is a
            # poison chunk, not an unhealthy pool, and running it
            # in-process serially would kill the parent too.
            for assignment in lost:
                chunk = assignment.chunk
                if chunk.chunk_id in completed:
                    continue
                if chunk.attempts >= _MAX_CHUNK_ATTEMPTS:
                    if chaos is None:
                        self.shutdown()
                        raise RetryExhaustedError(
                            f"sweep chunk {chunk.chunk_id} killed its "
                            f"worker {chunk.attempts} times "
                            f"(cells {chunk.indices[0]}.."
                            f"{chunk.indices[-1]})",
                            attempts=chunk.attempts,
                        )
                    # Injected kills are not poison cells: degrade
                    # so the chaotic sweep still completes.
                    if breaker_reason is None:
                        breaker_reason = (
                            f"chunk {chunk.chunk_id} exhausted its "
                            f"{chunk.attempts} delivered attempts "
                            "under chaos injection"
                        )
            consecutive = self._slot_consecutive.get(slot, 0) + 1
            self._slot_consecutive[slot] = consecutive
            backoff = min(
                self.backoff_max_s,
                self.backoff_base_s * (2 ** (consecutive - 1)),
            )
            self._respawn_not_before[slot] = time.monotonic() + backoff
            call["backoff_seconds"] += backoff
            if (
                consecutive >= self.breaker_respawns
                and breaker_reason is None
            ):
                breaker_reason = (
                    f"worker slot {slot} crash-looped "
                    f"({consecutive} consecutive respawns)"
                )
            requeue = []
            for assignment in lost:
                chunk = assignment.chunk
                if chunk.chunk_id in completed or chunk in todo:
                    continue
                others = [
                    a
                    for a in inflight.get(chunk.chunk_id, [])
                    if not a.expired
                ]
                if not others:
                    requeue.append(chunk)
            # Resubmit at the front so lost work finishes promptly.
            todo.extend(reversed(requeue))

        def respawn_due() -> None:
            nonlocal breaker_reason
            now = time.monotonic()
            for slot, worker in enumerate(self._workers):
                if not worker.dead:
                    continue
                if call["respawns"] >= respawn_budget:
                    if breaker_reason is None:
                        breaker_reason = (
                            f"respawn budget exhausted "
                            f"({call['respawns']} respawns this call)"
                        )
                    return
                if now < self._respawn_not_before.get(slot, 0.0):
                    continue
                worker.process.join(timeout=0.5)
                worker.shm.close()
                try:
                    worker.shm.unlink()
                except FileNotFoundError:
                    pass
                self._workers[slot] = self._spawn(slot)
                call["respawns"] += 1

        def pick_speculation_slot(chunk_id: int) -> int | None:
            best: int | None = None
            best_load = None
            for slot, worker in enumerate(self._workers):
                if worker.dead or chunk_id in assigned[slot]:
                    continue
                load = len(assigned[slot])
                if best_load is None or load < best_load:
                    best, best_load = slot, load
            return best

        def scan() -> None:
            # Expire blown deadlines, speculate dead chunks onto other
            # workers, kill provably hung workers, watch for stalls.
            nonlocal done, breaker_reason
            now = time.monotonic()
            for chunk_id, assignments in list(inflight.items()):
                if chunk_id in completed:
                    continue
                for assignment in assignments:
                    if (
                        not assignment.expired
                        and now - assignment.sent_at > assignment.deadline_s
                    ):
                        assignment.expired = True
                        call["deadline_expiries"] += 1
                        if not assignment.delivered:
                            # The worker never saw this chunk (dropped
                            # dispatch or failed send): no result can
                            # ever arrive, so free the prefetch slot —
                            # otherwise the stale entry starves the
                            # worker's dispatch capacity for the rest
                            # of the pool's life.
                            assigned.get(assignment.slot, {}).pop(
                                assignment.chunk.chunk_id, None
                            )
                if any(not a.expired for a in assignments):
                    continue
                if failure is not None:
                    # Draining after an error: abandon, don't recover.
                    completed.add(chunk_id)
                    done += 1
                    continue
                if call["deadline_expiries"] > deadline_budget:
                    if breaker_reason is None:
                        breaker_reason = (
                            "deadline budget exhausted "
                            f"({call['deadline_expiries']} expiries "
                            f"this call, budget {deadline_budget})"
                        )
                    continue
                chunk = by_id[chunk_id]
                if chunk in todo:
                    continue  # queued for refetch; dispatch resends it
                slot = pick_speculation_slot(chunk_id)
                if slot is None:
                    continue
                call["speculative"] += 1
                chunk.speculated = True
                send_chunk(slot, chunk)
            for slot, worker in enumerate(self._workers):
                if worker.dead or not worker.process.is_alive():
                    continue
                for assignment in assigned[slot].values():
                    overdue = now - assignment.sent_at
                    if (
                        assignment.expired
                        and assignment.chunk.chunk_id in completed
                        and worker.last_result_at < assignment.sent_at
                        and overdue
                        > self.hang_kill_factor * assignment.deadline_s
                    ):
                        # The chunk finished elsewhere and this worker
                        # has delivered nothing since the send: it is
                        # provably contributing nothing. Kill it; the
                        # harvest/respawn path takes over.
                        worker.process.kill()
                        break
            if (
                done < len(chunks)
                and now - last_progress > self.stall_escape_s
                and breaker_reason is None
            ):
                breaker_reason = (
                    f"no progress for {self.stall_escape_s:.1f}s"
                )

        def loop_timeout() -> float:
            now = time.monotonic()
            margin = 0.25
            for chunk_id, assignments in inflight.items():
                if chunk_id in completed:
                    continue
                for assignment in assignments:
                    if assignment.expired:
                        continue
                    margin = min(
                        margin,
                        assignment.sent_at
                        + assignment.deadline_s
                        - now,
                    )
            return max(0.02, margin)

        fill()
        while done < len(chunks):
            scan()
            if breaker_reason is not None:
                break
            for slot, worker in enumerate(self._workers):
                if not worker.dead and not worker.process.is_alive():
                    harvest(slot)
            if breaker_reason is not None:
                break
            respawn_due()
            if breaker_reason is not None:
                break
            fill()
            try_steal(time.monotonic())
            autoscale_tick()
            if done >= len(chunks):
                break
            conns = [w.conn for w in self._workers if not w.dead]
            t_wait = time.perf_counter()
            if conns:
                ready = wait(conns, timeout=loop_timeout())
            else:
                time.sleep(0.01)
                ready = []
            call["ipc_wait_seconds"] += time.perf_counter() - t_wait
            for conn in ready:
                worker = next(
                    (
                        w
                        for w in self._workers
                        if w.conn is conn and not w.dead
                    ),
                    None,
                )
                if worker is None:
                    continue  # conn replaced by a respawn this round
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    harvest(worker.slot)
                    continue
                now = time.monotonic()
                worker.last_result_at = now
                self._slot_consecutive[worker.slot] = 0
                chunk_id = msg[2]
                if msg[0] == "error":
                    assignment = assigned[worker.slot].pop(chunk_id, None)
                    if assignment is not None:
                        assignment.expired = True
                    if chunk_id not in completed:
                        completed.add(chunk_id)
                        done += 1
                    record_failure(msg[3])
                    last_progress = now
                    continue
                if msg[0] == "shm":
                    _, _, _, start, count, cols, seq, crc = msg[:8]
                    compute_s, cell_max_s = msg[8], msg[9]
                    pos = start % RING_SLOTS
                    head = min(count, RING_SLOTS - pos)
                    values = np.empty(count, dtype=np.float64)
                    values[:head] = worker.ring[pos:pos + head]
                    if count > head:
                        values[head:] = worker.ring[:count - head]
                    worker.read_header[0] = start + count
                    intact = (
                        seq == worker.seq_expected
                        and _payload_crc(values) == crc
                    )
                    worker.seq_expected = seq + 1
                    assignment = assigned[worker.slot].pop(chunk_id, None)
                    if assignment is not None:
                        assignment.expired = True
                    if not intact:
                        call["ring_corrupt"] += 1
                        chunk = by_id.get(chunk_id)
                        if (
                            chunk is not None
                            and chunk_id not in completed
                            and failure is None
                            and chunk not in todo
                        ):
                            # Refetch over the type-exact pickle path;
                            # the corrupt payload is discarded.
                            chunk.force_pickle = True
                            todo.append(chunk)
                        dispatch(worker.slot)
                        continue
                    payload = _decode_numeric(values, cols)
                    call["shm_results"] += 1
                else:
                    payload = msg[3]
                    compute_s, cell_max_s = msg[4], msg[5]
                    call["pickle_results"] += 1
                    assignment = assigned[worker.slot].pop(chunk_id, None)
                    if assignment is not None:
                        assignment.expired = True
                chunk = by_id.get(chunk_id)
                if chunk is not None:
                    # Fold in the worker-reported compute time (not
                    # the parent-side round trip: with _PREFETCH > 1 a
                    # queued chunk's round trip includes waiting
                    # behind its predecessor, which used to inflate
                    # the estimate by up to the prefetch depth).
                    # Duplicates from lost speculation races are real
                    # measurements and are folded in too.
                    self._observe_chunk(
                        fn_key, compute_s, cell_max_s, len(chunk.cells)
                    )
                if chunk is None or chunk_id in completed:
                    # Stale (previous call) or duplicate (speculation
                    # lost the race): payload consumed, result dropped.
                    dispatch(worker.slot)
                    continue
                for index, value in zip(chunk.indices, payload):
                    results[index] = value
                completed.add(chunk_id)
                done += 1
                last_progress = now
                dispatch(worker.slot)
        if (
            breaker_reason is not None
            and failure is None
            and done < len(chunks)
        ):
            self._degrade_serial(
                fn, chunks, completed, results, breaker_reason, call
            )
        if failure is not None:
            raise failure
        return call

    def _degrade_serial(
        self,
        fn: Callable[..., Any],
        chunks: list[_Chunk],
        completed: set[int],
        results: list[Any],
        reason: str,
        call: dict[str, Any],
    ) -> None:
        """Finish the sweep in-process; reset workers for the next call.

        Cell order is deterministic, so the serial tail is
        bit-identical to what the workers would have returned — the
        sweep completes under a :class:`DegradedModeWarning` instead
        of raising.
        """
        warnings.warn(
            "sweep pool degraded to in-process serial execution: "
            f"{reason}",
            DegradedModeWarning,
            stacklevel=4,
        )
        call["degraded"] = 1
        for chunk in chunks:
            if chunk.chunk_id in completed:
                continue
            for index, cell in zip(chunk.indices, chunk.cells):
                results[index] = fn(*cell)
            completed.add(chunk.chunk_id)
        self._reset_workers()

    # ---- observability -----------------------------------------------------

    def _emit_telemetry(
        self, fn_key: str, chunks: list[_Chunk], call: dict[str, Any]
    ) -> None:
        """Flush one call's deltas into the active telemetry session."""
        tel = _tm.current()
        if not tel.enabled:
            return
        m = tel.metrics
        m.counter(_tn.SWEEP_CELLS_TOTAL).inc(
            sum(len(c.indices) for c in chunks)
        )
        m.counter(_tn.SWEEP_CHUNKS_TOTAL).inc(len(chunks))
        for chunk in chunks:
            m.histogram(_tn.SWEEP_CHUNK_CELLS).observe(len(chunk.indices))
        m.counter(_tn.SWEEP_DISPATCH_SECONDS_TOTAL).inc(
            call["dispatch_seconds"]
        )
        m.counter(_tn.SWEEP_IPC_WAIT_SECONDS_TOTAL).inc(
            call["ipc_wait_seconds"]
        )
        m.counter(_tn.SWEEP_RESULTS_TOTAL).inc(
            call["shm_results"], transport="shm"
        )
        m.counter(_tn.SWEEP_RESULTS_TOTAL).inc(
            call["pickle_results"], transport="pickle"
        )
        m.counter(_tn.SWEEP_RESPAWNS_TOTAL).inc(call["respawns"])
        m.gauge(_tn.SWEEP_WORKERS).set(len(self._workers))
        m.counter(_tn.SWEEP_DEADLINE_TOTAL).inc(call["deadline_expiries"])
        m.counter(_tn.SWEEP_SPECULATIVE_TOTAL).inc(call["speculative"])
        m.counter(_tn.SWEEP_RING_CORRUPT_TOTAL).inc(call["ring_corrupt"])
        m.counter(_tn.SWEEP_BACKOFF_SECONDS_TOTAL).inc(
            call["backoff_seconds"]
        )
        m.gauge(_tn.SWEEP_DEGRADED).set(call["degraded"])
        m.counter(_tn.SWEEP_STEALS_TOTAL).inc(call["steals"])
        m.counter(_tn.SWEEP_WORKERS_SCALED_TOTAL).inc(
            call["scaled_up"], direction="up"
        )
        m.counter(_tn.SWEEP_WORKERS_SCALED_TOTAL).inc(
            call["scaled_down"], direction="down"
        )
        cost = self._cell_cost.get(fn_key)
        if cost is not None:
            m.gauge(_tn.SWEEP_EWMA_CELL_SECONDS).set(cost.mean_s)


#: The process-wide pool singleton (``None`` until first use).
_POOL: PersistentPool | None = None


def get_pool(jobs: int) -> PersistentPool:
    """The shared pool, created lazily and grown to ``jobs`` workers."""
    global _POOL
    if _POOL is None or not _POOL.alive:
        _POOL = PersistentPool(jobs)
    else:
        _POOL.grow(jobs)
    return _POOL


def current_pool() -> PersistentPool | None:
    """The live singleton, or ``None`` if no pool is up.

    Unlike :func:`get_pool` this never creates or grows a pool, so
    callers that only want to poke an existing one (the service's
    idle reaper, cost persistence) can't accidentally fork workers.
    """
    if _POOL is not None and _POOL.alive:
        return _POOL
    return None


def shutdown_pool() -> None:
    """Tear down the singleton (used by tests and the atexit hook)."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None


atexit.register(shutdown_pool)
