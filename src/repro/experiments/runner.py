"""Shared experiment infrastructure.

:func:`sort_variant_seconds` maps the paper's algorithm labels
(GNU-flat, GNU-cache, MLM-ddr, MLM-sort, MLM-implicit) to the right
node configuration and timed plan; :class:`ExperimentResult` is the
uniform record every driver returns; :func:`sweep_map` fans a sweep's
independent cells out across worker processes with deterministic
ordering and two-tier config-hash memoization (in-memory dict first,
then the on-disk :mod:`~repro.experiments.store` result store);
:func:`replay_session` switches :func:`sweep_map` into pure-lookup
replay, the engine-free re-render mode behind ``repro-knl replay``.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import re
import warnings
from concurrent.futures import ProcessPoolExecutor
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro.errors import AllocationError, ConfigError, StoreMissError
from repro.experiments.pool import cost_key
from repro.algorithms.costs import SortCostModel
from repro.algorithms.mlm_sort import MLMSortConfig, mlm_sort_plan
from repro.algorithms.parallel_sort import gnu_sort_plan
from repro.core.modes import UsageMode
from repro.memkind.allocator import Heap
from repro.memkind.kinds import MEMKIND_DEFAULT, MEMKIND_HBW_PREFERRED
from repro.experiments.store import ResultStore, default_store, get_store
from repro.simknl.batch import PlanBatch, PlanBatchSpec
from repro.simknl.engine import RunResult
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode
from repro.telemetry import names as _tn
from repro.telemetry import runtime as _tm
from repro.units import INT64

#: Paper algorithm labels in Table 1 order.
VARIANTS = ("GNU-flat", "GNU-cache", "MLM-ddr", "MLM-sort", "MLM-implicit")


@dataclass(frozen=True)
class SeriesSpec:
    """How a driver's rows render as an ASCII series chart.

    Drivers that make sense as charts (the figure and sweep
    experiments) attach one of these as a ``series_spec`` attribute on
    the driver function; the CLI's ``--chart`` flag picks it up.
    """

    x: str
    ys: tuple[str, ...]


@dataclass
class ExperimentResult:
    """Uniform result record for all drivers.

    Attributes
    ----------
    experiment:
        Identifier, e.g. ``"table1"``.
    title:
        Human-readable title.
    columns:
        Ordered column names of ``rows``.
    rows:
        One dict per reported row.
    notes:
        Free-form annotations (substitutions, known deviations).
    """

    experiment: str
    title: str
    columns: list[str]
    rows: list[dict[str, Any]]
    notes: list[str] = field(default_factory=list)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise ConfigError(f"unknown column {name!r}")
        return [r.get(name) for r in self.rows]


#: Default ``object.__repr__`` form: ``<pkg.Cls object at 0x7f...>``.
_ADDRESS_REPR = re.compile(r" at 0x[0-9a-fA-F]+>")


def _canonical_repr(obj: Any) -> str:
    """``repr`` fallback for :func:`config_hash`, rejecting unstable reprs.

    An object that falls back to ``object.__repr__`` embeds its memory
    address, so the "same" configuration would hash differently in
    every process — memo entries shipped back from workers would
    silently never hit. Raising here turns that silent cache miss into
    a loud configuration error naming the offending payload field.
    """
    text = repr(obj)
    if _ADDRESS_REPR.search(text):
        raise ConfigError(
            f"config_hash: field of type {type(obj).__name__!r} has an "
            f"address-bearing repr ({text!r}); its hash would differ in "
            "every process, so memoized sweep results could never be "
            "shared. Give the type a stable __repr__ (e.g. make it a "
            "dataclass) or pass primitive values instead."
        )
    return text


def config_hash(payload: Any) -> str:
    """Deterministic hash of an experiment cell's configuration.

    Canonicalizes ``payload`` through JSON (sorted keys, ``repr`` for
    non-JSON types — dataclass reprs are stable and carry every field)
    and returns a short SHA-256 hex digest. Two calls with equal
    configurations hash identically across processes and sessions,
    which is what makes :func:`sweep_map`'s memo safe to share.

    Payload objects whose repr embeds a memory address (the default
    ``object.__repr__``) are rejected with
    :class:`~repro.errors.ConfigError`: such a hash would be unique per
    process and the memo would silently never hit across workers.
    """
    canonical = json.dumps(
        payload, sort_keys=True, default=_canonical_repr,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


#: Process-wide memo for :func:`sweep_map` (config hash -> result).
_SWEEP_MEMO: dict[str, Any] = {}
_SWEEP_MEMO_MAX = 65536

#: One-time flag for the memo-capacity warning (reset only by tests).
_MEMO_CAP_WARNED = False


def _memo_insert(memo: dict[str, Any], key: str, value: Any) -> bool:
    """Cache one result, visibly dropping it when the memo is full.

    The cap used to be enforced silently — a long-lived process whose
    sweeps stopped memoizing gave no signal at all. A drop now emits a
    one-time :class:`UserWarning` plus a ``sweep.memo_evicted_total``
    increment per dropped entry while a telemetry session is active.
    Returns whether the entry was cached.
    """
    global _MEMO_CAP_WARNED
    if key in memo:
        return True
    if len(memo) < _SWEEP_MEMO_MAX:
        memo[key] = value
        return True
    if not _MEMO_CAP_WARNED:
        _MEMO_CAP_WARNED = True
        warnings.warn(
            f"sweep_map memo reached its cap of {_SWEEP_MEMO_MAX} "
            "entries; new results are computed but no longer cached "
            "in memory (counted by sweep.memo_evicted_total; the "
            "on-disk result store, when configured, still caches "
            "them)",
            stacklevel=3,
        )
    tel = _tm.current()
    if tel.enabled:
        tel.metrics.counter(_tn.SWEEP_MEMO_EVICTED_TOTAL).inc()
    return False


#: The store :func:`replay_session` is replaying from (None = normal).
_REPLAY: ContextVar[ResultStore | None] = ContextVar(
    "repro_replay_store", default=None
)


@contextlib.contextmanager
def replay_session(
    store: ResultStore | str | os.PathLike,
) -> Iterator[ResultStore]:
    """Run the enclosed block in pure-replay mode.

    Inside the block every :func:`sweep_map` call resolves its cells
    from ``store`` alone — the in-memory memo is bypassed (so the
    outcome does not depend on what this process happened to compute
    earlier) and the cell function is **never invoked**. Cells absent
    from the store raise :class:`~repro.errors.StoreMissError` listing
    the missing ``config_hash`` keys. Because drivers are
    deterministic and stored floats round-trip bit-identically, a
    replayed artifact is byte-identical to a fresh run over the same
    configuration.
    """
    resolved = get_store(store)
    token = _REPLAY.set(resolved)
    try:
        yield resolved
    finally:
        _REPLAY.reset(token)


def _cell_keys(name: str, cells: Sequence[tuple]) -> list[str]:
    """Per-cell ``config_hash((name, cell))``, hashed once per unique cell.

    Sweeps legitimately repeat cells (e.g. a baseline column present in
    every row) and the hash's JSON canonicalization — which also runs
    the address-bearing-repr validation on every payload field — is the
    expensive part, so duplicates reuse the first occurrence's digest.
    Unhashable cell payloads simply skip the dedup and hash directly.
    """
    digests: dict[tuple, str] = {}
    keys: list[str] = []
    for cell in cells:
        try:
            key = digests.get(cell)
            if key is None:
                key = digests[cell] = config_hash((name, cell))
        except TypeError:
            key = config_hash((name, cell))
        keys.append(key)
    return keys


def _replay_lookup(
    store: ResultStore, name: str, cells: Sequence[tuple]
) -> list[Any]:
    """Resolve every cell from the store or fail listing the misses."""
    keys = _cell_keys(name, cells)
    results: list[Any] = [None] * len(cells)
    missing: list[str] = []
    for i, key in enumerate(keys):
        found, value = store.get(key, fn=name)
        if found:
            results[i] = value
        elif key not in missing:
            missing.append(key)
    if missing:
        shown = ", ".join(missing[:10])
        more = f", ... ({len(missing) - 10} more)" if len(missing) > 10 else ""
        raise StoreMissError(
            f"replay: store {store.root} is missing {len(missing)} of "
            f"{len(set(keys))} cells for {name} [{shown}{more}]; warm "
            "it by running the experiment once with the same --store",
            missing=tuple(missing),
        )
    return results


#: Parallel backends :func:`sweep_map` can fan cells out through.
SWEEP_POOLS = ("persistent", "fork")


def default_pool() -> str:
    """The parallel backend used when ``pool`` is not given.

    ``persistent`` (the shared-memory worker pool in
    :mod:`repro.experiments.pool`) unless the ``REPRO_SWEEP_POOL``
    environment variable selects ``fork``.
    """
    backend = os.environ.get("REPRO_SWEEP_POOL", "persistent")
    if backend not in SWEEP_POOLS:
        raise ConfigError(
            f"REPRO_SWEEP_POOL must be one of {SWEEP_POOLS}, "
            f"got {backend!r}"
        )
    return backend


def sweep_map(
    fn: Callable[..., Any],
    cells: Sequence[tuple],
    jobs: int = 1,
    memo: dict[str, Any] | None = None,
    pool: str | None = None,
    chaos: Any | None = None,
    store: ResultStore | str | os.PathLike | None = None,
) -> list[Any]:
    """Map ``fn`` over independent sweep cells, optionally in parallel.

    Parameters
    ----------
    fn:
        A module-level (picklable) cell function; called as
        ``fn(*cell)``.
    cells:
        The argument tuples, one per cell. Results come back in cell
        order regardless of completion order, so a parallel sweep is
        bit-identical to the serial one.
    jobs:
        Worker processes. ``1`` (the default) runs serially in this
        process.
    memo:
        Optional explicit memo dict (config hash -> result). Defaults
        to a process-wide cache, so re-running a sweep with overlapping
        cells (e.g. ``repro-knl all``) skips finished work.
    pool:
        Parallel backend for ``jobs > 1``: ``"persistent"`` reuses the
        process-lifetime shared-memory worker pool
        (:mod:`repro.experiments.pool`, chunked dispatch, cheap per-cell
        overhead), ``"fork"`` forks a fresh
        :class:`~concurrent.futures.ProcessPoolExecutor` per call (one
        pickle round-trip per cell). ``None`` uses :func:`default_pool`.
    chaos:
        Optional :class:`repro.experiments.chaos.HarnessFaultInjector`
        injecting harness faults into the sweep's workers. Requires
        ``jobs > 1`` and the persistent backend, and bypasses both
        memo tiers entirely — a chaos run must exercise real
        dispatches, not cache hits.
    store:
        On-disk second memo tier: a
        :class:`~repro.experiments.store.ResultStore` or a directory
        path. ``None`` uses the process default from the
        ``REPRO_STORE`` environment variable (no store when unset).

    Cells are memoized on ``config_hash((qualname, cell))`` through a
    **two-tier lookup**: the in-memory memo first, then the on-disk
    result store; a cell missing from both is computed, returned, and
    written through to both tiers (workers report results over IPC;
    the parent persists them), and a memo hit the store lacks is
    backfilled to disk — so any sweep run with a store leaves that
    store replay-complete, even for cells an earlier store-less call
    already memoized. Equal configurations are therefore
    computed once — across drivers in the same process via the memo,
    and across processes and CI runs via the store. Cells that repeat
    *within* one call are deduplicated before dispatch. The memo is
    bounded by ``_SWEEP_MEMO_MAX`` entries; once full, new results are
    still returned but no longer cached in memory (a one-time warning
    plus ``sweep.memo_evicted_total`` make the drops visible), while
    the store keeps accepting them under its own LRU bound.

    Inside a :func:`replay_session` none of the above happens: every
    cell is resolved from the replay store alone and a missing cell
    raises :class:`~repro.errors.StoreMissError` — the cell function
    is never invoked.

    While a telemetry session is active (and no replay is) the sweep
    runs every cell serially in-process and bypasses both *read*
    tiers: child processes cannot feed the parent's metric registry,
    and a cache hit would skip the cell's instrumentation side effects
    — either way the collected metrics would silently diverge from a
    plain serial run. Computed results are still written through to
    both tiers (writes have no instrumentation to skip).
    """
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    if pool is not None and pool not in SWEEP_POOLS:
        raise ConfigError(
            f"pool must be one of {SWEEP_POOLS}, got {pool!r}"
        )
    # The memo and the pool's cost model key functions identically
    # (cost_key), so "same function" means the same thing to cached
    # results and to observed timings.
    name = cost_key(fn)
    replay = _REPLAY.get()
    if replay is not None:
        return _replay_lookup(replay, name, cells)
    if chaos is not None:
        if jobs < 2:
            raise ConfigError(
                "chaos injection needs jobs > 1: harness faults hit "
                "worker processes, and a serial sweep has none"
            )
        backend = pool or default_pool()
        if backend != "persistent":
            raise ConfigError(
                "chaos injection targets the persistent pool; "
                f"pool={backend!r} is not supported"
            )
        from repro.experiments.pool import get_pool

        return get_pool(jobs).map(fn, list(cells), chaos=chaos)
    tier2 = get_store(store) if store is not None else default_store()
    if memo is None:
        memo = _SWEEP_MEMO
    if _tm.current().enabled:
        results = [fn(*cell) for cell in cells]
        # Write-through only: instrumentation already ran, so caching
        # the results for later (non-session) sweeps loses nothing.
        for key, value in zip(_cell_keys(name, cells), results):
            _memo_insert(memo, key, value)
            if tier2 is not None:
                tier2.put(key, value, fn=name)
        return results
    keys = _cell_keys(name, cells)
    results: list[Any] = [memo.get(k) for k in keys]
    # Deduplicate by key: two identical cells in one call must compute
    # once, not twice. ``pending`` maps each missing key to the first
    # cell index that needs it.
    pending: dict[str, int] = {}
    for i, k in enumerate(keys):
        if k not in memo and k not in pending:
            pending[k] = i
    if tier2 is not None:
        # Backfill: a cell this process already memoized may predate
        # the store (e.g. an earlier driver in `repro-knl all --store`
        # computed it store-less). A memo hit must still leave the
        # store replay-complete. The probe validates the entry, not
        # just its path: a corrupt or foreign-function file behind a
        # memo hit must be rewritten, or replay fails on a warm store.
        backfilled: set[str] = set()
        for k in keys:
            if k in memo and k not in backfilled:
                backfilled.add(k)
                if not tier2.probe(k, fn=name):
                    tier2.put(k, memo[k], fn=name)
    if pending and tier2 is not None:
        # Second tier: resolve what the in-memory memo lacks from the
        # on-disk store, warming the memo for the rest of the process.
        for k in list(pending):
            found, value = tier2.get(k, fn=name)
            if found:
                del pending[k]
                _memo_insert(memo, k, value)
                for i, key in enumerate(keys):
                    if key == k:
                        results[i] = value
    if pending:
        pending_keys = list(pending)
        indices = list(pending.values())
        computed_by_key: dict[str, Any] = {}
        spec = getattr(fn, "plan_batch", None)
        if spec is not None:
            # Cross-cell tensor fast path: the driver declared its
            # cells structurally batchable, so lower them all to plans
            # and evaluate the pending set in-process with a handful of
            # NumPy ops, bit-identical to per-cell ``fn`` calls
            # (:mod:`repro.simknl.batch`). Cells whose ``build``
            # declines fall through to the pool/serial dispatch below.
            # Chaos, replay, and telemetry sweeps never reach this
            # branch — they are handled (and fall back) above.
            from repro.simknl.batch import evaluate_plan_batch

            batched, leftover = evaluate_plan_batch(
                spec, [cells[i] for i in indices]
            )
            left = set(leftover)
            for j, k in enumerate(pending_keys):
                if j not in left:
                    computed_by_key[k] = batched[j]
            pending_keys = [pending_keys[j] for j in leftover]
            indices = [indices[j] for j in leftover]
        if indices:
            if jobs > 1:
                backend = pool or default_pool()
                if backend == "persistent":
                    from repro.experiments.pool import get_pool

                    pool_obj = get_pool(jobs)
                    if tier2 is not None:
                        # Warm-start the EWMA cost model from the
                        # store's sidecar so the first sweep of a new
                        # process gets skew-aware chunking instead of
                        # blind cold deadlines; persist afterwards for
                        # the next process.
                        pool_obj.warm_costs(tier2.root)
                    computed = pool_obj.map(
                        fn, [cells[i] for i in indices]
                    )
                    if tier2 is not None:
                        pool_obj.persist_costs(tier2.root)
                else:
                    workers = min(jobs, len(indices), os.cpu_count() or 1)
                    with ProcessPoolExecutor(max_workers=workers) as ex:
                        futures = [
                            ex.submit(fn, *cells[i]) for i in indices
                        ]
                        computed = [fut.result() for fut in futures]
            else:
                computed = [fn(*cells[i]) for i in indices]
            computed_by_key.update(zip(pending_keys, computed))
        for i, k in enumerate(keys):
            if k in computed_by_key:
                results[i] = computed_by_key[k]
        # Warm both tiers. The memo drops (visibly) at its cap; the
        # store enforces its own LRU bound.
        for k, value in computed_by_key.items():
            _memo_insert(memo, k, value)
            if tier2 is not None:
                tier2.put(k, value, fn=name)
    return results


def node_for_variant(variant: str) -> KNLNode:
    """A node booted into the BIOS mode the variant needs."""
    if variant in ("GNU-cache", "MLM-implicit"):
        return KNLNode(KNLNodeConfig(mode=MemoryMode.CACHE))
    return KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))


def paper_megachunk(n: int) -> int:
    """The megachunk sizes the paper reports using for MLM-sort:
    1.5 B elements for the 6 B runs, 1 B otherwise."""
    return 1_500_000_000 if n >= 6_000_000_000 else 1_000_000_000


def _account_buffers(
    node: KNLNode, variant: str, n: int, megachunk: int
) -> None:
    """Account a variant's principal buffers in the active telemetry.

    The timed plans are closed-form flow models — they never touch the
    memkind heap — so a metrics-enabled run walks the same placement
    the real algorithm would make: the input array on DDR and, for the
    explicit-chunking MLM-sort, one megachunk buffer preferring
    MCDRAM. That populates the allocator request/byte counters and the
    per-device high-water gauge honestly (the buffers are freed again;
    high-water marks survive). No-op when telemetry is disabled and
    when a buffer exceeds the simulated region (paper-scale inputs can
    exceed DDR — that is the point of the out-of-core drivers).
    """
    tel = _tm.current()
    if not tel.enabled:
        return
    heap = Heap(node)
    allocations = []
    try:
        allocations.append(
            heap.allocate(int(n) * INT64, MEMKIND_DEFAULT)
        )
    except AllocationError:
        pass
    if variant == "MLM-sort" and heap.has_hbw():
        try:
            allocations.append(
                heap.allocate(int(megachunk) * INT64, MEMKIND_HBW_PREFERRED)
            )
        except AllocationError:
            pass
    for allocation in allocations:
        heap.free(allocation)


def _sort_variant_plan(
    variant: str,
    n: int,
    order: str,
    cost: SortCostModel | None = None,
    megachunk: int | None = None,
    threads: int = 256,
):
    """The ``(node, plan)`` pair behind one Table-1 variant cell."""
    if variant not in VARIANTS:
        raise ConfigError(f"unknown variant {variant!r}; one of {VARIANTS}")
    cost = cost or SortCostModel()
    node = node_for_variant(variant)
    if variant == "GNU-flat":
        plan = gnu_sort_plan(node, n, order, UsageMode.DDR, threads, cost)
    elif variant == "GNU-cache":
        plan = gnu_sort_plan(node, n, order, UsageMode.CACHE, threads, cost)
    else:
        if variant == "MLM-implicit":
            mode, mega = UsageMode.IMPLICIT, n
        elif variant == "MLM-sort":
            mode, mega = UsageMode.FLAT, megachunk or paper_megachunk(n)
        else:  # MLM-ddr
            mode, mega = UsageMode.DDR, megachunk or paper_megachunk(n)
        cfg = MLMSortConfig(
            n=n, megachunk_elements=mega, mode=mode, order=order, threads=threads
        )
        plan = mlm_sort_plan(node, cfg, cost)
    return node, plan


def sort_variant_run(
    variant: str,
    n: int,
    order: str,
    cost: SortCostModel | None = None,
    megachunk: int | None = None,
    threads: int = 256,
) -> RunResult:
    """Execute one Table-1 algorithm variant at paper scale."""
    node, plan = _sort_variant_plan(variant, n, order, cost, megachunk, threads)
    _account_buffers(node, variant, n, megachunk or paper_megachunk(n))
    return node.run(plan)


def sort_variant_seconds(
    variant: str,
    n: int,
    order: str,
    cost: SortCostModel | None = None,
    megachunk: int | None = None,
) -> float:
    """Simulated execution time of one variant, in seconds."""
    return sort_variant_run(variant, n, order, cost, megachunk).elapsed


def _sort_variant_batch(
    variant: str,
    n: int,
    order: str,
    cost: SortCostModel | None = None,
    megachunk: int | None = None,
) -> PlanBatch:
    """Lower one :func:`sort_variant_seconds` cell to its single plan.

    ``_account_buffers`` is a telemetry-only side effect and the batch
    path never runs under an active session, so skipping it here is
    observationally identical to the serial cell.
    """
    node, plan = _sort_variant_plan(variant, n, order, cost, megachunk)
    return PlanBatch(
        resources=tuple(node.resources()),
        plans=(plan,),
        finish=lambda runs: runs[0].elapsed,
    )


#: figure6 and table1 sweep this shared key space; the spec batches both.
sort_variant_seconds.plan_batch = PlanBatchSpec(build=_sort_variant_batch)
