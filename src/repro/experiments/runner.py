"""Shared experiment infrastructure.

:func:`sort_variant_seconds` maps the paper's algorithm labels
(GNU-flat, GNU-cache, MLM-ddr, MLM-sort, MLM-implicit) to the right
node configuration and timed plan; :class:`ExperimentResult` is the
uniform record every driver returns; :func:`sweep_map` fans a sweep's
independent cells out across worker processes with deterministic
ordering and config-hash memoization.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import AllocationError, ConfigError
from repro.algorithms.costs import SortCostModel
from repro.algorithms.mlm_sort import MLMSortConfig, mlm_sort_plan
from repro.algorithms.parallel_sort import gnu_sort_plan
from repro.core.modes import UsageMode
from repro.memkind.allocator import Heap
from repro.memkind.kinds import MEMKIND_DEFAULT, MEMKIND_HBW_PREFERRED
from repro.simknl.engine import RunResult
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode
from repro.telemetry import runtime as _tm
from repro.units import INT64

#: Paper algorithm labels in Table 1 order.
VARIANTS = ("GNU-flat", "GNU-cache", "MLM-ddr", "MLM-sort", "MLM-implicit")


@dataclass(frozen=True)
class SeriesSpec:
    """How a driver's rows render as an ASCII series chart.

    Drivers that make sense as charts (the figure and sweep
    experiments) attach one of these as a ``series_spec`` attribute on
    the driver function; the CLI's ``--chart`` flag picks it up.
    """

    x: str
    ys: tuple[str, ...]


@dataclass
class ExperimentResult:
    """Uniform result record for all drivers.

    Attributes
    ----------
    experiment:
        Identifier, e.g. ``"table1"``.
    title:
        Human-readable title.
    columns:
        Ordered column names of ``rows``.
    rows:
        One dict per reported row.
    notes:
        Free-form annotations (substitutions, known deviations).
    """

    experiment: str
    title: str
    columns: list[str]
    rows: list[dict[str, Any]]
    notes: list[str] = field(default_factory=list)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise ConfigError(f"unknown column {name!r}")
        return [r.get(name) for r in self.rows]


#: Default ``object.__repr__`` form: ``<pkg.Cls object at 0x7f...>``.
_ADDRESS_REPR = re.compile(r" at 0x[0-9a-fA-F]+>")


def _canonical_repr(obj: Any) -> str:
    """``repr`` fallback for :func:`config_hash`, rejecting unstable reprs.

    An object that falls back to ``object.__repr__`` embeds its memory
    address, so the "same" configuration would hash differently in
    every process — memo entries shipped back from workers would
    silently never hit. Raising here turns that silent cache miss into
    a loud configuration error naming the offending payload field.
    """
    text = repr(obj)
    if _ADDRESS_REPR.search(text):
        raise ConfigError(
            f"config_hash: field of type {type(obj).__name__!r} has an "
            f"address-bearing repr ({text!r}); its hash would differ in "
            "every process, so memoized sweep results could never be "
            "shared. Give the type a stable __repr__ (e.g. make it a "
            "dataclass) or pass primitive values instead."
        )
    return text


def config_hash(payload: Any) -> str:
    """Deterministic hash of an experiment cell's configuration.

    Canonicalizes ``payload`` through JSON (sorted keys, ``repr`` for
    non-JSON types — dataclass reprs are stable and carry every field)
    and returns a short SHA-256 hex digest. Two calls with equal
    configurations hash identically across processes and sessions,
    which is what makes :func:`sweep_map`'s memo safe to share.

    Payload objects whose repr embeds a memory address (the default
    ``object.__repr__``) are rejected with
    :class:`~repro.errors.ConfigError`: such a hash would be unique per
    process and the memo would silently never hit across workers.
    """
    canonical = json.dumps(
        payload, sort_keys=True, default=_canonical_repr,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


#: Process-wide memo for :func:`sweep_map` (config hash -> result).
_SWEEP_MEMO: dict[str, Any] = {}
_SWEEP_MEMO_MAX = 65536

#: Parallel backends :func:`sweep_map` can fan cells out through.
SWEEP_POOLS = ("persistent", "fork")


def default_pool() -> str:
    """The parallel backend used when ``pool`` is not given.

    ``persistent`` (the shared-memory worker pool in
    :mod:`repro.experiments.pool`) unless the ``REPRO_SWEEP_POOL``
    environment variable selects ``fork``.
    """
    backend = os.environ.get("REPRO_SWEEP_POOL", "persistent")
    if backend not in SWEEP_POOLS:
        raise ConfigError(
            f"REPRO_SWEEP_POOL must be one of {SWEEP_POOLS}, "
            f"got {backend!r}"
        )
    return backend


def sweep_map(
    fn: Callable[..., Any],
    cells: Sequence[tuple],
    jobs: int = 1,
    memo: dict[str, Any] | None = None,
    pool: str | None = None,
    chaos: Any | None = None,
) -> list[Any]:
    """Map ``fn`` over independent sweep cells, optionally in parallel.

    Parameters
    ----------
    fn:
        A module-level (picklable) cell function; called as
        ``fn(*cell)``.
    cells:
        The argument tuples, one per cell. Results come back in cell
        order regardless of completion order, so a parallel sweep is
        bit-identical to the serial one.
    jobs:
        Worker processes. ``1`` (the default) runs serially in this
        process.
    memo:
        Optional explicit memo dict (config hash -> result). Defaults
        to a process-wide cache, so re-running a sweep with overlapping
        cells (e.g. ``repro-knl all``) skips finished work.
    pool:
        Parallel backend for ``jobs > 1``: ``"persistent"`` reuses the
        process-lifetime shared-memory worker pool
        (:mod:`repro.experiments.pool`, chunked dispatch, cheap per-cell
        overhead), ``"fork"`` forks a fresh
        :class:`~concurrent.futures.ProcessPoolExecutor` per call (one
        pickle round-trip per cell). ``None`` uses :func:`default_pool`.
    chaos:
        Optional :class:`repro.experiments.chaos.HarnessFaultInjector`
        injecting harness faults into the sweep's workers. Requires
        ``jobs > 1`` and the persistent backend, and bypasses the memo
        entirely — a chaos run must exercise real dispatches, not
        cache hits.

    Cells are memoized on ``config_hash((qualname, cell))``: equal
    configurations are computed once, including across drivers in the
    same process. Cells that repeat *within* one call are deduplicated
    before dispatch, so each unique configuration is computed exactly
    once per call. The memo is bounded by ``_SWEEP_MEMO_MAX`` entries;
    once full, new results are still returned but no longer cached.

    While a telemetry session is active the sweep runs every cell
    serially in-process and bypasses the memo: child processes cannot
    feed the parent's metric registry, and a memo hit would skip the
    cell's instrumentation side effects — either way the collected
    metrics would silently diverge from a plain serial run.
    """
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    if pool is not None and pool not in SWEEP_POOLS:
        raise ConfigError(
            f"pool must be one of {SWEEP_POOLS}, got {pool!r}"
        )
    if chaos is not None:
        if jobs < 2:
            raise ConfigError(
                "chaos injection needs jobs > 1: harness faults hit "
                "worker processes, and a serial sweep has none"
            )
        backend = pool or default_pool()
        if backend != "persistent":
            raise ConfigError(
                "chaos injection targets the persistent pool; "
                f"pool={backend!r} is not supported"
            )
        from repro.experiments.pool import get_pool

        return get_pool(jobs).map(fn, list(cells), chaos=chaos)
    if _tm.current().enabled:
        return [fn(*cell) for cell in cells]
    if memo is None:
        memo = _SWEEP_MEMO
    name = getattr(fn, "__qualname__", repr(fn))
    keys = [config_hash((name, cell)) for cell in cells]
    results: list[Any] = [memo.get(k) for k in keys]
    # Deduplicate by key: two identical cells in one call must compute
    # once, not twice. ``pending`` maps each missing key to the first
    # cell index that needs it.
    pending: dict[str, int] = {}
    for i, k in enumerate(keys):
        if k not in memo and k not in pending:
            pending[k] = i
    if pending:
        indices = list(pending.values())
        if jobs > 1:
            backend = pool or default_pool()
            if backend == "persistent":
                from repro.experiments.pool import get_pool

                computed = get_pool(jobs).map(
                    fn, [cells[i] for i in indices]
                )
            else:
                workers = min(jobs, len(indices), os.cpu_count() or 1)
                with ProcessPoolExecutor(max_workers=workers) as ex:
                    futures = [ex.submit(fn, *cells[i]) for i in indices]
                    computed = [fut.result() for fut in futures]
        else:
            computed = [fn(*cells[i]) for i in indices]
        computed_by_key = dict(zip(pending, computed))
        for i, k in enumerate(keys):
            if k in computed_by_key:
                results[i] = computed_by_key[k]
        # Warm the memo per key while under the cap — never overshoot
        # it, and never drop the sweep's *returned* results even when
        # the memo is full.
        for k, value in computed_by_key.items():
            if len(memo) >= _SWEEP_MEMO_MAX:
                break
            memo[k] = value
    return results


def node_for_variant(variant: str) -> KNLNode:
    """A node booted into the BIOS mode the variant needs."""
    if variant in ("GNU-cache", "MLM-implicit"):
        return KNLNode(KNLNodeConfig(mode=MemoryMode.CACHE))
    return KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))


def paper_megachunk(n: int) -> int:
    """The megachunk sizes the paper reports using for MLM-sort:
    1.5 B elements for the 6 B runs, 1 B otherwise."""
    return 1_500_000_000 if n >= 6_000_000_000 else 1_000_000_000


def _account_buffers(
    node: KNLNode, variant: str, n: int, megachunk: int
) -> None:
    """Account a variant's principal buffers in the active telemetry.

    The timed plans are closed-form flow models — they never touch the
    memkind heap — so a metrics-enabled run walks the same placement
    the real algorithm would make: the input array on DDR and, for the
    explicit-chunking MLM-sort, one megachunk buffer preferring
    MCDRAM. That populates the allocator request/byte counters and the
    per-device high-water gauge honestly (the buffers are freed again;
    high-water marks survive). No-op when telemetry is disabled and
    when a buffer exceeds the simulated region (paper-scale inputs can
    exceed DDR — that is the point of the out-of-core drivers).
    """
    tel = _tm.current()
    if not tel.enabled:
        return
    heap = Heap(node)
    allocations = []
    try:
        allocations.append(
            heap.allocate(int(n) * INT64, MEMKIND_DEFAULT)
        )
    except AllocationError:
        pass
    if variant == "MLM-sort" and heap.has_hbw():
        try:
            allocations.append(
                heap.allocate(int(megachunk) * INT64, MEMKIND_HBW_PREFERRED)
            )
        except AllocationError:
            pass
    for allocation in allocations:
        heap.free(allocation)


def sort_variant_run(
    variant: str,
    n: int,
    order: str,
    cost: SortCostModel | None = None,
    megachunk: int | None = None,
    threads: int = 256,
) -> RunResult:
    """Execute one Table-1 algorithm variant at paper scale."""
    if variant not in VARIANTS:
        raise ConfigError(f"unknown variant {variant!r}; one of {VARIANTS}")
    cost = cost or SortCostModel()
    node = node_for_variant(variant)
    _account_buffers(node, variant, n, megachunk or paper_megachunk(n))
    if variant == "GNU-flat":
        plan = gnu_sort_plan(node, n, order, UsageMode.DDR, threads, cost)
    elif variant == "GNU-cache":
        plan = gnu_sort_plan(node, n, order, UsageMode.CACHE, threads, cost)
    else:
        if variant == "MLM-implicit":
            mode, mega = UsageMode.IMPLICIT, n
        elif variant == "MLM-sort":
            mode, mega = UsageMode.FLAT, megachunk or paper_megachunk(n)
        else:  # MLM-ddr
            mode, mega = UsageMode.DDR, megachunk or paper_megachunk(n)
        cfg = MLMSortConfig(
            n=n, megachunk_elements=mega, mode=mode, order=order, threads=threads
        )
        plan = mlm_sort_plan(node, cfg, cost)
    return node.run(plan)


def sort_variant_seconds(
    variant: str,
    n: int,
    order: str,
    cost: SortCostModel | None = None,
    megachunk: int | None = None,
) -> float:
    """Simulated execution time of one variant, in seconds."""
    return sort_variant_run(variant, n, order, cost, megachunk).elapsed
