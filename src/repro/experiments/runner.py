"""Shared experiment infrastructure.

:func:`sort_variant_seconds` maps the paper's algorithm labels
(GNU-flat, GNU-cache, MLM-ddr, MLM-sort, MLM-implicit) to the right
node configuration and timed plan; :class:`ExperimentResult` is the
uniform record every driver returns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigError
from repro.algorithms.costs import SortCostModel
from repro.algorithms.mlm_sort import MLMSortConfig, mlm_sort_plan
from repro.algorithms.parallel_sort import gnu_sort_plan
from repro.core.modes import UsageMode
from repro.simknl.engine import RunResult
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode

#: Paper algorithm labels in Table 1 order.
VARIANTS = ("GNU-flat", "GNU-cache", "MLM-ddr", "MLM-sort", "MLM-implicit")


@dataclass
class ExperimentResult:
    """Uniform result record for all drivers.

    Attributes
    ----------
    experiment:
        Identifier, e.g. ``"table1"``.
    title:
        Human-readable title.
    columns:
        Ordered column names of ``rows``.
    rows:
        One dict per reported row.
    notes:
        Free-form annotations (substitutions, known deviations).
    """

    experiment: str
    title: str
    columns: list[str]
    rows: list[dict[str, Any]]
    notes: list[str] = field(default_factory=list)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise ConfigError(f"unknown column {name!r}")
        return [r.get(name) for r in self.rows]


def node_for_variant(variant: str) -> KNLNode:
    """A node booted into the BIOS mode the variant needs."""
    if variant in ("GNU-cache", "MLM-implicit"):
        return KNLNode(KNLNodeConfig(mode=MemoryMode.CACHE))
    return KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))


def paper_megachunk(n: int) -> int:
    """The megachunk sizes the paper reports using for MLM-sort:
    1.5 B elements for the 6 B runs, 1 B otherwise."""
    return 1_500_000_000 if n >= 6_000_000_000 else 1_000_000_000


def sort_variant_run(
    variant: str,
    n: int,
    order: str,
    cost: SortCostModel | None = None,
    megachunk: int | None = None,
    threads: int = 256,
) -> RunResult:
    """Execute one Table-1 algorithm variant at paper scale."""
    if variant not in VARIANTS:
        raise ConfigError(f"unknown variant {variant!r}; one of {VARIANTS}")
    cost = cost or SortCostModel()
    node = node_for_variant(variant)
    if variant == "GNU-flat":
        plan = gnu_sort_plan(node, n, order, UsageMode.DDR, threads, cost)
    elif variant == "GNU-cache":
        plan = gnu_sort_plan(node, n, order, UsageMode.CACHE, threads, cost)
    else:
        if variant == "MLM-implicit":
            mode, mega = UsageMode.IMPLICIT, n
        elif variant == "MLM-sort":
            mode, mega = UsageMode.FLAT, megachunk or paper_megachunk(n)
        else:  # MLM-ddr
            mode, mega = UsageMode.DDR, megachunk or paper_megachunk(n)
        cfg = MLMSortConfig(
            n=n, megachunk_elements=mega, mode=mode, order=order, threads=threads
        )
        plan = mlm_sort_plan(node, cfg, cost)
    return node.run(plan)


def sort_variant_seconds(
    variant: str,
    n: int,
    order: str,
    cost: SortCostModel | None = None,
    megachunk: int | None = None,
) -> float:
    """Simulated execution time of one variant, in seconds."""
    return sort_variant_run(variant, n, order, cost, megachunk).elapsed
