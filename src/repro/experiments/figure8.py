"""Figure 8: merge-benchmark execution time vs copy threads.

Fig. 8(a) shows the model's estimated times (Eqs. 1-5); Fig. 8(b)
shows the measured times. We reproduce both: the model curves come
from :mod:`repro.model.analytic`, the empirical curves from running
the buffered pipeline on the simulated node.
"""

from __future__ import annotations

from typing import Any

from repro.algorithms.merge_bench import (
    MergeBenchConfig,
    build_merge_bench,
    run_merge_bench,
)
from repro.errors import ConfigError
from repro.experiments.runner import ExperimentResult, SeriesSpec, sweep_map
from repro.model.analytic import predict
from repro.model.params import ModelParams
from repro.simknl.batch import PlanBatch, PlanBatchSpec
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode

DEFAULT_REPEATS = (1, 2, 4, 8, 16, 32, 64)
DEFAULT_COPY_THREADS = (1, 2, 4, 8, 16, 32)


def _figure8_model(r: int, p: int, total_threads: int) -> float:
    """The cell's closed-form half: Eqs. 1-5 at this thread split."""
    p_comp = total_threads - 2 * p
    if p_comp <= 0:
        raise ConfigError(
            f"copy_threads={p} leaves no compute threads: "
            f"total_threads={total_threads} - 2*{p} = {p_comp} "
            "(need total_threads > 2 * copy_threads)"
        )
    return predict(ModelParams(), p_comp, p, p, passes=r).t_total


def _figure8_cell(r: int, p: int, total_threads: int) -> tuple[float, float]:
    """One (repeats, copy-threads) grid cell: (model_s, empirical_s)."""
    model_t = _figure8_model(r, p, total_threads)
    node = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))
    emp_t = run_merge_bench(
        node,
        MergeBenchConfig(
            repeats=r, copy_in_threads=p, total_threads=total_threads
        ),
    ).elapsed
    return model_t, emp_t


def _figure8_batch(r: int, p: int, total_threads: int) -> PlanBatch:
    model_t = _figure8_model(r, p, total_threads)
    node = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))
    pipe = build_merge_bench(
        node,
        MergeBenchConfig(
            repeats=r, copy_in_threads=p, total_threads=total_threads
        ),
    )
    return PlanBatch(
        resources=tuple(node.resources()),
        plans=(pipe.prepare(),),
        finish=lambda runs: (model_t, runs[0].elapsed),
    )


_figure8_cell.plan_batch = PlanBatchSpec(build=_figure8_batch)


def run_figure8(
    repeats: tuple[int, ...] = DEFAULT_REPEATS,
    copy_threads: tuple[int, ...] = DEFAULT_COPY_THREADS,
    total_threads: int = 256,
    jobs: int = 1,
    pool: str | None = None,
    store: Any | None = None,
) -> ExperimentResult:
    """Model (8a) and empirical (8b) time curves."""
    cells = [
        (r, p, total_threads) for r in repeats for p in copy_threads
    ]
    rows = [
        {
            "repeats": r,
            "copy_threads": p,
            "model_s": model_t,
            "empirical_s": emp_t,
        }
        for (r, p, _), (model_t, emp_t) in zip(
            cells,
            sweep_map(
                _figure8_cell, cells, jobs=jobs, pool=pool, store=store
            ),
        )
    ]
    return ExperimentResult(
        experiment="figure8",
        title="Figure 8: merge benchmark time vs copy threads "
        "(model = 8a, empirical = 8b)",
        columns=["repeats", "copy_threads", "model_s", "empirical_s"],
        rows=rows,
        notes=[
            "empirical curves include pipeline fill/drain, which the "
            "closed-form model deliberately neglects"
        ],
    )


run_figure8.series_spec = SeriesSpec(
    "copy_threads", ("model_s", "empirical_s")
)
run_figure8.supports_jobs = True
run_figure8.supports_store = True
run_figure8.supports_replay = True
