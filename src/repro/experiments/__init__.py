"""Experiment drivers: one module per paper table/figure.

Each driver returns an :class:`~repro.experiments.runner.ExperimentResult`
holding the rows the paper reports plus, where available, the paper's
own numbers for side-by-side comparison. The drivers are thin: all the
machinery lives in the library; these modules only wire configurations
together and format output.

=============  ====================================================
``table1``     Raw sort times, 5 algorithms x 3 sizes x 2 orders
``figure6``    Speedups over GNU-flat (Fig. 6a random, 6b reverse)
``figure7``    Time vs chunk size at 6 B elements (Fig. 7)
``table2``     Model parameters measured via STREAM (Table 2)
``table3``     Optimal copy threads, model vs empirical (Table 3)
``figure8``    Merge-benchmark time vs copy threads (Fig. 8a/8b)
``bender``     Corroboration of Bender et al.'s predictions
=============  ====================================================
"""

from repro.experiments.runner import (
    ExperimentResult,
    replay_session,
    sort_variant_seconds,
)
from repro.experiments.store import ResultStore, get_store
from repro.experiments.chaos import run_chaos
from repro.experiments.table1 import run_table1
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.figure8 import run_figure8
from repro.experiments.bender import run_bender
from repro.experiments.pareto import run_pareto
from repro.experiments.extensions import (
    run_ablation,
    run_adaptive,
    run_designspace,
    run_energy,
    run_external,
    run_faults,
    run_hybrid,
    run_pollution,
    run_nvm,
    run_oblivious,
)

#: The paper's published artifacts.
PAPER_EXPERIMENTS = {
    "table1": run_table1,
    "figure6": run_figure6,
    "figure7": run_figure7,
    "table2": run_table2,
    "table3": run_table3,
    "figure8": run_figure8,
    "bender": run_bender,
}

#: Future-work and ablation extensions.
EXTENSION_EXPERIMENTS = {
    "nvm": run_nvm,
    "designspace": run_designspace,
    "hybrid": run_hybrid,
    "ablation": run_ablation,
    "oblivious": run_oblivious,
    "energy": run_energy,
    "external": run_external,
    "pollution": run_pollution,
    "adaptive": run_adaptive,
    "faults": run_faults,
    "chaos": run_chaos,
    "pareto": run_pareto,
}

ALL_EXPERIMENTS = {**PAPER_EXPERIMENTS, **EXTENSION_EXPERIMENTS}

__all__ = [
    "ExperimentResult",
    "ResultStore",
    "get_store",
    "replay_session",
    "sort_variant_seconds",
    "run_table1",
    "run_figure6",
    "run_figure7",
    "run_table2",
    "run_table3",
    "run_figure8",
    "run_bender",
    "run_nvm",
    "run_designspace",
    "run_hybrid",
    "run_ablation",
    "run_oblivious",
    "run_energy",
    "run_external",
    "run_faults",
    "run_pollution",
    "run_adaptive",
    "run_chaos",
    "run_pareto",
    "PAPER_EXPERIMENTS",
    "EXTENSION_EXPERIMENTS",
    "ALL_EXPERIMENTS",
]
