"""Deterministic, seedable fault injection for the simulated KNL stack.

The paper's robustness story — chunked/buffered algorithms keep working
when MCDRAM is effectively unavailable or contended — is only testable
if the stack can *lose* resources mid-run. This module provides the
fault model every layer hooks into:

* :class:`FaultSpec` / :class:`FaultPlan` — a declarative, seeded
  description of what goes wrong: schedule-driven (``at_phase``) or
  probability-driven (``probability`` per draw), with an optional
  recovery horizon (``duration_phases``);
* :class:`FaultInjector` — the runtime object threaded through the
  engine (:meth:`phase_events`), the memkind heap
  (:meth:`should_fail_alloc`), the spill-file writer
  (:meth:`check_spill_io`), the thread pools (:meth:`lost_workers`)
  and the resilient pipeline (:meth:`check_chunk`). All randomness
  comes from per-spec ``random.Random`` streams seeded from the plan
  seed, so the same plan replayed with the same seed produces the
  *identical* fault schedule — and therefore identical simulated
  times;
* :class:`FaultCounters` — the ledger of injected faults and the
  graceful-degradation events they triggered (DDR fallbacks, retries,
  re-splits), reported by the ``faults`` experiment driver.

Degradation semantics live in the hooked layers, not here: the engine
re-solves its max-min bandwidth allocation after a degradation event,
the heap spills HBW allocations to DDR instead of raising, the pools
re-split after worker loss, and :class:`repro.core.ResilientPipeline`
retries failed chunks and downgrades FLAT plans to the DDR path.

Extension beyond the paper (DESIGN.md Section 7) stress-testing the
Section 4 chunked pipeline.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, fields, replace

from repro.errors import (
    ConfigError,
    PermanentFaultError,
    TransientFaultError,
)
from repro.telemetry import names as _tn
from repro.telemetry import runtime as _tm


class FaultKind(enum.Enum):
    """Categories of injectable faults."""

    #: Scale a device/resource bandwidth down by ``severity``.
    BANDWIDTH_DEGRADE = "bandwidth-degrade"
    #: Remove ``severity`` fraction of a device's capacity.
    CAPACITY_LOSS = "capacity-loss"
    #: Fail heap allocations on the target device.
    ALLOC_FAIL = "alloc-fail"
    #: Stall a phase for ``severity`` simulated seconds.
    FLOW_STALL = "flow-stall"
    #: Fail a spill-file read/write (transient unless ``permanent``).
    SPILL_IO_FAIL = "spill-io-fail"
    #: Lose ``severity`` fraction of a thread pool's workers.
    WORKER_LOSS = "worker-loss"
    #: Fail one chunk's processing (transient; retried by the pipeline).
    CHUNK_FAIL = "chunk-fail"


#: Kinds the engine consumes at phase boundaries.
PHASE_KINDS = (
    FaultKind.BANDWIDTH_DEGRADE,
    FaultKind.CAPACITY_LOSS,
    FaultKind.FLOW_STALL,
    FaultKind.WORKER_LOSS,
)


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault source.

    Parameters
    ----------
    kind:
        What kind of fault to inject.
    target:
        Device/resource/pool name the fault applies to (``None``: any).
    severity:
        Kind-specific magnitude in ``[0, 1]`` for fractional kinds
        (bandwidth/capacity/worker loss) or seconds for
        :attr:`FaultKind.FLOW_STALL`.
    probability:
        Per-draw firing probability; ``0`` makes the spec purely
        schedule-driven.
    at_phase:
        Phase index at which the fault fires unconditionally.
    duration_phases:
        Phases after which a degradation is restored (``None``: lasts
        for the remainder of the run).
    permanent:
        For :attr:`FaultKind.SPILL_IO_FAIL`: raise
        :class:`~repro.errors.PermanentFaultError` instead of the
        retryable :class:`~repro.errors.TransientFaultError`.
    """

    kind: FaultKind
    target: str | None = None
    severity: float = 0.5
    probability: float = 0.0
    at_phase: int | None = None
    duration_phases: int | None = None
    permanent: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError("probability must be in [0, 1]")
        if self.severity < 0:
            raise ConfigError("severity must be non-negative")
        if self.kind in (
            FaultKind.BANDWIDTH_DEGRADE,
            FaultKind.CAPACITY_LOSS,
            FaultKind.WORKER_LOSS,
        ) and self.severity > 1.0:
            raise ConfigError(
                f"{self.kind.value}: severity is a fraction in [0, 1]"
            )
        if self.at_phase is not None and self.at_phase < 0:
            raise ConfigError("at_phase must be non-negative")
        if self.duration_phases is not None and self.duration_phases < 1:
            raise ConfigError("duration_phases must be >= 1")
        if self.probability == 0.0 and self.at_phase is None:
            raise ConfigError(
                "spec needs a probability or an at_phase to ever fire"
            )


@dataclass(frozen=True)
class FaultEvent:
    """A concrete fault occurrence produced by the injector."""

    kind: FaultKind
    target: str | None
    severity: float
    phase_index: int
    duration_phases: int | None = None

    def describe(self) -> str:
        """One-line trace label, e.g. ``fault: mcdram bandwidth -50%``."""
        tgt = self.target or "*"
        if self.kind is FaultKind.FLOW_STALL:
            detail = f"+{self.severity:g}s stall"
        else:
            detail = f"-{self.severity:.0%}"
        return f"fault: {tgt} {self.kind.value} {detail}"


@dataclass
class FaultCounters:
    """Ledger of injected faults and degradation/recovery events."""

    injected: int = 0
    alloc_faults: int = 0
    alloc_fallbacks: int = 0
    io_faults: int = 0
    io_retries: int = 0
    chunk_faults: int = 0
    chunk_retries: int = 0
    stragglers: int = 0
    degradations: int = 0
    restores: int = 0
    stall_seconds: float = 0.0
    worker_losses: int = 0
    mode_degradations: int = 0

    def as_dict(self) -> dict[str, float]:
        """All counters as a plain dict (for reports/CSV)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def recovery_events(self) -> int:
        """Total graceful-degradation actions taken in response to
        faults (the acceptance-criteria 'fallback/retry events')."""
        return (
            self.alloc_fallbacks
            + self.io_retries
            + self.chunk_retries
            + self.worker_losses
            + self.mode_degradations
        )


class FaultPlan:
    """A seeded, declarative collection of fault specs.

    The plan is immutable input; all mutable state (RNG streams,
    counters) lives in the :class:`FaultInjector` built from it, so one
    plan can be replayed any number of times with identical results.
    """

    def __init__(self, seed: int = 0, specs: list[FaultSpec] | None = None) -> None:
        self.seed = int(seed)
        self.specs: list[FaultSpec] = list(specs or [])

    def add(self, spec: FaultSpec) -> "FaultPlan":
        """Append a spec and return self (chainable)."""
        self.specs.append(spec)
        return self

    def injector(self) -> "FaultInjector":
        """A fresh injector (fresh RNG streams + zeroed counters)."""
        return FaultInjector(self)

    def scaled(self, factor: float) -> "FaultPlan":
        """A copy with every probability scaled by ``factor`` (clamped
        to 1); used by intensity sweeps."""
        if factor < 0:
            raise ConfigError("factor must be non-negative")
        return FaultPlan(
            self.seed,
            [
                replace(s, probability=min(1.0, s.probability * factor))
                for s in self.specs
            ],
        )

    # ---- presets --------------------------------------------------------

    @classmethod
    def degraded_mcdram(
        cls,
        seed: int = 0,
        intensity: float = 0.5,
        at_phase: int = 0,
    ) -> "FaultPlan":
        """The acceptance-criteria scenario: MCDRAM loses ``intensity``
        of its bandwidth at ``at_phase`` and HBW allocations fail with
        probability ``intensity``; spill I/O hiccups ride along."""
        if not 0.0 <= intensity <= 1.0:
            raise ConfigError("intensity must be in [0, 1]")
        plan = cls(seed)
        if intensity > 0:
            plan.add(
                FaultSpec(
                    FaultKind.BANDWIDTH_DEGRADE,
                    target="mcdram",
                    severity=intensity,
                    at_phase=at_phase,
                )
            )
            plan.add(
                FaultSpec(
                    FaultKind.ALLOC_FAIL,
                    target="mcdram",
                    probability=intensity,
                )
            )
            plan.add(
                FaultSpec(
                    FaultKind.SPILL_IO_FAIL,
                    probability=min(1.0, 0.2 * intensity),
                )
            )
        return plan


class FaultInjector:
    """Runtime fault source threaded through the stack.

    Each spec gets its own ``random.Random`` stream seeded from
    ``(plan.seed, spec index, spec kind)``, so draws made by one hook
    point (e.g. allocation checks) never perturb another's schedule —
    the determinism the replay tests rely on.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.counters = FaultCounters()
        self.events: list[FaultEvent] = []
        self._rngs: list[random.Random] = [
            random.Random(f"{plan.seed}:{i}:{spec.kind.value}")
            for i, spec in enumerate(plan.specs)
        ]

    # ---- internal helpers ----------------------------------------------

    def _specs(self, kind: FaultKind, target: str | None = None):
        for i, spec in enumerate(self.plan.specs):
            if spec.kind is not kind:
                continue
            if target is not None and spec.target not in (None, target):
                continue
            yield i, spec

    def _fires(self, index: int, spec: FaultSpec, phase_index: int | None) -> bool:
        if spec.at_phase is not None and phase_index is not None:
            if spec.at_phase == phase_index:
                return True
        if spec.probability > 0.0:
            return self._rngs[index].random() < spec.probability
        return False

    def _record(self, event: FaultEvent) -> FaultEvent:
        self.counters.injected += 1
        self.events.append(event)
        tel = _tm.current()
        if tel.enabled:
            tel.metrics.counter(_tn.FAULTS_INJECTED_TOTAL).inc(
                kind=event.kind.value
            )
            tel.events.emit(
                _tn.EVENT_FAULT_INJECTED,
                kind=event.kind.value,
                target=event.target,
                severity=event.severity,
                phase=event.phase_index,
            )
        return event

    # ---- hook points ----------------------------------------------------

    def phase_events(
        self, phase_index: int, kinds: tuple[FaultKind, ...] = PHASE_KINDS
    ) -> list[FaultEvent]:
        """Faults firing at the start of phase ``phase_index``.

        Consumed by :class:`repro.simknl.engine.Engine`, which applies
        bandwidth degradations (re-solving its allocation), accumulates
        stalls, and forwards capacity/worker losses to interested
        layers via the recorded events.
        """
        out = []
        for i, spec in self._specs_of_kinds(kinds):
            if self._fires(i, spec, phase_index):
                out.append(
                    self._record(
                        FaultEvent(
                            kind=spec.kind,
                            target=spec.target,
                            severity=spec.severity,
                            phase_index=phase_index,
                            duration_phases=spec.duration_phases,
                        )
                    )
                )
        return out

    def _specs_of_kinds(self, kinds: tuple[FaultKind, ...]):
        for i, spec in enumerate(self.plan.specs):
            if spec.kind in kinds:
                yield i, spec

    def should_fail_alloc(self, device: str) -> bool:
        """Whether the next heap allocation on ``device`` is failed.

        The heap responds by spilling to the fallback device and
        bumping :attr:`FaultCounters.alloc_fallbacks` — the
        ``HBW_PREFERRED`` discipline — rather than raising.
        """
        for i, spec in self._specs(FaultKind.ALLOC_FAIL, device):
            if self._fires(i, spec, None):
                self.counters.alloc_faults += 1
                self._record(
                    FaultEvent(spec.kind, device, spec.severity, -1)
                )
                return True
        return False

    def check_spill_io(self, op: str = "write") -> None:
        """Raise a fault for the next spill-file operation, if any.

        Raises
        ------
        TransientFaultError
            Retryable I/O hiccup (the caller retries with backoff).
        PermanentFaultError
            Unrecoverable device failure (the caller aborts cleanly).
        """
        for i, spec in self._specs(FaultKind.SPILL_IO_FAIL):
            if self._fires(i, spec, None):
                self.counters.io_faults += 1
                self._record(FaultEvent(spec.kind, op, spec.severity, -1))
                if spec.permanent:
                    raise PermanentFaultError(
                        f"injected permanent spill-file fault during {op}"
                    )
                raise TransientFaultError(
                    f"injected transient spill-file fault during {op}"
                )

    def check_chunk(self, chunk_index: int) -> None:
        """Raise a transient fault for chunk ``chunk_index``, if any.

        Consumed by :class:`repro.core.ResilientPipeline`, which
        retries the chunk up to its retry budget.
        """
        for i, spec in self._specs(FaultKind.CHUNK_FAIL):
            if self._fires(i, spec, chunk_index):
                self.counters.chunk_faults += 1
                self._record(
                    FaultEvent(spec.kind, f"chunk{chunk_index}",
                               spec.severity, chunk_index)
                )
                raise TransientFaultError(
                    f"injected transient fault on chunk {chunk_index}"
                )

    def lost_workers(self, pool_threads: tuple[int, ...]) -> tuple[int, ...]:
        """Thread ids lost from ``pool_threads`` by WORKER_LOSS specs.

        Deterministic: the victims are sampled from the spec's own RNG
        stream. The pool layer re-splits the survivors.
        """
        lost: list[int] = []
        for i, spec in self._specs(FaultKind.WORKER_LOSS):
            if self._fires(i, spec, None):
                k = int(round(spec.severity * len(pool_threads)))
                if k > 0:
                    victims = self._rngs[i].sample(
                        sorted(pool_threads), min(k, len(pool_threads))
                    )
                    lost.extend(victims)
                    self.counters.worker_losses += 1
                    self._record(
                        FaultEvent(spec.kind, None, spec.severity, -1)
                    )
        return tuple(sorted(set(lost)))
