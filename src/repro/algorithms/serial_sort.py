"""Serial sorting: the per-thread building block of MLM-sort.

MLM-sort's key design decision is to replace thread-scalable parallel
sorting inside a megachunk with one *serial* sort per thread (the
paper uses ``std::sort``). We provide:

* :func:`introsort` — a faithful introsort (median-of-three quicksort,
  heapsort depth fallback, insertion sort for small partitions), the
  same algorithm family as ``std::sort``. Used by tests to validate
  behaviour and by small examples;
* :func:`serial_sort` — the production entry point, delegating to
  NumPy's introsort-family ``np.sort(kind="quicksort")`` for speed
  while keeping the same semantics.

Implements the Section 4.1 design decision of one serial sort per
thread.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigError

#: Partitions at or below this size use insertion sort.
INSERTION_THRESHOLD = 16

#: Partitions at or below this size are finished with NumPy's
#: in-place sort instead of recursing further in Python. The Python
#: layers above keep the introsort structure (pivoting, depth limit)
#: observable while the leaves run at C speed.
NUMPY_LEAF_THRESHOLD = 2048


def insertion_sort(arr: np.ndarray, lo: int = 0, hi: int | None = None) -> None:
    """In-place insertion sort of ``arr[lo:hi]``."""
    if hi is None:
        hi = len(arr)
    for i in range(lo + 1, hi):
        key = arr[i]
        j = i - 1
        while j >= lo and arr[j] > key:
            arr[j + 1] = arr[j]
            j -= 1
        arr[j + 1] = key


def _heapsort(arr: np.ndarray, lo: int, hi: int) -> None:
    """In-place heapsort of ``arr[lo:hi]`` (introsort's fallback)."""
    n = hi - lo

    def sift_down(start: int, end: int) -> None:
        root = start
        while True:
            child = 2 * root + 1
            if child >= end:
                return
            if child + 1 < end and arr[lo + child] < arr[lo + child + 1]:
                child += 1
            if arr[lo + root] < arr[lo + child]:
                arr[lo + root], arr[lo + child] = (
                    arr[lo + child],
                    arr[lo + root],
                )
                root = child
            else:
                return

    for start in range(n // 2 - 1, -1, -1):
        sift_down(start, n)
    for end in range(n - 1, 0, -1):
        arr[lo], arr[lo + end] = arr[lo + end], arr[lo]
        sift_down(0, end)


def _median_of_three(arr: np.ndarray, lo: int, mid: int, hi: int) -> int:
    a, b, c = arr[lo], arr[mid], arr[hi]
    if a < b:
        if b < c:
            return mid
        return hi if a < c else lo
    if a < c:
        return lo
    return hi if b < c else mid


def _partition(arr: np.ndarray, lo: int, hi: int) -> int:
    """Hoare-style partition of ``arr[lo:hi]`` around a median-of-three
    pivot; returns the split point."""
    mid = (lo + hi - 1) // 2
    p = _median_of_three(arr, lo, mid, hi - 1)
    pivot = arr[p]
    i, j = lo, hi - 1
    while True:
        while arr[i] < pivot:
            i += 1
        while arr[j] > pivot:
            j -= 1
        if i >= j:
            return j + 1 if j > lo else lo + 1
        arr[i], arr[j] = arr[j], arr[i]
        i += 1
        j -= 1


def introsort(arr: np.ndarray, leaf_threshold: int | None = None) -> np.ndarray:
    """In-place introsort; returns ``arr`` for convenience.

    Matches ``std::sort``'s structure: quicksort with a
    ``2 * floor(log2 n)`` depth limit, heapsort beyond it, insertion
    sort for tiny partitions. Partitions at or below
    ``leaf_threshold`` (default :data:`NUMPY_LEAF_THRESHOLD`) are
    finished by NumPy's in-place introsort — slices of ``arr`` are
    views, so the sort happens in place; the result is identical and
    the Python-level recursion stays shallow. Pass
    ``leaf_threshold=0`` for the fully per-element reference path.
    """
    if arr.ndim != 1:
        raise ConfigError("introsort expects a one-dimensional array")
    if leaf_threshold is None:
        leaf_threshold = NUMPY_LEAF_THRESHOLD
    n = len(arr)
    if n < 2:
        return arr
    depth_limit = 2 * int(math.log2(n))
    stack: list[tuple[int, int, int]] = [(0, n, depth_limit)]
    while stack:
        lo, hi, depth = stack.pop()
        size = hi - lo
        if size <= INSERTION_THRESHOLD:
            insertion_sort(arr, lo, hi)
            continue
        if size <= leaf_threshold:
            arr[lo:hi].sort(kind="quicksort")
            continue
        if depth == 0:
            _heapsort(arr, lo, hi)
            continue
        split = _partition(arr, lo, hi)
        stack.append((lo, split, depth - 1))
        stack.append((split, hi, depth - 1))
    return arr


def serial_sort(arr: np.ndarray) -> np.ndarray:
    """Sort a 1-D array, returning a new sorted array.

    The fast path for production use; semantically equivalent to
    :func:`introsort` (validated by the test suite).
    """
    if arr.ndim != 1:
        raise ConfigError("serial_sort expects a one-dimensional array")
    return np.sort(arr, kind="quicksort")
