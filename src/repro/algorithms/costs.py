"""Calibrated cost model for the timed sort plans.

The simulator needs per-thread streaming rates and effective pass
counts for each algorithm phase. The device-side numbers (bandwidths,
``S_copy``) come straight from the paper's Table 2. The remaining
constants are calibrated **once**, against a single cell of Table 1
(GNU-flat at 2 billion random elements = 11.92 s); every other number
the experiments produce is then a prediction. The calibration choices
and their physical readings:

``s_sort_random``
    Logical bytes/s one thread sustains while sorting (each logical
    byte is one element-byte per recursion level; physical traffic is
    2x for read+write). 0.2 GB/s/thread at 256 threads gives
    ~51 GB/s aggregate demand — just above the DDR ceiling's 45 GB/s
    logical share, which is what makes DDR-resident sorting
    bandwidth-bound (the paper's premise) while MCDRAM-resident
    sorting is thread-bound (so extra bandwidth still helps).
``level_overhead``
    Effective recursion levels as a multiple of ``log2(m)``; >1 folds
    in TLB misses, partition-boundary effects, and allocator traffic.
``gnu_level_overhead``
    The same for the GNU multiway mergesort, which is not in-place:
    its temp-buffer discipline and exact-splitting bookkeeping cost
    extra effective passes. This is the structural reason MLM-ddr
    (9.28 s) beats GNU-flat (11.92 s) on identical hardware.
``reverse_factor_*``
    Reverse-sorted inputs shrink the effective level count: introsort
    partitions around a median-of-three pivot and branch-predicts
    almost perfectly on monotone runs. The paper observes MLM exploits
    this structure more than GNU (Section 4.1), hence two factors.
``cache_bw_factor``
    Hardware cache mode serves hits at slightly below raw MCDRAM
    speed (tag checks, miss handling occupancy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.units import GB


@dataclass(frozen=True)
class SortCostModel:
    """Calibration constants for the timed sort plans."""

    #: Per-thread copy rate between DDR and MCDRAM (Table 2).
    s_copy: float = 4.8 * GB
    #: Per-thread logical sort rate, random input.
    s_sort_random: float = 0.21 * GB
    #: Per-thread logical rate during multiway merge phases.
    s_merge: float = 0.55 * GB
    #: Effective levels multiplier for MLM serial sorts.
    level_overhead: float = 1.15
    #: Constant part of the serial-sort level count: the deep,
    #: cache-resident recursion levels cost the same regardless of the
    #: top-level chunk size.
    level_const: float = 12.0
    #: Weight of the ``log2(m)`` term: only the shallow levels whose
    #: active sets exceed the cache hierarchy scale with chunk size.
    level_log_weight: float = 0.35
    #: Fixed seconds of per-megachunk overhead (OpenMP fork/join
    #: barriers, buffer instantiation, exact-splitting setup). This is
    #: what penalizes small chunks in Fig. 7.
    chunk_overhead_s: float = 0.30
    #: Effective levels multiplier for GNU multiway mergesort.
    gnu_level_overhead: float = 1.35
    #: Level-count factor for reverse-sorted input, MLM variants.
    reverse_factor_mlm: float = 0.45
    #: Level-count factor for reverse-sorted input, GNU variants.
    reverse_factor_gnu: float = 0.66
    #: Bandwidth derating of MCDRAM when accessed through the cache.
    cache_bw_factor: float = 0.85
    #: Per-thread rate derating while the working set thrashes the
    #: hardware cache (demand misses serialize on DDR fills).
    thrash_rate_factor: float = 0.70
    #: Recursion levels subtracted from the thrash band: the first
    #: oversize level already enjoys substantial cache service because
    #: active sets halve while the level is in flight.
    thrash_level_offset: float = 0.25
    #: GNU multiway mergesort keeps data + temp live.
    gnu_working_set_factor: float = 2.0

    def __post_init__(self) -> None:
        for name in (
            "s_copy",
            "s_sort_random",
            "s_merge",
            "level_overhead",
            "gnu_level_overhead",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        for name in (
            "reverse_factor_mlm",
            "reverse_factor_gnu",
            "cache_bw_factor",
            "thrash_rate_factor",
        ):
            v = getattr(self, name)
            if not 0 < v <= 1:
                raise ConfigError(f"{name} must be in (0, 1]")
        for name in (
            "level_const",
            "level_log_weight",
            "chunk_overhead_s",
            "thrash_level_offset",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")

    def order_factor(self, order: str, gnu: bool) -> float:
        """Effective-level factor for an input order."""
        if order == "random":
            return 1.0
        if order == "reverse":
            return self.reverse_factor_gnu if gnu else self.reverse_factor_mlm
        if order == "sorted":
            # Presorted input: introsort degenerates to one verification
            # pass worth of work per level band; approximate with the
            # reverse factor squared (strictly easier than reverse).
            f = self.reverse_factor_gnu if gnu else self.reverse_factor_mlm
            return f * f
        raise ConfigError(f"unknown input order {order!r}")

    def replace(self, **kw) -> "SortCostModel":
        """A copy with some constants overridden (ablation studies)."""
        return replace(self, **kw)


def sort_levels(
    m_elements: float,
    cost: SortCostModel,
    order: str = "random",
    gnu: bool = False,
) -> float:
    """Effective streaming levels of a serial sort of ``m_elements``.

    For the MLM serial sorts the count is
    ``level_overhead * (level_const + level_log_weight * log2 m)``:
    a large constant band of cache-resident levels plus a weak
    chunk-size-dependent term for the shallow levels whose active sets
    spill past the caches. The GNU baseline always sorts the same
    per-thread block (``n / p``), so its count is a plain
    ``gnu_level_overhead * log2(m)``. Each level reads and writes the
    block once; the order factor models presorted-structure shortcuts.
    """
    if m_elements < 1:
        raise ConfigError("m_elements must be >= 1")
    log_m = max(1.0, math.log2(m_elements))
    if gnu:
        base = cost.gnu_level_overhead * log_m
    else:
        base = cost.level_overhead * (
            cost.level_const + cost.level_log_weight * log_m
        )
    return max(1.0, base * cost.order_factor(order, gnu))
