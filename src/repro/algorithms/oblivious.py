"""Cache-oblivious mergesort: the related-work comparison point.

Section 2.1 of the paper conjectures that cache-oblivious versions of
its simple cache-aware algorithms "might eventually perform as well
without requiring tuning per machine" (citing funnelsort). We provide
a lazy-funnelsort-family algorithm in both forms:

* :func:`oblivious_mergesort` — functional recursive binary mergesort
  (the canonical cache-oblivious sort skeleton: no machine parameters
  anywhere);
* :func:`oblivious_sort_plan` — its timed counterpart. The recursion
  means a level's working set halves with depth, so under a
  cache-backed mode the deep levels are automatically cache-resident
  — the *same* active-set effect MLM-implicit exploits, obtained with
  zero tuning. The price: no level skips, so the full ``log2 n`` level
  count is paid (MLM-sort's serial introsort shares constants across
  chunks).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.algorithms.costs import SortCostModel
from repro.algorithms.multiway_merge import merge_two
from repro.algorithms.parallel_sort import _sort_phases
from repro.core.modes import UsageMode, validate_node_mode
from repro.simknl.engine import Plan
from repro.simknl.node import KNLNode
from repro.units import INT64

#: Recursion base case: sort tiny blocks directly.
BASE_CASE = 32

#: Constant-factor penalty of naive binary merging versus in-place
#: partitioning (out-of-place temp buffers, two-stream access). The
#: funnelsort literature (Brodal et al.) needed careful engineering to
#: close exactly this gap against tuned quicksorts.
OBLIVIOUS_OVERHEAD = 1.35


def oblivious_mergesort(arr: np.ndarray) -> np.ndarray:
    """Functional cache-oblivious binary mergesort (returns new array)."""
    if arr.ndim != 1:
        raise ConfigError("expects a one-dimensional array")
    n = len(arr)
    if n <= BASE_CASE:
        return np.sort(arr, kind="stable")
    mid = n // 2
    left = oblivious_mergesort(arr[:mid])
    right = oblivious_mergesort(arr[mid:])
    return merge_two(left, right)


def oblivious_sort_plan(
    node: KNLNode,
    n: int,
    order: str = "random",
    mode: UsageMode = UsageMode.CACHE,
    threads: int = 256,
    cost: SortCostModel | None = None,
    element_size: int = INT64,
) -> Plan:
    """Timed plan for a parallel cache-oblivious mergesort.

    Structure: ``threads`` concurrent recursive sorts of ``n/threads``
    blocks (each a full binary-mergesort recursion — ``log2 m`` merge
    levels, no skipping), then a binary merge tree across blocks
    (``log2 threads`` more levels over the whole array). Because the
    algorithm is oblivious, the *same* plan shape runs in every usage
    mode; only the cache interaction differs — which is the point of
    the comparison.
    """
    validate_node_mode(node, mode)
    if n < 1 or threads < 1:
        raise ConfigError("n and threads must be positive")
    cost = cost or SortCostModel()
    nbytes = float(n * element_size)
    m = max(2.0, n / threads)
    # Full log2 levels within blocks — obliviousness means no
    # constant-band shortcut — scaled by the order factor (binary
    # merges also skip work on presorted runs).
    import math

    block_levels = (
        max(1.0, math.log2(m / BASE_CASE))
        * OBLIVIOUS_OVERHEAD
        * cost.order_factor(order, gnu=False)
    )
    tree_levels = (
        max(1.0, math.log2(threads))
        * OBLIVIOUS_OVERHEAD
        * cost.order_factor(order, gnu=False)
    )
    plan = Plan(name=f"oblivious-{mode.value}/{order}/n={n}")
    # Per-block recursion: working set = one block per thread,
    # aggregate = full array.
    for phase in _sort_phases(
        node,
        mode,
        nbytes,
        block_levels,
        threads,
        cost.s_sort_random,
        cost,
        working_set=nbytes,
        label="block-recursion",
    ):
        plan.add(phase)
    # Cross-block merge tree: each level streams the whole array.
    for phase in _sort_phases(
        node,
        mode,
        nbytes,
        tree_levels,
        threads,
        cost.s_merge,
        cost,
        working_set=nbytes,
        label="merge-tree",
    ):
        plan.add(phase)
    return plan
