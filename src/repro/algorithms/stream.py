"""STREAM-style bandwidth measurement on the simulated node.

The paper's Table 2 quotes its bandwidth ceilings "as measured by the
STREAM benchmark". We reproduce that measurement procedure against the
simulator: saturate a device with many copy streams and divide bytes
by time. The per-thread rates ``S_copy``/``S_comp`` are recovered from
single-stream runs bounded by memory-level parallelism (Little's law
over the device latencies), matching Table 2's 4.8 and 6.78 GB/s.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.simknl.engine import Phase, Plan
from repro.simknl.flows import Flow
from repro.simknl.node import KNLNode
from repro.units import GB, GiB

#: Outstanding cache lines per copy thread (loads + stores across two
#: devices throttle concurrency): 10 * 64 B / 130 ns ~ 4.9 GB/s.
MLP_COPY = 10
#: Outstanding cache lines per compute thread against MCDRAM:
#: 16 * 64 B / 150 ns ~ 6.8 GB/s.
MLP_COMP = 16


def stream_triad_plan(
    node: KNLNode, device: str, nbytes: float = 4 * GiB, threads: int = 256
) -> Plan:
    """A STREAM-triad-like plan: a[i] = b[i] + s * c[i] on ``device``.

    Triad moves three arrays (two reads, one write); the flow's
    logical bytes are the total traffic.
    """
    if device not in ("ddr", "mcdram"):
        raise ConfigError(f"unknown device {device!r}")
    flow = Flow(
        name=f"triad-{device}",
        threads=threads,
        per_thread_rate=getattr(node, device).per_thread_rate_bound(MLP_COMP),
        resources={device: 1.0},
        bytes_total=3 * nbytes,
    )
    return Plan(name=f"stream-{device}", phases=[Phase("triad", [flow])])


def measure_bandwidth(
    node: KNLNode, device: str, nbytes: float = 4 * GiB, threads: int = 256
) -> float:
    """Measured bandwidth of ``device`` in bytes/s (saturating run)."""
    plan = stream_triad_plan(node, device, nbytes, threads)
    result = node.run(plan)
    return plan.total_bytes / result.elapsed


def micro_rate_plans(node: KNLNode) -> tuple[Plan, Plan, float]:
    """The single-thread validation plans behind S_copy/S_comp.

    A copy thread's rate is bounded by the slower of the two devices
    it touches; a compute thread streams MCDRAM only. Returns
    ``(copy_plan, comp_plan, nbytes)`` so callers can run the two
    micro-measurements themselves (the cross-cell sweep lowering
    batches them alongside the STREAM plans).
    """
    s_copy = min(
        node.ddr.per_thread_rate_bound(MLP_COPY),
        node.mcdram.per_thread_rate_bound(MLP_COPY + 2),
    )
    s_comp = node.mcdram.per_thread_rate_bound(MLP_COMP)
    nbytes = float(1 * GB)
    copy_flow = Flow("copy1", 1, s_copy, {"ddr": 1.0, "mcdram": 1.0}, nbytes)
    comp_flow = Flow("comp1", 1, s_comp, {"mcdram": 1.0}, nbytes)
    copy_plan = Plan(name="phase", phases=[Phase("phase", [copy_flow])])
    comp_plan = Plan(name="phase", phases=[Phase("phase", [comp_flow])])
    return copy_plan, comp_plan, nbytes


def measure_per_thread_rates(node: KNLNode) -> tuple[float, float]:
    """Single-thread (S_copy, S_comp), validated by actually running
    the one-thread flows of :func:`micro_rate_plans`."""
    copy_plan, comp_plan, nbytes = micro_rate_plans(node)
    r1 = node.run(copy_plan)
    r2 = node.run(comp_plan)
    return nbytes / r1.elapsed, nbytes / r2.elapsed


def host_stream(n: int = 5_000_000, dtype=np.float64) -> dict[str, float]:
    """Run the four STREAM kernels on the *host* with NumPy and return
    achieved bandwidths in bytes/s.

    Not used by any experiment (the paper's numbers come from the
    simulated node); provided so examples can contrast the host's
    memory system with the simulated KNL.
    """
    import time

    if n < 1:
        raise ConfigError("n must be >= 1")
    a = np.zeros(n, dtype=dtype)
    b = np.random.default_rng(0).random(n).astype(dtype)
    c = np.random.default_rng(1).random(n).astype(dtype)
    s = 3.0
    item = np.dtype(dtype).itemsize
    out: dict[str, float] = {}

    def timed(label: str, nbytes: float, fn) -> None:
        t0 = time.perf_counter()
        fn()
        dt = time.perf_counter() - t0
        out[label] = nbytes / max(dt, 1e-9)

    timed("copy", 2 * n * item, lambda: np.copyto(a, b))
    timed("scale", 2 * n * item, lambda: np.multiply(b, s, out=a))
    timed("add", 3 * n * item, lambda: np.add(b, c, out=a))

    def triad():
        np.multiply(c, s, out=a)
        np.add(a, b, out=a)

    timed("triad", 3 * n * item, triad)
    return out
