"""Funnelsort: the cache-oblivious sort of Frigo et al. (Section 2.1).

The paper's related work singles out funnelsort as the
cache-oblivious algorithm whose engineered variant ("Lazy Funnelsort",
Brodal et al.) eventually outperformed tuned quicksorts. We implement
the funnelsort *recursion*: split the input into ~n^(1/3) segments of
size ~n^(2/3), sort each recursively, and k-way merge the results.

The merge uses the tournament merger from
:mod:`repro.algorithms.multiway_merge` rather than a buffered
k-funnel; the k-funnel's contribution is its cache-complexity
*analysis*, while its output is any correct k-way merge — so
functional behaviour (what the tests validate) is identical, and the
timed comparison uses :mod:`repro.algorithms.oblivious`'s derated
constants to reflect the un-engineered state of a straightforward
implementation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigError
from repro.algorithms.multiway_merge import multiway_merge

#: Inputs at or below this size are sorted directly.
FUNNEL_BASE = 64


def _split_counts(n: int) -> int:
    """Number of segments: ~n^(1/3), at least 2."""
    return max(2, round(n ** (1.0 / 3.0)))


def funnelsort(arr: np.ndarray) -> np.ndarray:
    """Cache-oblivious funnelsort; returns a new sorted array."""
    if arr.ndim != 1:
        raise ConfigError("expects a one-dimensional array")
    n = len(arr)
    if n <= FUNNEL_BASE:
        return np.sort(arr, kind="stable")
    k = _split_counts(n)
    bounds = [n * i // k for i in range(k + 1)]
    runs = [funnelsort(arr[bounds[i] : bounds[i + 1]]) for i in range(k)]
    return multiway_merge(runs)


def funnelsort_plan(
    node,
    n: int,
    order: str = "random",
    mode=None,
    threads: int = 256,
    cost=None,
    element_size: int = 8,
):
    """Timed plan for funnelsort on the simulated node.

    Structure: ``threads`` concurrent recursive funnelsorts of
    ``n/threads`` blocks, then one k-way merge round per funnel level
    across blocks. Funnelsort's recursion gives Θ(log log m) *rounds*
    over the data (each round a full k-way merge sweep), but each
    round's merge costs Θ(log k) per element — the totals match
    mergesort asymptotically; the cache behaviour is what differs.
    We charge the same streaming machinery as the other sorts, with
    the un-engineered-merge derating of
    :data:`repro.algorithms.oblivious.OBLIVIOUS_OVERHEAD`.
    """
    import math

    from repro.algorithms.costs import SortCostModel
    from repro.algorithms.oblivious import OBLIVIOUS_OVERHEAD
    from repro.algorithms.parallel_sort import _sort_phases
    from repro.core.modes import UsageMode, validate_node_mode
    from repro.simknl.engine import Plan

    mode = mode if mode is not None else UsageMode.CACHE
    validate_node_mode(node, mode)
    if n < 1 or threads < 1:
        raise ConfigError("n and threads must be positive")
    cost = cost or SortCostModel()
    nbytes = float(n * element_size)
    m = max(2.0, n / threads)
    # Each funnel round k-way merges segments: log2(m) comparison
    # levels total across all rounds (k-way merge = log2 k levels),
    # same asymptotic work as mergesort.
    levels = (
        max(1.0, math.log2(m / FUNNEL_BASE))
        * OBLIVIOUS_OVERHEAD
        * cost.order_factor(order, gnu=False)
    )
    tree = (
        max(1.0, math.log2(threads))
        * OBLIVIOUS_OVERHEAD
        * cost.order_factor(order, gnu=False)
    )
    plan = Plan(name=f"funnelsort-{mode.value}/{order}/n={n}")
    for phase in _sort_phases(
        node, mode, nbytes, levels, threads, cost.s_sort_random, cost,
        working_set=nbytes, label="funnel-blocks",
    ):
        plan.add(phase)
    for phase in _sort_phases(
        node, mode, nbytes, tree, threads, cost.s_merge, cost,
        working_set=nbytes, label="funnel-tree",
    ):
        plan.add(phase)
    return plan


def funnelsort_merge_depth(n: int) -> int:
    """Recursion depth of the funnelsort split (log log-ish growth).

    Useful to see why funnelsort's pass structure differs from binary
    mergesort: each level multiplies the segment count by ~n^(1/3), so
    the depth is Θ(log log n) merge *rounds* over the data rather than
    Θ(log n).
    """
    if n < 1:
        raise ConfigError("n must be >= 1")
    depth = 0
    size = n
    while size > FUNNEL_BASE:
        size = math.ceil(size ** (2.0 / 3.0))
        depth += 1
    return depth
