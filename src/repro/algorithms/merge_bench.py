"""The streaming merge benchmark of Section 5.

Each chunk is dispersed among the compute threads; every thread chops
its portion in half and merges the two halves, ``repeats`` times. The
repeat count scales compute work while the copy work stays constant —
the knob that exposes the compute/copy thread trade-off the model
predicts (Table 3, Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.algorithms.multiway_merge import merge_two
from repro.core.buffering import BufferedPipeline, PipelineResult
from repro.core.chunking import Chunker
from repro.core.kernel import StreamKernel
from repro.core.modes import UsageMode
from repro.model.params import ModelParams
from repro.simknl.node import KNLNode
from repro.threads.pool import PoolSet
from repro.units import GB, GiB, INT64


def merge_halves(portion: np.ndarray) -> np.ndarray:
    """One repeat of the benchmark's compute: split the portion in two
    and merge the (sorted) halves."""
    if portion.ndim != 1:
        raise ConfigError("expects a one-dimensional array")
    mid = len(portion) // 2
    a = np.sort(portion[:mid], kind="stable")
    b = np.sort(portion[mid:], kind="stable")
    return merge_two(a, b)


def merge_bench_kernel(repeats: int) -> StreamKernel:
    """The benchmark's compute stage as a kernel: ``repeats`` streaming
    passes, each a halve-and-merge."""
    if repeats < 1:
        raise ConfigError("repeats must be >= 1")
    return StreamKernel(passes=repeats, name=f"merge-x{repeats}", fn=merge_halves)


@dataclass(frozen=True)
class MergeBenchConfig:
    """One benchmark configuration.

    Defaults follow the paper: 14.9 GB data, 256-thread budget,
    symmetric copy pools, 1 GiB chunks in flat mode.
    """

    repeats: int = 1
    copy_in_threads: int = 8
    total_threads: int = 256
    data_bytes: int = int(14.9 * GB) // INT64 * INT64
    chunk_bytes: int = GiB
    mode: UsageMode = UsageMode.FLAT

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ConfigError("repeats must be >= 1")
        if self.copy_in_threads < 0:
            raise ConfigError("copy_in_threads must be non-negative")
        if self.mode in (UsageMode.FLAT, UsageMode.HYBRID):
            if self.copy_in_threads < 1:
                raise ConfigError("explicit modes need copy threads")
            if self.total_threads <= 2 * self.copy_in_threads:
                raise ConfigError("copy pools leave no compute threads")

    @property
    def compute_threads(self) -> int:
        """Threads left for the compute pool."""
        if self.mode in (UsageMode.FLAT, UsageMode.HYBRID):
            return self.total_threads - 2 * self.copy_in_threads
        return self.total_threads


def build_merge_bench(
    node: KNLNode,
    config: MergeBenchConfig,
    params: ModelParams | None = None,
) -> BufferedPipeline:
    """Assemble the benchmark's pipeline without running it."""
    params = params or ModelParams()
    cfg = config
    chunker = Chunker(cfg.data_bytes, cfg.chunk_bytes)
    if cfg.mode in (UsageMode.FLAT, UsageMode.HYBRID):
        pools = PoolSet.split(
            node, compute=cfg.compute_threads, copy_in=cfg.copy_in_threads
        )
    else:
        pools = PoolSet.compute_only(node, threads=cfg.total_threads)
    return BufferedPipeline(
        node,
        cfg.mode,
        pools,
        chunker,
        merge_bench_kernel(cfg.repeats),
        params,
    )


def run_merge_bench(
    node: KNLNode,
    config: MergeBenchConfig,
    params: ModelParams | None = None,
) -> PipelineResult:
    """Execute the benchmark on the simulated node."""
    return build_merge_bench(node, config, params).run()


def sweep_merge_bench(
    node: KNLNode,
    repeats: int,
    copy_thread_values: list[int],
    params: ModelParams | None = None,
    total_threads: int = 256,
) -> dict[int, float]:
    """Empirical time for each candidate copy-thread count (Fig. 8b)."""
    out: dict[int, float] = {}
    for p in copy_thread_values:
        cfg = MergeBenchConfig(
            repeats=repeats, copy_in_threads=p, total_threads=total_threads
        )
        out[p] = run_merge_bench(node, cfg, params).elapsed
    return out


def empirical_optimal_copy_threads(
    node: KNLNode,
    repeats: int,
    copy_thread_values: list[int] | None = None,
    params: ModelParams | None = None,
    total_threads: int = 256,
    tolerance: float = 0.03,
) -> int:
    """The empirically best copy-thread count among the candidates
    (the paper tests powers of two: 1, 2, 4, 8, 16, 32).

    Among candidates within ``tolerance`` of the fastest time, the
    smallest thread count wins — run-to-run noise on real hardware
    (the paper's Table 1 standard deviations are a few percent) makes
    such near-ties indistinguishable, and fewer copy threads leave
    more resources to the application.
    """
    candidates = copy_thread_values or [1, 2, 4, 8, 16, 32]
    times = sweep_merge_bench(node, repeats, candidates, params, total_threads)
    return pick_optimal_copy_threads(times, tolerance)


def pick_optimal_copy_threads(
    times: dict[int, float], tolerance: float = 0.03
) -> int:
    """The smallest copy-thread count within ``tolerance`` of the best
    time (the tie-break rationale is documented on
    :func:`empirical_optimal_copy_threads`)."""
    t_min = min(times.values())
    return min(p for p, t in times.items() if t <= t_min * (1 + tolerance))
