"""External-memory (out-of-core) mergesort: the Section 2.2 contrast.

The paper positions its work against the out-of-core tradition ("our
in-memory sort can only sort datasets that fit into the DDR memory"):
when data exceeds *all* memory levels, the classic DAM-model answer is
run formation + multiway merge against disk. We implement both faces:

* :func:`external_sort` — a *real* out-of-core sort: sorted runs are
  written to temporary files on disk and k-way merged back in bounded
  memory blocks. Works on arrays or iterables larger than the allowed
  memory budget.
* :func:`external_sort_plan` — the timed counterpart on the simulated
  node with a disk device: run-formation and merge passes stream the
  data set through DDR and disk, showing where the crossover with the
  in-memory MLM-sort lies.
"""

from __future__ import annotations

import heapq
import math
import tempfile
from pathlib import Path

import numpy as np

from repro.errors import ConfigError
from repro.simknl.devices import MemoryDevice
from repro.simknl.engine import Engine, Phase, Plan, RunResult
from repro.simknl.flows import Flow
from repro.simknl.node import KNLNode
from repro.units import GB, GiB, INT64


def disk_device(
    bandwidth: float = 2 * GB,
    capacity: float = 8192 * GiB,
    latency: float = 100e-6,
) -> MemoryDevice:
    """An NVMe-class block device for the timed plans."""
    return MemoryDevice(
        name="disk",
        bandwidth=bandwidth,
        capacity=capacity,
        latency=latency,
        channels=4,
    )


# ---------------------------------------------------------------------------
# Functional: real files, bounded memory
# ---------------------------------------------------------------------------


def _write_runs(
    arr: np.ndarray, budget: int, tmpdir: Path
) -> list[Path]:
    """Phase 1: sort budget-sized runs and spill them to disk."""
    paths = []
    for i, start in enumerate(range(0, len(arr), budget)):
        run = np.sort(arr[start : start + budget], kind="stable")
        path = tmpdir / f"run{i:05d}.npy"
        np.save(path, run)
        paths.append(path)
    return paths


def _merge_runs(
    paths: list[Path], budget: int, dtype: np.dtype
) -> np.ndarray:
    """Phase 2: k-way merge the runs reading bounded blocks."""
    k = len(paths)
    block = max(1, budget // (k + 1))
    readers = [np.load(p, mmap_mode="r") for p in paths]
    positions = [0] * k
    buffers: list[np.ndarray] = [r[:block].copy() for r in readers]
    offsets = [0] * k
    heap: list[tuple] = []
    for i in range(k):
        if len(buffers[i]):
            heapq.heappush(heap, (buffers[i][0].item(), i))
    total = sum(len(r) for r in readers)
    out = np.empty(total, dtype=dtype)
    for j in range(total):
        value, i = heapq.heappop(heap)
        out[j] = value
        offsets[i] += 1
        if offsets[i] >= len(buffers[i]):
            positions[i] += len(buffers[i])
            nxt = readers[i][positions[i] : positions[i] + block]
            buffers[i] = np.asarray(nxt).copy()
            offsets[i] = 0
        if offsets[i] < len(buffers[i]):
            heapq.heappush(heap, (buffers[i][offsets[i]].item(), i))
    return out


def external_sort(
    arr: np.ndarray, memory_budget_elements: int, workdir: str | None = None
) -> np.ndarray:
    """Out-of-core mergesort with a hard in-memory element budget.

    Parameters
    ----------
    arr:
        Input (conceptually too large for memory; the budget is
        enforced on run size and merge blocks).
    memory_budget_elements:
        Elements allowed resident during each phase.
    workdir:
        Directory for spill files; a temporary directory by default.
    """
    if arr.ndim != 1:
        raise ConfigError("expects a one-dimensional array")
    if memory_budget_elements < 2:
        raise ConfigError("memory budget must be >= 2 elements")
    if len(arr) == 0:
        return arr.copy()
    if len(arr) <= memory_budget_elements:
        return np.sort(arr, kind="stable")
    with tempfile.TemporaryDirectory(dir=workdir) as tmp:
        tmpdir = Path(tmp)
        paths = _write_runs(arr, memory_budget_elements, tmpdir)
        return _merge_runs(paths, memory_budget_elements, arr.dtype)


# ---------------------------------------------------------------------------
# Timed plan
# ---------------------------------------------------------------------------


def external_sort_plan(
    node: KNLNode,
    n: int,
    memory_budget_bytes: float,
    threads: int = 256,
    fan_in: int = 64,
    s_sort: float = 0.21e9,
    s_merge: float = 0.55e9,
    element_size: int = INT64,
) -> Plan:
    """Timed out-of-core mergesort against the disk device.

    Run formation reads the data from disk and writes sorted runs
    back (one full disk round-trip, with in-memory sorting through
    DDR); each merge pass (``ceil(log_fan_in(num_runs))`` of them)
    streams the whole data set disk -> DDR -> disk again.
    """
    if n < 1:
        raise ConfigError("n must be >= 1")
    if memory_budget_bytes <= 0:
        raise ConfigError("memory budget must be positive")
    if fan_in < 2:
        raise ConfigError("fan_in must be >= 2")
    nbytes = float(n * element_size)
    num_runs = max(1, math.ceil(nbytes / memory_budget_bytes))
    merge_passes = max(1, math.ceil(math.log(max(num_runs, 2), fan_in)))
    plan = Plan(name=f"external-sort/n={n}")
    # Run formation: disk in + out, plus the in-memory sort traffic.
    plan.add(
        Phase(
            "run-formation/io",
            [Flow("disk-io", threads, 1 * GB, {"disk": 2.0}, nbytes)],
        )
    )
    m = max(2.0, memory_budget_bytes / element_size / threads)
    levels = 1.15 * math.log2(m)
    plan.add(
        Phase(
            "run-formation/sort",
            [Flow("sort", threads, s_sort, {"ddr": 2.0}, nbytes * levels)],
        )
    )
    for p in range(merge_passes):
        plan.add(
            Phase(
                f"merge-pass{p}",
                [
                    # Streaming merge bound by both disk and memory.
                    Flow(
                        "merge",
                        threads,
                        s_merge,
                        {"disk": 2.0, "ddr": 2.0},
                        nbytes,
                    )
                ],
            )
        )
    return plan


def run_external_sort_plan(
    node: KNLNode,
    n: int,
    memory_budget_bytes: float,
    disk_bandwidth: float = 2 * GB,
    **kwargs,
) -> RunResult:
    """Execute the timed plan with a disk attached to the node."""
    plan = external_sort_plan(node, n, memory_budget_bytes, **kwargs)
    resources = [*node.resources(), disk_device(bandwidth=disk_bandwidth).resource()]
    return Engine(resources, record_events=False).run(plan)
