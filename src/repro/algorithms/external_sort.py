"""External-memory (out-of-core) mergesort: the Section 2.2 contrast.

The paper positions its work against the out-of-core tradition ("our
in-memory sort can only sort datasets that fit into the DDR memory"):
when data exceeds *all* memory levels, the classic DAM-model answer is
run formation + multiway merge against disk. We implement both faces:

* :func:`external_sort` — a *real* out-of-core sort: sorted runs are
  written to temporary files on disk and k-way merged back in bounded
  memory blocks. Works on arrays or iterables larger than the allowed
  memory budget.
* :func:`external_sort_plan` — the timed counterpart on the simulated
  node with a disk device: run-formation and merge passes stream the
  data set through DDR and disk, showing where the crossover with the
  in-memory MLM-sort lies.
"""

from __future__ import annotations

import contextlib
import heapq
import math
import shutil
import tempfile
import time
from pathlib import Path
from typing import Callable, TypeVar

import numpy as np

from repro.errors import (
    ConfigError,
    RetryExhaustedError,
    TransientFaultError,
)
from repro.faults import FaultInjector
from repro.simknl.devices import MemoryDevice
from repro.simknl.engine import Engine, Phase, Plan, RunResult
from repro.simknl.flows import Flow
from repro.simknl.node import KNLNode
from repro.telemetry import names as _tn
from repro.telemetry import runtime as _tm
from repro.units import GB, GiB, INT64

_T = TypeVar("_T")

#: Default bound on per-operation spill I/O retries.
MAX_IO_RETRIES = 4


def _retry_io(
    op: str,
    fn: Callable[[], _T],
    injector: FaultInjector | None,
    max_retries: int = MAX_IO_RETRIES,
    backoff_s: float = 0.0,
) -> _T:
    """Run a spill-file operation with bounded retry + exponential backoff.

    Transient failures — injected :class:`TransientFaultError` or a
    real :class:`OSError` — are retried up to ``max_retries`` times,
    doubling the (optional) backoff each attempt. Permanent injected
    faults propagate immediately: the caller's cleanup then removes
    any partial spill files.

    Raises
    ------
    RetryExhaustedError
        After ``max_retries`` failed retries.
    PermanentFaultError
        Propagated untouched from the injector.
    """
    attempts = 0
    while True:
        try:
            if injector is not None:
                injector.check_spill_io(op)
            return fn()
        except (TransientFaultError, OSError) as exc:
            attempts += 1
            if attempts > max_retries:
                raise RetryExhaustedError(
                    f"spill {op} failed after {attempts} attempts: {exc}",
                    attempts=attempts,
                ) from exc
            if injector is not None:
                injector.counters.io_retries += 1
            tel = _tm.current()
            if tel.enabled:
                tel.metrics.counter(_tn.SORT_IO_RETRIES_TOTAL).inc()
            delay = backoff_s * (2 ** (attempts - 1))
            if delay > 0:
                time.sleep(delay)


def disk_device(
    bandwidth: float = 2 * GB,
    capacity: float = 8192 * GiB,
    latency: float = 100e-6,
) -> MemoryDevice:
    """An NVMe-class block device for the timed plans."""
    return MemoryDevice(
        name="disk",
        bandwidth=bandwidth,
        capacity=capacity,
        latency=latency,
        channels=4,
    )


# ---------------------------------------------------------------------------
# Functional: real files, bounded memory
# ---------------------------------------------------------------------------


def _write_runs(
    arr: np.ndarray,
    budget: int,
    tmpdir: Path,
    injector: FaultInjector | None = None,
    max_retries: int = MAX_IO_RETRIES,
    backoff_s: float = 0.0,
) -> list[Path]:
    """Phase 1: sort budget-sized runs and spill them to disk."""
    paths = []
    tel = _tm.current()
    for i, start in enumerate(range(0, len(arr), budget)):
        run = np.sort(arr[start : start + budget], kind="stable")
        path = tmpdir / f"run{i:05d}.npy"
        _retry_io(
            f"write run {i}",
            lambda: np.save(path, run),
            injector,
            max_retries,
            backoff_s,
        )
        paths.append(path)
        if tel.enabled:
            m = tel.metrics
            m.counter(_tn.SORT_SPILL_FILES_TOTAL).inc()
            m.counter(_tn.SORT_SPILL_BYTES_TOTAL).inc(run.nbytes)
            tel.events.emit(
                _tn.EVENT_SORT_SPILL, file=path.name, bytes=run.nbytes
            )
    return paths


def _merge_runs(
    paths: list[Path],
    budget: int,
    dtype: np.dtype,
    injector: FaultInjector | None = None,
    max_retries: int = MAX_IO_RETRIES,
    backoff_s: float = 0.0,
) -> np.ndarray:
    """Phase 2: k-way merge the runs reading bounded blocks."""
    k = len(paths)
    tel = _tm.current()
    if tel.enabled:
        tel.metrics.histogram(_tn.SORT_MERGE_FAN_IN).observe(k)
        tel.events.emit(_tn.EVENT_SORT_MERGE, fan_in=k)
    block = max(1, budget // (k + 1))
    readers = [
        _retry_io(
            f"open run {i}",
            lambda p=p: np.load(p, mmap_mode="r"),
            injector,
            max_retries,
            backoff_s,
        )
        for i, p in enumerate(paths)
    ]
    positions = [0] * k
    buffers: list[np.ndarray] = [r[:block].copy() for r in readers]
    offsets = [0] * k
    heap: list[tuple] = []
    for i in range(k):
        if len(buffers[i]):
            heapq.heappush(heap, (buffers[i][0].item(), i))
    total = sum(len(r) for r in readers)
    out = np.empty(total, dtype=dtype)
    for j in range(total):
        value, i = heapq.heappop(heap)
        out[j] = value
        offsets[i] += 1
        if offsets[i] >= len(buffers[i]):
            positions[i] += len(buffers[i])
            buffers[i] = _retry_io(
                f"read run {i}",
                lambda i=i: np.asarray(
                    readers[i][positions[i] : positions[i] + block]
                ).copy(),
                injector,
                max_retries,
                backoff_s,
            )
            offsets[i] = 0
        if offsets[i] < len(buffers[i]):
            heapq.heappush(heap, (buffers[i][offsets[i]].item(), i))
    return out


def external_sort(
    arr: np.ndarray,
    memory_budget_elements: int,
    workdir: str | None = None,
    injector: FaultInjector | None = None,
    max_io_retries: int = MAX_IO_RETRIES,
    io_backoff_s: float = 0.0,
) -> np.ndarray:
    """Out-of-core mergesort with a hard in-memory element budget.

    Parameters
    ----------
    arr:
        Input (conceptually too large for memory; the budget is
        enforced on run size and merge blocks).
    memory_budget_elements:
        Elements allowed resident during each phase.
    workdir:
        Directory for spill files; a temporary directory by default.
    injector:
        Optional fault injector. Transient spill-I/O faults are
        retried up to ``max_io_retries`` times with exponential
        backoff; a permanent fault (or retry exhaustion) aborts the
        sort cleanly — the spill directory is removed either way, so
        no orphaned run files survive an exception.
    max_io_retries:
        Retry bound per spill operation.
    io_backoff_s:
        Initial backoff delay in (real) seconds; doubles per retry.
        Zero (default) retries immediately — simulated-time callers
        should not sleep.
    """
    if arr.ndim != 1:
        raise ConfigError("expects a one-dimensional array")
    if memory_budget_elements < 2:
        raise ConfigError("memory budget must be >= 2 elements")
    if len(arr) == 0:
        return arr.copy()
    if len(arr) <= memory_budget_elements:
        return np.sort(arr, kind="stable")
    with contextlib.ExitStack() as stack:
        tmp = tempfile.mkdtemp(prefix="extsort-", dir=workdir)
        # Registered before any run file exists: every exit path —
        # including mid-merge faults — removes the whole spill tree.
        stack.callback(shutil.rmtree, tmp, ignore_errors=True)
        tmpdir = Path(tmp)
        paths = _write_runs(
            arr, memory_budget_elements, tmpdir,
            injector, max_io_retries, io_backoff_s,
        )
        return _merge_runs(
            paths, memory_budget_elements, arr.dtype,
            injector, max_io_retries, io_backoff_s,
        )


# ---------------------------------------------------------------------------
# Timed plan
# ---------------------------------------------------------------------------


def external_sort_plan(
    node: KNLNode,
    n: int,
    memory_budget_bytes: float,
    threads: int = 256,
    fan_in: int = 64,
    s_sort: float = 0.21e9,
    s_merge: float = 0.55e9,
    element_size: int = INT64,
) -> Plan:
    """Timed out-of-core mergesort against the disk device.

    Run formation reads the data from disk and writes sorted runs
    back (one full disk round-trip, with in-memory sorting through
    DDR); each merge pass (``ceil(log_fan_in(num_runs))`` of them)
    streams the whole data set disk -> DDR -> disk again.
    """
    if n < 1:
        raise ConfigError("n must be >= 1")
    if memory_budget_bytes <= 0:
        raise ConfigError("memory budget must be positive")
    if fan_in < 2:
        raise ConfigError("fan_in must be >= 2")
    nbytes = float(n * element_size)
    num_runs = max(1, math.ceil(nbytes / memory_budget_bytes))
    merge_passes = max(1, math.ceil(math.log(max(num_runs, 2), fan_in)))
    plan = Plan(name=f"external-sort/n={n}")
    # Run formation: disk in + out, plus the in-memory sort traffic.
    plan.add(
        Phase(
            "run-formation/io",
            [Flow("disk-io", threads, 1 * GB, {"disk": 2.0}, nbytes)],
        )
    )
    m = max(2.0, memory_budget_bytes / element_size / threads)
    levels = 1.15 * math.log2(m)
    plan.add(
        Phase(
            "run-formation/sort",
            [Flow("sort", threads, s_sort, {"ddr": 2.0}, nbytes * levels)],
        )
    )
    for p in range(merge_passes):
        plan.add(
            Phase(
                f"merge-pass{p}",
                [
                    # Streaming merge bound by both disk and memory.
                    Flow(
                        "merge",
                        threads,
                        s_merge,
                        {"disk": 2.0, "ddr": 2.0},
                        nbytes,
                    )
                ],
            )
        )
    return plan


def run_external_sort_plan(
    node: KNLNode,
    n: int,
    memory_budget_bytes: float,
    disk_bandwidth: float = 2 * GB,
    injector: FaultInjector | None = None,
    **kwargs,
) -> RunResult:
    """Execute the timed plan with a disk attached to the node.

    An injector's bandwidth-degradation faults may target ``"disk"``
    as well as the node devices — a degraded spill device slows the
    merge passes exactly as a contended NVMe would.
    """
    plan = external_sort_plan(node, n, memory_budget_bytes, **kwargs)
    resources = [*node.resources(), disk_device(bandwidth=disk_bandwidth).resource()]
    return Engine(resources, record_events=False, injector=injector).run(plan)
