"""MLM-sort and its variants (Section 4), functional and timed.

MLM-sort divides the input into MCDRAM-sized *megachunks*; within a
megachunk each thread serial-sorts one maximal chunk, a parallel
multiway merge (near memory → DDR) finishes the megachunk, and a final
multiway merge across megachunks finishes the global sort. Variants:

* **MLM-sort** — flat mode, explicit copy-in of each megachunk;
* **MLM-implicit** — the same code in hardware cache mode with no
  copies (megachunk may exceed MCDRAM — the paper's best performer);
* **MLM-ddr** — the same structure touching only DDR (ablation);
* **basic chunked sort** — the Bender et al. algorithm MLM-sort
  refines: parallel (GNU) sort per chunk in a buffered pipeline plus a
  final multiway merge.

The paper leaves *buffered* MLM-sort (overlapping the next megachunk's
copy-in with the current megachunk's merge) as future work; we
implement it behind ``MLMSortConfig.buffered_megachunks``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.algorithms.costs import SortCostModel, sort_levels
from repro.algorithms.multiway_merge import multiway_merge
from repro.algorithms.parallel_sort import (
    _cache_stream_multipliers,
    _sort_phases,
    gnu_parallel_sort,
)
from repro.algorithms.serial_sort import serial_sort
from repro.core.chunking import Chunker
from repro.core.kernel import Kernel
from repro.core.modes import UsageMode, validate_node_mode
from repro.core.resilient import ResilienceReport, ResilientPipeline
from repro.faults import FaultInjector
from repro.simknl.engine import Phase, Plan
from repro.simknl.flows import Flow
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode
from repro.telemetry import names as _tn
from repro.telemetry import runtime as _tm
from repro.threads.pool import PoolSet
from repro.units import INT64


# ---------------------------------------------------------------------------
# Functional implementations
# ---------------------------------------------------------------------------


def _sort_megachunk(mega: np.ndarray, threads: int) -> np.ndarray:
    """Sort one megachunk: per-thread serial sorts + multiway merge."""
    k = min(threads, len(mega))
    bounds = [len(mega) * t // k for t in range(k + 1)]
    runs = [serial_sort(mega[bounds[t] : bounds[t + 1]]) for t in range(k)]
    tel = _tm.current()
    if tel.enabled:
        tel.metrics.counter(_tn.SORT_MEGACHUNKS_TOTAL).inc()
        tel.metrics.histogram(_tn.SORT_MERGE_FAN_IN).observe(len(runs))
        tel.events.emit(_tn.EVENT_SORT_MERGE, fan_in=len(runs))
    return multiway_merge(runs)


def mlm_sort(
    arr: np.ndarray, megachunk_elements: int, threads: int = 4
) -> np.ndarray:
    """Functional MLM-sort. Returns a new sorted array.

    Parameters
    ----------
    arr:
        One-dimensional input.
    megachunk_elements:
        Megachunk size in elements (the near-memory budget).
    threads:
        Serial-sort chunks per megachunk (one per thread).
    """
    if arr.ndim != 1:
        raise ConfigError("expects a one-dimensional array")
    if megachunk_elements < 1:
        raise ConfigError("megachunk_elements must be >= 1")
    if threads < 1:
        raise ConfigError("threads must be >= 1")
    n = len(arr)
    if n == 0:
        return arr.copy()
    chunker = Chunker.from_elements(
        n, min(megachunk_elements, n), element_size=arr.itemsize
    )
    megachunks = [
        _sort_megachunk(mega, threads) for mega in chunker.split_array(arr)
    ]
    tel = _tm.current()
    if tel.enabled and len(megachunks) > 1:
        tel.metrics.histogram(_tn.SORT_MERGE_FAN_IN).observe(len(megachunks))
        tel.events.emit(_tn.EVENT_SORT_MERGE, fan_in=len(megachunks))
    return multiway_merge(megachunks)


class MegachunkSortKernel(Kernel):
    """Compute kernel of MLM-sort's megachunk stage: per-thread serial
    sorts followed by the in-megachunk multiway merge."""

    name = "mlm-megachunk-sort"

    def __init__(
        self,
        threads: int,
        cost: SortCostModel | None = None,
        order: str = "random",
        element_size: int = INT64,
    ) -> None:
        if threads < 1:
            raise ConfigError("threads must be >= 1")
        self.threads = threads
        self.cost = cost or SortCostModel()
        self.order = order
        self.element_size = element_size

    def passes(self, chunk_bytes: float) -> float:
        m = max(1.0, chunk_bytes / self.element_size / self.threads)
        # Serial-sort levels plus the megachunk merge pass; halved to
        # match the kernel convention (logical bytes carry the 2x).
        return (
            sort_levels(m, self.cost, order=self.order, gnu=False) + 1.0
        ) / 2.0

    def apply(self, chunk: np.ndarray) -> np.ndarray:
        return _sort_megachunk(chunk, self.threads)


def resilient_mlm_sort(
    arr: np.ndarray,
    megachunk_elements: int,
    threads: int = 4,
    node: KNLNode | None = None,
    injector: FaultInjector | None = None,
    max_chunk_retries: int = 2,
) -> np.ndarray:
    """Fault-tolerant functional MLM-sort.

    Each megachunk's buffer is allocated through the fault-aware
    memkind heap (an injected MCDRAM allocation failure lands it in
    DDR and is counted, not raised) and transient chunk faults are
    retried up to ``max_chunk_retries`` times — so under any fault
    plan that is not permanently fatal the output is still the exact
    sorted permutation of the input.

    Raises
    ------
    RetryExhaustedError
        When a chunk keeps faulting past the retry budget.
    """
    if arr.ndim != 1:
        raise ConfigError("expects a one-dimensional array")
    if megachunk_elements < 1:
        raise ConfigError("megachunk_elements must be >= 1")
    if len(arr) == 0:
        return arr.copy()
    if node is None:
        node = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))
    chunker = Chunker.from_elements(
        len(arr), min(megachunk_elements, len(arr)), element_size=arr.itemsize
    )
    mode = UsageMode.FLAT if node.mode is MemoryMode.FLAT else UsageMode.DDR
    pipe = ResilientPipeline(
        node,
        mode,
        chunker,
        MegachunkSortKernel(threads, element_size=arr.itemsize),
        injector=injector,
        max_chunk_retries=max_chunk_retries,
    )
    return multiway_merge(pipe.run_functional(arr))


def resilient_mlm_sort_plan_run(
    node: KNLNode,
    config: MLMSortConfig,
    injector: FaultInjector | None = None,
    cost: SortCostModel | None = None,
    max_chunk_retries: int = 2,
) -> ResilienceReport:
    """Timed MLM-sort through the resilient pipeline.

    The chunk-at-a-time counterpart of :func:`mlm_sort_plan`: each
    megachunk runs as its own sub-plan with retry/straggler recovery,
    DDR fallback for faulted buffer allocations, and a permanent
    FLAT -> DDR downgrade when MCDRAM degrades below DDR bandwidth.
    """
    cfg = config
    validate_node_mode(node, cfg.mode)
    cost = cost or SortCostModel()
    chunker = Chunker.from_elements(
        cfg.n, min(cfg.megachunk_elements, cfg.n), element_size=cfg.element_size
    )
    if cfg.mode in (UsageMode.FLAT, UsageMode.HYBRID):
        copy = max(1, min(8, cfg.threads // 8))
        pools = PoolSet.split(
            node, compute=cfg.threads - 2 * copy, copy_in=copy
        )
    else:
        pools = PoolSet.compute_only(node, cfg.threads)
    pipe = ResilientPipeline(
        node,
        cfg.mode,
        chunker,
        MegachunkSortKernel(
            cfg.threads, cost, order=cfg.order, element_size=cfg.element_size
        ),
        pools=pools,
        injector=injector,
        max_chunk_retries=max_chunk_retries,
    )
    return pipe.run()


def basic_chunked_sort(
    arr: np.ndarray, chunk_elements: int, threads: int = 4
) -> np.ndarray:
    """Functional Bender-style basic chunked sort.

    Each chunk is sorted with the *parallel* GNU-style sort (contrast
    MLM-sort's serial per-thread sorts), then a multiway merge
    finishes.
    """
    if arr.ndim != 1:
        raise ConfigError("expects a one-dimensional array")
    if len(arr) == 0:
        return arr.copy()
    chunker = Chunker.from_elements(
        len(arr), min(chunk_elements, len(arr)), element_size=arr.itemsize
    )
    runs = [
        gnu_parallel_sort(c, threads=threads) for c in chunker.split_array(arr)
    ]
    return multiway_merge(runs)


# ---------------------------------------------------------------------------
# Timed plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MLMSortConfig:
    """Configuration of a timed MLM-sort run."""

    n: int
    megachunk_elements: int
    mode: UsageMode = UsageMode.FLAT
    order: str = "random"
    threads: int = 256
    element_size: int = INT64
    #: Paper future work: overlap the next megachunk's copy-in with
    #: the current megachunk's merge, using dedicated copy threads.
    #: The serial-sort stage is compute-heavy, so per Section 5 only a
    #: handful of copy threads pay for themselves.
    buffered_megachunks: bool = False
    copy_in_threads: int = 4

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigError("n must be >= 1")
        if self.megachunk_elements < 1:
            raise ConfigError("megachunk_elements must be >= 1")
        if self.threads < 1:
            raise ConfigError("threads must be >= 1")
        if self.mode is UsageMode.CACHE:
            raise ConfigError(
                "MLM-sort's chunked discipline in cache BIOS mode is the "
                "IMPLICIT usage mode"
            )
        if self.buffered_megachunks and self.copy_in_threads >= self.threads:
            raise ConfigError("copy_in_threads must leave compute threads")


def _overhead_phase(name: str, seconds: float) -> Phase:
    """A fixed-duration phase (fork/join, buffer setup) expressed as a
    resource-free flow draining ``seconds`` at unit rate."""
    return Phase(name, [Flow(name, 1, 1.0, {}, seconds)])


def _merge_flows_to_ddr(
    node: KNLNode,
    mode: UsageMode,
    nbytes: float,
    threads: int,
    cost: SortCostModel,
    resident: bool,
    label: str,
) -> list[Flow]:
    """Flows of a multiway merge writing its output to DDR.

    ``resident``: whether the merge's input currently sits in near
    memory (flat mode) / was just written by the sort stage (cache
    modes).
    """
    if mode in (UsageMode.FLAT, UsageMode.HYBRID):
        res = {"mcdram": 1.0, "ddr": 1.0}  # read near, write far
    elif mode is UsageMode.DDR:
        res = {"ddr": 2.0}
    else:  # IMPLICIT
        cache = node.cache_model
        read = cache.stream(nbytes, passes=1, write_fraction=0.0, cold=not resident)
        res = {
            "mcdram": read.mcdram_bytes / nbytes / cost.cache_bw_factor + 1.0,
            # Writes allocate in the cache and are written back to DDR.
            "ddr": read.ddr_bytes / nbytes + 1.0,
        }
    return [Flow(label, threads, cost.s_merge, res, nbytes)]


def mlm_sort_plan(
    node: KNLNode,
    config: MLMSortConfig,
    cost: SortCostModel | None = None,
) -> Plan:
    """Timed flow plan for MLM-sort / MLM-implicit / MLM-ddr."""
    cfg = config
    validate_node_mode(node, cfg.mode)
    cost = cost or SortCostModel()
    nbytes = float(cfg.n * cfg.element_size)
    chunker = Chunker.from_elements(
        cfg.n,
        min(cfg.megachunk_elements, cfg.n),
        element_size=cfg.element_size,
    )
    megachunks = chunker.chunks()
    explicit = cfg.mode in (UsageMode.FLAT, UsageMode.HYBRID)
    if explicit and not cfg.buffered_megachunks:
        budget = node.addressable_mcdram
        if chunker.chunk_bytes > budget:
            raise ConfigError(
                f"megachunk of {chunker.chunk_bytes} bytes exceeds "
                f"addressable MCDRAM ({budget:.0f})"
            )

    compute_threads = cfg.threads
    copy_threads = 0
    if cfg.buffered_megachunks and explicit:
        copy_threads = cfg.copy_in_threads
        compute_threads = cfg.threads - copy_threads

    plan = Plan(name=f"mlm-{cfg.mode.value}/{cfg.order}/n={cfg.n}")
    tel = _tm.current()
    if tel.enabled:
        tel.metrics.counter(_tn.SORT_MEGACHUNKS_TOTAL).inc(len(megachunks))
    for mc in megachunks:
        mb = float(mc.nbytes)
        if cost.chunk_overhead_s > 0:
            plan.add(
                _overhead_phase(f"mega{mc.index}/setup", cost.chunk_overhead_s)
            )
        m_elems = max(1.0, mc.nbytes / cfg.element_size / compute_threads)
        levels = sort_levels(m_elems, cost, order=cfg.order, gnu=False)

        if explicit and not cfg.buffered_megachunks:
            # Unbuffered: all threads participate in the copy-in.
            plan.add(
                Phase(
                    f"mega{mc.index}/copy-in",
                    [
                        Flow(
                            "copy-in",
                            cfg.threads,
                            cost.s_copy,
                            {"ddr": 1.0, "mcdram": 1.0},
                            mb,
                        )
                    ],
                )
            )
        sort_phases = _sort_phases(
            node,
            cfg.mode,
            mb,
            levels,
            compute_threads,
            cost.s_sort_random,
            cost,
            working_set=mb,
            label=f"mega{mc.index}/serial-sort",
        )
        if explicit and cfg.buffered_megachunks and mc.index == 0:
            # First megachunk still needs a blocking copy-in.
            plan.add(
                Phase(
                    "mega0/copy-in",
                    [
                        Flow(
                            "copy-in",
                            cfg.threads,
                            cost.s_copy,
                            {"ddr": 1.0, "mcdram": 1.0},
                            mb,
                        )
                    ],
                )
            )
        if (
            explicit
            and cfg.buffered_megachunks
            and mc.index + 1 < len(megachunks)
        ):
            # Future-work variant: hide the next megachunk's copy-in
            # behind the (long) serial-sort stage of the current one.
            nxt = megachunks[mc.index + 1]
            sort_phases[0].flows.append(
                Flow(
                    f"mega{nxt.index}/copy-in",
                    copy_threads,
                    cost.s_copy,
                    {"ddr": 1.0, "mcdram": 1.0},
                    float(nxt.nbytes),
                )
            )
        for phase in sort_phases:
            plan.add(phase)

        merge_flows = _merge_flows_to_ddr(
            node,
            cfg.mode,
            mb,
            compute_threads,
            cost,
            resident=True,
            label=f"mega{mc.index}/merge",
        )
        plan.add(Phase(f"mega{mc.index}/merge", merge_flows))

    if len(megachunks) > 1:
        # Final multiway merge across megachunks; the paper runs it
        # without chunking, straight out of DDR.
        if cfg.mode is UsageMode.IMPLICIT:
            res = _cache_stream_multipliers(node, nbytes, cost)
        else:
            res = {"ddr": 2.0}
        plan.add(
            Phase(
                "final-merge",
                [Flow("final-merge", cfg.threads, cost.s_merge, res, nbytes)],
            )
        )
    return plan


class ParallelSortKernel(Kernel):
    """Compute kernel of the basic chunked sort: a GNU-style parallel
    sort of one chunk, expressed as effective streaming passes."""

    name = "parallel-sort"

    def __init__(
        self,
        threads: int,
        cost: SortCostModel,
        order: str = "random",
        element_size: int = INT64,
    ) -> None:
        if threads < 1:
            raise ConfigError("threads must be >= 1")
        self.threads = threads
        self.cost = cost
        self.order = order
        self.element_size = element_size

    def passes(self, chunk_bytes: float) -> float:
        m = max(1.0, chunk_bytes / self.element_size / self.threads)
        # Local sort levels plus one multiway-merge pass; the factor
        # 1/2 converts levels (single-direction sweeps) into the
        # kernel convention where logical bytes already include the 2x.
        return (
            sort_levels(m, self.cost, order=self.order, gnu=True) + 1.0
        ) / 2.0

    def apply(self, chunk: np.ndarray) -> np.ndarray:
        return gnu_parallel_sort(chunk, threads=min(self.threads, 8))


def basic_chunked_sort_plan(
    node: KNLNode,
    n: int,
    chunk_elements: int,
    order: str = "random",
    threads: int = 256,
    copy_in_threads: int = 10,
    cost: SortCostModel | None = None,
    element_size: int = INT64,
) -> Plan:
    """Timed plan for the Bender-style buffered basic chunked sort.

    Triple-buffered pipeline (copy-in / parallel-sort / copy-out) over
    MCDRAM-sized chunks, then the final multiway merge in DDR. Used by
    the corroboration experiment (~30 % speedup, ~2.5x DDR-traffic
    reduction versus the unchunked GNU baseline).
    """
    from repro.core.buffering import BufferedPipeline
    from repro.model.params import ModelParams

    validate_node_mode(node, UsageMode.FLAT)
    cost = cost or SortCostModel()
    nbytes = float(n * element_size)
    chunker = Chunker.from_elements(n, chunk_elements, element_size)
    compute = threads - 2 * copy_in_threads
    if compute < 1:
        raise ConfigError("copy pools leave no compute threads")
    pools = PoolSet.split(node, compute=compute, copy_in=copy_in_threads)
    kernel = ParallelSortKernel(compute, cost, order, element_size)
    pipe = BufferedPipeline(
        node,
        UsageMode.FLAT,
        pools,
        chunker,
        kernel,
        ModelParams(s_copy=cost.s_copy),
        per_thread_compute_rate=cost.s_sort_random,
    )
    plan = pipe.build_plan()
    plan.name = f"basic-chunked/{order}/n={n}"
    if chunker.num_chunks > 1:
        plan.add(
            Phase(
                "final-merge",
                [
                    Flow(
                        "final-merge",
                        threads,
                        cost.s_merge,
                        {"ddr": 2.0},
                        nbytes,
                    )
                ],
            )
        )
    return plan
