"""Multiway merging: loser tree, vectorized merges, exact splitting.

The paper leans on the GNU parallel library's multiway merge in three
places: finishing MLM-sort's megachunks, the final global merge, and
the GNU baseline itself. We implement the machinery from scratch:

* :class:`LoserTree` — the classic tournament tree used by
  ``__gnu_parallel::multiway_merge`` (O(log k) per output element);
* :func:`merge_two` — a stable vectorized two-way merge via
  ``searchsorted`` position arithmetic;
* :func:`multiway_merge` — k-way merge. The vectorized strategy runs a
  balanced tournament of pairwise merges (O(n log k) with NumPy-speed
  inner loops); the loser-tree strategy is the literal algorithm;
* :func:`multiseq_partition` — GNU-style *exact splitting*: find a
  global rank split across k sorted sequences so parallel threads can
  each merge an independent slice. This is the synchronization-free
  decomposition the GNU merge uses for thread parallelism.

Serves the Section 4 MLM-sort stages and the Section 5 merge benchmark.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigError


class LoserTree:
    """Tournament (loser) tree over k sorted runs.

    Build once, then :meth:`pop` yields the global minimum and
    replays the path — ``log2 k`` comparisons per element.
    :meth:`merge` additionally *gallops*: whenever the winning run
    leads the runner-up, the whole leading block is located with one
    ``searchsorted`` and copied as a slice instead of popped
    element-wise.

    Run heads are cached as Python scalars (``_heads``) so the
    tournament comparisons avoid per-element NumPy scalar boxing.
    """

    def __init__(self, runs: list[np.ndarray]) -> None:
        if not runs:
            raise ConfigError("LoserTree needs at least one run")
        self.runs = runs
        self.k = len(runs)
        self.pos = [0] * self.k
        self._heads = [
            r[0].item() if len(r) else math.inf for r in runs
        ]
        size = 1
        while size < self.k:
            size *= 2
        self._size = size
        # Internal nodes hold the *loser* run index; node 0 holds the
        # overall winner.
        self._tree = [-1] * (2 * size)
        self._rebuild()

    def _key(self, run: int):
        """Current head of ``run`` or +inf when exhausted."""
        if run < 0:
            return math.inf
        return self._heads[run]

    def _advance(self, run: int, steps: int = 1) -> None:
        """Consume ``steps`` elements from ``run`` and refresh its head."""
        r = self.runs[run]
        p = self.pos[run] + steps
        self.pos[run] = p
        self._heads[run] = r[p].item() if p < len(r) else math.inf

    def _replay(self, run: int) -> None:
        """Replay the tournament path from ``run``'s leaf to the root."""
        node = (self._size + run) // 2
        current = run
        tree = self._tree
        heads = self._heads
        while node >= 1:
            loser = tree[node]
            if loser >= 0 and heads[loser] < (
                math.inf if current < 0 else heads[current]
            ):
                tree[node] = current
                current = loser
            node //= 2
        tree[0] = current

    def _rebuild(self) -> None:
        size = self._size
        # Leaves: run indices (or -1 padding).
        winners = [i if i < self.k else -1 for i in range(size)]
        level = winners
        nodes = size
        offset = size
        while nodes > 1:
            next_level = []
            for i in range(0, nodes, 2):
                a, b = level[i], level[i + 1]
                if self._key(a) <= self._key(b):
                    win, lose = a, b
                else:
                    win, lose = b, a
                self._tree[(offset + i) // 2] = lose
                next_level.append(win)
            level = next_level
            nodes //= 2
            offset //= 2
        self._tree[0] = level[0]

    @property
    def empty(self) -> bool:
        """True when every run is exhausted."""
        return self._key(self._tree[0]) == math.inf

    def pop(self):
        """Remove and return the smallest remaining element."""
        winner = self._tree[0]
        if self._key(winner) == math.inf:
            raise ConfigError("pop from exhausted LoserTree")
        value = self.runs[winner][self.pos[winner]]
        self._advance(winner)
        self._replay(winner)
        return value

    def merge(self) -> np.ndarray:
        """Drain the tree into one sorted array.

        Gallops: each round takes the tournament winner ``w``, finds
        the smallest head among the *other* runs (the challenger), and
        drains from ``w`` the whole prefix ``<= challenger`` located
        with one ``searchsorted``. Equal elements go to the winner,
        which is safe because the output carries values only. One
        block costs O(k + log len) instead of O(block * log k).
        """
        total = sum(len(r) for r in self.runs) - sum(self.pos)
        dtype = self.runs[0].dtype
        out = np.empty(total, dtype=dtype)
        filled = 0
        runs = self.runs
        pos = self.pos
        heads = self._heads
        tree = self._tree
        size = self._size
        while filled < total:
            winner = tree[0]
            run = runs[winner]
            p = pos[winner]
            # The runner-up is the smallest head among the losers on
            # the winner's leaf-to-root path — O(log k), no full scan.
            challenger = math.inf
            node = (size + winner) // 2
            while node >= 1:
                loser = tree[node]
                if loser >= 0 and heads[loser] < challenger:
                    challenger = heads[loser]
                node //= 2
            n_run = len(run)
            q = p + 1
            if challenger == math.inf:
                # Every other run is exhausted: bulk-copy the rest.
                m = n_run - p
                out[filled : filled + m] = run[p:]
                filled += m
                pos[winner] = n_run
                heads[winner] = math.inf
            elif q >= n_run:
                out[filled] = heads[winner]
                filled += 1
                pos[winner] = q
                heads[winner] = math.inf
            elif (nxt := run[q].item()) > challenger:
                # Single-element block: stay scalar, skip searchsorted.
                out[filled] = heads[winner]
                filled += 1
                pos[winner] = q
                heads[winner] = nxt
            else:
                m = int(
                    np.searchsorted(run[p:], challenger, side="right")
                )
                out[filled : filled + m] = run[p : p + m]
                filled += m
                self._advance(winner, m)
            self._replay(winner)
        return out


def merge_two(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Stable vectorized merge of two sorted arrays.

    Elements of ``a`` precede equal elements of ``b``. Runs at NumPy
    speed: two ``searchsorted`` calls and two scatters.
    """
    if a.dtype != b.dtype:
        raise ConfigError("merge_two requires matching dtypes")
    out = np.empty(len(a) + len(b), dtype=a.dtype)
    ia = np.searchsorted(b, a, side="left") + np.arange(len(a))
    ib = np.searchsorted(a, b, side="right") + np.arange(len(b))
    out[ia] = a
    out[ib] = b
    return out


def multiway_merge(
    runs: list[np.ndarray], strategy: str = "tournament"
) -> np.ndarray:
    """Merge ``k`` sorted runs into one sorted array.

    Parameters
    ----------
    runs:
        Sorted input arrays (may be empty arrays).
    strategy:
        ``"tournament"`` (balanced pairwise :func:`merge_two` rounds,
        the fast default) or ``"losertree"`` (the literal per-element
        algorithm).
    """
    if not runs:
        raise ConfigError("multiway_merge needs at least one run")
    if strategy == "losertree":
        return LoserTree([np.asarray(r) for r in runs]).merge()
    if strategy != "tournament":
        raise ConfigError(f"unknown strategy {strategy!r}")
    level = [np.asarray(r) for r in runs]
    while len(level) > 1:
        merged = []
        for i in range(0, len(level) - 1, 2):
            merged.append(merge_two(level[i], level[i + 1]))
        if len(level) % 2:
            merged.append(level[-1])
        level = merged
    return level[0]


def multiseq_partition(runs: list[np.ndarray], rank: int) -> list[int]:
    """Exact splitting: positions ``s_i`` with ``sum(s_i) == rank``
    such that every selected element <= every unselected element.

    This is the decomposition GNU's parallel multiway merge uses to
    hand each thread an independent slice of the output. Integer
    inputs bisect the value domain; other dtypes (floats) select the
    rank-th value directly with ``np.partition``, after which both
    paths share the strictly-below + tie-distribution arithmetic.
    """
    if not runs:
        raise ConfigError("multiseq_partition needs at least one run")
    total = sum(len(r) for r in runs)
    if not 0 <= rank <= total:
        raise ConfigError(f"rank {rank} out of range 0..{total}")
    if rank == 0:
        return [0] * len(runs)
    if rank == total:
        return [len(r) for r in runs]
    candidates = np.concatenate([r for r in runs if len(r)])
    if np.issubdtype(candidates.dtype, np.integer):
        # Binary search the smallest value v such that
        # count(elements <= v) >= rank, using 'right' positions.
        lo_v, hi_v = candidates.min(), candidates.max()
        while lo_v < hi_v:
            mid = lo_v + (hi_v - lo_v) // 2
            count = sum(
                int(np.searchsorted(r, mid, side="right")) for r in runs
            )
            if count >= rank:
                hi_v = mid
            else:
                lo_v = mid + 1
        v = lo_v
    else:
        # Selection: the rank-th smallest value is exactly the
        # smallest v with count(<= v) >= rank, no bisection needed.
        v = np.partition(candidates, rank - 1)[rank - 1]
    # Take all elements strictly below v, then distribute ties.
    below = [int(np.searchsorted(r, v, side="left")) for r in runs]
    taken = sum(below)
    splits = list(below)
    need = rank - taken
    for i, r in enumerate(runs):
        if need <= 0:
            break
        ties = int(np.searchsorted(r, v, side="right")) - below[i]
        take = min(ties, need)
        splits[i] += take
        need -= take
    if need != 0:
        raise ConfigError("exact splitting failed to balance ranks")
    return splits


def parallel_multiway_merge(
    runs: list[np.ndarray], threads: int
) -> np.ndarray:
    """Thread-decomposed multiway merge using exact splitting.

    Partitions the output into ``threads`` equal-rank slices via
    :func:`multiseq_partition` and merges each slice independently —
    the structure (though not the OS threading) of the GNU parallel
    multiway merge. Deterministic and single-process here; the
    decomposition is what the tests verify.
    """
    if threads < 1:
        raise ConfigError("threads must be >= 1")
    total = sum(len(r) for r in runs)
    if total == 0:
        return np.empty(0, dtype=runs[0].dtype)
    bounds = [0] * (threads + 1)
    prev_splits = [0] * len(runs)
    pieces = []
    for t in range(1, threads + 1):
        rank = (total * t) // threads
        splits = multiseq_partition(runs, rank)
        slice_runs = [
            r[prev_splits[i] : splits[i]] for i, r in enumerate(runs)
        ]
        pieces.append(multiway_merge(slice_runs))
        prev_splits = splits
        bounds[t] = rank
    return np.concatenate(pieces)
