"""Sorting and streaming algorithms, functional and timed.

Every algorithm the paper evaluates exists here in two forms:

* a **functional** implementation on real NumPy arrays (serial
  introsort, loser-tree and vectorized multiway merges, the
  GNU-parallel-sort equivalent, MLM-sort and its variants, the merge
  benchmark kernel) — used by tests and examples at laptop scale;
* a **timed** plan builder that emits the identical phase structure as
  bandwidth flows for the simulated KNL node — used by the experiment
  drivers at paper scale (2-6 billion elements).

The shared cost model lives in :mod:`repro.algorithms.costs`.

Covers the Section 4 algorithms, the Section 5 merge benchmark, and the
Section 2 comparison points.
"""

from repro.algorithms.costs import SortCostModel, sort_levels
from repro.algorithms.serial_sort import insertion_sort, introsort, serial_sort
from repro.algorithms.multiway_merge import (
    LoserTree,
    merge_two,
    multiway_merge,
    multiseq_partition,
)
from repro.algorithms.parallel_sort import (
    gnu_parallel_sort,
    gnu_sort_plan,
)
from repro.algorithms.mlm_sort import (
    MLMSortConfig,
    basic_chunked_sort,
    mlm_sort,
    mlm_sort_plan,
    resilient_mlm_sort,
    resilient_mlm_sort_plan_run,
)
from repro.algorithms.merge_bench import (
    MergeBenchConfig,
    merge_bench_kernel,
    run_merge_bench,
    empirical_optimal_copy_threads,
)
from repro.algorithms.stream import (
    measure_bandwidth,
    measure_per_thread_rates,
    stream_triad_plan,
)
from repro.algorithms.oblivious import oblivious_mergesort, oblivious_sort_plan
from repro.algorithms.funnelsort import funnelsort, funnelsort_plan
from repro.algorithms.external_sort import external_sort, external_sort_plan

__all__ = [
    "SortCostModel",
    "sort_levels",
    "insertion_sort",
    "introsort",
    "serial_sort",
    "LoserTree",
    "merge_two",
    "multiway_merge",
    "multiseq_partition",
    "gnu_parallel_sort",
    "gnu_sort_plan",
    "MLMSortConfig",
    "basic_chunked_sort",
    "mlm_sort",
    "mlm_sort_plan",
    "resilient_mlm_sort",
    "resilient_mlm_sort_plan_run",
    "MergeBenchConfig",
    "merge_bench_kernel",
    "run_merge_bench",
    "empirical_optimal_copy_threads",
    "measure_bandwidth",
    "measure_per_thread_rates",
    "stream_triad_plan",
    "oblivious_mergesort",
    "oblivious_sort_plan",
    "funnelsort",
    "funnelsort_plan",
    "external_sort",
    "external_sort_plan",
]
