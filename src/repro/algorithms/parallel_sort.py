"""GNU-parallel-sort equivalent: functional and timed.

``__gnu_parallel::sort`` is a multiway mergesort: each of ``p``
threads sorts an ``n/p`` block serially, then a parallel multiway
merge with exact splitting combines the blocks through a temporary
buffer. :func:`gnu_parallel_sort` implements exactly that structure on
NumPy arrays; :func:`gnu_sort_plan` emits the corresponding timed flow
plan for the simulated node, in DDR (the paper's "GNU-flat") or
hardware cache mode ("GNU-cache").

The GNU baseline of Table 1 (flat and cache modes).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.algorithms.costs import SortCostModel, sort_levels
from repro.algorithms.multiway_merge import parallel_multiway_merge
from repro.algorithms.serial_sort import serial_sort
from repro.core.modes import UsageMode, dc_cache_split, validate_node_mode
from repro.simknl.engine import Phase, Plan
from repro.simknl.flows import Flow
from repro.simknl.node import KNLNode
from repro.units import INT64


def gnu_parallel_sort(
    arr: np.ndarray, threads: int = 4
) -> np.ndarray:
    """Functional GNU-style multiway mergesort.

    Splits into ``threads`` blocks, serial-sorts each, then multiway
    merges with exact splitting. Returns a new sorted array.
    """
    if threads < 1:
        raise ConfigError("threads must be >= 1")
    if arr.ndim != 1:
        raise ConfigError("expects a one-dimensional array")
    n = len(arr)
    if n == 0:
        return arr.copy()
    threads = min(threads, n)
    bounds = [n * t // threads for t in range(threads + 1)]
    runs = [serial_sort(arr[bounds[t] : bounds[t + 1]]) for t in range(threads)]
    return parallel_multiway_merge(runs, threads=threads)


def _cache_stream_multipliers(
    node: KNLNode, working_set: float, cost: SortCostModel
) -> dict[str, float]:
    """Per-logical-byte multipliers for one streaming sweep through the
    hardware cache (read-modify-write, no reuse across sweeps)."""
    traffic = node.cache_model.stream(
        working_set, passes=1, write_fraction=0.5, cold=True
    )
    return {
        "mcdram": traffic.mcdram_bytes / working_set / cost.cache_bw_factor,
        "ddr": traffic.ddr_bytes / working_set,
    }


def _sort_phases(
    node: KNLNode,
    mode: UsageMode,
    data_bytes: float,
    levels: float,
    threads: int,
    s_sort: float,
    cost: SortCostModel,
    working_set: float | None = None,
    label: str = "local-sort",
) -> list[Phase]:
    """Phases of a divide-and-conquer sort stage.

    ``levels`` sweeps over ``data_bytes``; each sweep reads and writes
    (multiplier 2 on the home device). Under a cache-backed mode the
    first ``log2(ws / cache)`` recursion levels thrash to DDR and the
    deeper levels run at (derated) MCDRAM speed — the active-set
    argument the paper gives for MLM-implicit's tolerance of oversized
    megachunks. The two bands are *sequential* recursion depths, so
    they form separate barrier phases, not concurrent flows.
    """
    ws = working_set if working_set is not None else data_bytes
    phases = []
    if mode in (UsageMode.CACHE, UsageMode.IMPLICIT):
        uncached, cached = dc_cache_split(
            node, mode, ws, levels, cost.thrash_level_offset
        )
        if uncached > 0:
            phases.append(
                Phase(
                    f"{label}/thrash",
                    [
                        Flow(
                            f"{label}/thrash",
                            threads,
                            s_sort * cost.thrash_rate_factor,
                            _cache_stream_multipliers(node, ws, cost),
                            data_bytes * uncached,
                        )
                    ],
                )
            )
        if cached > 0:
            phases.append(
                Phase(
                    f"{label}/cached",
                    [
                        Flow(
                            f"{label}/cached",
                            threads,
                            s_sort,
                            {"mcdram": 2.0 / cost.cache_bw_factor},
                            data_bytes * cached,
                        )
                    ],
                )
            )
    elif mode in (UsageMode.FLAT, UsageMode.HYBRID):
        phases.append(
            Phase(
                label,
                [Flow(label, threads, s_sort, {"mcdram": 2.0}, data_bytes * levels)],
            )
        )
    elif mode is UsageMode.DDR:
        phases.append(
            Phase(
                label,
                [Flow(label, threads, s_sort, {"ddr": 2.0}, data_bytes * levels)],
            )
        )
    else:  # pragma: no cover - enum is exhaustive
        raise ConfigError(f"unsupported mode {mode!r}")
    return phases


def gnu_sort_plan(
    node: KNLNode,
    n: int,
    order: str = "random",
    mode: UsageMode = UsageMode.DDR,
    threads: int = 256,
    cost: SortCostModel | None = None,
    element_size: int = INT64,
) -> Plan:
    """Timed plan for the GNU parallel sort baseline.

    ``mode`` must be ``DDR`` (GNU-flat: data and temp in DDR) or
    ``CACHE`` (GNU-cache: same code, MCDRAM as hardware cache).
    """
    if mode not in (UsageMode.DDR, UsageMode.CACHE):
        raise ConfigError("GNU baseline runs in DDR or CACHE usage modes")
    validate_node_mode(node, mode)
    if n < 1 or threads < 1:
        raise ConfigError("n and threads must be positive")
    cost = cost or SortCostModel()
    nbytes = float(n * element_size)
    m = max(1.0, n / threads)
    levels = sort_levels(m, cost, order=order, gnu=True)
    s_sort = cost.s_sort_random
    # GNU keeps data + temp live, doubling the cache working set.
    ws = nbytes * cost.gnu_working_set_factor

    plan = Plan(name=f"gnu-{mode.value}/{order}/n={n}")
    for phase in _sort_phases(
        node, mode, nbytes, levels, threads, s_sort, cost, ws, "local-sort"
    ):
        plan.add(phase)
    # Multiway merge into temp, then copy back — both full sweeps.
    if mode is UsageMode.CACHE:
        merge_res = _cache_stream_multipliers(node, ws, cost)
        copy_res = merge_res
    else:
        merge_res = {"ddr": 2.0}
        copy_res = {"ddr": 2.0}
    plan.add(
        Phase(
            "multiway-merge",
            [Flow("mwm", threads, cost.s_merge, merge_res, nbytes)],
        )
    )
    plan.add(
        Phase(
            "copy-back",
            [Flow("copy-back", threads, cost.s_copy, copy_res, nbytes)],
        )
    )
    return plan
