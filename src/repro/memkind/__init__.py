"""Simulated memkind: heap management over heterogeneous memory.

The paper's flat-mode experiments allocate into MCDRAM via the memkind
library's ``hbw_malloc()``. This package reproduces that API surface on
top of the simulated node: *kinds* select a placement policy
(bind / preferred / interleave across DDR and MCDRAM), a first-fit
free-list heap manages each device's address range, and the numactl
``--preferred`` behaviour used by Li et al. (allocate in MCDRAM until
full, then spill to DDR) is available as
:data:`~repro.memkind.kinds.MEMKIND_HBW_PREFERRED`.

Reproduces the flat-mode allocation mechanism of Section 1; the Section
3 chunk buffers allocate through it.
"""

from repro.memkind.kinds import (
    Kind,
    Policy,
    MEMKIND_DEFAULT,
    MEMKIND_HBW,
    MEMKIND_HBW_PREFERRED,
    MEMKIND_HBW_INTERLEAVE,
)
from repro.memkind.allocator import Allocation, Block, Heap, Region
from repro.memkind.hbw import HbwAPI

__all__ = [
    "Kind",
    "Policy",
    "MEMKIND_DEFAULT",
    "MEMKIND_HBW",
    "MEMKIND_HBW_PREFERRED",
    "MEMKIND_HBW_INTERLEAVE",
    "Allocation",
    "Block",
    "Heap",
    "Region",
    "HbwAPI",
]
