"""The memkind ``hbw_*`` convenience API over a :class:`Heap`.

Mirrors the C API the paper's flat-mode code uses::

    hbw_check_available();
    int64_t *chunk = hbw_malloc(bytes);
    ...
    hbw_free(chunk);

plus the policy selector ``hbw_set_policy`` which maps onto the
PREFERRED/BIND kinds.

The flat-mode allocation API of Section 1.
"""

from __future__ import annotations

from repro.errors import AllocationError
from repro.memkind.allocator import Allocation, Heap
from repro.memkind.kinds import (
    MEMKIND_DEFAULT,
    MEMKIND_HBW,
    MEMKIND_HBW_PREFERRED,
    Kind,
)


class HbwAPI:
    """Stateful facade matching memkind's hbw_* entry points.

    Parameters
    ----------
    heap:
        The backing heap.
    """

    def __init__(self, heap: Heap) -> None:
        self.heap = heap
        self._policy_kind: Kind = MEMKIND_HBW

    def check_available(self) -> bool:
        """``hbw_check_available``: True when HBW memory is addressable."""
        return self.heap.has_hbw()

    def set_policy(self, preferred: bool) -> None:
        """Switch between BIND (strict) and PREFERRED (spill) policies."""
        self._policy_kind = MEMKIND_HBW_PREFERRED if preferred else MEMKIND_HBW

    def malloc(self, size: int) -> Allocation:
        """``hbw_malloc``: allocate in high-bandwidth memory.

        Raises
        ------
        AllocationError
            Under the strict policy when MCDRAM cannot satisfy the
            request (including pure cache mode, where no MCDRAM is
            addressable at all).
        """
        return self.heap.allocate(size, self._policy_kind)

    def calloc(self, count: int, size: int) -> Allocation:
        """``hbw_calloc``: like malloc for ``count * size`` bytes."""
        if count <= 0 or size <= 0:
            raise AllocationError("calloc requires positive count and size")
        return self.malloc(count * size)

    def ddr_malloc(self, size: int) -> Allocation:
        """Plain ``malloc`` into DDR (MEMKIND_DEFAULT)."""
        return self.heap.allocate(size, MEMKIND_DEFAULT)

    def free(self, allocation: Allocation) -> None:
        """``hbw_free``."""
        self.heap.free(allocation)
