"""First-fit free-list heap over the node's memory devices.

Each device gets a :class:`Region` — a contiguous simulated address
range managed by a sorted free list with first-fit allocation and
eager coalescing on free. A :class:`Heap` owns one region per device
and implements the kind policies (bind / preferred / interleave).

Addresses are synthetic but stable, so they can feed the line-level
cache simulator (e.g. to study conflict misses between co-resident
buffers in hardware cache mode).

Backs the flat-mode chunk buffers of Section 3 (Fig. 2's triple buffers
really allocate here).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.errors import AllocationError, ConfigError, DegradedModeWarning
from repro.faults import FaultInjector
from repro.memkind.kinds import Kind, Policy
from repro.simknl.node import KNLNode
from repro.telemetry import names as _tn
from repro.telemetry import runtime as _tm
from repro.units import KiB

#: Default allocation granularity (one small page).
PAGE = 4 * KiB


@dataclass(frozen=True)
class Block:
    """A contiguous allocated extent on one device."""

    device: str
    addr: int
    size: int


@dataclass
class Allocation:
    """A (possibly multi-block) allocation returned by the heap."""

    kind: Kind
    blocks: list[Block]
    freed: bool = field(default=False, init=False)

    @property
    def size(self) -> int:
        """Total bytes across all blocks."""
        return sum(b.size for b in self.blocks)

    def bytes_on(self, device: str) -> int:
        """Bytes of this allocation resident on ``device``."""
        return sum(b.size for b in self.blocks if b.device == device)

    @property
    def devices(self) -> set[str]:
        """Devices this allocation touches."""
        return {b.device for b in self.blocks}


class Region:
    """A first-fit free-list allocator over ``[base, base + size)``."""

    def __init__(self, device: str, base: int, size: int) -> None:
        if size <= 0:
            raise ConfigError(f"region {device!r}: size must be positive")
        if base < 0:
            raise ConfigError(f"region {device!r}: negative base")
        self.device = device
        self.base = base
        self.size = size
        # Sorted list of (addr, size) free extents.
        self._free: list[tuple[int, int]] = [(base, size)]
        # Live blocks by address -> size; the authoritative double-free
        # check (the free-list overlap probes alone miss a re-free of a
        # block whose extent was coalesced away).
        self._live: dict[int, int] = {}
        self.allocated = 0
        # Bytes surrendered to capacity-loss faults (see shrink()).
        self.surrendered = 0

    @property
    def free_bytes(self) -> int:
        """Total free bytes (may be fragmented)."""
        return sum(s for _, s in self._free)

    @property
    def largest_free(self) -> int:
        """Largest single free extent."""
        return max((s for _, s in self._free), default=0)

    def alloc(self, size: int) -> Block:
        """First-fit allocate ``size`` bytes.

        Raises
        ------
        AllocationError
            When no single free extent is large enough.
        """
        if size <= 0:
            raise AllocationError(
                f"{self.device}: allocation size must be positive, got {size}"
            )
        for i, (addr, extent) in enumerate(self._free):
            if extent >= size:
                if extent == size:
                    del self._free[i]
                else:
                    self._free[i] = (addr + size, extent - size)
                self.allocated += size
                self._live[addr] = size
                return Block(self.device, addr, size)
        raise AllocationError(
            f"{self.device}: cannot allocate {size} bytes "
            f"(free={self.free_bytes}, largest extent={self.largest_free})"
        )

    def free(self, block: Block) -> None:
        """Return a block to the free list, coalescing neighbours."""
        if block.device != self.device:
            raise AllocationError(
                f"block belongs to {block.device!r}, not {self.device!r}"
            )
        if not (self.base <= block.addr and block.addr + block.size <= self.base + self.size):
            raise AllocationError(f"{self.device}: block outside region")
        if self._live.get(block.addr) != block.size:
            raise AllocationError(
                f"{self.device}: double free (or free of a foreign block) "
                f"at addr={block.addr:#x} size={block.size}"
            )
        addr, size = block.addr, block.size
        # Insert in sorted position.
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < addr:
                lo = mid + 1
            else:
                hi = mid
        # Overlap checks against neighbours.
        if lo > 0:
            paddr, psize = self._free[lo - 1]
            if paddr + psize > addr:
                raise AllocationError(f"{self.device}: double free detected")
        if lo < len(self._free):
            naddr, _ = self._free[lo]
            if addr + size > naddr:
                raise AllocationError(f"{self.device}: double free detected")
        self._free.insert(lo, (addr, size))
        # Coalesce with successor, then predecessor.
        if lo + 1 < len(self._free):
            naddr, nsize = self._free[lo + 1]
            if addr + size == naddr:
                self._free[lo] = (addr, size + nsize)
                del self._free[lo + 1]
                size += nsize
        if lo > 0:
            paddr, psize = self._free[lo - 1]
            if paddr + psize == addr:
                self._free[lo - 1] = (paddr, psize + size)
                del self._free[lo]
        del self._live[block.addr]
        self.allocated -= block.size

    def shrink(self, nbytes: int) -> int:
        """Gracefully give up to ``nbytes`` of *free* space back.

        Models a capacity-loss fault: free extents are surrendered from
        the top of the address range downward; live blocks are never
        revoked. Returns the bytes actually removed (possibly fewer
        than requested when the region is mostly allocated).
        """
        if nbytes < 0:
            raise AllocationError(f"{self.device}: negative shrink")
        remaining = int(nbytes)
        removed = 0
        for i in range(len(self._free) - 1, -1, -1):
            if remaining <= 0:
                break
            addr, extent = self._free[i]
            take = min(extent, remaining)
            if take == extent:
                del self._free[i]
            else:
                self._free[i] = (addr, extent - take)
            remaining -= take
            removed += take
        self.surrendered += removed
        return removed

    def fragmentation(self) -> float:
        """1 - largest_free / free_bytes (0 when unfragmented or full)."""
        fb = self.free_bytes
        if fb == 0:
            return 0.0
        return 1.0 - self.largest_free / fb


class Heap:
    """Kind-aware heap spanning the node's DDR and addressable MCDRAM.

    Parameters
    ----------
    node:
        The booted node; the MCDRAM region size equals the node's
        *addressable* MCDRAM (zero in pure cache mode).
    page:
        Interleave granularity in bytes.
    injector:
        Optional :class:`~repro.faults.FaultInjector`. Injected
        allocation faults on a device do not raise: the heap falls
        back to the kind's fallback device (DDR for the HBW kinds) and
        bumps the injector's ``alloc_fallbacks`` counter — the
        ``HBW_PREFERRED`` degradation discipline, applied even to BIND
        kinds so chunked algorithms keep running when MCDRAM is
        unavailable.
    """

    #: Synthetic base addresses keep the two device ranges disjoint.
    DDR_BASE = 0x0000_0000_0000
    MCDRAM_BASE = 0x1000_0000_0000

    def __init__(
        self,
        node: KNLNode,
        page: int = PAGE,
        injector: FaultInjector | None = None,
    ) -> None:
        if page <= 0:
            raise ConfigError("page must be positive")
        self.node = node
        self.page = page
        self.injector = injector
        self.regions: dict[str, Region] = {
            "ddr": Region("ddr", self.DDR_BASE, int(node.ddr.capacity)),
        }
        hbm = int(node.addressable_mcdram)
        if hbm > 0:
            self.regions["mcdram"] = Region("mcdram", self.MCDRAM_BASE, hbm)

    def has_hbw(self) -> bool:
        """Whether addressable high-bandwidth memory exists (cf.
        ``hbw_check_available``)."""
        return "mcdram" in self.regions

    def _region(self, device: str) -> Region:
        try:
            return self.regions[device]
        except KeyError:
            raise AllocationError(
                f"device {device!r} has no addressable region in mode "
                f"{self.node.mode.value!r}"
            ) from None

    def _fault_on(self, device: str) -> bool:
        """Whether an injected allocation fault hits ``device`` now."""
        return self.injector is not None and self.injector.should_fail_alloc(
            device
        )

    def _fault_fallback(self, size: int, kind: Kind) -> Allocation:
        """Degrade an injected-faulted allocation to the fallback device.

        Falls back to the kind's fallback (DDR for any non-DDR target
        without one), records the event, and warns — instead of
        raising, so callers keep running in a degraded placement.
        """
        fallback = kind.fallback
        if fallback is None and kind.target != "ddr":
            fallback = "ddr"
        if fallback is None or fallback not in self.regions:
            raise AllocationError(
                f"injected allocation fault on {kind.target!r} and no "
                "fallback device is available"
            )
        block = self._region(fallback).alloc(size)
        self.injector.counters.alloc_fallbacks += 1
        tel = _tm.current()
        if tel.enabled:
            tel.metrics.counter(_tn.ALLOC_FALLBACKS_TOTAL).inc()
            tel.events.emit(
                _tn.EVENT_ALLOC_FALLBACK,
                target=kind.target,
                fallback=fallback,
                bytes=size,
            )
        warnings.warn(
            f"allocation fault on {kind.target!r}: {size} bytes placed on "
            f"{fallback!r} instead",
            DegradedModeWarning,
            stacklevel=3,
        )
        return Allocation(kind=kind, blocks=[block])

    def _note_alloc(self, allocation: Allocation) -> None:
        """Account a successful allocation in the active telemetry."""
        tel = _tm.current()
        if not tel.enabled:
            return
        m = tel.metrics
        per_device: dict[str, int] = {}
        for b in allocation.blocks:
            per_device[b.device] = per_device.get(b.device, 0) + b.size
        for device, nbytes in per_device.items():
            m.counter(_tn.ALLOC_REQUESTS_TOTAL).inc(device=device)
            m.counter(_tn.ALLOC_BYTES_TOTAL).inc(nbytes, device=device)
            m.gauge(_tn.ALLOC_HIGH_WATER_BYTES).set_max(
                self.regions[device].allocated, device=device
            )

    def allocate(self, size: int, kind: Kind) -> Allocation:
        """Allocate ``size`` bytes according to ``kind``'s policy."""
        if size <= 0:
            raise AllocationError(
                f"allocation size must be positive, got {size}"
            )
        try:
            allocation = self._allocate(size, kind)
        except AllocationError:
            tel = _tm.current()
            if tel.enabled:
                tel.metrics.counter(_tn.ALLOC_FAILURES_TOTAL).inc(
                    device=kind.target
                )
            raise
        self._note_alloc(allocation)
        return allocation

    def _allocate(self, size: int, kind: Kind) -> Allocation:
        if kind.policy is Policy.BIND:
            if self._fault_on(kind.target):
                return self._fault_fallback(size, kind)
            block = self._region(kind.target).alloc(size)
            return Allocation(kind=kind, blocks=[block])
        if kind.policy is Policy.PREFERRED:
            if self._fault_on(kind.target):
                return self._fault_fallback(size, kind)
            try:
                block = self._region(kind.target).alloc(size)
                return Allocation(kind=kind, blocks=[block])
            except AllocationError:
                if kind.fallback is None:
                    raise
                tel = _tm.current()
                if tel.enabled:
                    tel.metrics.counter(_tn.ALLOC_FAILURES_TOTAL).inc(
                        device=kind.target
                    )
                block = self._region(kind.fallback).alloc(size)
                if tel.enabled:
                    tel.metrics.counter(_tn.ALLOC_FALLBACKS_TOTAL).inc()
                    tel.events.emit(
                        _tn.EVENT_ALLOC_FALLBACK,
                        target=kind.target,
                        fallback=kind.fallback,
                        bytes=size,
                    )
                return Allocation(kind=kind, blocks=[block])
        if kind.policy is Policy.INTERLEAVE:
            if self._fault_on(kind.target):
                return self._fault_fallback(size, kind)
            return self._allocate_interleaved(size, kind)
        raise ConfigError(f"unknown policy {kind.policy!r}")

    def shrink_device(self, device: str, nbytes: int) -> int:
        """Apply a capacity-loss fault to ``device``'s region.

        Returns the bytes actually surrendered (free space only; live
        allocations survive). Unknown devices shrink nothing.
        """
        region = self.regions.get(device)
        if region is None:
            return 0
        removed = region.shrink(nbytes)
        tel = _tm.current()
        if tel.enabled and removed > 0:
            tel.events.emit(
                _tn.EVENT_HEAP_SHRINK, device=device, bytes=removed
            )
        return removed

    def _allocate_interleaved(self, size: int, kind: Kind) -> Allocation:
        if kind.fallback is None:
            raise ConfigError("interleave kind requires a fallback device")
        devices = [kind.target, kind.fallback]
        if not self.has_hbw():
            # Nothing to interleave with: everything lands on fallback.
            block = self._region(kind.fallback).alloc(size)
            return Allocation(kind=kind, blocks=[block])
        blocks: list[Block] = []
        remaining = size
        i = 0
        try:
            while remaining > 0:
                chunk = min(self.page, remaining)
                blocks.append(self._region(devices[i % 2]).alloc(chunk))
                remaining -= chunk
                i += 1
        except AllocationError:
            for b in blocks:
                self.regions[b.device].free(b)
            raise
        return Allocation(kind=kind, blocks=blocks)

    def free(self, allocation: Allocation) -> None:
        """Free all blocks of ``allocation``. Double frees raise."""
        if allocation.freed:
            raise AllocationError("double free of allocation")
        tel = _tm.current()
        for b in allocation.blocks:
            self.regions[b.device].free(b)
            if tel.enabled:
                tel.metrics.counter(_tn.ALLOC_FREES_TOTAL).inc(
                    device=b.device
                )
        allocation.freed = True

    def usage(self) -> dict[str, int]:
        """Allocated bytes per device."""
        return {name: r.allocated for name, r in self.regions.items()}
