"""First-fit free-list heap over the node's memory devices.

Each device gets a :class:`Region` — a contiguous simulated address
range managed by a sorted free list with first-fit allocation and
eager coalescing on free. A :class:`Heap` owns one region per device
and implements the kind policies (bind / preferred / interleave).

Addresses are synthetic but stable, so they can feed the line-level
cache simulator (e.g. to study conflict misses between co-resident
buffers in hardware cache mode).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AllocationError, ConfigError
from repro.memkind.kinds import Kind, Policy
from repro.simknl.node import KNLNode
from repro.units import KiB

#: Default allocation granularity (one small page).
PAGE = 4 * KiB


@dataclass(frozen=True)
class Block:
    """A contiguous allocated extent on one device."""

    device: str
    addr: int
    size: int


@dataclass
class Allocation:
    """A (possibly multi-block) allocation returned by the heap."""

    kind: Kind
    blocks: list[Block]
    freed: bool = field(default=False, init=False)

    @property
    def size(self) -> int:
        """Total bytes across all blocks."""
        return sum(b.size for b in self.blocks)

    def bytes_on(self, device: str) -> int:
        """Bytes of this allocation resident on ``device``."""
        return sum(b.size for b in self.blocks if b.device == device)

    @property
    def devices(self) -> set[str]:
        """Devices this allocation touches."""
        return {b.device for b in self.blocks}


class Region:
    """A first-fit free-list allocator over ``[base, base + size)``."""

    def __init__(self, device: str, base: int, size: int) -> None:
        if size <= 0:
            raise ConfigError(f"region {device!r}: size must be positive")
        if base < 0:
            raise ConfigError(f"region {device!r}: negative base")
        self.device = device
        self.base = base
        self.size = size
        # Sorted list of (addr, size) free extents.
        self._free: list[tuple[int, int]] = [(base, size)]
        self.allocated = 0

    @property
    def free_bytes(self) -> int:
        """Total free bytes (may be fragmented)."""
        return sum(s for _, s in self._free)

    @property
    def largest_free(self) -> int:
        """Largest single free extent."""
        return max((s for _, s in self._free), default=0)

    def alloc(self, size: int) -> Block:
        """First-fit allocate ``size`` bytes.

        Raises
        ------
        AllocationError
            When no single free extent is large enough.
        """
        if size <= 0:
            raise AllocationError(f"{self.device}: allocation size must be positive")
        for i, (addr, extent) in enumerate(self._free):
            if extent >= size:
                if extent == size:
                    del self._free[i]
                else:
                    self._free[i] = (addr + size, extent - size)
                self.allocated += size
                return Block(self.device, addr, size)
        raise AllocationError(
            f"{self.device}: cannot allocate {size} bytes "
            f"(free={self.free_bytes}, largest extent={self.largest_free})"
        )

    def free(self, block: Block) -> None:
        """Return a block to the free list, coalescing neighbours."""
        if block.device != self.device:
            raise AllocationError(
                f"block belongs to {block.device!r}, not {self.device!r}"
            )
        if not (self.base <= block.addr and block.addr + block.size <= self.base + self.size):
            raise AllocationError(f"{self.device}: block outside region")
        addr, size = block.addr, block.size
        # Insert in sorted position.
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < addr:
                lo = mid + 1
            else:
                hi = mid
        # Overlap checks against neighbours.
        if lo > 0:
            paddr, psize = self._free[lo - 1]
            if paddr + psize > addr:
                raise AllocationError(f"{self.device}: double free detected")
        if lo < len(self._free):
            naddr, _ = self._free[lo]
            if addr + size > naddr:
                raise AllocationError(f"{self.device}: double free detected")
        self._free.insert(lo, (addr, size))
        # Coalesce with successor, then predecessor.
        if lo + 1 < len(self._free):
            naddr, nsize = self._free[lo + 1]
            if addr + size == naddr:
                self._free[lo] = (addr, size + nsize)
                del self._free[lo + 1]
                size += nsize
        if lo > 0:
            paddr, psize = self._free[lo - 1]
            if paddr + psize == addr:
                self._free[lo - 1] = (paddr, psize + size)
                del self._free[lo]
        self.allocated -= block.size

    def fragmentation(self) -> float:
        """1 - largest_free / free_bytes (0 when unfragmented or full)."""
        fb = self.free_bytes
        if fb == 0:
            return 0.0
        return 1.0 - self.largest_free / fb


class Heap:
    """Kind-aware heap spanning the node's DDR and addressable MCDRAM.

    Parameters
    ----------
    node:
        The booted node; the MCDRAM region size equals the node's
        *addressable* MCDRAM (zero in pure cache mode).
    page:
        Interleave granularity in bytes.
    """

    #: Synthetic base addresses keep the two device ranges disjoint.
    DDR_BASE = 0x0000_0000_0000
    MCDRAM_BASE = 0x1000_0000_0000

    def __init__(self, node: KNLNode, page: int = PAGE) -> None:
        if page <= 0:
            raise ConfigError("page must be positive")
        self.node = node
        self.page = page
        self.regions: dict[str, Region] = {
            "ddr": Region("ddr", self.DDR_BASE, int(node.ddr.capacity)),
        }
        hbm = int(node.addressable_mcdram)
        if hbm > 0:
            self.regions["mcdram"] = Region("mcdram", self.MCDRAM_BASE, hbm)

    def has_hbw(self) -> bool:
        """Whether addressable high-bandwidth memory exists (cf.
        ``hbw_check_available``)."""
        return "mcdram" in self.regions

    def _region(self, device: str) -> Region:
        try:
            return self.regions[device]
        except KeyError:
            raise AllocationError(
                f"device {device!r} has no addressable region in mode "
                f"{self.node.mode.value!r}"
            ) from None

    def allocate(self, size: int, kind: Kind) -> Allocation:
        """Allocate ``size`` bytes according to ``kind``'s policy."""
        if size <= 0:
            raise AllocationError("allocation size must be positive")
        if kind.policy is Policy.BIND:
            block = self._region(kind.target).alloc(size)
            return Allocation(kind=kind, blocks=[block])
        if kind.policy is Policy.PREFERRED:
            try:
                block = self._region(kind.target).alloc(size)
                return Allocation(kind=kind, blocks=[block])
            except AllocationError:
                if kind.fallback is None:
                    raise
                block = self._region(kind.fallback).alloc(size)
                return Allocation(kind=kind, blocks=[block])
        if kind.policy is Policy.INTERLEAVE:
            return self._allocate_interleaved(size, kind)
        raise ConfigError(f"unknown policy {kind.policy!r}")

    def _allocate_interleaved(self, size: int, kind: Kind) -> Allocation:
        if kind.fallback is None:
            raise ConfigError("interleave kind requires a fallback device")
        devices = [kind.target, kind.fallback]
        if not self.has_hbw():
            # Nothing to interleave with: everything lands on fallback.
            block = self._region(kind.fallback).alloc(size)
            return Allocation(kind=kind, blocks=[block])
        blocks: list[Block] = []
        remaining = size
        i = 0
        try:
            while remaining > 0:
                chunk = min(self.page, remaining)
                blocks.append(self._region(devices[i % 2]).alloc(chunk))
                remaining -= chunk
                i += 1
        except AllocationError:
            for b in blocks:
                self.regions[b.device].free(b)
            raise
        return Allocation(kind=kind, blocks=blocks)

    def free(self, allocation: Allocation) -> None:
        """Free all blocks of ``allocation``. Double frees raise."""
        if allocation.freed:
            raise AllocationError("double free of allocation")
        for b in allocation.blocks:
            self.regions[b.device].free(b)
        allocation.freed = True

    def usage(self) -> dict[str, int]:
        """Allocated bytes per device."""
        return {name: r.allocated for name, r in self.regions.items()}
