"""Memory kinds and placement policies.

A *kind* names a memory target plus a fallback policy, mirroring
memkind's ``MEMKIND_DEFAULT`` / ``MEMKIND_HBW`` / ``MEMKIND_HBW_PREFERRED``
/ ``MEMKIND_HBW_INTERLEAVE``. The policy semantics follow the library
(and numactl):

* ``BIND`` — allocate only on the target; fail when it is exhausted.
* ``PREFERRED`` — allocate on the target while space remains, then
  silently spill to the fallback device. This is the numactl setting
  Li et al. used for "flat mode without chunking", which the paper
  contrasts with explicit chunking.
* ``INTERLEAVE`` — stripe pages round-robin across the devices.

Mirrors the memkind policies the paper's Section 1 flat-mode code
relies on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Policy(enum.Enum):
    """Placement policy of a kind."""

    BIND = "bind"
    PREFERRED = "preferred"
    INTERLEAVE = "interleave"


@dataclass(frozen=True)
class Kind:
    """A named memory kind.

    Parameters
    ----------
    name:
        memkind-style identifier.
    target:
        Primary device name (``"ddr"`` or ``"mcdram"``).
    policy:
        Placement policy.
    fallback:
        Device used when PREFERRED spills; ignored for BIND.
    """

    name: str
    target: str
    policy: Policy
    fallback: str | None = None


#: Plain DDR allocation.
MEMKIND_DEFAULT = Kind("MEMKIND_DEFAULT", "ddr", Policy.BIND)

#: Strict high-bandwidth allocation; fails when MCDRAM is exhausted.
MEMKIND_HBW = Kind("MEMKIND_HBW", "mcdram", Policy.BIND)

#: MCDRAM until full, then DDR (numactl --preferred behaviour).
MEMKIND_HBW_PREFERRED = Kind(
    "MEMKIND_HBW_PREFERRED", "mcdram", Policy.PREFERRED, fallback="ddr"
)

#: Pages striped across MCDRAM and DDR.
MEMKIND_HBW_INTERLEAVE = Kind(
    "MEMKIND_HBW_INTERLEAVE", "mcdram", Policy.INTERLEAVE, fallback="ddr"
)
