"""Memory device models: DDR4 DIMMs and on-package MCDRAM.

A device couples a bandwidth :class:`~repro.simknl.flows.Resource` with
capacity accounting and a latency figure. The paper's key observation —
MCDRAM offers ~4.4x the bandwidth of DDR at *similar latency* — is
encoded in the defaults: both devices sit near 130-150 ns loaded
latency, while bandwidths differ (90 vs 400 GB/s as measured by STREAM
in the paper's Table 2).

Per-thread streaming rates are bounded by memory-level parallelism:
a thread with ``mlp`` outstanding 64 B lines against latency ``lat``
sustains at most ``mlp * 64 / lat`` bytes/s (Little's law). The
calibrated ``S_copy``/``S_comp`` values of Table 2 are consistent with
this bound and are what the model layer actually uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CapacityError, ConfigError
from repro.simknl.flows import Resource
from repro.telemetry import names as _tn
from repro.telemetry import runtime as _tm
from repro.units import CACHE_LINE, GB, GiB


@dataclass
class MemoryDevice:
    """A byte-addressable memory device.

    Parameters
    ----------
    name:
        Resource name, e.g. ``"ddr"``.
    bandwidth:
        Sustainable STREAM bandwidth in bytes/s.
    capacity:
        Usable capacity in bytes.
    latency:
        Loaded access latency in seconds.
    channels:
        Number of independent channels/stacks (informational; the
        aggregate bandwidth already reflects them).
    """

    name: str
    bandwidth: float
    capacity: float
    latency: float
    channels: int = 1
    allocated: float = field(default=0.0, init=False)
    nominal_bandwidth: float = field(default=0.0, init=False)
    nominal_capacity: float = field(default=0.0, init=False)
    failed_channels: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigError(f"{self.name}: bandwidth must be positive")
        if self.capacity <= 0:
            raise ConfigError(f"{self.name}: capacity must be positive")
        if self.latency <= 0:
            raise ConfigError(f"{self.name}: latency must be positive")
        if self.channels <= 0:
            raise ConfigError(f"{self.name}: channels must be positive")
        self.nominal_bandwidth = self.bandwidth
        self.nominal_capacity = self.capacity

    def resource(self) -> Resource:
        """The bandwidth resource this device contributes."""
        return Resource(name=self.name, capacity=self.bandwidth)

    # ---- fault / degradation hooks --------------------------------------

    def degrade_bandwidth(self, fraction: float) -> None:
        """Run at ``(1 - fraction)`` of nominal bandwidth.

        The fraction is absolute against nominal (not cumulative), so
        repeated fault events are idempotent for equal severity and a
        recovery is a plain :meth:`restore_bandwidth`.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ConfigError(f"{self.name}: fraction must be in [0, 1]")
        self.bandwidth = self.nominal_bandwidth * max(1.0 - fraction, 1e-9)

    def restore_bandwidth(self) -> None:
        """Return to nominal bandwidth (fault recovery)."""
        self.bandwidth = self.nominal_bandwidth
        self.failed_channels = 0

    def fail_channel(self, count: int = 1) -> None:
        """Lose ``count`` channels/stacks; bandwidth scales down by the
        failed fraction (a degraded-channel fault, not a total loss)."""
        if count < 0:
            raise ConfigError(f"{self.name}: channel count must be >= 0")
        self.failed_channels = min(self.channels, self.failed_channels + count)
        self.degrade_bandwidth(self.failed_channels / self.channels)

    def lose_capacity(self, nbytes: float) -> float:
        """Gracefully shrink capacity by up to ``nbytes``.

        Already-reserved bytes are never revoked: the loss is clamped
        so ``capacity >= allocated``. Returns the bytes actually lost.
        """
        if nbytes < 0:
            raise CapacityError(f"{self.name}: negative capacity loss")
        new_capacity = max(self.allocated, self.capacity - nbytes)
        lost = self.capacity - new_capacity
        self.capacity = new_capacity
        tel = _tm.current()
        if tel.enabled and lost > 0:
            tel.metrics.counter(
                _tn.DEVICE_CAPACITY_LOST_BYTES_TOTAL
            ).inc(lost, device=self.name)
        return lost

    def restore_capacity(self) -> None:
        """Return to nominal capacity (fault recovery)."""
        self.capacity = self.nominal_capacity

    @property
    def free(self) -> float:
        """Unallocated capacity in bytes."""
        return self.capacity - self.allocated

    def reserve(self, nbytes: float) -> None:
        """Reserve ``nbytes`` of capacity.

        Raises
        ------
        CapacityError
            If the device does not have ``nbytes`` free.
        """
        if nbytes < 0:
            raise CapacityError(f"{self.name}: negative reservation")
        if nbytes > self.free * (1 + 1e-12):
            raise CapacityError(
                f"{self.name}: reserving {nbytes / GiB:.3f} GiB exceeds free "
                f"{self.free / GiB:.3f} GiB"
            )
        self.allocated += nbytes
        tel = _tm.current()
        if tel.enabled:
            tel.metrics.gauge(_tn.DEVICE_RESERVED_BYTES).set(
                self.allocated, device=self.name
            )

    def release(self, nbytes: float) -> None:
        """Return ``nbytes`` of previously reserved capacity."""
        if nbytes < 0:
            raise CapacityError(f"{self.name}: negative release")
        if nbytes > self.allocated * (1 + 1e-12):
            raise CapacityError(
                f"{self.name}: releasing more than allocated"
            )
        self.allocated = max(0.0, self.allocated - nbytes)
        tel = _tm.current()
        if tel.enabled:
            tel.metrics.gauge(_tn.DEVICE_RESERVED_BYTES).set(
                self.allocated, device=self.name
            )

    def per_thread_rate_bound(self, mlp: int = 10) -> float:
        """Little's-law bound on one thread's streaming rate (bytes/s).

        ``mlp`` is the number of outstanding cache-line requests a
        single thread sustains (KNL cores support ~10s of outstanding
        L2 misses per tile).
        """
        if mlp <= 0:
            raise ConfigError("mlp must be positive")
        return mlp * CACHE_LINE / self.latency


def ddr4_device(
    bandwidth: float = 90 * GB,
    capacity: float = 96 * GiB,
    latency: float = 130e-9,
) -> MemoryDevice:
    """The KNL node's six-channel DDR4 pool (paper Table 2: 90 GB/s)."""
    return MemoryDevice(
        name="ddr",
        bandwidth=bandwidth,
        capacity=capacity,
        latency=latency,
        channels=6,
    )


def mcdram_device(
    bandwidth: float = 400 * GB,
    capacity: float = 16 * GiB,
    latency: float = 150e-9,
) -> MemoryDevice:
    """The eight-stack on-package MCDRAM (paper Table 2: 400 GB/s).

    Note the latency default is slightly *worse* than DDR — the paper's
    point (3) in Section 1.1: MCDRAM is a bandwidth device, not a
    latency device.
    """
    return MemoryDevice(
        name="mcdram",
        bandwidth=bandwidth,
        capacity=capacity,
        latency=latency,
        channels=8,
    )
