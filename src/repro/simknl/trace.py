"""Execution traces: timelines, utilization, and Chrome-trace export.

The engine reports per-phase times and total traffic; this module
turns a :class:`~repro.simknl.engine.RunResult` plus its plan into
richer views:

* per-phase bandwidth utilization of each device;
* an ASCII Gantt chart of the phases (useful to *see* the pipeline
  overlap of Fig. 2);
* Chrome ``chrome://tracing`` / Perfetto JSON export.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.simknl.engine import Plan, RunResult
from repro.telemetry.events import EventLog
from repro.telemetry.export import events_to_perfetto


@dataclass(frozen=True)
class PhaseUtilization:
    """Utilization of one phase.

    Attributes
    ----------
    name:
        Phase name.
    start, duration:
        Position on the timeline in seconds.
    device_bytes:
        Physical bytes each device moved during the phase.
    device_utilization:
        Fraction of each device's capacity used (bytes / (bw * t)).
    """

    name: str
    start: float
    duration: float
    device_bytes: dict[str, float]
    device_utilization: dict[str, float]


def phase_utilizations(
    plan: Plan, result: RunResult, bandwidths: dict[str, float]
) -> list[PhaseUtilization]:
    """Per-phase device utilization for a completed run.

    ``bandwidths`` maps resource names to capacities in bytes/s.
    """
    if len(plan.phases) != len(result.phase_times):
        raise ConfigError("plan and result phase counts differ")
    out = []
    clock = 0.0
    for phase, t in zip(plan.phases, result.phase_times):
        device_bytes: dict[str, float] = {}
        for f in phase.flows:
            for res, mult in f.resources.items():
                device_bytes[res] = (
                    device_bytes.get(res, 0.0) + f.bytes_total * mult
                )
        util = {}
        for res, nbytes in device_bytes.items():
            cap = bandwidths.get(res)
            if cap and t > 0:
                util[res] = min(1.0, nbytes / (cap * t))
            else:
                util[res] = 0.0
        out.append(
            PhaseUtilization(
                name=phase.name,
                start=clock,
                duration=t,
                device_bytes=device_bytes,
                device_utilization=util,
            )
        )
        clock += t
    return out


def render_gantt(
    plan: Plan, result: RunResult, width: int = 60
) -> str:
    """ASCII Gantt chart of the phases."""
    total = result.elapsed
    if total <= 0:
        raise ConfigError("run has zero elapsed time")
    lines = [f"timeline ({total:.3f} s total)"]
    clock = 0.0
    for phase, t in zip(plan.phases, result.phase_times):
        start_col = int(round(clock / total * width))
        span = max(1, int(round(t / total * width)))
        bar = " " * start_col + "#" * span
        lines.append(f"{phase.name[:24]:24s} |{bar[: width + 1]}")
        clock += t
    return "\n".join(lines)


def to_chrome_trace(
    plan: Plan, result: RunResult, events: EventLog | None = None
) -> str:
    """Serialize the run as Chrome-trace JSON (one track per phase
    role, microsecond timestamps).

    When a telemetry :class:`~repro.telemetry.events.EventLog` is
    supplied, its records are merged in as instant-event annotation
    tracks (one per event category) alongside the flow tracks, so a
    single Perfetto view shows phases, flows, fault injections, and
    allocator fallbacks on one timeline.
    """
    trace_events = []
    clock = 0.0
    for phase, t in zip(plan.phases, result.phase_times):
        for f in phase.flows:
            trace_events.append(
                {
                    "name": f.name,
                    "cat": "flow",
                    "ph": "X",
                    "ts": clock * 1e6,
                    "dur": t * 1e6,
                    "pid": 0,
                    "tid": f.name.split("[")[0],
                    "args": {
                        "bytes": f.bytes_total,
                        "threads": f.threads,
                        "phase": phase.name,
                    },
                }
            )
        clock += t
    if events is not None:
        merged = json.loads(events_to_perfetto(events))
        trace_events.extend(merged["traceEvents"])
    return json.dumps({"traceEvents": trace_events}, indent=1)
