"""The assembled KNL node: devices + topology + boot-time memory mode.

The BIOS-selected memory mode determines how the 16 GB of MCDRAM is
exposed:

* ``FLAT`` — all MCDRAM is addressable scratchpad (NUMA node 1);
* ``CACHE`` — all MCDRAM is a direct-mapped memory-side cache of DDR;
* ``HYBRID`` — a fraction is cache, the rest addressable (KNL supported
  25 % or 50 % cache splits).

The paper's fourth usage mode, *implicit cache*, is not a BIOS mode —
it is a software discipline (run a chunked algorithm while booted in
``CACHE``), so it lives in :mod:`repro.core.modes`, not here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.faults import FaultEvent, FaultInjector, FaultKind
from repro.simknl.cache_analytic import StreamingCacheModel
from repro.simknl.devices import MemoryDevice, ddr4_device, mcdram_device
from repro.simknl.engine import Engine, Plan, RunResult
from repro.simknl.flows import Resource
from repro.simknl.topology import KNLTopology
from repro.units import CACHE_LINE, GB, GiB


class MemoryMode(enum.Enum):
    """BIOS memory modes of the KNL MCDRAM."""

    FLAT = "flat"
    CACHE = "cache"
    HYBRID = "hybrid"


@dataclass(frozen=True)
class KNLNodeConfig:
    """Hardware configuration of a simulated KNL node.

    Defaults describe the paper's Xeon Phi 7250 testbed with the
    bandwidths of Table 2.
    """

    cores: int = 68
    threads_per_core: int = 4
    ddr_bandwidth: float = 90 * GB
    ddr_capacity: float = 96 * GiB
    ddr_latency: float = 130e-9
    mcdram_bandwidth: float = 400 * GB
    mcdram_capacity: float = 16 * GiB
    mcdram_latency: float = 150e-9
    mode: MemoryMode = MemoryMode.CACHE
    #: Fraction of MCDRAM acting as cache in HYBRID mode (0.25 or 0.5
    #: on real hardware; any (0,1) value accepted here).
    hybrid_cache_fraction: float = 0.5
    #: Fraction of the cache portion lost to tag storage.
    tag_overhead: float = 0.0
    cache_line: int = CACHE_LINE
    #: Whether to include the on-die mesh as a bandwidth resource.
    model_mesh: bool = False
    mesh_bandwidth: float = 700 * GB

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.threads_per_core <= 0:
            raise ConfigError("cores and threads_per_core must be positive")
        if self.mode is MemoryMode.HYBRID:
            if not 0.0 < self.hybrid_cache_fraction < 1.0:
                raise ConfigError(
                    "hybrid_cache_fraction must be in (0, 1), got "
                    f"{self.hybrid_cache_fraction}"
                )
        if not 0.0 <= self.tag_overhead < 1.0:
            raise ConfigError("tag_overhead must be in [0, 1)")

    @property
    def total_threads(self) -> int:
        """Hardware threads available on the node."""
        return self.cores * self.threads_per_core

    def with_mode(
        self, mode: MemoryMode, hybrid_cache_fraction: float | None = None
    ) -> "KNLNodeConfig":
        """A copy of this config booted into ``mode``."""
        kwargs = {"mode": mode}
        if hybrid_cache_fraction is not None:
            kwargs["hybrid_cache_fraction"] = hybrid_cache_fraction
        return replace(self, **kwargs)


class KNLNode:
    """A booted KNL node ready to execute flow plans.

    Attributes
    ----------
    config:
        The immutable hardware/mode configuration.
    ddr, mcdram:
        The two memory devices.
    cache_model:
        Analytic model of the MCDRAM cache portion, or None in FLAT
        mode (where no cache exists).
    topology:
        Tile/mesh structure consistent with the core count.
    """

    def __init__(self, config: KNLNodeConfig | None = None) -> None:
        self.config = config or KNLNodeConfig()
        cfg = self.config
        self.ddr: MemoryDevice = ddr4_device(
            bandwidth=cfg.ddr_bandwidth,
            capacity=cfg.ddr_capacity,
            latency=cfg.ddr_latency,
        )
        self.mcdram: MemoryDevice = mcdram_device(
            bandwidth=cfg.mcdram_bandwidth,
            capacity=cfg.mcdram_capacity,
            latency=cfg.mcdram_latency,
        )
        cores_per_tile = 2
        active_tiles = -(-cfg.cores // cores_per_tile)
        rows = 6
        cols = max(1, -(-active_tiles // rows))
        if rows * cols < active_tiles:
            cols = -(-active_tiles // rows)
        self.topology = KNLTopology(
            rows=rows,
            cols=cols,
            active_tiles=active_tiles,
            cores_per_tile=cores_per_tile,
            threads_per_core=cfg.threads_per_core,
            mesh_bandwidth=cfg.mesh_bandwidth,
        )
        if self.cache_capacity > 0:
            self.cache_model: StreamingCacheModel | None = StreamingCacheModel(
                capacity=self.cache_capacity,
                line_size=cfg.cache_line,
                tag_overhead=cfg.tag_overhead,
            )
        else:
            self.cache_model = None

    # ---- capacity views -------------------------------------------------

    @property
    def mode(self) -> MemoryMode:
        """The boot-time memory mode."""
        return self.config.mode

    @property
    def cache_capacity(self) -> float:
        """MCDRAM bytes acting as hardware cache in the current mode."""
        cfg = self.config
        if cfg.mode is MemoryMode.CACHE:
            return cfg.mcdram_capacity
        if cfg.mode is MemoryMode.HYBRID:
            return cfg.mcdram_capacity * cfg.hybrid_cache_fraction
        return 0.0

    @property
    def addressable_mcdram(self) -> float:
        """MCDRAM bytes addressable as scratchpad in the current mode."""
        return self.config.mcdram_capacity - self.cache_capacity

    @property
    def total_threads(self) -> int:
        """Hardware threads available on the node."""
        return self.config.total_threads

    # ---- faults ---------------------------------------------------------

    def device(self, name: str) -> MemoryDevice | None:
        """The memory device called ``name``, or None."""
        return {"ddr": self.ddr, "mcdram": self.mcdram}.get(name)

    def apply_fault(self, event: FaultEvent) -> bool:
        """Apply a device-level fault event to this node.

        Handles bandwidth degradation and capacity loss against the
        targeted device; returns False for kinds or targets this node
        does not own (the event then belongs to another layer).
        """
        dev = self.device(event.target or "")
        if dev is None:
            return False
        if event.kind is FaultKind.BANDWIDTH_DEGRADE:
            dev.degrade_bandwidth(event.severity)
            return True
        if event.kind is FaultKind.CAPACITY_LOSS:
            dev.lose_capacity(event.severity * dev.capacity)
            return True
        return False

    # ---- execution ------------------------------------------------------

    def resources(self) -> list[Resource]:
        """Bandwidth resources contributed by this node."""
        out = [self.ddr.resource(), self.mcdram.resource()]
        if self.config.model_mesh:
            out.append(self.topology.mesh_resource())
        return out

    def engine(
        self,
        record_events: bool = False,
        injector: FaultInjector | None = None,
    ) -> Engine:
        """A fresh engine over this node's resources."""
        return Engine(
            self.resources(), record_events=record_events, injector=injector
        )

    def run(
        self,
        plan: Plan,
        record_events: bool = False,
        injector: FaultInjector | None = None,
    ) -> RunResult:
        """Execute ``plan`` on this node."""
        return self.engine(record_events=record_events, injector=injector).run(plan)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cfg = self.config
        return (
            f"KNLNode(mode={cfg.mode.value}, cores={cfg.cores}, "
            f"ddr={cfg.ddr_bandwidth / GB:.0f}GB/s, "
            f"mcdram={cfg.mcdram_bandwidth / GB:.0f}GB/s, "
            f"addressable_hbm={self.addressable_mcdram / GiB:.1f}GiB)"
        )
