"""Energy accounting for memory traffic.

The paper's introduction motivates multilevel memory with energy as
well as performance ("moving data is becoming relatively more costly
than arithmetic ... in terms of performance and energy efficiency").
This module attaches per-byte access energies to the devices and
converts a run's traffic counters into joules, enabling the
energy-delay comparisons in the extended experiments.

Default per-bit figures follow common architectural estimates for the
KNL generation: ~5 pJ/bit for on-package MCDRAM, ~15 pJ/bit for
off-package DDR4 (I/O + DRAM core), i.e. on-package traffic is ~3x
cheaper per byte.

Supports the introduction's (Section 1) energy motivation for
multilevel memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.simknl.engine import RunResult

#: Default access energies in joules per byte (8 bits/byte).
DEFAULT_ENERGY_PER_BYTE = {
    "mcdram": 5e-12 * 8,
    "ddr": 15e-12 * 8,
    "nvm": 60e-12 * 8,
    "mesh": 1e-12 * 8,
}

#: Idle (background/refresh) power in watts charged for the run's
#: duration, per device *present in the run*.
DEFAULT_IDLE_POWER = {
    "mcdram": 5.0,
    "ddr": 8.0,
    "nvm": 1.0,
}


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one run."""

    dynamic_joules: dict[str, float]
    idle_joules: dict[str, float]
    elapsed: float

    @property
    def total_joules(self) -> float:
        """Dynamic + idle energy across all devices."""
        return sum(self.dynamic_joules.values()) + sum(
            self.idle_joules.values()
        )

    @property
    def energy_delay_product(self) -> float:
        """EDP in joule-seconds — the usual efficiency figure of merit."""
        return self.total_joules * self.elapsed


class EnergyModel:
    """Convert run traffic into energy.

    Parameters
    ----------
    energy_per_byte:
        J/byte per resource name; unknown resources cost zero.
    idle_power:
        Watts of background power per device, charged for the whole
        run duration.

    Idle power is charged only for devices *present in the run* — a
    device counts as present when it appears in ``result.traffic``
    (the engine seeds a traffic entry for every attached resource,
    moved bytes or not). A run on a node with no NVM device therefore
    pays no NVM idle power. To model always-on hardware that the run's
    resource set does not mention, pass an explicit ``devices=``
    iterable to :meth:`report`/:meth:`report_many`: exactly those
    devices (intersected with ``idle_power``) are charged.
    """

    def __init__(
        self,
        energy_per_byte: dict[str, float] | None = None,
        idle_power: dict[str, float] | None = None,
    ) -> None:
        self.energy_per_byte = dict(
            energy_per_byte
            if energy_per_byte is not None
            else DEFAULT_ENERGY_PER_BYTE
        )
        self.idle_power = dict(
            idle_power if idle_power is not None else DEFAULT_IDLE_POWER
        )
        for name, v in self.energy_per_byte.items():
            if v < 0:
                raise ConfigError(f"negative energy for {name!r}")
        for name, v in self.idle_power.items():
            if v < 0:
                raise ConfigError(f"negative idle power for {name!r}")

    def _idle_devices(
        self, result: RunResult, devices: Iterable[str] | None
    ) -> list[str]:
        """Devices to charge idle power for, in ``idle_power`` order."""
        if devices is None:
            return [d for d in self.idle_power if d in result.traffic]
        chosen = set(devices)
        return [d for d in self.idle_power if d in chosen]

    def report(
        self, result: RunResult, devices: Iterable[str] | None = None
    ) -> EnergyReport:
        """Energy breakdown for a completed run.

        ``devices`` overrides which devices pay idle power (see the
        class docstring); by default only devices present in
        ``result.traffic`` are charged.
        """
        dynamic = {
            res: nbytes * self.energy_per_byte.get(res, 0.0)
            for res, nbytes in result.traffic.items()
        }
        idle = {
            dev: self.idle_power[dev] * result.elapsed
            for dev in self._idle_devices(result, devices)
        }
        return EnergyReport(
            dynamic_joules=dynamic, idle_joules=idle, elapsed=result.elapsed
        )

    def report_many(
        self,
        results: Sequence[RunResult],
        devices: Iterable[str] | None = None,
    ) -> list[EnergyReport]:
        """Vectorized :meth:`report` across many runs.

        The joules computation runs as one NumPy multiply per resource
        (and per idle device) across the whole result list instead of
        one Python loop iteration per run — the fast path for the
        ``energy`` driver's per-variant sweep. Values are bit-identical
        to calling :meth:`report` on each result (elementwise IEEE
        multiplies on the same operands).
        """
        results = list(results)
        if not results:
            return []
        elapsed = np.asarray([r.elapsed for r in results], dtype=np.float64)
        names: list[str] = []
        seen: set[str] = set()
        for r in results:
            for res in r.traffic:
                if res not in seen:
                    seen.add(res)
                    names.append(res)
        dyn_cols = {
            res: np.asarray(
                [r.traffic.get(res, 0.0) for r in results],
                dtype=np.float64,
            )
            * self.energy_per_byte.get(res, 0.0)
            for res in names
        }
        idle_cols = {
            dev: watts * elapsed for dev, watts in self.idle_power.items()
        }
        reports = []
        for i, r in enumerate(results):
            dynamic = {res: float(dyn_cols[res][i]) for res in r.traffic}
            idle = {
                dev: float(idle_cols[dev][i])
                for dev in self._idle_devices(r, devices)
            }
            reports.append(
                EnergyReport(
                    dynamic_joules=dynamic,
                    idle_joules=idle,
                    elapsed=r.elapsed,
                )
            )
        return reports
