"""Energy accounting for memory traffic.

The paper's introduction motivates multilevel memory with energy as
well as performance ("moving data is becoming relatively more costly
than arithmetic ... in terms of performance and energy efficiency").
This module attaches per-byte access energies to the devices and
converts a run's traffic counters into joules, enabling the
energy-delay comparisons in the extended experiments.

Default per-bit figures follow common architectural estimates for the
KNL generation: ~5 pJ/bit for on-package MCDRAM, ~15 pJ/bit for
off-package DDR4 (I/O + DRAM core), i.e. on-package traffic is ~3x
cheaper per byte.

Supports the introduction's (Section 1) energy motivation for
multilevel memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.simknl.engine import RunResult

#: Default access energies in joules per byte (8 bits/byte).
DEFAULT_ENERGY_PER_BYTE = {
    "mcdram": 5e-12 * 8,
    "ddr": 15e-12 * 8,
    "nvm": 60e-12 * 8,
    "mesh": 1e-12 * 8,
}

#: Idle (background/refresh) power in watts charged for the run's
#: duration, per device.
DEFAULT_IDLE_POWER = {
    "mcdram": 5.0,
    "ddr": 8.0,
    "nvm": 1.0,
}


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one run."""

    dynamic_joules: dict[str, float]
    idle_joules: dict[str, float]
    elapsed: float

    @property
    def total_joules(self) -> float:
        """Dynamic + idle energy across all devices."""
        return sum(self.dynamic_joules.values()) + sum(
            self.idle_joules.values()
        )

    @property
    def energy_delay_product(self) -> float:
        """EDP in joule-seconds — the usual efficiency figure of merit."""
        return self.total_joules * self.elapsed


class EnergyModel:
    """Convert run traffic into energy.

    Parameters
    ----------
    energy_per_byte:
        J/byte per resource name; unknown resources cost zero.
    idle_power:
        Watts of background power per device, charged for the whole
        run duration.
    """

    def __init__(
        self,
        energy_per_byte: dict[str, float] | None = None,
        idle_power: dict[str, float] | None = None,
    ) -> None:
        self.energy_per_byte = dict(
            energy_per_byte
            if energy_per_byte is not None
            else DEFAULT_ENERGY_PER_BYTE
        )
        self.idle_power = dict(
            idle_power if idle_power is not None else DEFAULT_IDLE_POWER
        )
        for name, v in self.energy_per_byte.items():
            if v < 0:
                raise ConfigError(f"negative energy for {name!r}")
        for name, v in self.idle_power.items():
            if v < 0:
                raise ConfigError(f"negative idle power for {name!r}")

    def report(self, result: RunResult) -> EnergyReport:
        """Energy breakdown for a completed run."""
        dynamic = {
            res: nbytes * self.energy_per_byte.get(res, 0.0)
            for res, nbytes in result.traffic.items()
        }
        idle = {
            dev: watts * result.elapsed
            for dev, watts in self.idle_power.items()
        }
        return EnergyReport(
            dynamic_joules=dynamic, idle_joules=idle, elapsed=result.elapsed
        )
