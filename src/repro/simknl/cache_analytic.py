"""Closed-form streaming model of the MCDRAM direct-mapped cache.

Paper-scale experiments stream tens of gigabytes; simulating them line
by line is unnecessary because the access patterns of the studied
kernels are *sequential streams*. For a direct-mapped cache a
sequential stream has exactly two regimes:

* working set fits (after tag overhead): the first pass cold-misses
  every line, subsequent passes hit every line;
* working set does not fit: every line is evicted before its next
  reuse (address ``a`` and ``a + usable_capacity`` collide), so every
  pass misses every line. This is precisely why GNU sort in hardware
  cache mode sees limited benefit once data exceeds 16 GB — the
  paper's central premise.

The model mirrors the functional simulator's traffic accounting
(including final writeback of dirty lines) and is validated against it
in the test suite on small configurations.

Models the hardware cache mode of Section 1, including the Section 1.1
thrashing caveat.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import CACHE_LINE


@dataclass(frozen=True)
class CacheTraffic:
    """Physical traffic implied by a logical streaming workload.

    Attributes
    ----------
    ddr_bytes:
        Bytes moved on the DDR side (miss fills + writebacks).
    mcdram_bytes:
        Bytes moved on the MCDRAM side (hits, fills, deliveries,
        writeback reads).
    hits, misses, writebacks:
        Line-event counts.
    """

    ddr_bytes: float
    mcdram_bytes: float
    hits: int
    misses: int
    writebacks: int

    @property
    def hit_rate(self) -> float:
        """Fraction of line accesses that hit."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def ddr_amplification(self) -> float:
        """DDR bytes per byte of MCDRAM-side logical traffic."""
        return self.ddr_bytes / self.mcdram_bytes if self.mcdram_bytes else 0.0


class StreamingCacheModel:
    """Analytic direct-mapped cache for sequential streaming phases.

    Parameters mirror :class:`repro.simknl.cache.DirectMappedCache`.
    """

    def __init__(
        self,
        capacity: float,
        line_size: int = CACHE_LINE,
        tag_overhead: float = 0.0,
    ) -> None:
        if line_size <= 0:
            raise ConfigError("line_size must be positive")
        if capacity < line_size:
            raise ConfigError("capacity must hold at least one line")
        if not 0.0 <= tag_overhead < 1.0:
            raise ConfigError("tag_overhead must be in [0, 1)")
        self.line_size = line_size
        self.num_lines = max(1, int(capacity * (1.0 - tag_overhead)) // line_size)

    @property
    def usable_capacity(self) -> float:
        """Data capacity after tag overhead, in bytes."""
        return float(self.num_lines * self.line_size)

    def fits(self, working_set: float) -> bool:
        """Whether a working set of ``working_set`` bytes is cache-resident."""
        return working_set <= self.usable_capacity

    def stream(
        self,
        working_set: float,
        passes: int = 1,
        write_fraction: float = 0.0,
        cold: bool = True,
        flush: bool = True,
    ) -> CacheTraffic:
        """Traffic for ``passes`` sequential sweeps over ``working_set`` bytes.

        Parameters
        ----------
        working_set:
            Bytes touched by each pass (assumed the same region).
        passes:
            Number of full sweeps.
        write_fraction:
            Fraction of touched lines dirtied per pass (0 = read-only
            stream, 1 = read-modify-write over the whole region).
        cold:
            Whether the region starts uncached. When False and the
            region fits, the first pass hits too.
        flush:
            Whether remaining dirty lines are written back at the end
            (matches the functional simulator's ``flush``).
        """
        if working_set < 0:
            raise ConfigError("negative working set")
        if passes < 0:
            raise ConfigError("negative pass count")
        if not 0.0 <= write_fraction <= 1.0:
            raise ConfigError("write_fraction must be in [0, 1]")
        lines = int(-(-working_set // self.line_size)) if working_set else 0
        if lines == 0 or passes == 0:
            return CacheTraffic(0.0, 0.0, 0, 0, 0)

        nl = self.num_lines
        if lines <= nl:
            cold_misses = lines if cold else 0
            hits = lines * passes - cold_misses
            misses = cold_misses
        else:
            # Streaming a too-large region through a direct-mapped
            # cache: most lines are evicted before reuse. The exception
            # is the band ``nl < lines < 2 * nl``: the tail lines of a
            # pass (those whose set index is not overwritten by the
            # wrap-around) survive into the next pass, giving
            # ``2 * nl - lines`` hits per subsequent pass. This is the
            # "data slightly exceeds MCDRAM" regime the paper's title
            # points at.
            per_pass_hits = max(0, 2 * nl - lines)
            hits = (passes - 1) * per_pass_hits
            misses = lines + (passes - 1) * (lines - per_pass_hits)
            if not cold:
                # A warm start behaves like one extra preceding pass.
                delta = min(per_pass_hits, lines)
                hits += delta
                misses -= delta
        # Every miss installs a line; a fraction ``write_fraction`` of
        # installs are dirtied and must eventually be written back,
        # either on eviction or at the final flush.
        writebacks = int(round(misses * write_fraction)) if write_fraction else 0
        if not flush and write_fraction:
            # Resident dirty lines at the end stay in cache.
            writebacks -= int(round(min(nl, lines) * write_fraction))
            writebacks = max(0, writebacks)

        ls = self.line_size
        ddr = (misses + writebacks) * float(ls)
        mcdram = (hits + 2 * misses + writebacks) * float(ls)
        return CacheTraffic(
            ddr_bytes=ddr,
            mcdram_bytes=mcdram,
            hits=hits,
            misses=misses,
            writebacks=writebacks,
        )

    def stream_with_pollution(
        self,
        working_set: float,
        passes: int = 1,
        write_fraction: float = 0.0,
        pollution_bytes_per_pass: float = 0.0,
        cold: bool = True,
    ) -> CacheTraffic:
        """Traffic when a foreign stream pollutes the cache between
        passes (the paper's Fig. 4: hybrid-mode copy-in/copy-out data
        "polluting" the cache portion).

        A sequential pollution stream of ``P`` bytes touches
        ``P / line_size`` distinct sets; a victim line resident in one
        of those sets is evicted, so a fitting working set loses a
        ``min(1, P / C)`` fraction of its resident lines per pass and
        re-misses them on the next pass.
        """
        if pollution_bytes_per_pass < 0:
            raise ConfigError("pollution must be non-negative")
        base = self.stream(working_set, passes, write_fraction, cold)
        if pollution_bytes_per_pass == 0 or passes == 0 or working_set <= 0:
            return base
        lines = int(-(-working_set // self.line_size))
        if lines > self.num_lines:
            # Already thrashing: pollution cannot make it worse.
            return base
        evict_frac = min(
            1.0, pollution_bytes_per_pass / self.usable_capacity
        )
        extra_misses_per_pass = int(round(lines * evict_frac))
        # Every pass after the first re-misses the evicted fraction
        # (pass 1's misses are already counted as cold fills).
        extra = extra_misses_per_pass * max(0, passes - 1)
        misses = base.misses + extra
        hits = base.hits - extra
        writebacks = base.writebacks
        if write_fraction:
            # Evicted dirty lines are written back each pass too.
            writebacks += int(round(extra * write_fraction))
        ls = float(self.line_size)
        return CacheTraffic(
            ddr_bytes=(misses + writebacks) * ls,
            mcdram_bytes=(hits + 2 * misses + writebacks) * ls,
            hits=hits,
            misses=misses,
            writebacks=writebacks,
        )

    def multipliers(
        self,
        working_set: float,
        passes: int = 1,
        write_fraction: float = 0.0,
        cold: bool = True,
    ) -> dict[str, float]:
        """Resource multipliers per *logical* byte for a flow.

        The logical traffic of the phase is ``working_set * passes``
        bytes; the returned multipliers scale that to physical DDR and
        MCDRAM traffic so the phase can be expressed as a single
        :class:`~repro.simknl.flows.Flow`.
        """
        traffic = self.stream(working_set, passes, write_fraction, cold)
        logical = working_set * passes
        if logical <= 0:
            return {"mcdram": 0.0, "ddr": 0.0}
        return {
            "mcdram": traffic.mcdram_bytes / logical,
            "ddr": traffic.ddr_bytes / logical,
        }
