"""KNL tile/mesh topology.

The Xeon Phi 7250 arranges cores in *tiles* (two cores sharing a 1 MB
L2) connected by a 2D mesh network-on-chip; MCDRAM EDC controllers sit
on the mesh edges and DDR controllers on two mesh columns. We model a
rows x cols grid (default 6 x 7 = 42 slots, 34 tiles active → 68
cores), expose core/thread enumeration and affinity helpers, and
compute mesh-hop distances via networkx shortest paths. The mesh's
bisection bandwidth can be contributed as an additional flow resource;
with the defaults it is generous enough that it rarely binds —
matching the paper, which treats NoC contention as a secondary effect
of over-provisioning copy threads.

Models the Xeon Phi 7250 node of Section 1 with the Table 2 device
parameters attached.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import networkx as nx

from repro.errors import ConfigError
from repro.simknl.flows import Resource
from repro.units import GB, MiB


#: Shared mesh graphs per (rows, cols). Construction dominates
#: KNLNode setup in sweeps that build a node per cell; the graph is
#: only ever read (shortest paths), so instances can share it.
_GRID_CACHE: dict[tuple[int, int], "nx.Graph"] = {}


def _grid_graph(rows: int, cols: int) -> "nx.Graph":
    graph = _GRID_CACHE.get((rows, cols))
    if graph is None:
        graph = _GRID_CACHE[(rows, cols)] = nx.grid_2d_graph(rows, cols)
    return graph


class ClusterMode(enum.Enum):
    """KNL's mesh cluster modes (the BIOS axis orthogonal to the
    memory modes; Sodani et al.).

    * ``ALL_TO_ALL`` — no affinity between tile, tag directory, and
      memory controller: worst-case mesh traversals.
    * ``QUADRANT`` — directories and memory channels grouped into four
      virtual quadrants; requests stay within a quadrant between
      directory and memory, invisible to software.
    * ``SNC4`` — sub-NUMA clustering: the quadrants are exposed as
      four NUMA nodes; software that keeps its traffic quadrant-local
      sees the shortest paths, cross-quadrant traffic the longest.
    """

    ALL_TO_ALL = "all-to-all"
    QUADRANT = "quadrant"
    SNC4 = "snc4"


@dataclass(frozen=True)
class Tile:
    """One KNL tile: two cores sharing an L2 slice.

    Attributes
    ----------
    tile_id:
        Dense index among *active* tiles.
    position:
        (row, col) grid coordinate on the mesh.
    cores:
        Global core ids hosted by this tile.
    l2_bytes:
        Shared L2 capacity.
    """

    tile_id: int
    position: tuple[int, int]
    cores: tuple[int, ...]
    l2_bytes: int = MiB


class KNLTopology:
    """Tile grid, core/thread enumeration, and mesh distances.

    Parameters
    ----------
    rows, cols:
        Mesh grid dimensions.
    active_tiles:
        Number of tiles populated with cores (7250: 34).
    cores_per_tile:
        Cores per tile (KNL: 2).
    threads_per_core:
        SMT ways per core (KNL: 4).
    mesh_bandwidth:
        Aggregate mesh bandwidth in bytes/s available to memory
        traffic (used to build an optional flow resource).
    """

    def __init__(
        self,
        rows: int = 6,
        cols: int = 7,
        active_tiles: int = 34,
        cores_per_tile: int = 2,
        threads_per_core: int = 4,
        mesh_bandwidth: float = 700 * GB,
        cluster_mode: ClusterMode = ClusterMode.QUADRANT,
    ) -> None:
        if rows <= 0 or cols <= 0:
            raise ConfigError("mesh dimensions must be positive")
        if active_tiles <= 0 or active_tiles > rows * cols:
            raise ConfigError(
                f"active_tiles must be in 1..{rows * cols}, got {active_tiles}"
            )
        if cores_per_tile <= 0 or threads_per_core <= 0:
            raise ConfigError("cores/threads per tile must be positive")
        if mesh_bandwidth <= 0:
            raise ConfigError("mesh bandwidth must be positive")
        self.rows = rows
        self.cols = cols
        self.cores_per_tile = cores_per_tile
        self.threads_per_core = threads_per_core
        self.mesh_bandwidth = mesh_bandwidth
        self.cluster_mode = cluster_mode
        self.graph = _grid_graph(rows, cols)
        positions = sorted(self.graph.nodes)
        self.tiles: list[Tile] = []
        core = 0
        for tid in range(active_tiles):
            cores = tuple(range(core, core + cores_per_tile))
            core += cores_per_tile
            self.tiles.append(
                Tile(tile_id=tid, position=positions[tid], cores=cores)
            )

    @property
    def num_cores(self) -> int:
        """Total active cores."""
        return len(self.tiles) * self.cores_per_tile

    @property
    def num_threads(self) -> int:
        """Total hardware threads (cores x SMT ways)."""
        return self.num_cores * self.threads_per_core

    def tile_of_core(self, core: int) -> Tile:
        """The tile hosting global core id ``core``."""
        if not 0 <= core < self.num_cores:
            raise ConfigError(
                f"core {core} out of range 0..{self.num_cores - 1}"
            )
        return self.tiles[core // self.cores_per_tile]

    def core_of_thread(self, thread: int) -> int:
        """Global core id of hardware thread ``thread`` (compact order)."""
        if not 0 <= thread < self.num_threads:
            raise ConfigError(
                f"thread {thread} out of range 0..{self.num_threads - 1}"
            )
        return thread // self.threads_per_core

    def mesh_distance(self, tile_a: int, tile_b: int) -> int:
        """Mesh hop count between two tiles (XY-routing path length)."""
        a = self.tiles[tile_a].position
        b = self.tiles[tile_b].position
        return nx.shortest_path_length(self.graph, a, b)

    def mean_mesh_distance(self) -> float:
        """Average hop count over all active tile pairs."""
        n = len(self.tiles)
        if n == 1:
            return 0.0
        total = 0
        for i in range(n):
            for j in range(i + 1, n):
                total += self.mesh_distance(i, j)
        return total / (n * (n - 1) / 2)

    def quadrant_of_tile(self, tile_id: int) -> int:
        """The mesh quadrant (0-3) hosting a tile: the grid split at
        its row/column midpoints."""
        if not 0 <= tile_id < len(self.tiles):
            raise ConfigError(f"tile {tile_id} out of range")
        r, c = self.tiles[tile_id].position
        return (0 if r < (self.rows + 1) // 2 else 2) + (
            0 if c < (self.cols + 1) // 2 else 1
        )

    def memory_access_hops(self, tile_id: int) -> float:
        """Expected mesh hops for a memory access from ``tile_id``
        under the configured cluster mode.

        ALL_TO_ALL: the request visits a random tag directory and then
        a random memory controller — two mean-distance traversals.
        QUADRANT / SNC4: directory and controller live in the tile's
        own quadrant, so both traversals stay quadrant-local (SNC4
        additionally exposes the locality to software; for a single
        quadrant-local access the cost matches QUADRANT, which is why
        both share the arithmetic here).
        """
        if self.cluster_mode is ClusterMode.ALL_TO_ALL:
            mean = self.mean_mesh_distance()
            return 2.0 * mean
        # Quadrant-local traversal: mean distance within the quadrant.
        q = self.quadrant_of_tile(tile_id)
        members = [
            t.tile_id for t in self.tiles if self.quadrant_of_tile(t.tile_id) == q
        ]
        if len(members) < 2:
            return 0.0
        total = 0
        count = 0
        for i in members:
            for j in members:
                if i < j:
                    total += self.mesh_distance(i, j)
                    count += 1
        return 2.0 * total / count

    def snc_local_bandwidth_share(self) -> float:
        """In SNC4 each NUMA cluster owns ~1/4 of the memory channels;
        quadrant-local traffic sees that share of device bandwidth."""
        if self.cluster_mode is ClusterMode.SNC4:
            return 0.25
        return 1.0

    def mesh_resource(self) -> Resource:
        """The mesh as a bandwidth resource for flow plans."""
        return Resource(name="mesh", capacity=self.mesh_bandwidth)
