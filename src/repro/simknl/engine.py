"""Discrete-event execution of flow plans.

A :class:`Plan` is an ordered list of :class:`Phase` objects separated
by barriers: a phase begins only when its predecessor has fully
completed. Within a phase all flows run concurrently and share
bandwidth via the max-min fair allocator; the phase ends when every
flow has moved its bytes. This directly realizes the paper's
``T_step = max(T_copyin, T_comp, T_copyout)`` pipelined-step semantics
(Fig. 2) while also capturing the second-order effect the closed-form
model ignores: when one pool finishes early, the remaining pools speed
up because bandwidth is re-shared.

The engine accumulates per-resource traffic counters so experiments can
report DDR/MCDRAM traffic (used for the Bender et al. corroboration of
the ~2.5x DDR-traffic reduction).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.errors import PlanError, SimulationError
from repro.faults import FaultInjector, FaultKind
from repro.simknl.flows import Flow, Resource, allocate_rates
from repro.telemetry import names as _tn
from repro.telemetry import runtime as _tm

_EPS = 1e-12

#: Minimum run of structurally identical phases worth batching.
#: Singletons stay on the reference path — the array setup would cost
#: more than the loop it replaces.
_MIN_GROUP = 2


@dataclass
class Phase:
    """A barrier-delimited set of concurrent flows.

    Parameters
    ----------
    name:
        Display name, e.g. ``"step 3"``.
    flows:
        Flows that run concurrently during this phase.
    static_rates:
        When True, bandwidth shares are allocated once at phase start
        and held until the barrier: the phase lasts
        ``max(bytes / rate)`` over its flows. This models OpenMP-style
        pools whose threads keep their cores (and memory pipelines)
        for the whole step, spinning at the barrier — the paper's
        ``T_step = max(T_copyin, T_comp, T_copyout)``. When False
        (default), a flow that drains early releases its bandwidth and
        the remaining flows speed up (max-min resharing).
    """

    name: str
    flows: list[Flow] = field(default_factory=list)
    static_rates: bool = False

    def validate(self) -> None:
        """Raise :class:`PlanError` if the phase is malformed."""
        if not self.flows:
            raise PlanError(f"phase {self.name!r} has no flows")
        for f in self.flows:
            if f.bytes_total > 0 and f.rate_cap <= 0:
                raise PlanError(
                    f"phase {self.name!r}: flow {f.name!r} has bytes to "
                    "move but zero rate capacity"
                )

    @property
    def total_bytes(self) -> float:
        """Sum of logical bytes over all flows in the phase."""
        return sum(f.bytes_total for f in self.flows)


@dataclass
class _CompiledGroup:
    """A run of consecutive ``static_rates`` phases sharing a flow
    *structure* — identical live-flow signatures, only ``bytes_total``
    varying — which is exactly the triple-buffered steady state the
    Section 3 pipeline emits. The group can be solved with one
    water-filling allocation and evaluated with array ops.

    Attributes
    ----------
    start / count:
        Phase-index range ``[start, start + count)`` in the plan.
    flows:
        Live-flow template (the first phase's live flows, positionally
        representative of every phase in the group).
    bytes_matrix:
        ``(count, len(flows))`` float64 array of each phase's live-flow
        byte demands, snapshotted at compile time.
    resource_cols:
        Per-resource ``(name, columns, multipliers)`` triples: which
        flow columns touch the resource (in flow order) and with what
        demand multiplier.
    """

    start: int
    count: int
    flows: list[Flow]
    bytes_matrix: np.ndarray
    resource_cols: list[tuple[str, list[int], np.ndarray]]


def _compile_group(start: int, phases: list[Phase], lives: list[list[Flow]]) -> _CompiledGroup:
    """Build the arrays for one structurally identical phase run."""
    flows = lives[0]
    bytes_matrix = np.array(
        [[f.bytes_total for f in live] for live in lives], dtype=np.float64
    )
    resource_cols: list[tuple[str, list[int], np.ndarray]] = []
    seen: dict[str, list[int]] = {}
    for j, f in enumerate(flows):
        for name in f.resources:
            seen.setdefault(name, []).append(j)
    for name, cols in seen.items():
        mults = np.array(
            [flows[j].resources[name] for j in cols], dtype=np.float64
        )
        resource_cols.append((name, cols, mults))
    return _CompiledGroup(start, len(phases), flows, bytes_matrix, resource_cols)


@dataclass
class Plan:
    """An ordered, barrier-separated sequence of phases."""

    name: str
    phases: list[Phase] = field(default_factory=list)
    _compiled: list | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _compiled_key: tuple | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _structure: tuple | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _structure_key: tuple | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def add(self, phase: Phase) -> "Plan":
        """Append a phase and return self (chainable)."""
        self.phases.append(phase)
        self._compiled = None
        return self

    def validate(self) -> None:
        """Validate every contained phase."""
        for p in self.phases:
            p.validate()

    @property
    def total_bytes(self) -> float:
        """Sum of logical bytes over all phases."""
        return sum(p.total_bytes for p in self.phases)

    def compile(self, force: bool = False) -> list:
        """Segment the plan for batched evaluation; cached per phase list.

        Returns a list of segments, each one of

        * ``("ref", lo, hi)`` — a phase-index range for the per-phase
          reference loop;
        * ``("group", _CompiledGroup)`` — a run of ``>= 2`` consecutive
          ``static_rates`` phases with identical live-flow signatures
          that :meth:`Engine.run` can evaluate with one allocation and
          NumPy array ops;
        * ``("dyn", _CompiledGroup)`` — the same, for dynamic
          (``static_rates=False``) phases, evaluated with the segmented
          event-driven batch in :mod:`repro.simknl.batch` (the
          ``double`` strategy's inner steps form such runs).

        The compilation is cached and reused while the plan's phase
        list is unchanged (``add()`` invalidates it); byte demands are
        snapshotted at compile time, so callers that mutate a phase's
        flows in place must recompile with ``force=True``.
        """
        key = tuple(map(id, self.phases))
        if (
            not force
            and self._compiled is not None
            and self._compiled_key == key
        ):
            return self._compiled
        segments: list = []
        ref_lo: int | None = None
        run_lives: list[list[Flow]] = []
        run_start = 0
        run_key: tuple | None = None

        def flush_run() -> None:
            nonlocal ref_lo, run_lives, run_key
            if len(run_lives) >= _MIN_GROUP:
                if ref_lo is not None:
                    segments.append(("ref", ref_lo, run_start))
                    ref_lo = None
                segments.append(
                    (
                        "group" if run_key[0] else "dyn",
                        _compile_group(
                            run_start,
                            self.phases[
                                run_start:run_start + len(run_lives)
                            ],
                            run_lives,
                        ),
                    )
                )
            elif run_lives and ref_lo is None:
                ref_lo = run_start
            run_lives = []
            run_key = None

        for index, phase in enumerate(self.phases):
            phase_key: tuple | None = None
            live = [f for f in phase.flows if f.bytes_total > 0]
            if live:
                phase_key = (
                    phase.static_rates,
                    tuple(f.signature for f in live),
                )
            if phase_key is None:
                flush_run()
                if ref_lo is None:
                    ref_lo = index
                run_start = index + 1
                continue
            if phase_key != run_key:
                flush_run()
                run_start = index
                run_key = phase_key
            run_lives.append(live)
        flush_run()
        if ref_lo is not None:
            segments.append(("ref", ref_lo, len(self.phases)))
        self._compiled = segments
        self._compiled_key = key
        return segments

    def structure(self, force: bool = False) -> tuple:
        """Per-phase ``(static_rates, live-flow signatures)`` tuple.

        Two plans with equal structures differ only in byte demands
        (``bytes_total`` per flow), which is exactly the precondition
        for cross-cell lowering (:func:`repro.simknl.batch.run_batch`).
        Cached alongside :meth:`compile`; liveness (``bytes_total > 0``)
        is snapshotted at first call, so recompute with ``force=True``
        after mutating flow byte demands in place.
        """
        key = tuple(map(id, self.phases))
        if (
            not force
            and self._structure is not None
            and self._structure_key == key
        ):
            return self._structure
        structure = tuple(
            (
                phase.static_rates,
                tuple(
                    f.signature for f in phase.flows if f.bytes_total > 0
                ),
            )
            for phase in self.phases
        )
        self._structure = structure
        self._structure_key = key
        return structure


@dataclass
class RunResult:
    """Outcome of executing a plan.

    Attributes
    ----------
    elapsed:
        Simulated wall-clock seconds.
    traffic:
        Physical bytes moved per resource name.
    phase_times:
        Per-phase elapsed seconds, in plan order.
    events:
        ``(time, description)`` trace entries (flow completions).
    faults:
        Human-readable fault/degradation entries, in occurrence order
        (empty when no injector is attached).
    """

    elapsed: float
    traffic: dict[str, float]
    phase_times: list[float]
    events: list[tuple[float, str]] = field(default_factory=list)
    faults: list[str] = field(default_factory=list)

    def traffic_gb(self, resource: str) -> float:
        """Traffic on ``resource`` in decimal GB."""
        return self.traffic.get(resource, 0.0) / 1e9


class Engine:
    """Executes plans against a fixed set of resources.

    Parameters
    ----------
    resources:
        The shared bandwidth resources (devices, NoC, ...).
    record_events:
        When True, flow-completion events are recorded in the result
        trace. Disable for large sweeps to save memory.
    injector:
        Optional :class:`~repro.faults.FaultInjector`. At each phase
        boundary the engine asks it for fault events and applies the
        ones it owns: bandwidth degradations scale the named resource
        (the next water-filling solve then re-shares the remaining
        bandwidth — the "re-solve on degradation" semantics) and flow
        stalls extend the phase. Other kinds are logged for the layers
        that own them (heap, pools, resilient pipeline).
    """

    def __init__(
        self,
        resources: Iterable[Resource],
        record_events: bool = True,
        injector: FaultInjector | None = None,
        memoize_rates: bool = True,
        batch_phases: bool = True,
    ) -> None:
        self.resources: dict[str, Resource] = {}
        for r in resources:
            if r.name in self.resources:
                raise PlanError(f"duplicate resource {r.name!r}")
            self.resources[r.name] = r
        self._nominal: dict[str, Resource] = dict(self.resources)
        self.record_events = record_events
        self.injector = injector
        #: Compiled static-phase groups may be evaluated with NumPy
        #: array ops (one water-filling solve per group). False keeps
        #: every phase on the per-phase reference loop — the property
        #: tests hold the two bit-identical.
        self.batch_phases = batch_phases
        #: Cumulative count of groups evaluated on the batched path
        #: (observability + the fallback tests).
        self.batched_groups = 0
        #: Cumulative count of plans evaluated via the cross-cell
        #: tensor path (:meth:`run_batch`); sequential fallbacks do
        #: not count.
        self.batched_plans = 0
        #: Water-filling solutions keyed by (resource, live-flow)
        #: signature. Sweeps re-run structurally identical phases
        #: thousands of times; the solve is skipped for every repeat.
        #: ``memoize_rates=False`` keeps the direct reference path
        #: (the property tests hold the two bit-identical).
        self.memoize_rates = memoize_rates
        self._rate_cache: dict[tuple, list[float]] = {}
        self._res_sig: tuple | None = None
        self._phase_hooks: list[
            Callable[["Engine", int, Phase], float | None]
        ] = []
        #: Phase offset applied to injector schedules; lets a caller
        #: running many sub-plans on one engine (the resilient
        #: pipeline) keep a single global phase clock.
        self.phase_offset = 0

    def add_phase_hook(
        self, hook: Callable[["Engine", int, Phase], float | None]
    ) -> None:
        """Register a callback invoked before each phase runs.

        The hook receives ``(engine, phase_index, phase)`` and may
        return extra stall seconds to add to the phase.
        """
        self._phase_hooks.append(hook)

    # ---- fault application ----------------------------------------------

    def degrade_resource(self, name: str, fraction: float) -> bool:
        """Scale resource ``name`` to ``(1 - fraction)`` of nominal.

        Returns False (no-op) when the engine has no such resource, so
        fault plans may target devices absent from a given run.
        """
        if name not in self._nominal:
            return False
        if not 0.0 <= fraction <= 1.0:
            raise PlanError("degrade fraction must be in [0, 1]")
        nominal = self._nominal[name]
        capacity = nominal.capacity * max(1.0 - fraction, 1e-9)
        self.resources[name] = Resource(name, capacity)
        self._res_sig = None
        return True

    def restore_resource(self, name: str) -> None:
        """Return resource ``name`` to its nominal capacity."""
        if name in self._nominal:
            self.resources[name] = self._nominal[name]
            self._res_sig = None

    # ---- rate allocation -------------------------------------------------

    #: Bound on memoized solutions; reached only by adversarial plans
    #: (every phase structurally unique), at which point the cache is
    #: dropped wholesale rather than LRU-tracked.
    _RATE_CACHE_MAX = 4096

    def _allocate(self, live: list[Flow]) -> list[float]:
        """Max-min rates for ``live``, positionally, memoized on structure.

        The solution depends only on the current resource capacities
        and each live flow's ``(threads, per_thread_rate, resources)``
        signature — not on identity, names, or bytes remaining — so a
        cached solution is positionally bit-identical to a re-solve.
        """
        if not self.memoize_rates:
            rates = allocate_rates(live, self.resources)
            return [rates[id(f)] for f in live]
        res_sig = self._res_sig
        if res_sig is None:
            res_sig = self._res_sig = tuple(
                (name, self.resources[name].capacity)
                for name in sorted(self.resources)
            )
        key = (res_sig, tuple(f.signature for f in live))
        cached = self._rate_cache.get(key)
        if cached is None:
            rates = allocate_rates(live, self.resources)
            if len(self._rate_cache) >= self._RATE_CACHE_MAX:
                self._rate_cache.clear()
            self._rate_cache[key] = cached = [rates[id(f)] for f in live]
        return cached

    def _apply_phase_faults(
        self,
        index: int,
        phase: Phase,
        clock: float,
        faults: list[str],
        pending_restores: dict[int, list[str]],
        events: list[tuple[float, str]],
    ) -> float:
        """Apply faults due at phase ``index``; returns stall seconds."""
        stall = 0.0
        for name in pending_restores.pop(index, []):
            self.restore_resource(name)
            if self.injector is not None:
                self.injector.counters.restores += 1
            faults.append(f"phase {index}: {name} bandwidth restored")
        if self.injector is not None:
            for ev in self.injector.phase_events(index + self.phase_offset):
                if ev.kind is FaultKind.FLOW_STALL:
                    stall += ev.severity
                    self.injector.counters.stall_seconds += ev.severity
                    faults.append(f"phase {index}: {ev.describe()}")
                elif ev.kind is FaultKind.BANDWIDTH_DEGRADE:
                    if self.degrade_resource(ev.target or "", ev.severity):
                        self.injector.counters.degradations += 1
                        faults.append(f"phase {index}: {ev.describe()}")
                        if ev.duration_phases is not None:
                            pending_restores.setdefault(
                                index + ev.duration_phases, []
                            ).append(ev.target or "")
                else:
                    # Capacity / worker losses are owned by the heap,
                    # node, and pool layers; log them for visibility.
                    faults.append(f"phase {index}: {ev.describe()}")
        for hook in self._phase_hooks:
            extra = hook(self, index, phase)
            if extra:
                stall += float(extra)
        if stall > 0 and self.record_events:
            events.append((clock, f"{phase.name}: stalled {stall:g}s"))
        return stall

    def run(self, plan: Plan) -> RunResult:
        """Execute ``plan`` to completion and return timing/traffic."""
        plan.validate()
        clock = 0.0
        traffic: dict[str, float] = {name: 0.0 for name in self.resources}
        phase_times: list[float] = []
        events: list[tuple[float, str]] = []
        faults: list[str] = []
        pending_restores: dict[int, list[str]] = {}

        tel = _tm.current()
        # Successive runs share one monotonic sim timeline: this run's
        # phase/flow events are offset by the log's current watermark.
        t0 = tel.events.now if tel.enabled else 0.0
        if tel.enabled:
            tel.events.emit(_tn.EVENT_RUN_START, time=t0, plan=plan.name)
            m = tel.metrics
            c_phases = m.counter(_tn.ENGINE_PHASES_TOTAL)
            c_stall = m.counter(_tn.ENGINE_STALL_SECONDS_TOTAL)
            c_traffic = m.counter(_tn.ENGINE_TRAFFIC_BYTES_TOTAL)
            h_phase = m.histogram(_tn.ENGINE_PHASE_SECONDS)

        # The batched path can neither apply per-phase faults/hooks,
        # emit telemetry, nor record flow-completion events, so any of
        # those sends the whole run down the per-phase reference loop.
        use_batched = (
            self.batch_phases
            and self.injector is None
            and not self._phase_hooks
            and not tel.enabled
            and not self.record_events
        )
        if use_batched:
            segments = plan.compile()
        else:
            segments = [("ref", 0, len(plan.phases))]

        for segment in segments:
            if segment[0] in ("group", "dyn"):
                group = segment[1]
                if segment[0] == "group":
                    batched = self._run_group(group, clock, traffic)
                else:
                    batched = self._run_group_dynamic(group, clock, traffic)
                if batched is not None:
                    times, clock = batched
                    phase_times.extend(times)
                    self.batched_groups += 1
                    continue
                # Starved flow / no-completion round: re-run on the
                # reference loop, which raises the exact per-phase
                # SimulationError.
                segment = ("ref", group.start, group.start + group.count)
            _, seg_lo, seg_hi = segment
            for index in range(seg_lo, seg_hi):
                phase = plan.phases[index]
                stall = self._apply_phase_faults(
                    index, phase, clock, faults, pending_restores, events
                )
                if tel.enabled:
                    tel.events.emit(
                        _tn.EVENT_PHASE_START,
                        time=t0 + clock,
                        plan=plan.name,
                        phase=phase.name,
                        index=index,
                    )
                    before = dict(traffic)
                t = self._run_phase(
                    phase, clock + stall, traffic, events, tel, t0
                ) + stall
                phase_times.append(t)
                clock += t
                if tel.enabled:
                    c_phases.inc()
                    h_phase.observe(t)
                    if stall > 0:
                        c_stall.inc(stall)
                    for name, total in traffic.items():
                        moved = total - before.get(name, 0.0)
                        if moved > 0:
                            c_traffic.inc(moved, resource=name)
                    tel.events.emit(
                        _tn.EVENT_PHASE_END,
                        time=t0 + clock,
                        plan=plan.name,
                        phase=phase.name,
                        index=index,
                        seconds=t,
                        stall_seconds=stall,
                    )

        if tel.enabled:
            tel.metrics.counter(_tn.ENGINE_RUNS_TOTAL).inc()
            tel.events.emit(
                _tn.EVENT_RUN_END,
                time=t0 + clock,
                plan=plan.name,
                seconds=clock,
            )
        return RunResult(
            elapsed=clock,
            traffic=traffic,
            phase_times=phase_times,
            events=events,
            faults=faults,
        )

    def _run_phase(
        self,
        phase: Phase,
        start: float,
        traffic: dict[str, float],
        events: list[tuple[float, str]],
        tel: _tm.Telemetry | None = None,
        t0: float = 0.0,
    ) -> float:
        """Run one phase; returns its elapsed time."""
        if tel is None:
            tel = _tm.current()
        if tel.enabled:
            c_flows = tel.metrics.counter(_tn.ENGINE_FLOW_COMPLETIONS_TOTAL)

        def flow_done(at: float, f: Flow) -> None:
            if tel.enabled:
                c_flows.inc()
                tel.events.emit(
                    _tn.EVENT_FLOW_COMPLETE,
                    time=t0 + at,
                    phase=phase.name,
                    flow=f.name,
                    bytes=f.bytes_total,
                )
            if self.record_events:
                events.append((at, f"{phase.name}:{f.name} done"))

        # Work on copies of byte counters so plans can be re-run.
        live = [f for f in phase.flows if f.bytes_total > 0]
        remaining = [f.bytes_total for f in live]
        if phase.static_rates:
            if not live:
                return 0.0
            rates = self._allocate(live)
            dt = 0.0
            for f, rem, r in zip(live, remaining, rates):
                if r <= 0:
                    raise SimulationError(
                        f"phase {phase.name!r}: flow {f.name!r} starved "
                        "under static rates"
                    )
                dt = max(dt, rem / r)
                for name, mult in f.resources.items():
                    traffic[name] += rem * mult
                flow_done(start + rem / r, f)
            return dt
        elapsed = 0.0
        # Each iteration completes at least one flow (every flow whose
        # remaining bytes drain in exactly ``dt`` — same-rate
        # completions batch into the one step), so this loop runs at
        # most len(live) times.
        max_iter = len(live) + 1
        for _ in range(max_iter):
            if not live:
                break
            rates = self._allocate(live)
            # Time until the earliest completion.
            dt = math.inf
            for rem, r in zip(remaining, rates):
                if r > 0 and rem / r < dt:
                    dt = rem / r
            if math.isinf(dt):
                raise SimulationError(
                    f"phase {phase.name!r}: live flows but zero aggregate "
                    "rate (resource starvation)"
                )
            elapsed += dt
            next_live = []
            next_remaining = []
            for f, rem, r in zip(live, remaining, rates):
                moved = r * dt
                rem = max(0.0, rem - moved)
                for name, mult in f.resources.items():
                    traffic[name] += moved * mult
                if rem <= _EPS * max(1.0, f.bytes_total):
                    flow_done(start + elapsed, f)
                else:
                    next_live.append(f)
                    next_remaining.append(rem)
            if len(next_live) == len(live):
                raise SimulationError(
                    f"phase {phase.name!r}: no flow completed in an "
                    "engine iteration"
                )
            live = next_live
            remaining = next_remaining
        if live:
            raise SimulationError(
                f"phase {phase.name!r}: exceeded iteration bound"
            )
        return elapsed

    def _run_group(
        self,
        group: _CompiledGroup,
        clock: float,
        traffic: dict[str, float],
    ) -> tuple[list[float], float] | None:
        """Evaluate a compiled static-phase group with array ops.

        One water-filling solve covers the whole group (every phase has
        the same live-flow structure); per-phase times are the row-max
        of ``bytes_matrix / rates`` and per-resource traffic is
        accumulated with :func:`numpy.cumsum`, whose strict
        left-to-right association reproduces the reference loop's
        ``+=`` chain bit for bit. Returns ``None`` when any flow would
        starve — the caller re-runs those phases on the reference loop
        so the usual :class:`SimulationError` is raised.
        """
        rates = np.asarray(self._allocate(group.flows), dtype=np.float64)
        if np.any(rates <= 0.0):
            return None
        per_flow = group.bytes_matrix / rates
        times = per_flow.max(axis=1)
        for name, cols, mults in group.resource_cols:
            contrib = group.bytes_matrix[:, cols] * mults
            ordered = np.empty(contrib.size + 1, dtype=np.float64)
            ordered[0] = traffic[name]
            ordered[1:] = contrib.ravel()
            traffic[name] = float(np.cumsum(ordered)[-1])
        ticks = np.empty(times.size + 1, dtype=np.float64)
        ticks[0] = clock
        ticks[1:] = times
        return times.tolist(), float(np.cumsum(ticks)[-1])

    def _run_group_dynamic(
        self,
        group: _CompiledGroup,
        clock: float,
        traffic: dict[str, float],
    ) -> tuple[list[float], float] | None:
        """Evaluate a compiled dynamic-phase group with the segmented
        event-driven batch.

        Each phase in the group is an independent event loop over the
        same live-flow structure; :func:`repro.simknl.batch.batched_dynamic`
        advances all of them in lock-step rounds, re-solving the
        water-filling allocation once per distinct set of still-live
        flows instead of once per phase per round. Returns ``None``
        when any phase would starve or fail to complete a flow in a
        round — the caller re-runs the segment on the reference loop so
        the usual :class:`SimulationError` is raised.
        """
        from repro.simknl.batch import batched_dynamic

        out = batched_dynamic(group.flows, group.bytes_matrix, self._allocate)
        if out is None:
            return None
        times, chains = out
        for name, chain in chains:
            ordered = np.empty(chain.size + 1, dtype=np.float64)
            ordered[0] = traffic[name]
            ordered[1:] = chain.ravel()
            traffic[name] = float(np.cumsum(ordered)[-1])
        ticks = np.empty(times.size + 1, dtype=np.float64)
        ticks[0] = clock
        ticks[1:] = times
        return times.tolist(), float(np.cumsum(ticks)[-1])

    def run_batch(self, plans: list[Plan]) -> list[RunResult]:
        """Run N structurally identical plans as one tensor evaluation.

        Delegates to :func:`repro.simknl.batch.run_batch`; falls back to
        sequential :meth:`run` calls when the engine or the plans are
        ineligible (see that function's docs). Results are bit-identical
        to ``[self.run(p) for p in plans]`` either way.
        """
        from repro.simknl.batch import run_batch

        return run_batch(self, plans)


def run_flows(
    flows: list[Flow],
    resources: Iterable[Resource],
    name: str = "phase",
) -> RunResult:
    """Convenience: run a single phase of flows to completion."""
    engine = Engine(resources)
    return engine.run(Plan(name=name, phases=[Phase(name=name, flows=flows)]))
