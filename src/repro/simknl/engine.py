"""Discrete-event execution of flow plans.

A :class:`Plan` is an ordered list of :class:`Phase` objects separated
by barriers: a phase begins only when its predecessor has fully
completed. Within a phase all flows run concurrently and share
bandwidth via the max-min fair allocator; the phase ends when every
flow has moved its bytes. This directly realizes the paper's
``T_step = max(T_copyin, T_comp, T_copyout)`` pipelined-step semantics
(Fig. 2) while also capturing the second-order effect the closed-form
model ignores: when one pool finishes early, the remaining pools speed
up because bandwidth is re-shared.

The engine accumulates per-resource traffic counters so experiments can
report DDR/MCDRAM traffic (used for the Bender et al. corroboration of
the ~2.5x DDR-traffic reduction).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import PlanError, SimulationError
from repro.simknl.flows import Flow, Resource, allocate_rates

_EPS = 1e-12


@dataclass
class Phase:
    """A barrier-delimited set of concurrent flows.

    Parameters
    ----------
    name:
        Display name, e.g. ``"step 3"``.
    flows:
        Flows that run concurrently during this phase.
    static_rates:
        When True, bandwidth shares are allocated once at phase start
        and held until the barrier: the phase lasts
        ``max(bytes / rate)`` over its flows. This models OpenMP-style
        pools whose threads keep their cores (and memory pipelines)
        for the whole step, spinning at the barrier — the paper's
        ``T_step = max(T_copyin, T_comp, T_copyout)``. When False
        (default), a flow that drains early releases its bandwidth and
        the remaining flows speed up (max-min resharing).
    """

    name: str
    flows: list[Flow] = field(default_factory=list)
    static_rates: bool = False

    def validate(self) -> None:
        """Raise :class:`PlanError` if the phase is malformed."""
        if not self.flows:
            raise PlanError(f"phase {self.name!r} has no flows")
        for f in self.flows:
            if f.bytes_total > 0 and f.rate_cap <= 0:
                raise PlanError(
                    f"phase {self.name!r}: flow {f.name!r} has bytes to "
                    "move but zero rate capacity"
                )

    @property
    def total_bytes(self) -> float:
        """Sum of logical bytes over all flows in the phase."""
        return sum(f.bytes_total for f in self.flows)


@dataclass
class Plan:
    """An ordered, barrier-separated sequence of phases."""

    name: str
    phases: list[Phase] = field(default_factory=list)

    def add(self, phase: Phase) -> "Plan":
        """Append a phase and return self (chainable)."""
        self.phases.append(phase)
        return self

    def validate(self) -> None:
        """Validate every contained phase."""
        for p in self.phases:
            p.validate()

    @property
    def total_bytes(self) -> float:
        """Sum of logical bytes over all phases."""
        return sum(p.total_bytes for p in self.phases)


@dataclass
class RunResult:
    """Outcome of executing a plan.

    Attributes
    ----------
    elapsed:
        Simulated wall-clock seconds.
    traffic:
        Physical bytes moved per resource name.
    phase_times:
        Per-phase elapsed seconds, in plan order.
    events:
        ``(time, description)`` trace entries (flow completions).
    """

    elapsed: float
    traffic: dict[str, float]
    phase_times: list[float]
    events: list[tuple[float, str]] = field(default_factory=list)

    def traffic_gb(self, resource: str) -> float:
        """Traffic on ``resource`` in decimal GB."""
        return self.traffic.get(resource, 0.0) / 1e9


class Engine:
    """Executes plans against a fixed set of resources.

    Parameters
    ----------
    resources:
        The shared bandwidth resources (devices, NoC, ...).
    record_events:
        When True, flow-completion events are recorded in the result
        trace. Disable for large sweeps to save memory.
    """

    def __init__(
        self,
        resources: Iterable[Resource],
        record_events: bool = True,
    ) -> None:
        self.resources: dict[str, Resource] = {}
        for r in resources:
            if r.name in self.resources:
                raise PlanError(f"duplicate resource {r.name!r}")
            self.resources[r.name] = r
        self.record_events = record_events

    def run(self, plan: Plan) -> RunResult:
        """Execute ``plan`` to completion and return timing/traffic."""
        plan.validate()
        clock = 0.0
        traffic: dict[str, float] = {name: 0.0 for name in self.resources}
        phase_times: list[float] = []
        events: list[tuple[float, str]] = []

        for phase in plan.phases:
            t = self._run_phase(phase, clock, traffic, events)
            phase_times.append(t)
            clock += t

        return RunResult(
            elapsed=clock,
            traffic=traffic,
            phase_times=phase_times,
            events=events,
        )

    def _run_phase(
        self,
        phase: Phase,
        start: float,
        traffic: dict[str, float],
        events: list[tuple[float, str]],
    ) -> float:
        """Run one phase; returns its elapsed time."""
        # Work on copies of byte counters so plans can be re-run.
        remaining = {id(f): f.bytes_total for f in phase.flows}
        live = [f for f in phase.flows if remaining[id(f)] > 0]
        if phase.static_rates:
            if not live:
                return 0.0
            rates = allocate_rates(live, self.resources)
            dt = 0.0
            for f in live:
                r = rates[id(f)]
                if r <= 0:
                    raise SimulationError(
                        f"phase {phase.name!r}: flow {f.name!r} starved "
                        "under static rates"
                    )
                dt = max(dt, remaining[id(f)] / r)
                for name, mult in f.resources.items():
                    traffic[name] += remaining[id(f)] * mult
                if self.record_events:
                    events.append(
                        (start + remaining[id(f)] / r,
                         f"{phase.name}:{f.name} done")
                    )
            return dt
        elapsed = 0.0
        # Each iteration completes at least one flow, so this loop runs
        # at most len(live) times.
        max_iter = len(live) + 1
        for _ in range(max_iter):
            if not live:
                break
            rates = allocate_rates(live, self.resources)
            # Time until the earliest completion.
            dt = math.inf
            for f in live:
                r = rates[id(f)]
                if r <= 0:
                    continue
                dt = min(dt, remaining[id(f)] / r)
            if math.isinf(dt):
                raise SimulationError(
                    f"phase {phase.name!r}: live flows but zero aggregate "
                    "rate (resource starvation)"
                )
            elapsed += dt
            next_live = []
            for f in live:
                r = rates[id(f)]
                moved = r * dt
                remaining[id(f)] = max(0.0, remaining[id(f)] - moved)
                for name, mult in f.resources.items():
                    traffic[name] += moved * mult
                done = remaining[id(f)] <= _EPS * max(1.0, f.bytes_total)
                if done:
                    if self.record_events:
                        events.append(
                            (start + elapsed, f"{phase.name}:{f.name} done")
                        )
                else:
                    next_live.append(f)
            if len(next_live) == len(live):
                raise SimulationError(
                    f"phase {phase.name!r}: no flow completed in an "
                    "engine iteration"
                )
            live = next_live
        if live:
            raise SimulationError(
                f"phase {phase.name!r}: exceeded iteration bound"
            )
        return elapsed


def run_flows(
    flows: list[Flow],
    resources: Iterable[Resource],
    name: str = "phase",
) -> RunResult:
    """Convenience: run a single phase of flows to completion."""
    engine = Engine(resources)
    return engine.run(Plan(name=name, phases=[Phase(name=name, flows=flows)]))
