"""Line-granularity direct-mapped model of the MCDRAM hardware cache.

In hardware cache mode KNL's MCDRAM acts as a direct-mapped,
64 B-line, memory-side cache in front of DDR. This module simulates
that structure exactly (at reduced scale for testability): address →
line → set index by modulo, single way, write-back with write-allocate,
and a classification of misses into cold (first touch), conflict
(line was evicted by a different line mapping to the same set while
the working set fits), and capacity (working set exceeds the cache).

The functional simulator is used by tests and by the validation suite
that checks the *analytic* streaming model
(:mod:`repro.simknl.cache_analytic`) against ground truth on small
configurations; paper-scale experiments use the analytic model.

A fraction of MCDRAM capacity is reserved for tags when the real
hardware holds tag state in the array itself; the paper calls this out
as a disadvantage of cache mode, and :class:`DirectMappedCache` models
it via ``tag_overhead``.

Models the hardware cache mode of Section 1 (and Section 1.1's direct-
mapped caveats); the Fig. 4 pollution effect reproduces on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.telemetry import names as _tn
from repro.telemetry import runtime as _tm
from repro.units import CACHE_LINE


@dataclass
class CacheStats:
    """Counters accumulated by :class:`DirectMappedCache`."""

    hits: int = 0
    cold_misses: int = 0
    conflict_misses: int = 0
    capacity_misses: int = 0
    writebacks: int = 0

    @property
    def misses(self) -> int:
        """Total misses of all classes."""
        return self.cold_misses + self.conflict_misses + self.capacity_misses

    @property
    def accesses(self) -> int:
        """Total accesses."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0.0 when no accesses yet)."""
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.cold_misses = 0
        self.conflict_misses = 0
        self.capacity_misses = 0
        self.writebacks = 0


@dataclass
class _LineState:
    tag: int
    dirty: bool


class DirectMappedCache:
    """A direct-mapped, write-back, write-allocate cache.

    Parameters
    ----------
    capacity:
        Nominal cache capacity in bytes (before tag overhead).
    line_size:
        Cache line size in bytes (KNL: 64).
    tag_overhead:
        Fraction of nominal capacity consumed by tag storage; the
        usable line count shrinks accordingly.
    """

    def __init__(
        self,
        capacity: int,
        line_size: int = CACHE_LINE,
        tag_overhead: float = 0.0,
    ) -> None:
        if line_size <= 0:
            raise ConfigError("line_size must be positive")
        if capacity < line_size:
            raise ConfigError("capacity must hold at least one line")
        if not 0.0 <= tag_overhead < 1.0:
            raise ConfigError("tag_overhead must be in [0, 1)")
        usable = int(capacity * (1.0 - tag_overhead))
        self.num_lines = max(1, usable // line_size)
        self.line_size = line_size
        self.capacity = capacity
        self.tag_overhead = tag_overhead
        self._lines: dict[int, _LineState] = {}
        self._ever_seen: set[int] = set()
        self.stats = CacheStats()

    @property
    def usable_capacity(self) -> int:
        """Capacity available for data after tag overhead, in bytes."""
        return self.num_lines * self.line_size

    def _index_and_line(self, addr: int) -> tuple[int, int]:
        line = addr // self.line_size
        return line % self.num_lines, line

    def access(self, addr: int, write: bool = False) -> bool:
        """Access one byte address; returns True on hit.

        A miss installs the line (write-allocate); evicting a dirty
        line counts a writeback.
        """
        if addr < 0:
            raise ConfigError("negative address")
        tel = _tm.current()
        index, line = self._index_and_line(addr)
        state = self._lines.get(index)
        if state is not None and state.tag == line:
            self.stats.hits += 1
            if write:
                state.dirty = True
            if tel.enabled:
                tel.metrics.counter(_tn.CACHE_HITS_TOTAL).inc()
            return True
        # Miss: classify.
        if line not in self._ever_seen:
            self.stats.cold_misses += 1
            miss_class = "cold"
        else:
            # Distinguish conflict from capacity by whether the live
            # working set (distinct lines seen) exceeds the cache.
            if len(self._ever_seen) > self.num_lines:
                self.stats.capacity_misses += 1
                miss_class = "capacity"
            else:
                self.stats.conflict_misses += 1
                miss_class = "conflict"
        self._ever_seen.add(line)
        writeback = state is not None and state.dirty
        if writeback:
            self.stats.writebacks += 1
        if tel.enabled:
            m = tel.metrics
            m.counter(_tn.CACHE_MISSES_TOTAL).inc(**{"class": miss_class})
            if state is not None:
                m.counter(_tn.CACHE_EVICTIONS_TOTAL).inc()
            if writeback:
                m.counter(_tn.CACHE_WRITEBACKS_TOTAL).inc()
        self._lines[index] = _LineState(tag=line, dirty=write)
        return False

    def access_range(self, start: int, nbytes: int, write: bool = False) -> None:
        """Access every line in ``[start, start + nbytes)``."""
        if nbytes < 0:
            raise ConfigError("negative range size")
        if nbytes == 0:
            return
        first = start // self.line_size
        last = (start + nbytes - 1) // self.line_size
        for line in range(first, last + 1):
            self.access(line * self.line_size, write=write)

    def flush(self) -> int:
        """Write back all dirty lines and empty the cache.

        Returns the number of writebacks performed.
        """
        dirty = sum(1 for s in self._lines.values() if s.dirty)
        self.stats.writebacks += dirty
        self._lines.clear()
        tel = _tm.current()
        if tel.enabled:
            tel.metrics.counter(_tn.CACHE_FLUSHES_TOTAL).inc()
            if dirty:
                tel.metrics.counter(_tn.CACHE_WRITEBACKS_TOTAL).inc(dirty)
        return dirty

    def reset(self) -> None:
        """Empty the cache and zero statistics (cold state)."""
        self._lines.clear()
        self._ever_seen.clear()
        self.stats.reset()

    def traffic(self) -> tuple[float, float]:
        """Physical traffic implied by the access history so far.

        Returns ``(ddr_bytes, mcdram_bytes)``:

        * each miss reads one line from DDR (fill) and writes it into
          MCDRAM, plus delivers it (MCDRAM read);
        * each hit is one MCDRAM line access;
        * each writeback moves one line MCDRAM → DDR.
        """
        ls = self.line_size
        ddr = (self.stats.misses + self.stats.writebacks) * ls
        mcdram = (
            self.stats.hits + 2 * self.stats.misses + self.stats.writebacks
        ) * ls
        return float(ddr), float(mcdram)
