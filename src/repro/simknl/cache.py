"""Line-granularity direct-mapped model of the MCDRAM hardware cache.

In hardware cache mode KNL's MCDRAM acts as a direct-mapped,
64 B-line, memory-side cache in front of DDR. This module simulates
that structure exactly (at reduced scale for testability): address →
line → set index by modulo, single way, write-back with write-allocate,
and a classification of misses into cold (first touch), conflict
(line was evicted by a different line mapping to the same set while
the working set fits), and capacity (working set exceeds the cache).

The cache state is backed by NumPy tag/dirty arrays so that the hot
entry point — :meth:`DirectMappedCache.access_range` — can resolve a
whole contiguous range *per batch*: one vectorized pass classifies
every hit, cold/conflict/capacity miss, eviction, and writeback in the
range, and telemetry is emitted with a single ``inc(n)`` per counter
instead of a registry lookup per access. The scalar
:meth:`~DirectMappedCache.access` path is retained as the reference
implementation; the property tests in ``tests/simknl`` hold the two
paths bit-identical on random traces (see ``docs/PERFORMANCE.md``).

The functional simulator is used by tests and by the validation suite
that checks the *analytic* streaming model
(:mod:`repro.simknl.cache_analytic`) against ground truth on small
configurations; paper-scale experiments use the analytic model.

A fraction of MCDRAM capacity is reserved for tags when the real
hardware holds tag state in the array itself; the paper calls this out
as a disadvantage of cache mode, and :class:`DirectMappedCache` models
it via ``tag_overhead``.

Models the hardware cache mode of Section 1 (and Section 1.1's direct-
mapped caveats); the Fig. 4 pollution effect reproduces on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.telemetry import names as _tn
from repro.telemetry import runtime as _tm
from repro.units import CACHE_LINE

#: Tag value marking an empty cache slot.
_EMPTY = -1


@dataclass
class CacheStats:
    """Counters accumulated by :class:`DirectMappedCache`."""

    hits: int = 0
    cold_misses: int = 0
    conflict_misses: int = 0
    capacity_misses: int = 0
    writebacks: int = 0

    @property
    def misses(self) -> int:
        """Total misses of all classes."""
        return self.cold_misses + self.conflict_misses + self.capacity_misses

    @property
    def accesses(self) -> int:
        """Total accesses."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0.0 when no accesses yet)."""
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.cold_misses = 0
        self.conflict_misses = 0
        self.capacity_misses = 0
        self.writebacks = 0


class DirectMappedCache:
    """A direct-mapped, write-back, write-allocate cache.

    Parameters
    ----------
    capacity:
        Nominal cache capacity in bytes (before tag overhead).
    line_size:
        Cache line size in bytes (KNL: 64).
    tag_overhead:
        Fraction of nominal capacity consumed by tag storage; the
        usable line count shrinks accordingly.
    """

    def __init__(
        self,
        capacity: int,
        line_size: int = CACHE_LINE,
        tag_overhead: float = 0.0,
    ) -> None:
        if line_size <= 0:
            raise ConfigError("line_size must be positive")
        if capacity < line_size:
            raise ConfigError("capacity must hold at least one line")
        if not 0.0 <= tag_overhead < 1.0:
            raise ConfigError("tag_overhead must be in [0, 1)")
        usable = int(capacity * (1.0 - tag_overhead))
        self.num_lines = max(1, usable // line_size)
        self.line_size = line_size
        self.capacity = capacity
        self.tag_overhead = tag_overhead
        #: Per-set resident line number (``_EMPTY`` when the slot is
        #: free) and dirty bit — the NumPy backing the batched path
        #: scatters into.
        self._tags = np.full(self.num_lines, _EMPTY, dtype=np.int64)
        self._dirty = np.zeros(self.num_lines, dtype=bool)
        #: Every line number ever touched drives cold-vs-capacity
        #: classification. Stored as a sorted array (the batched
        #: path's membership structure) plus a small pending set the
        #: scalar path inserts into; the two are kept disjoint and
        #: merged lazily before a batch runs.
        self._seen_arr = np.empty(0, dtype=np.int64)
        self._seen_pending: set[int] = set()
        self.stats = CacheStats()
        # Telemetry counter handles, hoisted once per session: the
        # scalar path re-resolves them only when the active session
        # changes instead of doing a registry lookup per access.
        self._tel_cached: _tm.Telemetry | None = None
        self._handles: tuple = ()
        tel = _tm.current()
        if tel.enabled:
            self._hoist_handles(tel)

    def _hoist_handles(self, tel: _tm.Telemetry) -> tuple:
        """(Re)bind counter handles to ``tel`` and return them."""
        m = tel.metrics
        self._handles = (
            m.counter(_tn.CACHE_HITS_TOTAL),
            m.counter(_tn.CACHE_MISSES_TOTAL),
            m.counter(_tn.CACHE_EVICTIONS_TOTAL),
            m.counter(_tn.CACHE_WRITEBACKS_TOTAL),
        )
        self._tel_cached = tel
        return self._handles

    @property
    def usable_capacity(self) -> int:
        """Capacity available for data after tag overhead, in bytes."""
        return self.num_lines * self.line_size

    def _index_and_line(self, addr: int) -> tuple[int, int]:
        line = addr // self.line_size
        return line % self.num_lines, line

    @property
    def _seen_count(self) -> int:
        return self._seen_arr.size + len(self._seen_pending)

    def _seen_has(self, line: int) -> bool:
        if line in self._seen_pending:
            return True
        arr = self._seen_arr
        pos = int(np.searchsorted(arr, line))
        return pos < arr.size and int(arr[pos]) == line

    def _seen_snapshot(self) -> np.ndarray:
        """Sorted array of all line numbers ever seen."""
        if self._seen_pending:
            pending = np.fromiter(
                self._seen_pending,
                dtype=np.int64,
                count=len(self._seen_pending),
            )
            self._seen_arr = np.union1d(self._seen_arr, pending)
            self._seen_pending.clear()
        return self._seen_arr

    def access(self, addr: int, write: bool = False) -> bool:
        """Access one byte address; returns True on hit.

        A miss installs the line (write-allocate); evicting a dirty
        line counts a writeback. This is the scalar reference
        implementation; :meth:`access_range` is the vectorized
        equivalent for contiguous ranges.
        """
        if addr < 0:
            raise ConfigError("negative address")
        tel = _tm.current()
        index, line = self._index_and_line(addr)
        tag = int(self._tags[index])
        if tag == line:
            self.stats.hits += 1
            if write:
                self._dirty[index] = True
            if tel.enabled:
                handles = (
                    self._handles
                    if tel is self._tel_cached
                    else self._hoist_handles(tel)
                )
                handles[0].inc()
            return True
        # Miss: classify.
        cold = not self._seen_has(line)
        if cold:
            self.stats.cold_misses += 1
            miss_class = "cold"
            self._seen_pending.add(line)
        else:
            # Distinguish conflict from capacity by whether the live
            # working set (distinct lines seen) exceeds the cache.
            if self._seen_count > self.num_lines:
                self.stats.capacity_misses += 1
                miss_class = "capacity"
            else:
                self.stats.conflict_misses += 1
                miss_class = "conflict"
        occupied = tag != _EMPTY
        writeback = occupied and bool(self._dirty[index])
        if writeback:
            self.stats.writebacks += 1
        if tel.enabled:
            handles = (
                self._handles
                if tel is self._tel_cached
                else self._hoist_handles(tel)
            )
            handles[1].inc(**{"class": miss_class})
            if occupied:
                handles[2].inc()
            if writeback:
                handles[3].inc()
        self._tags[index] = line
        self._dirty[index] = write
        return False

    def access_range(self, start: int, nbytes: int, write: bool = False) -> None:
        """Access every line in ``[start, start + nbytes)``.

        Equivalent to calling :meth:`access` once per line in
        ascending order, but resolved per *batch*: tag compares, miss
        classification, collision resolution within the range, and
        writeback detection are single NumPy passes, and telemetry is
        emitted with one ``inc(n)`` per counter class.
        """
        if nbytes < 0:
            raise ConfigError("negative range size")
        if start < 0:
            raise ConfigError("negative address")
        if nbytes == 0:
            return
        ls = self.line_size
        nl = self.num_lines
        first = start // ls
        last = (start + nbytes - 1) // ls
        lines = np.arange(first, last + 1, dtype=np.int64)
        nb = lines.size

        # The range is a run of *distinct* consecutive lines, so the
        # first min(nb, nl) of them have pairwise-distinct set indices
        # ("head"); every later line ("tail") revisits an index already
        # claimed by an earlier line of this batch and therefore always
        # misses, evicting that batch-local predecessor.
        n_head = min(nb, nl)
        head = lines[:n_head]
        head_idx = head % nl
        pre_tags = self._tags[head_idx]
        pre_dirty = self._dirty[head_idx]
        hit = pre_tags == head
        n_hits = int(np.count_nonzero(hit))
        evict_head = (~hit) & (pre_tags != _EMPTY)
        n_tail = nb - n_head
        n_evictions = int(np.count_nonzero(evict_head)) + n_tail
        n_writebacks = int(np.count_nonzero(evict_head & pre_dirty))
        if n_tail:
            if write:
                # Every batch-local predecessor was installed (or
                # re-marked) dirty, so each tail access writes back.
                n_writebacks += n_tail
            else:
                # Only head *hits* on pre-existing dirty lines stay
                # dirty; those evicted by a tail access write back.
                head_pos = np.arange(n_head)
                n_writebacks += int(
                    np.count_nonzero(hit & pre_dirty & (head_pos + nl < nb))
                )

        # Cold/capacity/conflict classification replays the scalar
        # order: the ever-seen set grows by each cold line as the
        # batch proceeds, so a re-seen miss at position p compares the
        # cache size against seen0 + (cold lines before p).
        seen = self._seen_snapshot()
        cold = np.ones(nb, dtype=bool)
        lo = int(np.searchsorted(seen, first))
        hi = int(np.searchsorted(seen, last + 1))
        if hi > lo:
            cold[seen[lo:hi] - first] = False
        miss = np.ones(nb, dtype=bool)
        miss[:n_head] = ~hit
        n_cold = int(np.count_nonzero(cold))
        seen0 = seen.size
        seen_before = seen0 + np.cumsum(cold) - cold
        n_capacity = int(np.count_nonzero(miss & ~cold & (seen_before > nl)))
        n_misses = nb - n_hits
        n_conflict = n_misses - n_cold - n_capacity

        # Commit state: the final resident line of each touched set is
        # the *last* occurrence of its index in the batch.
        n_last = min(nb, nl)
        tail_lines = lines[nb - n_last :]
        tail_idx = tail_lines % nl
        if write:
            new_dirty = np.ones(n_last, dtype=bool)
        else:
            new_dirty = np.zeros(n_last, dtype=bool)
            # Head hits that survive to the end of the batch keep
            # their pre-existing dirty bit.
            surv = np.nonzero(hit & pre_dirty)[0]
            surv = surv[surv >= nb - n_last]
            if surv.size:
                new_dirty[surv - (nb - n_last)] = True
        self._tags[tail_idx] = tail_lines
        self._dirty[tail_idx] = new_dirty
        if n_cold:
            # The cold lines are disjoint from ``seen`` and already
            # sorted, so a stable sort of the concatenation is a
            # two-run merge — no dedup pass needed.
            merged = np.concatenate([seen, lines[cold]])
            merged.sort(kind="stable")
            self._seen_arr = merged

        self.stats.hits += n_hits
        self.stats.cold_misses += n_cold
        self.stats.conflict_misses += n_conflict
        self.stats.capacity_misses += n_capacity
        self.stats.writebacks += n_writebacks

        tel = _tm.current()
        if tel.enabled:
            c_hits, c_miss, c_evict, c_wb = (
                self._handles
                if tel is self._tel_cached
                else self._hoist_handles(tel)
            )
            if n_hits:
                c_hits.inc(n_hits)
            if n_cold:
                c_miss.inc(n_cold, **{"class": "cold"})
            if n_conflict:
                c_miss.inc(n_conflict, **{"class": "conflict"})
            if n_capacity:
                c_miss.inc(n_capacity, **{"class": "capacity"})
            if n_evictions:
                c_evict.inc(n_evictions)
            if n_writebacks:
                c_wb.inc(n_writebacks)

    def flush(self) -> int:
        """Write back all dirty lines and empty the cache.

        Returns the number of writebacks performed.
        """
        occupied = self._tags != _EMPTY
        dirty = int(np.count_nonzero(self._dirty & occupied))
        self.stats.writebacks += dirty
        self._tags.fill(_EMPTY)
        self._dirty.fill(False)
        tel = _tm.current()
        if tel.enabled:
            tel.metrics.counter(_tn.CACHE_FLUSHES_TOTAL).inc()
            if dirty:
                tel.metrics.counter(_tn.CACHE_WRITEBACKS_TOTAL).inc(dirty)
        return dirty

    def reset(self) -> None:
        """Empty the cache and zero statistics (cold state)."""
        self._tags.fill(_EMPTY)
        self._dirty.fill(False)
        self._seen_arr = np.empty(0, dtype=np.int64)
        self._seen_pending.clear()
        self.stats.reset()

    def traffic(self) -> tuple[float, float]:
        """Physical traffic implied by the access history so far.

        Returns ``(ddr_bytes, mcdram_bytes)``:

        * each miss reads one line from DDR (fill) and writes it into
          MCDRAM, plus delivers it (MCDRAM read);
        * each hit is one MCDRAM line access;
        * each writeback moves one line MCDRAM → DDR.
        """
        ls = self.line_size
        ddr = (self.stats.misses + self.stats.writebacks) * ls
        mcdram = (
            self.stats.hits + 2 * self.stats.misses + self.stats.writebacks
        ) * ls
        return float(ddr), float(mcdram)
