"""Max-min fair bandwidth allocation over shared memory resources.

A *resource* is anything with a byte/s capacity: the DDR4 channels, the
MCDRAM stacks, or the on-die mesh. A *flow* is a pool of threads
streaming data through one or more resources — for example the paper's
copy-in pool reads DDR and writes MCDRAM, so a copy-in flow traverses
both devices.

The allocator implements *progressive filling* (water-filling): every
unfrozen flow's rate grows at the same pace until either

* the flow reaches its own cap ``threads * per_thread_rate`` — this is
  the paper's ``p * S`` term (Eqs. 3 and 5 first branch), or
* some resource saturates, freezing every flow through it at its
  current rate — the paper's bandwidth-share branch (Eqs. 3 and 5
  second branch).

The result is the unique max-min fair allocation, which coincides with
the paper's closed-form model in every regime its evaluation visits,
and extends it to arbitrarily many pools and resources.

Flows may consume resources at different *multipliers*: a flow whose
logical rate is ``r`` consumes ``r * mult[res]`` on each resource it
traverses. This expresses, e.g., cache-mode phases where each logical
byte induces 1 byte of MCDRAM traffic plus ``miss_ratio`` bytes of DDR
traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import PlanError

#: Relative tolerance used when comparing rates and capacities.
_EPS = 1e-12

#: Flow attributes whose mutation invalidates the cached signature.
_SIGNATURE_FIELDS = frozenset({"threads", "per_thread_rate", "resources"})


@dataclass(frozen=True)
class Resource:
    """A bandwidth-capacity shared resource.

    Parameters
    ----------
    name:
        Unique identifier, e.g. ``"ddr"`` or ``"mcdram"``.
    capacity:
        Sustainable bandwidth in bytes per second. ``math.inf`` models
        an unconstrained resource.
    """

    name: str
    capacity: float

    def __post_init__(self) -> None:
        if not self.name:
            raise PlanError("resource name must be non-empty")
        if self.capacity <= 0:
            raise PlanError(
                f"resource {self.name!r} capacity must be positive, "
                f"got {self.capacity}"
            )


@dataclass
class Flow:
    """A thread pool streaming bytes through a set of resources.

    Parameters
    ----------
    name:
        Display name, e.g. ``"copy-in"``.
    threads:
        Number of threads in the pool.
    per_thread_rate:
        Maximum logical rate a single thread can sustain when no
        resource is saturated (the paper's ``S_copy`` / ``S_comp``),
        in bytes/s.
    resources:
        Mapping from resource name to demand multiplier. A logical
        rate ``r`` consumes ``r * mult`` bytes/s of each resource.
    bytes_total:
        Logical bytes this flow must move before it completes.
    """

    name: str
    threads: int
    per_thread_rate: float
    resources: Mapping[str, float]
    bytes_total: float
    bytes_done: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.threads < 0:
            raise PlanError(f"flow {self.name!r}: negative thread count")
        if self.per_thread_rate < 0:
            raise PlanError(f"flow {self.name!r}: negative per-thread rate")
        if self.bytes_total < 0:
            raise PlanError(f"flow {self.name!r}: negative byte demand")
        for res, mult in self.resources.items():
            if mult < 0:
                raise PlanError(
                    f"flow {self.name!r}: negative multiplier for {res!r}"
                )

    def __setattr__(self, name: str, value) -> None:
        if name in _SIGNATURE_FIELDS:
            object.__setattr__(self, "_signature", None)
        object.__setattr__(self, name, value)

    @property
    def signature(self) -> tuple:
        """Structural signature: everything :func:`allocate_rates` reads
        except identity and byte counters.

        Two flows with equal signatures receive identical rates in
        identical contexts, which is what lets the engine memoize the
        water-filling solve across phases and runs, and what plan
        compilation and cross-cell lowering use to detect structurally
        identical phases. Computed lazily and cached on the instance;
        assigning ``threads``, ``per_thread_rate``, or ``resources``
        invalidates the cache.
        """
        sig = self._signature
        if sig is None:
            sig = (
                self.threads,
                self.per_thread_rate,
                tuple(sorted(self.resources.items())),
            )
            object.__setattr__(self, "_signature", sig)
        return sig

    @property
    def rate_cap(self) -> float:
        """Aggregate cap in logical bytes/s (``threads * per_thread_rate``)."""
        return self.threads * self.per_thread_rate

    @property
    def bytes_remaining(self) -> float:
        """Logical bytes still to move."""
        return max(0.0, self.bytes_total - self.bytes_done)

    @property
    def finished(self) -> bool:
        """True once the flow has moved all its bytes."""
        return self.bytes_remaining <= _EPS * max(1.0, self.bytes_total)


def allocate_rates(
    flows: list[Flow], resources: Mapping[str, Resource]
) -> dict[int, float]:
    """Compute the max-min fair rate for each flow.

    Returns a dict keyed by ``id(flow)`` mapping to the allocated
    logical rate in bytes/s. Flows with a zero rate cap (no threads or
    zero per-thread rate) are allocated exactly zero.

    Raises
    ------
    PlanError
        If a flow references an unknown resource.
    """
    for f in flows:
        for res in f.resources:
            if res not in resources:
                raise PlanError(
                    f"flow {f.name!r} references unknown resource {res!r}"
                )

    rates: dict[int, float] = {id(f): 0.0 for f in flows}
    active = [f for f in flows if f.rate_cap > 0.0]
    # Remaining capacity per resource given currently frozen rates.
    used: dict[str, float] = {name: 0.0 for name in resources}

    while active:
        # Smallest uniform increment that freezes something.
        delta = math.inf
        for f in active:
            delta = min(delta, f.rate_cap - rates[id(f)])
        for name, res in resources.items():
            if math.isinf(res.capacity):
                continue
            weight = sum(
                f.resources.get(name, 0.0)
                for f in active
                if name in f.resources
            )
            if weight > 0.0:
                headroom = res.capacity - used[name]
                delta = min(delta, headroom / weight)
        if math.isinf(delta):
            # Only cap-free growth remains, which cannot happen because
            # every active flow has a finite cap.
            raise PlanError("unbounded allocation: flow without a cap")
        delta = max(delta, 0.0)

        for f in active:
            rates[id(f)] += delta
            for name, mult in f.resources.items():
                used[name] += delta * mult

        # Freeze flows at their cap.
        still_active = []
        saturated: set[str] = set()
        for name, res in resources.items():
            if not math.isinf(res.capacity):
                if used[name] >= res.capacity * (1.0 - _EPS) - _EPS:
                    saturated.add(name)
        for f in active:
            at_cap = rates[id(f)] >= f.rate_cap * (1.0 - _EPS)
            on_saturated = any(
                name in saturated and mult > 0.0
                for name, mult in f.resources.items()
            )
            if not (at_cap or on_saturated):
                still_active.append(f)
        if len(still_active) == len(active):
            # Numerical safety: force progress by freezing the most
            # constrained flow. Should be unreachable.
            raise PlanError("water-filling failed to make progress")
        active = still_active

    return rates


def aggregate_rate(
    threads: int, per_thread_rate: float, shared_capacity: float
) -> float:
    """The paper's Eq. 3 in closed form for a single pool on one resource.

    ``min(threads * per_thread_rate, shared_capacity)`` — the aggregate
    copy rate of ``threads`` copy threads against a device of capacity
    ``shared_capacity``.
    """
    if threads < 0:
        raise PlanError("negative thread count")
    return min(threads * per_thread_rate, shared_capacity)
