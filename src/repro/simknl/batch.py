"""Cross-cell tensor batching: one NumPy evaluation for a whole sweep.

The paper's sweeps (Table 1, Figures 6-8) evaluate thousands of cells
that differ only in sizes and rates over a structurally identical plan.
``Plan.compile`` exploits that structure *within* one plan; this module
exploits it *across* cells: N plans with the same phase structure and
live-flow signatures (only ``bytes_total`` varying) are stacked into
one ``(cells x live-flow-slots)`` bytes tensor and evaluated with a
handful of vectorized ops — one water-filling solve per shared flow
structure, broadcast per-cell phase times, cumsum traffic accumulation.

Bit-identity with per-cell :meth:`Engine.run` is preserved by the same
arguments PR 3/5 used (the per-cell loop remains the reference oracle):

* a memoized water-filling solve is positionally bit-identical to a
  re-solve for equal structural signatures;
* ``max``/``min`` folds over floats are exact, and ``np.cumsum``'s
  strict left-to-right association reproduces the reference ``+=``
  chains bit for bit;
* zero-padding is bitwise neutral — ``x + 0.0 == x`` for the finite
  non-negative totals the engine accumulates — which is what lets
  rectangular arrays cover cells/phases whose flows finish early.

Anything the tensor cannot express — fault injectors, phase hooks, an
active telemetry session, event recording, starved allocations, rounds
where some phase completes no flow — falls back to the reference path,
per segment for within-plan groups and per plan for cross-cell batches.

:func:`evaluate_plan_batch` is the sweep-level entry point used by
``experiments.runner.sweep_map``: drivers declare structural
batchability by attaching a :class:`PlanBatchSpec` to their cell
function, whose ``build`` lowers one cell to plans plus a ``finish``
post-processor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import PlanError
from repro.simknl.engine import _EPS, Engine, Plan, RunResult
from repro.simknl.flows import Flow, Resource
from repro.telemetry import runtime as _tm

__all__ = [
    "PlanBatch",
    "PlanBatchSpec",
    "LoweredSweep",
    "batched_dynamic",
    "evaluate_plan_batch",
    "lower_plans",
    "lower_template",
    "run_batch",
    "run_lowered",
]


def _resource_columns(
    flows: Sequence[Flow],
) -> list[tuple[str, list[int], np.ndarray]]:
    """Per-resource ``(name, flow columns, multipliers)`` triples, in
    the reference loop's first-touch order (columns ascending)."""
    seen: dict[str, list[int]] = {}
    for j, f in enumerate(flows):
        for name in f.resources:
            seen.setdefault(name, []).append(j)
    return [
        (
            name,
            cols,
            np.array([flows[j].resources[name] for j in cols], dtype=np.float64),
        )
        for name, cols in seen.items()
    ]


def batched_dynamic(
    flows: Sequence[Flow],
    bytes_matrix: np.ndarray,
    allocate: Callable[[list[Flow]], list[float]],
) -> tuple[np.ndarray, list[tuple[str, np.ndarray]]] | None:
    """Advance N independent dynamic event loops in lock-step rounds.

    Each row of ``bytes_matrix`` is one dynamic phase (or one cell's
    instance of a phase) over the live-flow template ``flows``. Round
    ``i`` performs every row's ``i``-th event-loop iteration at once:
    rows are grouped by their set of still-live flows, one (memoized)
    water-filling solve covers each group, and the per-row step time is
    the exact ``min`` fold ``rem / rate`` of the reference loop. Each
    round retires at least one flow per active row, so there are at
    most ``len(flows)`` rounds regardless of row count.

    Returns ``(times, chains)`` where ``times`` is the per-row elapsed
    seconds and ``chains`` holds, per resource, the ``(rows, rounds *
    touching-flows)`` traffic contributions in the reference loop's
    accumulation order (zero-filled where a flow was already done —
    bitwise neutral under ``+=``). Returns ``None`` — caller falls back
    to the reference loop — when any row would starve (zero aggregate
    rate) or complete no flow in a round, so the reference path raises
    the exact :class:`~repro.errors.SimulationError`.
    """
    n, k = bytes_matrix.shape
    if k == 0:
        return np.zeros(n, dtype=np.float64), []
    rem = bytes_matrix.astype(np.float64, copy=True)
    thresh = _EPS * np.maximum(1.0, rem)
    alive = np.ones((n, k), dtype=bool)
    elapsed = np.zeros(n, dtype=np.float64)
    res_cols = _resource_columns(flows)
    chains: dict[str, list[np.ndarray]] = {name: [] for name, _, _ in res_cols}

    for _ in range(k):
        active = alive.any(axis=1)
        if not active.any():
            break
        moved_round = np.zeros((n, k), dtype=np.float64)
        dt_round = np.zeros(n, dtype=np.float64)
        groups: dict[bytes, list[int]] = {}
        for i in np.nonzero(active)[0]:
            groups.setdefault(alive[i].tobytes(), []).append(int(i))
        for mask_key, rows in groups.items():
            idx = np.nonzero(np.frombuffer(mask_key, dtype=bool))[0]
            rates = np.asarray(
                allocate([flows[j] for j in idx]), dtype=np.float64
            )
            pos = rates > 0.0
            if not pos.any():
                return None  # zero aggregate rate: reference raises
            cells = np.ix_(rows, idx)
            sub_rem = rem[cells]
            dt = (sub_rem[:, pos] / rates[pos]).min(axis=1)
            moved = rates * dt[:, None]
            new_rem = np.maximum(0.0, sub_rem - moved)
            finished = new_rem <= thresh[cells]
            if not finished.any(axis=1).all():
                return None  # a row completed nothing: reference raises
            rem[cells] = new_rem
            alive[cells] = ~finished
            moved_round[cells] = moved
            dt_round[rows] = dt
        elapsed += dt_round
        for name, cols, mults in res_cols:
            chains[name].append(moved_round[:, cols] * mults)
    if alive.any():
        return None  # exceeded iteration bound: reference raises

    out = [
        (name, np.concatenate(chains[name], axis=1))
        for name, _, _ in res_cols
        if chains[name]
    ]
    return elapsed, out


# ---- cross-cell lowering ------------------------------------------------


@dataclass
class _LoweredPhase:
    """One template phase: its live flows, the ``[lo, hi)`` column slice
    they occupy in the bytes tensor, and the per-resource columns."""

    static: bool
    flows: list[Flow]
    lo: int
    hi: int
    resource_cols: list[tuple[str, list[int], np.ndarray]]


@dataclass
class LoweredSweep:
    """A sweep's shared shape: phase structure plus tensor layout.

    Pair with a ``(cells, width)`` bytes tensor — one row per cell, one
    column per live flow slot in plan order — and feed both to
    :func:`run_lowered`.
    """

    structure: tuple
    phases: list[_LoweredPhase]
    width: int


def lower_template(plan: Plan) -> LoweredSweep:
    """Build the shared :class:`LoweredSweep` shape from one plan."""
    phases: list[_LoweredPhase] = []
    lo = 0
    for ph in plan.phases:
        live = [f for f in ph.flows if f.bytes_total > 0]
        hi = lo + len(live)
        phases.append(
            _LoweredPhase(
                ph.static_rates, live, lo, hi, _resource_columns(live)
            )
        )
        lo = hi
    return LoweredSweep(structure=plan.structure(), phases=phases, width=lo)


def lower_plans(plans: Sequence[Plan]) -> tuple[LoweredSweep, np.ndarray]:
    """Stack N structurally identical plans into one bytes tensor.

    The first plan is the structural template; each plan contributes
    one tensor row of its live-flow byte demands in plan order. The
    tensor is the sweep's entire variable state — ``cells x width``
    float64, 8 bytes per live flow slot per cell.
    """
    lowered = lower_template(plans[0])
    tensor = np.empty((len(plans), lowered.width), dtype=np.float64)
    for c, plan in enumerate(plans):
        pos = 0
        row = tensor[c]
        for ph in plan.phases:
            for f in ph.flows:
                if f.bytes_total > 0:
                    row[pos] = f.bytes_total
                    pos += 1
    return lowered, tensor


def _engine_eligible(engine: Engine) -> bool:
    """Mirror of ``Engine.run``'s batched-path gate: anything needing
    per-phase callbacks or event recording must take the reference
    loop per cell."""
    return (
        engine.batch_phases
        and engine.injector is None
        and not engine._phase_hooks
        and not _tm.current().enabled
        and not engine.record_events
    )


def run_lowered(
    engine: Engine, lowered: LoweredSweep, tensor: np.ndarray
) -> list[RunResult] | None:
    """Evaluate a lowered sweep: one :class:`RunResult` per tensor row.

    This is the tensor evaluation proper — per phase one (memoized)
    water-filling solve, per-cell phase times as a broadcast row-max
    (static) or the segmented event batch (dynamic), elapsed clocks and
    per-resource traffic as carry-in cumsums. Returns ``None`` when any
    phase needs the reference path (starved rates, a no-completion
    round, or a non-positive tensor entry, which would change liveness);
    callers with the original plans fall back to per-cell ``run``.

    Raises :class:`~repro.errors.PlanError` if the engine itself is
    ineligible (injector, phase hooks, active telemetry, event
    recording) — with only the tensor there is nothing to fall back to,
    so the caller must check first (:func:`run_batch` does).
    """
    if not _engine_eligible(engine):
        raise PlanError(
            "run_lowered requires a batch-eligible engine (no injector, "
            "phase hooks, telemetry, or event recording)"
        )
    if tensor.ndim != 2 or tensor.shape[1] != lowered.width:
        raise PlanError(
            f"bytes tensor has shape {tensor.shape}, expected "
            f"(cells, {lowered.width})"
        )
    if not (tensor > 0.0).all():
        return None  # a zero-byte slot changes liveness: reference path
    cells = tensor.shape[0]
    times = np.zeros((cells, len(lowered.phases)), dtype=np.float64)
    chains: dict[str, list[np.ndarray]] = {
        name: [] for name in engine.resources
    }
    for pi, ph in enumerate(lowered.phases):
        if ph.hi == ph.lo:
            continue  # no live flows: zero-time phase, no traffic
        sub = tensor[:, ph.lo:ph.hi]
        if ph.static:
            rates = np.asarray(engine._allocate(ph.flows), dtype=np.float64)
            if np.any(rates <= 0.0):
                return None  # starved static flow: reference raises
            times[:, pi] = (sub / rates).max(axis=1)
            for name, cols, mults in ph.resource_cols:
                chains[name].append(sub[:, cols] * mults)
        else:
            out = batched_dynamic(ph.flows, sub, engine._allocate)
            if out is None:
                return None
            times[:, pi] = out[0]
            for name, chain in out[1]:
                chains[name].append(chain)

    ticks = np.zeros((cells, len(lowered.phases) + 1), dtype=np.float64)
    ticks[:, 1:] = times
    elapsed = np.cumsum(ticks, axis=1)[:, -1]
    totals: dict[str, np.ndarray] = {}
    for name, parts in chains.items():
        if not parts:
            continue
        chain = np.concatenate(
            [np.zeros((cells, 1), dtype=np.float64), *parts], axis=1
        )
        totals[name] = np.cumsum(chain, axis=1)[:, -1]

    results = []
    for c in range(cells):
        traffic = {
            name: float(totals[name][c]) if name in totals else 0.0
            for name in engine.resources
        }
        results.append(
            RunResult(
                elapsed=float(elapsed[c]),
                traffic=traffic,
                phase_times=times[c].tolist(),
                events=[],
                faults=[],
            )
        )
    return results


def run_batch(engine: Engine, plans: Sequence[Plan]) -> list[RunResult]:
    """Run N structurally identical plans as one tensor evaluation.

    Bit-identical to ``[engine.run(p) for p in plans]``. Falls back to
    exactly that sequential loop when the engine is ineligible (fault
    injector, phase hooks, active telemetry session, event recording,
    ``batch_phases=False``), when there is only one plan, or when the
    tensor evaluation declines (starved allocation, no-completion
    round) — in which case the reference path also raises the precise
    per-phase :class:`~repro.errors.SimulationError` the serial caller
    would have seen.

    Raises :class:`~repro.errors.PlanError` if the plans do not share
    one phase structure (use :meth:`Plan.structure` to pre-group).
    """
    plans = list(plans)
    if not plans:
        return []
    for p in plans:
        p.validate()
    if len(plans) == 1 or not _engine_eligible(engine):
        return [engine.run(p) for p in plans]
    structure = plans[0].structure()
    for p in plans[1:]:
        if p.structure() != structure:
            raise PlanError(
                f"run_batch: plan {p.name!r} does not share the batch's "
                "phase structure"
            )
    lowered, tensor = lower_plans(plans)
    results = run_lowered(engine, lowered, tensor)
    if results is None:
        return [engine.run(p) for p in plans]
    engine.batched_plans += len(plans)
    return results


# ---- sweep integration --------------------------------------------------


@dataclass
class PlanBatch:
    """One sweep cell lowered to engine work.

    Attributes
    ----------
    resources:
        The cell's node resources, in the node's order (one shared
        engine is created per distinct resource tuple, so structurally
        identical cells share memoized solves).
    plans:
        The plans whose runs the cell needs, in a fixed order.
    finish:
        Maps the plans' :class:`RunResult` list (same order) to the
        cell function's return value.
    """

    resources: Sequence[Resource]
    plans: Sequence[Plan]
    finish: Callable[[list[RunResult]], Any]


@dataclass(frozen=True)
class PlanBatchSpec:
    """Declares a cell function structurally batchable.

    Attach as a ``plan_batch`` attribute on the cell function.
    ``build(*cell)`` must replicate the cell function's configuration
    work — including raising the same validation errors — and return a
    :class:`PlanBatch`, or ``None`` to send that cell down the normal
    pool/serial path (the escape hatch for cells whose work a plan run
    cannot express).
    """

    build: Callable[..., PlanBatch | None]


def evaluate_plan_batch(
    spec: PlanBatchSpec, cells: Sequence[tuple]
) -> tuple[list[Any], list[int]]:
    """Evaluate sweep cells via cross-cell tensor batching.

    Builds every cell's :class:`PlanBatch`, groups all resulting plans
    by ``(resource tuple, plan structure)``, evaluates each group with
    :func:`run_batch` on a shared per-resource-tuple engine, and feeds
    each cell's results to its ``finish``. Returns ``(results,
    leftover_indices)`` where ``results`` is aligned with ``cells``
    (entries for leftover cells are ``None``) and ``leftover_indices``
    names the cells whose ``build`` declined — the caller dispatches
    those through the pool/serial path.
    """
    results: list[Any] = [None] * len(cells)
    leftovers: list[int] = []
    built: list[tuple[int, PlanBatch]] = []
    for i, cell in enumerate(cells):
        item = spec.build(*cell)
        if item is None:
            leftovers.append(i)
        else:
            built.append((i, item))

    engines: dict[tuple, Engine] = {}
    groups: dict[tuple, list[tuple[int, int, Plan]]] = {}
    cell_runs: list[list[RunResult | None]] = []
    for bi, (_, item) in enumerate(built):
        engine_key = tuple((r.name, r.capacity) for r in item.resources)
        if engine_key not in engines:
            engines[engine_key] = Engine(item.resources, record_events=False)
        cell_runs.append([None] * len(item.plans))
        for slot, plan in enumerate(item.plans):
            key = (engine_key, plan.structure())
            groups.setdefault(key, []).append((bi, slot, plan))

    for (engine_key, _), entries in groups.items():
        outs = run_batch(engines[engine_key], [p for _, _, p in entries])
        for (bi, slot, _), out in zip(entries, outs):
            cell_runs[bi][slot] = out

    for bi, (i, item) in enumerate(built):
        results[i] = item.finish(cell_runs[bi])
    return results, leftovers
