"""A third memory level: high-capacity non-volatile memory.

The paper's conclusion sketches this future: "Another level of memory
is also conceivable, e.g., high capacity storage based on non-volatile
memory such as 3D-XPoint. The larger memory capacity ... will
accommodate a much larger problem size, but now there may be double
levels of chunking to consider." This module adds that device; the
double-level chunking pipeline lives in :mod:`repro.core.multilevel`.

Defaults approximate first-generation Optane DC persistent memory:
an order of magnitude below DDR bandwidth, asymmetric read/write (we
use the conservative write-ish sustained figure), microsecond-class
latency, terabyte-class capacity.

Implements the conclusion's future-work sketch; contrast with Section
2.2's external-memory algorithms.
"""

from __future__ import annotations

from repro.simknl.devices import MemoryDevice
from repro.units import GB, GiB


def nvm_device(
    bandwidth: float = 10 * GB,
    capacity: float = 1024 * GiB,
    latency: float = 1e-6,
) -> MemoryDevice:
    """A 3D-XPoint-class non-volatile memory device."""
    return MemoryDevice(
        name="nvm",
        bandwidth=bandwidth,
        capacity=capacity,
        latency=latency,
        channels=6,
    )
