"""Simulated Knights Landing node.

This package is the hardware substrate of the reproduction: a
discrete-event, bandwidth-contention performance simulator of a KNL
(Xeon Phi 7250) compute node with its two-level memory system
(DDR4 + MCDRAM), the four MCDRAM usage modes studied by the paper
(flat, hardware cache, hybrid, implicit cache), a line-granularity
direct-mapped model of the MCDRAM cache, and the tile/mesh topology.

The central abstraction is a *flow*: a thread pool streaming bytes
through one or more bandwidth resources. Phase execution solves a
max-min fair (water-filling) bandwidth allocation, which generalizes
the paper's Equations 3 and 5.
"""

from repro.simknl.flows import Flow, Resource, allocate_rates
from repro.simknl.engine import Engine, Phase, Plan, RunResult
from repro.simknl.devices import MemoryDevice, ddr4_device, mcdram_device
from repro.simknl.cache import DirectMappedCache, CacheStats
from repro.simknl.cache_analytic import StreamingCacheModel, CacheTraffic
from repro.simknl.topology import ClusterMode, KNLTopology, Tile
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode

__all__ = [
    "Flow",
    "Resource",
    "allocate_rates",
    "Engine",
    "Phase",
    "Plan",
    "RunResult",
    "MemoryDevice",
    "ddr4_device",
    "mcdram_device",
    "DirectMappedCache",
    "CacheStats",
    "StreamingCacheModel",
    "CacheTraffic",
    "KNLTopology",
    "ClusterMode",
    "Tile",
    "KNLNode",
    "KNLNodeConfig",
    "MemoryMode",
]
