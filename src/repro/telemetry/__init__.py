"""Unified telemetry: metrics registry + structured event log.

The paper's argument rests on *seeing* where bytes and seconds go —
per-phase bandwidth utilization (Fig. 2-5), DDR-traffic reduction
(Section 6), and the copy-thread model of §3.2 all depend on
fine-grained counters. This package gives every layer of the stack a
first-class way to report them:

* :mod:`repro.telemetry.names` — the authoritative catalog of every
  metric and event the stack may emit. The registry rejects names not
  in the catalog, so ``docs/OBSERVABILITY.md`` can enumerate the full
  telemetry surface and a test can keep the two in sync.
* :mod:`repro.telemetry.registry` — counters, gauges, and histograms
  with labels; snapshots are plain dicts.
* :mod:`repro.telemetry.events` — typed event records with monotonic
  sim-time timestamps (the engine advances the clock).
* :mod:`repro.telemetry.runtime` — context-scoped sessions. The
  default telemetry object is *disabled*: instrumented code checks one
  attribute and skips all work, so an un-instrumented run costs
  essentially nothing and no global mutable state leaks between tests.
* :mod:`repro.telemetry.export` — JSON snapshot, Prometheus-style
  text, CSV, and Perfetto/Chrome-trace exporters.

Typical use::

    from repro import telemetry

    with telemetry.telemetry_session() as tel:
        node.run(plan)
        print(telemetry.metrics_to_json(tel.metrics))
        print(telemetry.events_to_perfetto(tel.events))
"""

from repro.telemetry.events import Event, EventLog
from repro.telemetry.export import (
    events_to_json,
    events_to_perfetto,
    metrics_to_csv,
    metrics_to_json,
    metrics_to_prometheus,
    write_events,
    write_metrics,
)
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
)
from repro.telemetry.runtime import Telemetry, current, telemetry_session

__all__ = [
    "Counter",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "Telemetry",
    "current",
    "events_to_json",
    "events_to_perfetto",
    "metrics_to_csv",
    "metrics_to_json",
    "metrics_to_prometheus",
    "telemetry_session",
    "write_events",
    "write_metrics",
]
