"""Context-scoped telemetry sessions.

A :class:`Telemetry` object bundles a metric registry and an event
log. The *active* telemetry is held in a :class:`contextvars.ContextVar`
whose default is a shared, permanently **disabled** instance:
instrumented code does::

    tel = current()
    if tel.enabled:
        tel.metrics.counter(...).inc()

so a run without a session pays one context-variable read per
instrumentation site and nothing else. Sessions nest and are
context-local — parallel tests each see their own registry, and no
global mutable state leaks between them.

Telemetry is reproduction infrastructure spanning all paper sections;
instrumented layers range from the Section 3 engine to the Table 1 sort
drivers.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from typing import Any, Iterator

from repro.telemetry.events import EventLog
from repro.telemetry.registry import MetricRegistry


class Telemetry:
    """A metric registry + event log pair.

    Attributes
    ----------
    enabled:
        False only on the shared default instance; instrumented code
        checks this one attribute on the hot path.
    metrics, events:
        The session's registry and event log.
    """

    __slots__ = ("enabled", "metrics", "events")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.metrics = MetricRegistry()
        self.events = EventLog()

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready snapshot of all touched metrics."""
        return {
            "sim_time": self.events.now,
            "metrics": self.metrics.snapshot(),
        }


#: The shared disabled instance used outside any session. Its registry
#: and event log exist but instrumented code never writes to them.
_DISABLED = Telemetry(enabled=False)

_ACTIVE: ContextVar[Telemetry] = ContextVar(
    "repro_telemetry", default=_DISABLED
)


def current() -> Telemetry:
    """The active telemetry (the disabled default outside a session)."""
    return _ACTIVE.get()


@contextlib.contextmanager
def telemetry_session(
    telemetry: Telemetry | None = None,
) -> Iterator[Telemetry]:
    """Activate a fresh (or supplied) telemetry for the enclosed block.

    The previous telemetry is restored on exit, even on exceptions, so
    sessions may nest and tests cannot leak registries into each
    other.
    """
    tel = telemetry if telemetry is not None else Telemetry()
    token = _ACTIVE.set(tel)
    try:
        yield tel
    finally:
        _ACTIVE.reset(token)
