"""Structured event log with monotonic sim-time timestamps.

Events are typed records: a name from the catalog
(:data:`repro.telemetry.names.EVENTS`), a simulated-time timestamp, a
global sequence number, and free-form attributes. The log keeps a
monotonic watermark (:attr:`EventLog.now`): the engine advances it as
simulated time passes, and layers without their own clock (the heap,
the spill writer) stamp events at the current watermark. Successive
engine runs therefore share one global, strictly ordered timeline —
what the Perfetto exporter turns into track annotations.

Telemetry is reproduction infrastructure spanning all paper sections;
event timestamps share the simulated clock of the Section 3 timed
plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import ConfigError
from repro.telemetry.names import EVENTS


@dataclass(frozen=True)
class Event:
    """One structured event record."""

    seq: int
    time: float
    name: str
    attrs: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready representation (attrs flattened)."""
        out: dict[str, Any] = {
            "seq": self.seq,
            "time": self.time,
            "name": self.name,
        }
        out.update(self.attrs)
        return out


class EventLog:
    """An append-only, monotonically timestamped event sequence."""

    def __init__(self) -> None:
        self.records: list[Event] = []
        #: Monotonic sim-time watermark; never decreases.
        self.now = 0.0
        self._seq = 0

    def advance(self, time: float) -> float:
        """Move the watermark forward to ``time`` (no-op if behind).

        Returns the watermark after the update, so callers can use it
        as "current sim time".
        """
        if time > self.now:
            self.now = time
        return self.now

    def emit(
        self, name: str, time: float | None = None, **attrs: Any
    ) -> Event:
        """Append an event; returns the stored record.

        ``time`` defaults to the watermark; an explicit time also
        advances the watermark, keeping the log monotonic even when
        producers report slightly stale clocks.
        """
        if name not in EVENTS:
            raise ConfigError(
                f"event {name!r} is not in the telemetry catalog "
                "(repro.telemetry.names)"
            )
        t = self.advance(time) if time is not None else self.now
        self._seq += 1
        event = Event(seq=self._seq, time=t, name=name, attrs=attrs)
        self.records.append(event)
        return event

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.records)

    def names(self) -> set[str]:
        """Distinct event names recorded so far."""
        return {e.name for e in self.records}

    def of(self, name: str) -> list[Event]:
        """All records of one event type, in order."""
        return [e for e in self.records if e.name == name]
