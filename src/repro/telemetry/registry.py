"""Metric primitives: counters, gauges, histograms with labels.

All metrics live in a :class:`MetricRegistry`, which only accepts
names declared in :mod:`repro.telemetry.names` — the guarantee behind
the catalog test. Labels are validated against the spec; a metric with
labels keeps one time series per label-value combination.

Histograms use sparse power-of-two buckets (one bucket per
``floor(log2(value))``) so a single implementation serves quantities
from microseconds to hundreds of gigabytes with no per-metric bucket
configuration.

Telemetry is reproduction infrastructure spanning all paper sections;
the histogram buckets are sized for the second-scale phase times of
Tables 1 and 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import ConfigError
from repro.telemetry.names import METRICS, MetricSpec

#: A label set frozen into a dict key, in spec order.
LabelKey = tuple[str, ...]


def _label_key(spec: MetricSpec, labels: dict[str, Any]) -> LabelKey:
    if set(labels) != set(spec.labels):
        raise ConfigError(
            f"metric {spec.name!r} takes labels {spec.labels}, got "
            f"{tuple(sorted(labels))}"
        )
    return tuple(str(labels[k]) for k in spec.labels)


class Counter:
    """A monotonically increasing sum, per label set."""

    def __init__(self, spec: MetricSpec) -> None:
        self.spec = spec
        self._values: dict[LabelKey, float] = {}

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        """Add ``value`` (>= 0) to the series selected by ``labels``."""
        if value < 0:
            raise ConfigError(
                f"counter {self.spec.name!r} cannot decrease"
            )
        key = _label_key(self.spec, labels)
        self._values[key] = self._values.get(key, 0.0) + value

    def value(self, **labels: Any) -> float:
        """Current value of one series (0.0 if never incremented)."""
        return self._values.get(_label_key(self.spec, labels), 0.0)

    def series(self) -> Iterator[tuple[dict[str, str], float]]:
        """Yield ``(labels, value)`` for every series."""
        for key, v in sorted(self._values.items()):
            yield dict(zip(self.spec.labels, key)), v


class Gauge:
    """A value that can move both ways, per label set."""

    def __init__(self, spec: MetricSpec) -> None:
        self.spec = spec
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        """Set the series to ``value``."""
        self._values[_label_key(self.spec, labels)] = float(value)

    def set_max(self, value: float, **labels: Any) -> None:
        """High-water update: keep the larger of current and ``value``."""
        key = _label_key(self.spec, labels)
        cur = self._values.get(key)
        if cur is None or value > cur:
            self._values[key] = float(value)

    def add(self, value: float, **labels: Any) -> None:
        """Add ``value`` (either sign) to the series."""
        key = _label_key(self.spec, labels)
        self._values[key] = self._values.get(key, 0.0) + float(value)

    def value(self, **labels: Any) -> float:
        """Current value of one series (0.0 if never set)."""
        return self._values.get(_label_key(self.spec, labels), 0.0)

    def series(self) -> Iterator[tuple[dict[str, str], float]]:
        """Yield ``(labels, value)`` for every series."""
        for key, v in sorted(self._values.items()):
            yield dict(zip(self.spec.labels, key)), v


@dataclass
class HistogramData:
    """Aggregated observations of one histogram series."""

    count: int = 0
    sum: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def __post_init__(self) -> None:
        #: Sparse log2 buckets: exponent -> observation count. A value
        #: v > 0 lands in bucket floor(log2(v)), i.e. the half-open
        #: range [2^e, 2^(e+1)); non-positive values land in bucket
        #: None (a single underflow bucket).
        self.buckets: dict[int | None, int] = {}

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        exp = int(math.floor(math.log2(value))) if value > 0 else None
        self.buckets[exp] = self.buckets.get(exp, 0) + 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def bucket_bounds(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, Prometheus-style.

        The upper bound of exponent bucket ``e`` is ``2**(e + 1)``;
        the underflow bucket maps to bound 0.
        """
        cumulative = 0
        out: list[tuple[float, int]] = []
        ordered = sorted(
            self.buckets.items(),
            key=lambda kv: -math.inf if kv[0] is None else kv[0],
        )
        for exp, n in ordered:
            cumulative += n
            bound = 0.0 if exp is None else float(2 ** (exp + 1))
            out.append((bound, cumulative))
        return out


class Histogram:
    """Log2-bucketed distribution of observations, per label set."""

    def __init__(self, spec: MetricSpec) -> None:
        self.spec = spec
        self._values: dict[LabelKey, HistogramData] = {}

    def observe(self, value: float, **labels: Any) -> None:
        """Record ``value`` into the series selected by ``labels``."""
        key = _label_key(self.spec, labels)
        data = self._values.get(key)
        if data is None:
            data = self._values[key] = HistogramData()
        data.observe(float(value))

    def data(self, **labels: Any) -> HistogramData:
        """The aggregate for one series (empty if never observed)."""
        return self._values.get(
            _label_key(self.spec, labels), HistogramData()
        )

    def series(self) -> Iterator[tuple[dict[str, str], HistogramData]]:
        """Yield ``(labels, data)`` for every series."""
        for key, v in sorted(self._values.items()):
            yield dict(zip(self.spec.labels, key)), v


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricRegistry:
    """A namespace of metrics validated against the catalog.

    Metrics are created lazily on first access and cached, so
    instrumented code can call :meth:`counter` etc. unconditionally.
    Unknown names and kind mismatches raise
    :class:`~repro.errors.ConfigError` — the catalog is the single
    source of truth for what may be emitted.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: str):
        metric = self._metrics.get(name)
        if metric is not None:
            return metric
        spec = METRICS.get(name)
        if spec is None:
            raise ConfigError(
                f"metric {name!r} is not in the telemetry catalog "
                "(repro.telemetry.names)"
            )
        if spec.kind != kind:
            raise ConfigError(
                f"metric {name!r} is a {spec.kind}, not a {kind}"
            )
        metric = _KINDS[kind](spec)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        return self._get(name, "counter")

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        return self._get(name, "gauge")

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        return self._get(name, "histogram")

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._metrics))

    def snapshot(self) -> dict[str, Any]:
        """All touched metrics as a plain JSON-ready dict."""
        out: dict[str, Any] = {}
        for name in self:
            metric = self._metrics[name]
            spec = metric.spec
            series: list[dict[str, Any]] = []
            if isinstance(metric, Histogram):
                for labels, data in metric.series():
                    series.append(
                        {
                            "labels": labels,
                            "count": data.count,
                            "sum": data.sum,
                            "min": data.min if data.count else None,
                            "max": data.max if data.count else None,
                            "mean": data.mean,
                            "buckets": [
                                [bound, cum]
                                for bound, cum in data.bucket_bounds()
                            ],
                        }
                    )
            else:
                for labels, value in metric.series():
                    series.append({"labels": labels, "value": value})
            out[name] = {
                "kind": spec.kind,
                "unit": spec.unit,
                "help": spec.help,
                "series": series,
            }
        return out
