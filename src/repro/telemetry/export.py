"""Telemetry exporters: JSON, Prometheus text, CSV, and Perfetto.

Formats (all documented with examples in ``docs/OBSERVABILITY.md``):

* :func:`metrics_to_json` — the canonical snapshot: every touched
  metric with kind/unit/help and all label series;
* :func:`metrics_to_prometheus` — Prometheus text exposition (dots
  become underscores; histograms render cumulative ``le`` buckets);
* :func:`metrics_to_csv` — one row per series, for spreadsheets;
* :func:`events_to_json` — the event log as a JSON array;
* :func:`events_to_perfetto` — the event log as Chrome-trace /
  Perfetto instant events (one track per event category), suitable
  for merging with :func:`repro.simknl.trace.to_chrome_trace` output.

:func:`write_metrics` / :func:`write_events` pick the format from the
file extension, which is what the CLI's global ``--metrics`` /
``--events`` flags use.

Telemetry is reproduction infrastructure spanning all paper sections;
the worked export example in docs/OBSERVABILITY.md traces the Fig. 7
chunk-size sweep.
"""

from __future__ import annotations

import json

from repro.errors import ConfigError
from repro.telemetry.events import EventLog
from repro.telemetry.registry import Histogram, MetricRegistry
from repro.telemetry.runtime import Telemetry


def _registry(source: Telemetry | MetricRegistry) -> MetricRegistry:
    return source.metrics if isinstance(source, Telemetry) else source


def metrics_to_json(
    source: Telemetry | MetricRegistry, indent: int = 1
) -> str:
    """Serialize all touched metrics as a JSON snapshot."""
    if isinstance(source, Telemetry):
        payload = source.snapshot()
    else:
        payload = {"metrics": source.snapshot()}
    return json.dumps(payload, indent=indent)


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_labels(labels: dict[str, str], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in labels.items()]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def metrics_to_prometheus(source: Telemetry | MetricRegistry) -> str:
    """Render touched metrics in Prometheus text exposition format."""
    registry = _registry(source)
    lines: list[str] = []
    for name in registry:
        metric = registry._metrics[name]
        spec = metric.spec
        pname = _prom_name(name)
        lines.append(f"# HELP {pname} {spec.help}")
        ptype = "histogram" if spec.kind == "histogram" else spec.kind
        lines.append(f"# TYPE {pname} {ptype}")
        if isinstance(metric, Histogram):
            for labels, data in metric.series():
                for bound, cum in data.bucket_bounds():
                    le = 'le="%g"' % bound
                    lines.append(
                        f"{pname}_bucket{_prom_labels(labels, le)} {cum}"
                    )
                inf = 'le="+Inf"'
                lines.append(
                    f"{pname}_bucket{_prom_labels(labels, inf)} "
                    f"{data.count}"
                )
                lines.append(
                    f"{pname}_sum{_prom_labels(labels)} {data.sum:g}"
                )
                lines.append(
                    f"{pname}_count{_prom_labels(labels)} {data.count}"
                )
        else:
            for labels, value in metric.series():
                lines.append(f"{pname}{_prom_labels(labels)} {value:g}")
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_to_csv(source: Telemetry | MetricRegistry) -> str:
    """One CSV row per metric series.

    Columns: ``metric,kind,unit,labels,value,count,sum,min,max`` —
    counters/gauges fill ``value``; histograms fill the aggregate
    columns. Labels are ``k=v`` pairs joined with ``;``.
    """
    registry = _registry(source)
    rows = ["metric,kind,unit,labels,value,count,sum,min,max"]
    for name in registry:
        metric = registry._metrics[name]
        spec = metric.spec
        if isinstance(metric, Histogram):
            for labels, data in metric.series():
                lab = ";".join(f"{k}={v}" for k, v in labels.items())
                rows.append(
                    f"{name},{spec.kind},{spec.unit},{lab},,"
                    f"{data.count},{data.sum:g},{data.min:g},{data.max:g}"
                )
        else:
            for labels, value in metric.series():
                lab = ";".join(f"{k}={v}" for k, v in labels.items())
                rows.append(
                    f"{name},{spec.kind},{spec.unit},{lab},{value:g},,,,"
                )
    return "\n".join(rows) + "\n"


def events_to_json(log: EventLog, indent: int = 1) -> str:
    """Serialize the event log as a JSON array of flat records."""
    return json.dumps([e.as_dict() for e in log], indent=indent)


def events_to_perfetto(log: EventLog) -> str:
    """Serialize the event log as Chrome-trace / Perfetto JSON.

    Each event becomes an instant event (``"ph": "i"``) at its
    sim-time timestamp (microseconds), on a track named after the
    event's category (the part before the first dot) — so engine
    phases, allocator fallbacks, and fault injections appear as
    separate annotation tracks alongside the flow tracks that
    :func:`repro.simknl.trace.to_chrome_trace` emits.
    """
    trace_events = []
    for e in log:
        trace_events.append(
            {
                "name": e.name,
                "cat": "telemetry",
                "ph": "i",
                "s": "g",  # global-scope instant
                "ts": e.time * 1e6,
                "pid": 0,
                "tid": e.name.split(".", 1)[0],
                "args": {"seq": e.seq, **e.attrs},
            }
        )
    return json.dumps({"traceEvents": trace_events}, indent=1)


def write_metrics(
    path: str, source: Telemetry | MetricRegistry
) -> None:
    """Write a metrics snapshot, format chosen by extension.

    ``.prom`` / ``.txt`` → Prometheus text; ``.csv`` → CSV;
    anything else → JSON.
    """
    lower = path.lower()
    if lower.endswith((".prom", ".txt")):
        text = metrics_to_prometheus(source)
    elif lower.endswith(".csv"):
        text = metrics_to_csv(source)
    else:
        text = metrics_to_json(source)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)


def write_events(path: str, source: Telemetry | EventLog) -> None:
    """Write the event log, format chosen by extension.

    ``.perfetto.json`` / ``.pftrace`` / ``.trace.json`` → Chrome-trace
    JSON; anything else → the plain JSON array.
    """
    log = source.events if isinstance(source, Telemetry) else source
    if not isinstance(log, EventLog):
        raise ConfigError("write_events needs a Telemetry or EventLog")
    lower = path.lower()
    if lower.endswith((".perfetto.json", ".pftrace", ".trace.json")):
        text = events_to_perfetto(log)
    else:
        text = events_to_json(log)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
