"""The authoritative catalog of metric and event names.

Every metric or event the stack emits is declared here, once, with its
kind, unit, labels, and a one-line description. The registry and event
log validate against this catalog at emission time, which gives two
guarantees the observability guide relies on:

* nothing in ``src/repro/`` can emit a name that is not in the
  catalog (a typo raises :class:`~repro.errors.ConfigError`);
* ``docs/OBSERVABILITY.md`` can enumerate the complete telemetry
  surface, and ``tests/telemetry/test_catalog_doc.py`` diffs the two.

Naming conventions (see docs/OBSERVABILITY.md for the rationale):

* dotted ``<subsystem>.<noun>[_<unit>][_total]`` names;
* counters end in ``_total``; monotonically increasing only;
* gauges carry a unit suffix (``_bytes``, ``_threads``) and may move
  in both directions; ``set_max`` implements high-water marks;
* histograms are named for the observed quantity, with the unit in
  :attr:`MetricSpec.unit`;
* label keys are singular nouns (``device``, ``resource``, ``role``,
  ``class``, ``kind``) with small, closed value sets.

Telemetry is reproduction infrastructure spanning all paper sections;
names group by layer, from the Section 3 engine down to the memkind
heap of the paper's flat mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of one metric in the catalog."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    unit: str
    help: str
    labels: tuple[str, ...] = ()


@dataclass(frozen=True)
class EventSpec:
    """Declaration of one structured event type in the catalog."""

    name: str
    help: str
    fields: tuple[str, ...] = field(default=())


# --- engine (simknl.engine) ------------------------------------------------

ENGINE_RUNS_TOTAL = "engine.runs_total"
ENGINE_PHASES_TOTAL = "engine.phases_total"
ENGINE_PHASE_SECONDS = "engine.phase_seconds"
ENGINE_FLOW_COMPLETIONS_TOTAL = "engine.flow_completions_total"
ENGINE_STALL_SECONDS_TOTAL = "engine.stall_seconds_total"
ENGINE_TRAFFIC_BYTES_TOTAL = "engine.traffic_bytes_total"

# --- devices / hardware cache (simknl.devices, simknl.cache) ---------------

DEVICE_RESERVED_BYTES = "device.reserved_bytes"
DEVICE_CAPACITY_LOST_BYTES_TOTAL = "device.capacity_lost_bytes_total"
CACHE_HITS_TOTAL = "cache.hits_total"
CACHE_MISSES_TOTAL = "cache.misses_total"
CACHE_EVICTIONS_TOTAL = "cache.evictions_total"
CACHE_WRITEBACKS_TOTAL = "cache.writebacks_total"
CACHE_FLUSHES_TOTAL = "cache.flushes_total"

# --- memkind heap (memkind.allocator) --------------------------------------

ALLOC_REQUESTS_TOTAL = "alloc.requests_total"
ALLOC_BYTES_TOTAL = "alloc.bytes_total"
ALLOC_FREES_TOTAL = "alloc.frees_total"
ALLOC_FAILURES_TOTAL = "alloc.failures_total"
ALLOC_FALLBACKS_TOTAL = "alloc.fallbacks_total"
ALLOC_HIGH_WATER_BYTES = "alloc.high_water_bytes"

# --- thread pools (threads.pool) -------------------------------------------

POOL_THREADS = "pool.threads"
POOL_RESPLITS_TOTAL = "pool.resplits_total"
POOL_THREADS_LOST_TOTAL = "pool.threads_lost_total"

# --- sorting algorithms (algorithms.external_sort, algorithms.mlm_sort) ----

SORT_SPILL_BYTES_TOTAL = "sort.spill_bytes_total"
SORT_SPILL_FILES_TOTAL = "sort.spill_files_total"
SORT_IO_RETRIES_TOTAL = "sort.io_retries_total"
SORT_MERGE_FAN_IN = "sort.merge_fan_in"
SORT_MEGACHUNKS_TOTAL = "sort.megachunks_total"

# --- sweep runner pool (experiments.pool) ----------------------------------

SWEEP_DISPATCH_SECONDS_TOTAL = "sweep.dispatch_seconds_total"
SWEEP_IPC_WAIT_SECONDS_TOTAL = "sweep.ipc_wait_seconds_total"
SWEEP_CELLS_TOTAL = "sweep.cells_total"
SWEEP_CHUNKS_TOTAL = "sweep.chunks_total"
SWEEP_CHUNK_CELLS = "sweep.chunk_cells"
SWEEP_RESULTS_TOTAL = "sweep.results_total"
SWEEP_RESPAWNS_TOTAL = "sweep.respawns_total"
SWEEP_WORKERS = "sweep.workers"
SWEEP_DEADLINE_TOTAL = "sweep.deadline_total"
SWEEP_SPECULATIVE_TOTAL = "sweep.speculative_total"
SWEEP_RING_CORRUPT_TOTAL = "sweep.ring_corrupt_total"
SWEEP_BACKOFF_SECONDS_TOTAL = "sweep.backoff_seconds_total"
SWEEP_DEGRADED = "sweep.degraded"
SWEEP_STEALS_TOTAL = "sweep.steals_total"
SWEEP_WORKERS_SCALED_TOTAL = "sweep.workers_scaled_total"
SWEEP_EWMA_CELL_SECONDS = "sweep.ewma_cell_seconds"
SWEEP_MEMO_EVICTED_TOTAL = "sweep.memo_evicted_total"

# --- experiment result store (experiments.store) ---------------------------

STORE_HITS_TOTAL = "store.hits_total"
STORE_MISSES_TOTAL = "store.misses_total"
STORE_WRITES_TOTAL = "store.writes_total"
STORE_EVICTIONS_TOTAL = "store.evictions_total"
STORE_CORRUPT_TOTAL = "store.corrupt_total"
STORE_BYTES = "store.bytes"

# --- sweep service (experiments.service) -----------------------------------

SERVICE_QUEUE_DEPTH = "service.queue_depth"
SERVICE_ADMITTED_TOTAL = "service.admitted_total"
SERVICE_REJECTED_TOTAL = "service.rejected_total"
SERVICE_COMPLETED_TOTAL = "service.completed_total"
SERVICE_JOB_SECONDS = "service.job_seconds"

# --- faults and resilience (repro.faults, core.resilient) ------------------

FAULTS_INJECTED_TOTAL = "faults.injected_total"
RESILIENCE_CHUNKS_TOTAL = "resilience.chunks_total"
RESILIENCE_CHUNK_RETRIES_TOTAL = "resilience.chunk_retries_total"
RESILIENCE_STRAGGLERS_TOTAL = "resilience.stragglers_total"
RESILIENCE_MODE_DEGRADATIONS_TOTAL = "resilience.mode_degradations_total"

_METRIC_SPECS = [
    MetricSpec(
        ENGINE_RUNS_TOTAL, "counter", "runs",
        "Plans executed to completion by the engine.",
    ),
    MetricSpec(
        ENGINE_PHASES_TOTAL, "counter", "phases",
        "Barrier-delimited phases executed.",
    ),
    MetricSpec(
        ENGINE_PHASE_SECONDS, "histogram", "seconds",
        "Distribution of per-phase simulated elapsed time "
        "(stalls included).",
    ),
    MetricSpec(
        ENGINE_FLOW_COMPLETIONS_TOTAL, "counter", "flows",
        "Flows drained to completion.",
    ),
    MetricSpec(
        ENGINE_STALL_SECONDS_TOTAL, "counter", "seconds",
        "Simulated seconds lost to injected flow stalls and phase "
        "hooks.",
    ),
    MetricSpec(
        ENGINE_TRAFFIC_BYTES_TOTAL, "counter", "bytes",
        "Physical bytes moved per bandwidth resource (the per-device "
        "byte counters behind the Fig. 2-5 utilization views).",
        labels=("resource",),
    ),
    MetricSpec(
        DEVICE_RESERVED_BYTES, "gauge", "bytes",
        "Capacity currently reserved on a memory device.",
        labels=("device",),
    ),
    MetricSpec(
        DEVICE_CAPACITY_LOST_BYTES_TOTAL, "counter", "bytes",
        "Capacity surrendered to injected capacity-loss faults.",
        labels=("device",),
    ),
    MetricSpec(
        CACHE_HITS_TOTAL, "counter", "accesses",
        "Line accesses served by the MCDRAM hardware cache.",
    ),
    MetricSpec(
        CACHE_MISSES_TOTAL, "counter", "accesses",
        "Cache misses by class (cold / conflict / capacity).",
        labels=("class",),
    ),
    MetricSpec(
        CACHE_EVICTIONS_TOTAL, "counter", "lines",
        "Lines displaced by a miss installing a different line.",
    ),
    MetricSpec(
        CACHE_WRITEBACKS_TOTAL, "counter", "lines",
        "Dirty lines written back to DDR (on eviction or flush).",
    ),
    MetricSpec(
        CACHE_FLUSHES_TOTAL, "counter", "calls",
        "Explicit whole-cache flushes.",
    ),
    MetricSpec(
        ALLOC_REQUESTS_TOTAL, "counter", "calls",
        "Heap allocations that returned blocks on a device.",
        labels=("device",),
    ),
    MetricSpec(
        ALLOC_BYTES_TOTAL, "counter", "bytes",
        "Bytes allocated per device.",
        labels=("device",),
    ),
    MetricSpec(
        ALLOC_FREES_TOTAL, "counter", "calls",
        "Blocks returned to a device's free list.",
        labels=("device",),
    ),
    MetricSpec(
        ALLOC_FAILURES_TOTAL, "counter", "events",
        "Allocations a device region could not satisfy (before any "
        "fallback).",
        labels=("device",),
    ),
    MetricSpec(
        ALLOC_FALLBACKS_TOTAL, "counter", "events",
        "Allocations degraded to the fallback device (the "
        "HBW_PREFERRED discipline).",
    ),
    MetricSpec(
        ALLOC_HIGH_WATER_BYTES, "gauge", "bytes",
        "High-water mark of allocated bytes per device.",
        labels=("device",),
    ),
    MetricSpec(
        POOL_THREADS, "gauge", "threads",
        "Hardware threads assigned per role pool (compute / copy-in / "
        "copy-out) — the §3.2 p_comp/p_in/p_out split.",
        labels=("role",),
    ),
    MetricSpec(
        POOL_RESPLITS_TOTAL, "counter", "events",
        "Pool re-partitions after worker-loss faults.",
    ),
    MetricSpec(
        POOL_THREADS_LOST_TOTAL, "counter", "threads",
        "Hardware threads dropped by worker-loss faults.",
    ),
    MetricSpec(
        SORT_SPILL_BYTES_TOTAL, "counter", "bytes",
        "Bytes spilled to run files by the external sort.",
    ),
    MetricSpec(
        SORT_SPILL_FILES_TOTAL, "counter", "files",
        "Run files written by the external sort.",
    ),
    MetricSpec(
        SORT_IO_RETRIES_TOTAL, "counter", "retries",
        "Spill-file operations retried after transient I/O faults.",
    ),
    MetricSpec(
        SORT_MERGE_FAN_IN, "histogram", "runs",
        "Distribution of multiway-merge fan-in (runs merged at once).",
    ),
    MetricSpec(
        SORT_MEGACHUNKS_TOTAL, "counter", "chunks",
        "Megachunks processed by MLM-sort variants.",
    ),
    MetricSpec(
        SWEEP_DISPATCH_SECONDS_TOTAL, "counter", "seconds",
        "Wall-clock seconds spent inside persistent-pool sweep "
        "dispatch (chunking, IPC, reassembly).",
    ),
    MetricSpec(
        SWEEP_IPC_WAIT_SECONDS_TOTAL, "counter", "seconds",
        "Wall-clock seconds the sweep parent spent blocked waiting "
        "for worker replies.",
    ),
    MetricSpec(
        SWEEP_CELLS_TOTAL, "counter", "cells",
        "Sweep cells dispatched to the persistent worker pool.",
    ),
    MetricSpec(
        SWEEP_CHUNKS_TOTAL, "counter", "chunks",
        "Cell batches dispatched to the persistent worker pool.",
    ),
    MetricSpec(
        SWEEP_CHUNK_CELLS, "histogram", "cells",
        "Distribution of cells per dispatched chunk.",
    ),
    MetricSpec(
        SWEEP_RESULTS_TOTAL, "counter", "chunks",
        "Chunk results returned, by transport (shared-memory ring "
        "vs pickle fallback).",
        labels=("transport",),
    ),
    MetricSpec(
        SWEEP_RESPAWNS_TOTAL, "counter", "events",
        "Sweep workers respawned after dying mid-run (their chunks "
        "are resubmitted).",
    ),
    MetricSpec(
        SWEEP_WORKERS, "gauge", "processes",
        "Live worker processes in the persistent sweep pool.",
    ),
    MetricSpec(
        SWEEP_DEADLINE_TOTAL, "counter", "events",
        "Chunk dispatches that blew their per-chunk deadline (derived "
        "from the pool's EWMA per-cell time estimate).",
    ),
    MetricSpec(
        SWEEP_SPECULATIVE_TOTAL, "counter", "chunks",
        "Deadline-blown chunks speculatively resubmitted to another "
        "worker (first result wins; duplicates are discarded).",
    ),
    MetricSpec(
        SWEEP_RING_CORRUPT_TOTAL, "counter", "payloads",
        "Shared-memory ring payloads rejected by sequence/checksum "
        "framing and refetched over the pickle path.",
    ),
    MetricSpec(
        SWEEP_BACKOFF_SECONDS_TOTAL, "counter", "seconds",
        "Seconds of exponential backoff scheduled between respawns of "
        "the same worker slot.",
    ),
    MetricSpec(
        SWEEP_DEGRADED, "gauge", "calls",
        "Whether the most recent pool map call fell back to in-process "
        "serial execution after its circuit breaker opened (0/1).",
    ),
    MetricSpec(
        SWEEP_STEALS_TOTAL, "counter", "chunks",
        "Prefetched chunks reassigned from a busy worker's backlog to "
        "an idle worker (parent-mediated work stealing).",
    ),
    MetricSpec(
        SWEEP_WORKERS_SCALED_TOTAL, "counter", "events",
        "Worker-count autoscaling decisions, by direction (mid-call "
        "growth vs idle retirement).",
        labels=("direction",),
    ),
    MetricSpec(
        SWEEP_EWMA_CELL_SECONDS, "gauge", "seconds",
        "EWMA per-cell compute-time estimate for the most recently "
        "swept cell function (the cost model driving chunk sizing, "
        "deadlines, and autoscaling).",
    ),
    MetricSpec(
        SWEEP_MEMO_EVICTED_TOTAL, "counter", "entries",
        "Sweep results dropped instead of cached because the in-memory "
        "memo hit its capacity bound.",
    ),
    MetricSpec(
        STORE_HITS_TOTAL, "counter", "lookups",
        "Result-store lookups served from disk (the sweep memo's "
        "second tier).",
    ),
    MetricSpec(
        STORE_MISSES_TOTAL, "counter", "lookups",
        "Result-store lookups that found no usable entry (absent or "
        "corrupt).",
    ),
    MetricSpec(
        STORE_WRITES_TOTAL, "counter", "entries",
        "Result entries persisted to the on-disk store.",
    ),
    MetricSpec(
        STORE_EVICTIONS_TOTAL, "counter", "entries",
        "Entries evicted by the store's LRU garbage collector to "
        "enforce its max_entries bound.",
    ),
    MetricSpec(
        STORE_CORRUPT_TOTAL, "counter", "entries",
        "Store entries skipped as corrupt (unparseable, wrong schema, "
        "or key/function mismatch); each reads as a miss.",
    ),
    MetricSpec(
        STORE_BYTES, "gauge", "bytes",
        "Approximate total size of the result store's entries on "
        "disk.",
    ),
    MetricSpec(
        SERVICE_QUEUE_DEPTH, "gauge", "jobs",
        "Jobs waiting in the sweep service's bounded queue (admitted "
        "but not yet running).",
    ),
    MetricSpec(
        SERVICE_ADMITTED_TOTAL, "counter", "jobs",
        "Job submissions accepted past admission control into the "
        "queue.",
    ),
    MetricSpec(
        SERVICE_REJECTED_TOTAL, "counter", "jobs",
        "Job submissions rejected at admission control, by reason "
        "(queue_full / tenant_jobs / tenant_cells / draining).",
        labels=("reason",),
    ),
    MetricSpec(
        SERVICE_COMPLETED_TOTAL, "counter", "jobs",
        "Jobs that left the running set, by terminal state (done / "
        "failed / cancelled).",
        labels=("state",),
    ),
    MetricSpec(
        SERVICE_JOB_SECONDS, "histogram", "seconds",
        "Distribution of job wall-clock latency from admission to "
        "terminal state.",
    ),
    MetricSpec(
        FAULTS_INJECTED_TOTAL, "counter", "events",
        "Faults injected, by kind.",
        labels=("kind",),
    ),
    MetricSpec(
        RESILIENCE_CHUNKS_TOTAL, "counter", "chunks",
        "Chunks completed by the resilient pipeline, by the device "
        "their buffer landed on.",
        labels=("device",),
    ),
    MetricSpec(
        RESILIENCE_CHUNK_RETRIES_TOTAL, "counter", "retries",
        "Chunk re-executions after transient faults.",
    ),
    MetricSpec(
        RESILIENCE_STRAGGLERS_TOTAL, "counter", "chunks",
        "Chunks speculatively re-run for exceeding the straggler "
        "threshold.",
    ),
    MetricSpec(
        RESILIENCE_MODE_DEGRADATIONS_TOTAL, "counter", "events",
        "Permanent FLAT/HYBRID-to-DDR plan downgrades.",
    ),
]

#: Metric catalog: name -> spec.
METRICS: dict[str, MetricSpec] = {s.name: s for s in _METRIC_SPECS}

# --- event types -----------------------------------------------------------

EVENT_RUN_START = "run.start"
EVENT_RUN_END = "run.end"
EVENT_PHASE_START = "phase.start"
EVENT_PHASE_END = "phase.end"
EVENT_FLOW_COMPLETE = "flow.complete"
EVENT_FAULT_INJECTED = "fault.injected"
EVENT_ALLOC_FALLBACK = "alloc.fallback"
EVENT_HEAP_SHRINK = "heap.shrink"
EVENT_POOL_RESPLIT = "pool.resplit"
EVENT_SORT_SPILL = "sort.spill"
EVENT_SORT_MERGE = "sort.merge"
EVENT_CHUNK_RETRY = "chunk.retry"
EVENT_CHUNK_STRAGGLER = "chunk.straggler"
EVENT_MODE_DEGRADE = "mode.degrade"

_EVENT_SPECS = [
    EventSpec(
        EVENT_RUN_START, "A plan starts executing.", ("plan",),
    ),
    EventSpec(
        EVENT_RUN_END, "A plan finished.", ("plan", "seconds"),
    ),
    EventSpec(
        EVENT_PHASE_START, "A barrier-delimited phase begins.",
        ("plan", "phase", "index"),
    ),
    EventSpec(
        EVENT_PHASE_END, "A phase completed.",
        ("plan", "phase", "index", "seconds", "stall_seconds"),
    ),
    EventSpec(
        EVENT_FLOW_COMPLETE, "A flow drained all its bytes.",
        ("phase", "flow", "bytes"),
    ),
    EventSpec(
        EVENT_FAULT_INJECTED, "The injector produced a fault.",
        ("kind", "target", "severity", "phase"),
    ),
    EventSpec(
        EVENT_ALLOC_FALLBACK,
        "An allocation was degraded to its fallback device.",
        ("target", "fallback", "bytes"),
    ),
    EventSpec(
        EVENT_HEAP_SHRINK,
        "A heap region surrendered free space to a capacity fault.",
        ("device", "bytes"),
    ),
    EventSpec(
        EVENT_POOL_RESPLIT,
        "Thread pools re-partitioned after worker loss.",
        ("compute", "copy_in", "copy_out", "lost"),
    ),
    EventSpec(
        EVENT_SORT_SPILL, "The external sort wrote a run file.",
        ("file", "bytes"),
    ),
    EventSpec(
        EVENT_SORT_MERGE, "A multiway merge started.", ("fan_in",),
    ),
    EventSpec(
        EVENT_CHUNK_RETRY,
        "The resilient pipeline retried a faulted chunk.",
        ("chunk", "attempt"),
    ),
    EventSpec(
        EVENT_CHUNK_STRAGGLER,
        "A straggler chunk was speculatively re-run.",
        ("chunk", "seconds", "median_seconds"),
    ),
    EventSpec(
        EVENT_MODE_DEGRADE,
        "The pipeline permanently downgraded its usage mode.",
        ("from_mode", "to_mode", "chunk", "reason"),
    ),
]

#: Event catalog: name -> spec.
EVENTS: dict[str, EventSpec] = {s.name: s for s in _EVENT_SPECS}
