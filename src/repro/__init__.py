"""repro — reproduction of "Optimizing for KNL Usage Modes When Data
Doesn't Fit in MCDRAM" (Butcher et al., ICPP 2018).

Top-level convenience exports; see the subpackages for the full API:

* :mod:`repro.simknl` — the simulated KNL node;
* :mod:`repro.core` — chunking / buffering / usage modes;
* :mod:`repro.model` — the Section 3.2 analytic model;
* :mod:`repro.algorithms` — sorts, merges, benchmarks;
* :mod:`repro.memkind`, :mod:`repro.threads`, :mod:`repro.workloads`;
* :mod:`repro.experiments` — table/figure drivers.
"""

from repro.core import (
    BufferedPipeline,
    Chunker,
    ResilienceReport,
    ResilientPipeline,
    StreamKernel,
    UsageMode,
)
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.model import ModelParams, optimal_copy_threads, predict
from repro.simknl import KNLNode, KNLNodeConfig, MemoryMode

__version__ = "1.0.0"

__all__ = [
    "BufferedPipeline",
    "Chunker",
    "ResilienceReport",
    "ResilientPipeline",
    "StreamKernel",
    "UsageMode",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "ModelParams",
    "optimal_copy_threads",
    "predict",
    "KNLNode",
    "KNLNodeConfig",
    "MemoryMode",
    "__version__",
]
