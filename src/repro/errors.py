"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid machine, mode, or algorithm configuration."""


class CapacityError(ReproError):
    """An allocation or plan exceeds a device's capacity."""


class AllocationError(ReproError):
    """The simulated allocator could not satisfy a request."""


class PlanError(ReproError):
    """A timing plan is malformed (empty phase, negative bytes, ...)."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""
