"""Exception hierarchy for the repro package.

Shared infrastructure across every layer of the reproduction; not tied
to a single paper section.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid machine, mode, or algorithm configuration."""


class CapacityError(ReproError):
    """An allocation or plan exceeds a device's capacity."""


class AllocationError(ReproError):
    """The simulated allocator could not satisfy a request."""


class PlanError(ReproError):
    """A timing plan is malformed (empty phase, negative bytes, ...)."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class FaultError(ReproError):
    """Base class for injected-fault failures (see :mod:`repro.faults`)."""


class TransientFaultError(FaultError):
    """A fault expected to clear on retry (e.g. a spill-write hiccup)."""


class PermanentFaultError(FaultError):
    """A fault that no amount of retrying will clear (e.g. a dead disk)."""


class RetryExhaustedError(FaultError):
    """A bounded retry loop gave up; carries the attempt count.

    Parameters
    ----------
    message:
        Human-readable description of the failed operation.
    attempts:
        Number of attempts made before giving up.
    """

    def __init__(self, message: str, attempts: int = 0) -> None:
        super().__init__(message)
        self.attempts = attempts


class DegradedModeWarning(UserWarning):
    """A graceful-degradation path was taken: the operation succeeded,
    but on a slower device, with fewer threads, or after retries."""
