"""Exception hierarchy for the repro package.

Shared infrastructure across every layer of the reproduction; not tied
to a single paper section.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid machine, mode, or algorithm configuration."""


class CapacityError(ReproError):
    """An allocation or plan exceeds a device's capacity."""


class AllocationError(ReproError):
    """The simulated allocator could not satisfy a request."""


class PlanError(ReproError):
    """A timing plan is malformed (empty phase, negative bytes, ...)."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class FaultError(ReproError):
    """Base class for injected-fault failures (see :mod:`repro.faults`)."""


class TransientFaultError(FaultError):
    """A fault expected to clear on retry (e.g. a spill-write hiccup)."""


class PermanentFaultError(FaultError):
    """A fault that no amount of retrying will clear (e.g. a dead disk)."""


class RetryExhaustedError(FaultError):
    """A bounded retry loop gave up; carries the attempt count.

    Parameters
    ----------
    message:
        Human-readable description of the failed operation.
    attempts:
        Number of attempts made before giving up.
    """

    def __init__(self, message: str, attempts: int = 0) -> None:
        super().__init__(message)
        self.attempts = attempts


class RingIntegrityError(FaultError):
    """A shared-memory ring payload failed its framing checks.

    Raised by the sweep pool's ring reader when a payload's sequence
    number or checksum does not match what the worker announced —
    either real shared-memory corruption or an injected
    ``RING_CORRUPT`` harness fault. The pool catches it, discards the
    payload, and refetches the chunk over the type-exact pickle path,
    so it never escapes :meth:`PersistentPool.map`.

    Parameters
    ----------
    message:
        Human-readable description of the violated frame.
    chunk_id:
        The chunk whose payload failed validation.
    """

    def __init__(self, message: str, chunk_id: int = -1) -> None:
        super().__init__(message)
        self.chunk_id = chunk_id


class StoreError(ReproError):
    """The on-disk result store cannot satisfy a request
    (see :mod:`repro.experiments.store`)."""


class StoreMissError(StoreError):
    """A replay found cells missing from the result store.

    Replay mode (``repro-knl replay``) renders artifacts purely from
    stored results — it never invokes the engine — so a cold store is
    a hard error, not a silent recompute. The message and
    :attr:`missing` name every absent ``config_hash`` so the user can
    warm the store with the corresponding normal run.

    Parameters
    ----------
    message:
        Human-readable description naming the sweep function.
    missing:
        The ``config_hash`` keys absent from the store.
    """

    def __init__(self, message: str, missing: tuple[str, ...] = ()) -> None:
        super().__init__(message)
        self.missing = tuple(missing)


class ServiceError(ReproError):
    """The sweep service cannot satisfy a request
    (see :mod:`repro.experiments.service`)."""


class AdmissionError(ServiceError):
    """A job submission was rejected at admission control.

    The service rejects — it never stalls — when the global queue is
    full or the tenant is over its in-flight/queued-cell budget. The
    structured fields let clients back off instead of retrying blind.

    Parameters
    ----------
    message:
        Human-readable description of the rejected submission.
    reason:
        Machine-readable cause (``queue_full``, ``tenant_jobs``,
        ``tenant_cells``, ``draining``).
    retry_after_s:
        Suggested client backoff before resubmitting, in seconds.
    """

    def __init__(
        self,
        message: str,
        reason: str = "queue_full",
        retry_after_s: float = 1.0,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.retry_after_s = retry_after_s


class DegradedModeWarning(UserWarning):
    """A graceful-degradation path was taken: the operation succeeded,
    but on a slower device, with fewer threads, or after retries."""
