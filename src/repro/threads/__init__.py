"""Thread-pool and scheduling substrate.

KNL has no user-programmable DMA engine, so flat-mode chunking must
dedicate OpenMP threads to data movement. This package models the
three-pool arrangement the paper describes (compute / copy-in /
copy-out), thread-to-core affinity in the style of
``KMP_AFFINITY=compact|scatter``, and an OpenMP-like loop-scheduling
model used to quantify load imbalance in compute phases.

Models the copy/compute pool split of Section 3, whose sizes Eqs. 1-5
pick.
"""

from repro.threads.affinity import AffinityPolicy, assign_threads
from repro.threads.pool import PoolSet, ThreadPool
from repro.threads.omp import LoopSchedule, ScheduleKind, simulate_loop

__all__ = [
    "AffinityPolicy",
    "assign_threads",
    "PoolSet",
    "ThreadPool",
    "LoopSchedule",
    "ScheduleKind",
    "simulate_loop",
]
