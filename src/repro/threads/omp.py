"""OpenMP-like loop scheduling model.

The paper's kernels distribute chunk work across OpenMP threads. This
module models ``schedule(static)``, ``schedule(static, chunk)``,
``schedule(dynamic, chunk)`` and ``schedule(guided)`` over a vector of
per-iteration costs, and reports the resulting makespan and load
imbalance. It is used by the compute-phase model to discount the
aggregate compute rate when work is uneven (e.g. the skewed merge
sizes in reverse-sorted inputs).

Models the OpenMP scheduling the Section 3 chunking framework relies
on.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


class ScheduleKind(enum.Enum):
    """Supported OpenMP schedule kinds."""

    STATIC = "static"
    DYNAMIC = "dynamic"
    GUIDED = "guided"


@dataclass(frozen=True)
class LoopSchedule:
    """Outcome of scheduling a parallel loop.

    Attributes
    ----------
    makespan:
        Time at which the last thread finishes.
    per_thread:
        Busy time of each thread.
    efficiency:
        mean(per_thread) / makespan — 1.0 means perfectly balanced.
    """

    makespan: float
    per_thread: np.ndarray

    @property
    def efficiency(self) -> float:
        """Load-balance efficiency in (0, 1]."""
        if self.makespan <= 0:
            return 1.0
        return float(np.mean(self.per_thread) / self.makespan)

    @property
    def total_work(self) -> float:
        """Sum of all iteration costs."""
        return float(np.sum(self.per_thread))


def _static_blocks(n: int, threads: int) -> list[range]:
    """OpenMP default static partition: near-equal contiguous blocks."""
    base, extra = divmod(n, threads)
    blocks = []
    start = 0
    for t in range(threads):
        size = base + (1 if t < extra else 0)
        blocks.append(range(start, start + size))
        start += size
    return blocks


def simulate_loop(
    costs: np.ndarray | list[float],
    threads: int,
    kind: ScheduleKind = ScheduleKind.STATIC,
    chunk: int | None = None,
) -> LoopSchedule:
    """Simulate an OpenMP ``for`` loop over ``costs`` with ``threads``.

    Parameters
    ----------
    costs:
        Per-iteration cost (arbitrary time units), non-negative.
    threads:
        Number of worker threads (>= 1).
    kind:
        Schedule kind.
    chunk:
        Chunk size for STATIC (round-robin blocks) and DYNAMIC;
        ignored by GUIDED. ``None`` means the OpenMP default
        (STATIC: one block per thread; DYNAMIC: 1).
    """
    costs = np.asarray(costs, dtype=float)
    if costs.ndim != 1:
        raise ConfigError("costs must be one-dimensional")
    if np.any(costs < 0):
        raise ConfigError("iteration costs must be non-negative")
    if threads < 1:
        raise ConfigError("threads must be >= 1")
    if chunk is not None and chunk < 1:
        raise ConfigError("chunk must be >= 1")
    n = costs.size
    per_thread = np.zeros(threads)
    if n == 0:
        return LoopSchedule(makespan=0.0, per_thread=per_thread)

    if kind is ScheduleKind.STATIC:
        if chunk is None:
            for t, block in enumerate(_static_blocks(n, threads)):
                per_thread[t] = float(costs[block.start : block.stop].sum())
        else:
            # Round-robin chunks of fixed size.
            for i, start in enumerate(range(0, n, chunk)):
                t = i % threads
                per_thread[t] += float(costs[start : start + chunk].sum())
        return LoopSchedule(makespan=float(per_thread.max()), per_thread=per_thread)

    # DYNAMIC and GUIDED: event-driven greedy assignment to the
    # earliest-finishing thread.
    heap = [(0.0, t) for t in range(threads)]
    heapq.heapify(heap)
    pos = 0
    remaining = n
    while remaining > 0:
        if kind is ScheduleKind.DYNAMIC:
            take = chunk or 1
        else:  # GUIDED: remaining / threads, floor 1 (or chunk floor)
            take = max(remaining // threads, chunk or 1)
        take = min(take, remaining)
        finish, t = heapq.heappop(heap)
        work = float(costs[pos : pos + take].sum())
        per_thread[t] += work
        heapq.heappush(heap, (finish + work, t))
        pos += take
        remaining -= take
    makespan = max(f for f, _ in heap)
    return LoopSchedule(makespan=float(makespan), per_thread=per_thread)
