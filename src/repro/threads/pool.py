"""Thread pools and the compute / copy-in / copy-out split.

The buffered chunking scheme of Section 3 partitions the node's
hardware threads into up to three disjoint pools. :class:`PoolSet`
owns that partition, validates it against the node, and builds
:class:`~repro.simknl.flows.Flow` objects for each pool's role.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import ConfigError, DegradedModeWarning
from repro.simknl.flows import Flow
from repro.simknl.node import KNLNode
from repro.telemetry import names as _tn
from repro.telemetry import runtime as _tm
from repro.threads.affinity import AffinityPolicy, assign_threads


@dataclass(frozen=True)
class ThreadPool:
    """A named set of hardware threads.

    Attributes
    ----------
    name:
        Role name (``"compute"``, ``"copy-in"``, ``"copy-out"``).
    threads:
        Global hardware thread ids, disjoint from other pools.
    """

    name: str
    threads: tuple[int, ...]

    @property
    def size(self) -> int:
        """Number of threads in the pool."""
        return len(self.threads)

    def flow(
        self,
        per_thread_rate: float,
        resources: Mapping[str, float],
        nbytes: float,
        name: str | None = None,
    ) -> Flow:
        """Build a flow with this pool's thread count."""
        return Flow(
            name=name or self.name,
            threads=self.size,
            per_thread_rate=per_thread_rate,
            resources=dict(resources),
            bytes_total=nbytes,
        )


@dataclass
class PoolSet:
    """A disjoint partition of node threads into role pools."""

    compute: ThreadPool
    copy_in: ThreadPool
    copy_out: ThreadPool

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for pool in (self.compute, self.copy_in, self.copy_out):
            overlap = seen.intersection(pool.threads)
            if overlap:
                raise ConfigError(
                    f"pool {pool.name!r} reuses threads {sorted(overlap)[:5]}"
                )
            seen.update(pool.threads)
        tel = _tm.current()
        if tel.enabled:
            gauge = tel.metrics.gauge(_tn.POOL_THREADS)
            gauge.set(self.compute.size, role="compute")
            gauge.set(self.copy_in.size, role="copy-in")
            gauge.set(self.copy_out.size, role="copy-out")

    @property
    def total(self) -> int:
        """Total threads across all pools."""
        return self.compute.size + self.copy_in.size + self.copy_out.size

    @property
    def copy_threads(self) -> int:
        """Combined copy-in + copy-out threads (the model's p_in + p_out)."""
        return self.copy_in.size + self.copy_out.size

    @classmethod
    def split(
        cls,
        node: KNLNode,
        compute: int,
        copy_in: int,
        copy_out: int | None = None,
        policy: AffinityPolicy = AffinityPolicy.SCATTER,
    ) -> "PoolSet":
        """Partition the node's threads into the three role pools.

        ``copy_out`` defaults to ``copy_in`` (the model's symmetric
        assumption). The compute pool gets the first slots so it keeps
        whole cores under SCATTER.

        Raises
        ------
        ConfigError
            If any count is negative or the total exceeds the node.
        """
        if copy_out is None:
            copy_out = copy_in
        for label, n in (("compute", compute), ("copy_in", copy_in), ("copy_out", copy_out)):
            if n < 0:
                raise ConfigError(f"{label} count must be non-negative")
        total = compute + copy_in + copy_out
        if total > node.total_threads:
            raise ConfigError(
                f"{total} threads requested but node has {node.total_threads}"
            )
        slots = assign_threads(node.topology, total, policy)
        c = tuple(slots[:compute])
        ci = tuple(slots[compute : compute + copy_in])
        co = tuple(slots[compute + copy_in :])
        return cls(
            compute=ThreadPool("compute", c),
            copy_in=ThreadPool("copy-in", ci),
            copy_out=ThreadPool("copy-out", co),
        )

    @classmethod
    def compute_only(
        cls, node: KNLNode, threads: int | None = None
    ) -> "PoolSet":
        """All threads to compute — the implicit-cache-mode arrangement."""
        n = node.total_threads if threads is None else threads
        return cls.split(node, compute=n, copy_in=0, copy_out=0)

    # ---- fault / degradation hooks --------------------------------------

    def without_threads(self, lost: Iterable[int]) -> "PoolSet":
        """Drop ``lost`` hardware threads from whichever pools own them.

        Pools keep their remaining threads unchanged (no re-split);
        use :meth:`resplit_after_loss` to also rebalance the roles.

        Raises
        ------
        ConfigError
            When the loss would leave no threads at all.
        """
        lost_set = set(lost)

        def strip(pool: ThreadPool) -> ThreadPool:
            return ThreadPool(
                pool.name,
                tuple(t for t in pool.threads if t not in lost_set),
            )

        out = PoolSet(
            compute=strip(self.compute),
            copy_in=strip(self.copy_in),
            copy_out=strip(self.copy_out),
        )
        if out.total == 0:
            raise ConfigError("worker loss left no threads in any pool")
        return out

    def resplit_after_loss(self, lost: Iterable[int]) -> "PoolSet":
        """Re-split the surviving threads after a worker-loss fault.

        The survivors are repartitioned between compute and the two
        copy pools preserving the original role proportions (copy
        pools shrink with the node instead of starving compute, and
        vice versa). Compute keeps at least one thread whenever any
        survive. Emits :class:`~repro.errors.DegradedModeWarning`.
        """
        owned = (
            self.compute.threads + self.copy_in.threads + self.copy_out.threads
        )
        lost_set = set(lost).intersection(owned)
        if not lost_set:
            return self
        survivors = [t for t in owned if t not in lost_set]
        if not survivors:
            raise ConfigError("worker loss left no threads in any pool")
        n = len(survivors)
        copy_in_n = round(self.copy_in.size * n / self.total)
        copy_out_n = round(self.copy_out.size * n / self.total)
        # Compute keeps >= 1 thread (it had at least one to begin with
        # whenever it matters; an all-copy poolset stays all-copy).
        min_compute = 1 if self.compute.size > 0 else 0
        while copy_in_n + copy_out_n > n - min_compute:
            if copy_in_n >= copy_out_n and copy_in_n > 0:
                copy_in_n -= 1
            elif copy_out_n > 0:
                copy_out_n -= 1
            else:
                break
        compute_n = n - copy_in_n - copy_out_n
        tel = _tm.current()
        if tel.enabled:
            m = tel.metrics
            m.counter(_tn.POOL_RESPLITS_TOTAL).inc()
            m.counter(_tn.POOL_THREADS_LOST_TOTAL).inc(len(lost_set))
            tel.events.emit(
                _tn.EVENT_POOL_RESPLIT,
                compute=compute_n,
                copy_in=copy_in_n,
                copy_out=copy_out_n,
                lost=len(lost_set),
            )
        warnings.warn(
            f"lost {len(lost_set)} worker thread(s); re-split survivors "
            f"into compute={compute_n}, copy-in={copy_in_n}, "
            f"copy-out={copy_out_n}",
            DegradedModeWarning,
            stacklevel=2,
        )
        return PoolSet(
            compute=ThreadPool("compute", tuple(survivors[:compute_n])),
            copy_in=ThreadPool(
                "copy-in", tuple(survivors[compute_n : compute_n + copy_in_n])
            ),
            copy_out=ThreadPool(
                "copy-out", tuple(survivors[compute_n + copy_in_n :])
            ),
        )
