"""Thread-to-core affinity in the style of ``KMP_AFFINITY``.

* ``COMPACT`` packs SMT siblings first: threads 0-3 land on core 0.
  Maximizes L2 sharing within a tile, risks unbalanced core use.
* ``SCATTER`` round-robins across cores first: threads 0-67 land on
  distinct cores before any SMT sibling is used. This is what the
  paper's bandwidth-bound pools want — one stream per core saturates
  memory with the fewest threads.

Models the KMP_AFFINITY settings of the paper's Section 5 experimental
setup.
"""

from __future__ import annotations

import enum

from repro.errors import ConfigError
from repro.simknl.topology import KNLTopology


class AffinityPolicy(enum.Enum):
    """Supported placement policies."""

    COMPACT = "compact"
    SCATTER = "scatter"


def assign_threads(
    topology: KNLTopology,
    count: int,
    policy: AffinityPolicy = AffinityPolicy.SCATTER,
) -> list[int]:
    """Pick ``count`` hardware-thread slots under ``policy``.

    Returns global hardware thread ids, where thread ``t`` runs on core
    ``t // threads_per_core`` (compact numbering as in
    :meth:`KNLTopology.core_of_thread`).

    Raises
    ------
    ConfigError
        If ``count`` exceeds the hardware thread count or is negative.
    """
    if count < 0:
        raise ConfigError("thread count must be non-negative")
    if count > topology.num_threads:
        raise ConfigError(
            f"requested {count} threads but node has {topology.num_threads}"
        )
    if policy is AffinityPolicy.COMPACT:
        return list(range(count))
    if policy is AffinityPolicy.SCATTER:
        spc = topology.threads_per_core
        cores = topology.num_cores
        out = []
        for i in range(count):
            smt = i // cores
            core = i % cores
            out.append(core * spc + smt)
        return out
    raise ConfigError(f"unknown policy {policy!r}")


def cores_used(topology: KNLTopology, threads: list[int]) -> set[int]:
    """The set of physical cores hosting ``threads``."""
    return {topology.core_of_thread(t) for t in threads}
