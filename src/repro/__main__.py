"""``python -m repro`` dispatches to the CLI.

Regenerates the paper's artifacts (Tables 1-3, Figures 6-8) from the
command line.
"""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
