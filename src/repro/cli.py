"""Command-line entry point: run any experiment driver.

Usage::

    repro-knl table1              # or: python -m repro table1
    repro-knl figure8 --csv out.csv
    repro-knl table1 --metrics m.json --events e.perfetto.json
    repro-knl figure7 --store results/   # warm the on-disk result store
    repro-knl replay figure7 --store results/   # re-render, zero compute
    repro-knl serve --store results/ --port 7077   # sweep service
    repro-knl submit figure7 --port 7077           # job to a service
    repro-knl all

``--metrics`` / ``--events`` run the experiment inside a telemetry
session and write the snapshot/event log in the format implied by the
file extension (see ``docs/OBSERVABILITY.md``).

``--store`` backs the sweep memo with an on-disk result store so warm
results survive across processes, and ``repro-knl replay <artifact>``
re-renders a figure/table purely from such a store — zero engine
invocations, byte-identical output (see ``docs/EXPERIMENTS_STORE.md``).

``serve`` runs the long-lived sweep service (asyncio job queue over
the persistent pool and result store) and ``submit`` sends one job to
a running instance, rendering the returned result byte-identical to a
local run (see ``docs/SERVICE.md``).

Each subcommand regenerates one paper artifact (Tables 1-3, Figures
6-8) or one extension driver.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ServiceError, StoreError
from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.report import render_series, render_table, to_csv
from repro.experiments.runner import replay_session
from repro.experiments.store import require_store
from repro.telemetry import telemetry_session, write_events, write_metrics

#: Artifacts whose drivers resolve entirely through the result store,
#: hence can be re-rendered by ``repro-knl replay``.
REPLAYABLE = tuple(
    name
    for name, driver in ALL_EXPERIMENTS.items()
    if getattr(driver, "supports_replay", False)
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-knl",
        description=(
            "Reproduce the tables and figures of 'Optimizing for KNL Usage "
            "Modes When Data Doesn't Fit in MCDRAM' (ICPP 2018) on a "
            "simulated KNL node."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[*ALL_EXPERIMENTS, "all", "replay", "serve", "submit"],
        help=(
            "which table/figure to regenerate, 'all' for every driver, "
            "'replay' to re-render an artifact purely from a warm "
            "result store, 'serve' to run the sweep service, or "
            "'submit' to send a job to a running service"
        ),
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help=(
            "with 'replay': the artifact to re-render (one of "
            f"{', '.join(REPLAYABLE)}); with 'submit': the experiment "
            "to run on the service (any driver name)"
        ),
    )
    parser.add_argument(
        "--csv",
        metavar="PATH",
        help="also write the rows as CSV to PATH (or '-' for stdout)",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render figures as ASCII series charts instead of tables",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "fan sweep cells out across N worker processes (drivers "
            "that support it; results are identical to a serial run). "
            "Ignored while --metrics/--events collect telemetry, "
            "which requires in-process execution"
        ),
    )
    parser.add_argument(
        "--pool",
        choices=["persistent", "fork"],
        default=None,
        help=(
            "parallel backend for --jobs: 'persistent' reuses a "
            "process-lifetime shared-memory worker pool (chunked "
            "dispatch, low per-cell overhead), 'fork' forks a fresh "
            "process pool per sweep. Default: persistent (or "
            "$REPRO_SWEEP_POOL)"
        ),
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help=(
            "on-disk result store backing the sweep memo: warm results "
            "survive across processes and feed 'replay'. Defaults to "
            "$REPRO_STORE when set (see docs/EXPERIMENTS_STORE.md)"
        ),
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="N",
        help=(
            "seed for drivers with stochastic injection schedules "
            "(faults, chaos); replaying a seed replays the identical "
            "schedule. Ignored by deterministic drivers"
        ),
    )
    service = parser.add_argument_group(
        "sweep service ('serve' / 'submit', see docs/SERVICE.md)"
    )
    service.add_argument(
        "--host",
        default="127.0.0.1",
        help="address to bind ('serve') or connect to ('submit')",
    )
    service.add_argument(
        "--port",
        type=int,
        default=7077,
        metavar="N",
        help=(
            "TCP port for 'serve' / 'submit'; 'serve' with 0 binds an "
            "ephemeral port and prints it on stderr"
        ),
    )
    service.add_argument(
        "--tenant",
        default="default",
        metavar="NAME",
        help="tenant identity for 'submit' (admission control quota)",
    )
    service.add_argument(
        "--queue",
        type=int,
        default=16,
        metavar="N",
        help="'serve' only: max queued jobs before submissions reject",
    )
    service.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="'submit' only: seconds to wait for the job's result",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        help=(
            "collect telemetry and write the metrics snapshot to PATH "
            "(.json, .prom/.txt, or .csv by extension)"
        ),
    )
    parser.add_argument(
        "--events",
        metavar="PATH",
        help=(
            "collect telemetry and write the event log to PATH (.json, "
            "or .perfetto.json/.trace.json for Perfetto)"
        ),
    )
    return parser


def _emit(result, args) -> None:
    spec = getattr(
        ALL_EXPERIMENTS.get(result.experiment), "series_spec", None
    )
    if args.chart and spec is not None:
        print(render_series(result, spec.x, list(spec.ys)))
    else:
        print(render_table(result))
    print()
    if args.csv:
        text = to_csv(result)
        if args.csv == "-":
            sys.stdout.write(text)
        else:
            path = args.csv
            if args.experiment == "all":
                path = f"{result.experiment}-{path}"
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text)


def _run_replay(args) -> None:
    """Re-render one artifact purely from the result store."""
    if args.target is None:
        raise StoreError(
            f"replay needs a target artifact: one of {', '.join(REPLAYABLE)}"
        )
    if args.target not in REPLAYABLE:
        raise StoreError(
            f"cannot replay {args.target!r}: only store-backed drivers "
            f"support replay ({', '.join(REPLAYABLE)})"
        )
    store = require_store(args.store)
    with replay_session(store):
        _emit(ALL_EXPERIMENTS[args.target](), args)


def _run_serve(args) -> None:
    """Run the sweep service until SIGTERM/SIGINT."""
    from repro.experiments.service import ServiceConfig, run_server

    if args.target is not None:
        raise ServiceError(
            f"'serve' takes no target artifact (got {args.target!r})"
        )
    config = ServiceConfig(
        max_queue=args.queue,
        jobs=max(args.jobs, 1),
        store=args.store,
    )
    run_server(host=args.host, port=args.port, config=config)


def _run_submit(args) -> None:
    """Submit one job to a running service and render its result."""
    from repro.experiments.client import ServiceClient
    from repro.experiments.service import result_from_wire

    if args.target is None:
        raise ServiceError(
            "submit needs a target experiment: one of "
            f"{', '.join(ALL_EXPERIMENTS)}"
        )
    kwargs = {}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    with ServiceClient(args.host, args.port) as client:
        response = client.submit(
            args.target,
            tenant=args.tenant,
            params=kwargs,
            timeout=args.timeout,
        )
    state = response.get("state")
    if state != "done":
        raise ServiceError(
            f"job {response.get('job_id')} finished as {state!r}: "
            f"{response.get('error', 'no detail')}"
        )
    print(
        f"repro-knl submit: job {response['job_id']} done "
        f"(served: {response.get('served', 'unknown')})",
        file=sys.stderr,
    )
    result = result_from_wire(response["result"])
    # Render exactly like a local run: byte-identical tables and CSV.
    args.experiment = result.experiment
    _emit(result, args)


def _run_all(args) -> None:
    if args.experiment == "replay":
        _run_replay(args)
        return
    if args.experiment == "serve":
        _run_serve(args)
        return
    if args.experiment == "submit":
        _run_submit(args)
        return
    if args.target is not None:
        raise StoreError(
            "a target artifact is only valid with 'replay' or 'submit' "
            f"(got {args.experiment} {args.target})"
        )
    names = (
        list(ALL_EXPERIMENTS) if args.experiment == "all"
        else [args.experiment]
    )
    for name in names:
        driver = ALL_EXPERIMENTS[name]
        kwargs = {}
        if args.jobs > 1 and getattr(driver, "supports_jobs", False):
            kwargs["jobs"] = args.jobs
            if args.pool is not None:
                kwargs["pool"] = args.pool
        if args.store is not None and getattr(
            driver, "supports_store", False
        ):
            kwargs["store"] = args.store
        if args.seed is not None and getattr(
            driver, "supports_seed", False
        ):
            kwargs["seed"] = args.seed
        _emit(driver(**kwargs), args)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.metrics or args.events:
            with telemetry_session() as tel:
                _run_all(args)
            if args.metrics:
                write_metrics(args.metrics, tel)
            if args.events:
                write_events(args.events, tel)
        else:
            _run_all(args)
    except (ServiceError, StoreError) as exc:
        print(f"repro-knl: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
