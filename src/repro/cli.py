"""Command-line entry point: run any experiment driver.

Usage::

    repro-knl table1              # or: python -m repro table1
    repro-knl figure8 --csv out.csv
    repro-knl all
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.report import render_series, render_table, to_csv

#: Experiments rendered as series charts rather than plain tables.
_SERIES = {
    "figure6": ("algorithm", ["speedup"]),
    "figure7": ("chunk_elements", ["flat_s", "implicit_s"]),
    "figure8": ("copy_threads", ["model_s", "empirical_s"]),
    "nvm": ("strategy", ["seconds"]),
    "hybrid": ("config", ["seconds"]),
    "energy": ("algorithm", ["energy_j"]),
    "faults": ("intensity", ["resilient_s", "monolithic_s"]),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-knl",
        description=(
            "Reproduce the tables and figures of 'Optimizing for KNL Usage "
            "Modes When Data Doesn't Fit in MCDRAM' (ICPP 2018) on a "
            "simulated KNL node."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[*ALL_EXPERIMENTS, "all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--csv",
        metavar="PATH",
        help="also write the rows as CSV to PATH (or '-' for stdout)",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render figures as ASCII series charts instead of tables",
    )
    return parser


def _emit(result, args) -> None:
    if args.chart and result.experiment in _SERIES:
        x, ys = _SERIES[result.experiment]
        print(render_series(result, x, ys))
    else:
        print(render_table(result))
    print()
    if args.csv:
        text = to_csv(result)
        if args.csv == "-":
            sys.stdout.write(text)
        else:
            path = args.csv
            if args.experiment == "all":
                path = f"{result.experiment}-{path}"
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    names = list(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        _emit(ALL_EXPERIMENTS[name](), args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
