"""Chunk partitioning of large data sets.

"Chunking" migrates one near-memory-sized piece of the data at a time
into MCDRAM, computes on it, and writes it back (Section 3). The
:class:`Chunker` produces the chunk geometry; it is shared by the timed
plan builders (which only need byte counts) and the functional
algorithm implementations (which slice real NumPy arrays with the same
boundaries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ConfigError
from repro.units import INT64


@dataclass(frozen=True)
class Chunk:
    """One contiguous piece of the data set.

    Attributes
    ----------
    index:
        Position in chunk order.
    offset:
        Byte offset of the chunk's start within the data set.
    nbytes:
        Chunk size in bytes (the final chunk may be smaller).
    """

    index: int
    offset: int
    nbytes: int

    def elements(self, element_size: int = INT64) -> int:
        """Whole elements contained in the chunk."""
        return self.nbytes // element_size

    @property
    def end(self) -> int:
        """Byte offset one past the chunk's last byte."""
        return self.offset + self.nbytes


class Chunker:
    """Partitions ``total_bytes`` into chunks of ``chunk_bytes``.

    Parameters
    ----------
    total_bytes:
        Data set size.
    chunk_bytes:
        Nominal chunk size; the last chunk holds the remainder.
    element_size:
        Element granularity — chunk boundaries are aligned down to a
        multiple of this so functional slicing never splits elements.
    """

    def __init__(
        self,
        total_bytes: int,
        chunk_bytes: int,
        element_size: int = INT64,
    ) -> None:
        if total_bytes <= 0:
            raise ConfigError("total_bytes must be positive")
        if chunk_bytes <= 0:
            raise ConfigError("chunk_bytes must be positive")
        if element_size <= 0:
            raise ConfigError("element_size must be positive")
        if total_bytes % element_size != 0:
            raise ConfigError(
                f"total_bytes {total_bytes} is not a whole number of "
                f"{element_size}-byte elements"
            )
        aligned = (chunk_bytes // element_size) * element_size
        if aligned == 0:
            raise ConfigError(
                f"chunk_bytes {chunk_bytes} smaller than one element"
            )
        self.total_bytes = int(total_bytes)
        self.chunk_bytes = int(min(aligned, total_bytes))
        self.element_size = element_size

    @classmethod
    def from_elements(
        cls, n: int, chunk_elements: int, element_size: int = INT64
    ) -> "Chunker":
        """Build a chunker from element counts (paper convention)."""
        return cls(
            total_bytes=n * element_size,
            chunk_bytes=chunk_elements * element_size,
            element_size=element_size,
        )

    @property
    def num_chunks(self) -> int:
        """Number of chunks including a final partial one."""
        return -(-self.total_bytes // self.chunk_bytes)

    def chunks(self) -> list[Chunk]:
        """All chunks in order."""
        return list(self.iter_chunks())

    def iter_chunks(self) -> Iterator[Chunk]:
        """Iterate chunks lazily (large data sets have few, but the
        generator form keeps geometry and slicing in lockstep)."""
        index = 0
        offset = 0
        while offset < self.total_bytes:
            nbytes = min(self.chunk_bytes, self.total_bytes - offset)
            yield Chunk(index=index, offset=offset, nbytes=nbytes)
            index += 1
            offset += nbytes

    def chunk_elements(self) -> int:
        """Elements per full chunk."""
        return self.chunk_bytes // self.element_size

    def split_array(self, array: np.ndarray) -> list[np.ndarray]:
        """Slice ``array`` into views matching the chunk geometry.

        The array's total byte size must equal ``total_bytes``.
        """
        if array.nbytes != self.total_bytes:
            raise ConfigError(
                f"array has {array.nbytes} bytes, chunker expects "
                f"{self.total_bytes}"
            )
        if array.itemsize != self.element_size:
            raise ConfigError(
                f"array itemsize {array.itemsize} != element_size "
                f"{self.element_size}"
            )
        out = []
        for c in self.iter_chunks():
            start = c.offset // self.element_size
            stop = c.end // self.element_size
            out.append(array[start:stop])
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Chunker(total={self.total_bytes}, chunk={self.chunk_bytes}, "
            f"n={self.num_chunks})"
        )
