"""The paper's primary contribution: chunking + buffering for MLM.

This package implements the kernel-redesign methodology of Section 3:

* :mod:`repro.core.chunking` — partition a data set into near-memory
  sized chunks (and MLM-sort's "megachunks");
* :mod:`repro.core.kernel` — the user-facing kernel abstraction
  (a compute stage characterized by streaming passes and a write
  fraction, optionally with a functional NumPy implementation);
* :mod:`repro.core.modes` — the four usage modes (flat, hybrid,
  implicit cache, hardware cache) and how each turns logical kernel
  traffic into physical device traffic;
* :mod:`repro.core.buffering` — the triple-buffered pipeline of
  Fig. 2 (copy-in / compute / copy-out overlapped across steps);
* :mod:`repro.core.planner` — chunk-size and thread-split selection
  driven by the analytic model.
"""

from repro.core.chunking import Chunk, Chunker
from repro.core.kernel import FunctionKernel, Kernel, StreamKernel
from repro.core.modes import UsageMode, required_memory_mode, mode_label
from repro.core.buffering import BufferedPipeline, PipelineResult
from repro.core.planner import plan_chunk_bytes, plan_pools
from repro.core.resilient import (
    ChunkOutcome,
    ResilienceReport,
    ResilientPipeline,
)

__all__ = [
    "Chunk",
    "Chunker",
    "Kernel",
    "StreamKernel",
    "FunctionKernel",
    "UsageMode",
    "required_memory_mode",
    "mode_label",
    "BufferedPipeline",
    "PipelineResult",
    "plan_chunk_bytes",
    "plan_pools",
    "ChunkOutcome",
    "ResilienceReport",
    "ResilientPipeline",
]
