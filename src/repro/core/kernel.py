"""Kernel abstraction: the compute stage of a chunked algorithm.

A kernel is characterized, for timing purposes, by how many streaming
passes it makes over a chunk and what fraction of the chunk it writes;
for correctness purposes it may also carry a functional NumPy
implementation. The merge benchmark of Section 5 is a
:class:`StreamKernel` with ``passes == repeats``; MLM-sort's serial
sort stage is a recursive kernel whose pass structure the algorithms
package derives from the chunk size.
"""

from __future__ import annotations

import abc
from typing import Callable

import numpy as np

from repro.errors import ConfigError


class Kernel(abc.ABC):
    """A compute stage applied to each chunk."""

    #: Display name.
    name: str = "kernel"

    @abc.abstractmethod
    def passes(self, chunk_bytes: float) -> float:
        """Streaming passes (read+write sweeps) over a chunk of this size."""

    @property
    def write_fraction(self) -> float:
        """Fraction of touched bytes dirtied per pass (default 1.0:
        read-modify-write kernels like sort and merge)."""
        return 1.0

    def apply(self, chunk: np.ndarray) -> np.ndarray:
        """Functional implementation; kernels used only for timing may
        leave this unimplemented."""
        raise NotImplementedError(f"kernel {self.name!r} is timing-only")

    def logical_bytes(self, chunk_bytes: float) -> float:
        """Logical traffic of the compute stage: ``2 * B * passes``
        (the paper's Eq. 4 numerator), counting read+write per pass."""
        if chunk_bytes < 0:
            raise ConfigError("chunk_bytes must be non-negative")
        return 2.0 * chunk_bytes * self.passes(chunk_bytes)


class StreamKernel(Kernel):
    """A kernel with a fixed pass count, e.g. the merge benchmark.

    Parameters
    ----------
    passes:
        Number of read+write sweeps per chunk (the benchmark's
        ``repeats``).
    name:
        Display name.
    fn:
        Optional functional implementation applied once per pass.
    write_fraction:
        Dirty fraction per pass.
    """

    def __init__(
        self,
        passes: float,
        name: str = "stream",
        fn: Callable[[np.ndarray], np.ndarray] | None = None,
        write_fraction: float = 1.0,
    ) -> None:
        if passes < 0:
            raise ConfigError("passes must be non-negative")
        if not 0.0 <= write_fraction <= 1.0:
            raise ConfigError("write_fraction must be in [0, 1]")
        self._passes = float(passes)
        self.name = name
        self._fn = fn
        self._write_fraction = write_fraction

    def passes(self, chunk_bytes: float) -> float:
        return self._passes

    @property
    def write_fraction(self) -> float:
        return self._write_fraction

    def apply(self, chunk: np.ndarray) -> np.ndarray:
        if self._fn is None:
            return super().apply(chunk)
        out = chunk
        for _ in range(int(round(self._passes))):
            out = self._fn(out)
        return out


class FunctionKernel(Kernel):
    """Wrap an arbitrary array function as a single-pass kernel."""

    def __init__(
        self,
        fn: Callable[[np.ndarray], np.ndarray],
        name: str = "fn",
        passes: float = 1.0,
        write_fraction: float = 1.0,
    ) -> None:
        if passes < 0:
            raise ConfigError("passes must be non-negative")
        self._fn = fn
        self.name = name
        self._passes = float(passes)
        self._write_fraction = write_fraction

    def passes(self, chunk_bytes: float) -> float:
        return self._passes

    @property
    def write_fraction(self) -> float:
        return self._write_fraction

    def apply(self, chunk: np.ndarray) -> np.ndarray:
        return self._fn(chunk)
