"""The triple-buffered chunk pipeline of Section 3 (Fig. 2-5).

In flat and hybrid usage modes, three MCDRAM-resident buffers rotate
roles across steps: while chunk ``i`` is copied in, chunk ``i-1`` is
computed on and chunk ``i-2`` is copied out. Each step is a barrier
(``T_step = max(T_copyin, T_comp, T_copyout)``), which is exactly how
the engine executes a phase of concurrent flows. In the implicit and
cache usage modes there are no copy flows — the hardware cache moves
the data — and in DDR mode the chunk simply streams in place.

The pipeline *actually allocates* its buffers through the memkind
heap, so the capacity constraints the paper discusses (three buffers
must fit in addressable MCDRAM; hybrid mode shrinks the maximum chunk)
surface as allocation failures rather than silent fictions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CapacityError, AllocationError
from repro.core.chunking import Chunker
from repro.core.kernel import Kernel
from repro.core.modes import UsageMode, compute_multipliers, validate_node_mode
from repro.memkind.allocator import Allocation, Heap
from repro.memkind.kinds import MEMKIND_HBW
from repro.model.params import ModelParams
from repro.simknl.engine import Phase, Plan, RunResult
from repro.simknl.flows import Flow
from repro.simknl.node import KNLNode
from repro.threads.pool import PoolSet


@dataclass
class PipelineResult:
    """Outcome of running a chunked pipeline."""

    run: RunResult
    plan: Plan
    mode: UsageMode
    num_chunks: int
    buffers_bytes: float

    @property
    def elapsed(self) -> float:
        """Simulated seconds."""
        return self.run.elapsed

    def traffic_gb(self, resource: str) -> float:
        """Physical traffic on ``resource`` in GB."""
        return self.run.traffic_gb(resource)


class BufferedPipeline:
    """Build and execute the chunked pipeline for one kernel.

    Parameters
    ----------
    node:
        Booted node (BIOS mode must match the usage mode).
    mode:
        Usage mode.
    pools:
        Thread partition. Copy pools may be empty for modes without
        explicit copies.
    chunker:
        Chunk geometry of the data set.
    kernel:
        The compute stage.
    params:
        Model parameters supplying ``s_copy``/``s_comp`` per-thread
        rates.
    buffered:
        When True (default) copy/compute/copy-out overlap across steps
        with three buffers; when False each chunk is processed
        sequentially (copy-in, compute, copy-out) with one buffer —
        MLM-sort's unbuffered style.
    per_thread_compute_rate:
        Override for the compute pool's per-thread rate (defaults to
        ``params.s_comp``).
    """

    def __init__(
        self,
        node: KNLNode,
        mode: UsageMode,
        pools: PoolSet,
        chunker: Chunker,
        kernel: Kernel,
        params: ModelParams | None = None,
        buffered: bool = True,
        per_thread_compute_rate: float | None = None,
    ) -> None:
        validate_node_mode(node, mode)
        self.node = node
        self.mode = mode
        self.pools = pools
        self.chunker = chunker
        self.kernel = kernel
        self.params = params or ModelParams()
        self.buffered = buffered
        self.s_comp = (
            per_thread_compute_rate
            if per_thread_compute_rate is not None
            else self.params.s_comp
        )
        self._buffers: list[Allocation] = []

    # ---- buffer management ----------------------------------------------

    def required_buffers(self) -> int:
        """MCDRAM buffers needed: 3 when buffered, 1 otherwise, 0 for
        modes without explicit placement."""
        if self.mode in (UsageMode.FLAT, UsageMode.HYBRID):
            return 3 if self.buffered else 1
        return 0

    def allocate_buffers(self, heap: Heap) -> float:
        """Reserve the MCDRAM buffers via the memkind heap.

        Returns the total bytes reserved. Raises
        :class:`~repro.errors.CapacityError` when the buffers do not
        fit in addressable MCDRAM — the paper's chunk-size limit.
        """
        count = self.required_buffers()
        if count == 0:
            return 0.0
        try:
            for _ in range(count):
                self._buffers.append(
                    heap.allocate(self.chunker.chunk_bytes, MEMKIND_HBW)
                )
        except AllocationError as exc:
            self.release_buffers(heap)
            raise CapacityError(
                f"{count} buffers of {self.chunker.chunk_bytes} bytes do "
                f"not fit in addressable MCDRAM "
                f"({self.node.addressable_mcdram:.0f} bytes): {exc}"
            ) from exc
        return float(count * self.chunker.chunk_bytes)

    def release_buffers(self, heap: Heap) -> None:
        """Free any buffers still held."""
        while self._buffers:
            heap.free(self._buffers.pop())

    # ---- flow construction ------------------------------------------------

    def _copy_in_flow(self, nbytes: float, label: str) -> Flow:
        return self.pools.copy_in.flow(
            per_thread_rate=self.params.s_copy,
            resources={"ddr": 1.0, "mcdram": 1.0},
            nbytes=nbytes,
            name=label,
        )

    def _copy_out_flow(self, nbytes: float, label: str) -> Flow:
        return self.pools.copy_out.flow(
            per_thread_rate=self.params.s_copy,
            resources={"ddr": 1.0, "mcdram": 1.0},
            nbytes=nbytes,
            name=label,
        )

    def _compute_flow(self, chunk_bytes: float, label: str, cold: bool) -> Flow:
        resources = compute_multipliers(
            self.node,
            self.mode,
            working_set=chunk_bytes,
            passes=self.kernel.passes(chunk_bytes),
            write_fraction=self.kernel.write_fraction,
            cold=cold,
        )
        return self.pools.compute.flow(
            per_thread_rate=self.s_comp,
            resources=resources,
            nbytes=self.kernel.logical_bytes(chunk_bytes),
            name=label,
        )

    # ---- plan construction -------------------------------------------------

    def build_plan(self) -> Plan:
        """Emit the step-by-step flow plan."""
        chunks = self.chunker.chunks()
        name = f"{self.kernel.name}/{self.mode.value}"
        plan = Plan(name=name)
        explicit = self.mode in (UsageMode.FLAT, UsageMode.HYBRID)
        if explicit and self.buffered:
            # Fig. 2: step s copies chunk s in, computes chunk s-1,
            # copies chunk s-2 out.
            n = len(chunks)
            for s in range(n + 2):
                flows = []
                if s < n:
                    flows.append(
                        self._copy_in_flow(chunks[s].nbytes, f"copy-in[{s}]")
                    )
                if 0 <= s - 1 < n:
                    c = chunks[s - 1]
                    flows.append(
                        self._compute_flow(c.nbytes, f"compute[{s - 1}]", True)
                    )
                if 0 <= s - 2 < n:
                    flows.append(
                        self._copy_out_flow(
                            chunks[s - 2].nbytes, f"copy-out[{s - 2}]"
                        )
                    )
                # Pools hold their threads for the whole step and spin
                # at the barrier: no mid-step bandwidth resharing.
                plan.add(Phase(name=f"step{s}", flows=flows, static_rates=True))
            return plan
        if explicit:
            # Unbuffered: sequential copy-in, compute, copy-out.
            for c in chunks:
                plan.add(
                    Phase(
                        name=f"chunk{c.index}/in",
                        flows=[self._copy_in_flow(c.nbytes, "copy-in")],
                    )
                )
                plan.add(
                    Phase(
                        name=f"chunk{c.index}/compute",
                        flows=[self._compute_flow(c.nbytes, "compute", True)],
                    )
                )
                plan.add(
                    Phase(
                        name=f"chunk{c.index}/out",
                        flows=[self._copy_out_flow(c.nbytes, "copy-out")],
                    )
                )
            return plan
        # Implicit / cache / DDR: compute-only phases; the cache (if
        # any) pulls data in on first touch, cold per chunk.
        for c in chunks:
            plan.add(
                Phase(
                    name=f"chunk{c.index}",
                    flows=[self._compute_flow(c.nbytes, "compute", True)],
                )
            )
        return plan

    def prepare(self, heap: Heap | None = None) -> Plan:
        """Build the plan without executing it, with :meth:`run`'s exact
        buffer accounting: buffers are allocated — surfacing the same
        :class:`~repro.errors.CapacityError` an over-committed
        configuration raises — and released again. The cross-cell sweep
        lowering (:mod:`repro.simknl.batch`) uses this to collect many
        cells' plans before one tensor evaluation.
        """
        own_heap = heap or Heap(self.node)
        self.allocate_buffers(own_heap)
        try:
            return self.build_plan()
        finally:
            self.release_buffers(own_heap)

    def run(self, heap: Heap | None = None) -> PipelineResult:
        """Allocate buffers, execute the plan, release buffers."""
        own_heap = heap or Heap(self.node)
        reserved = self.allocate_buffers(own_heap)
        try:
            plan = self.build_plan()
            result = self.node.run(plan)
        finally:
            self.release_buffers(own_heap)
        return PipelineResult(
            run=result,
            plan=plan,
            mode=self.mode,
            num_chunks=self.chunker.num_chunks,
            buffers_bytes=reserved,
        )

    def run_functional(self, array) -> "list":
        """Apply the kernel to a real array, chunk by chunk.

        The functional twin of :meth:`run`: the same chunk geometry
        drives real :meth:`Kernel.apply` calls on array views, so
        tests and examples can validate a kernel's semantics with the
        exact boundaries the timed plan charges for. Returns the list
        of per-chunk outputs (kernels may change chunk lengths, e.g. a
        filter, so outputs are not stitched automatically).
        """
        return [self.kernel.apply(c) for c in self.chunker.split_array(array)]
