"""Usage modes: how a chunked kernel engages the MCDRAM.

The paper distinguishes the *BIOS memory mode* (what the hardware
does — flat, cache, hybrid) from the *usage mode* (what the software
does). This module defines the software side:

* ``FLAT`` — explicit chunking with copies into addressable MCDRAM
  (requires flat BIOS mode);
* ``HYBRID`` — the same against the addressable fraction of hybrid
  BIOS mode;
* ``IMPLICIT`` — the paper's proposal: run the *chunked* algorithm in
  cache BIOS mode with no explicit copies, letting the hardware cache
  pull each chunk in on first touch (Fig. 5);
* ``CACHE`` — unchunked legacy code in cache BIOS mode (the GNU-cache
  baseline);
* ``DDR`` — no MCDRAM use at all (the GNU-flat / MLM-ddr baselines).

It also provides the conversion from a kernel's *logical* streaming
traffic to *physical* per-device flow multipliers under each usage
mode, including the divide-and-conquer cache-residency split that
explains why MLM-implicit tolerates megachunks larger than MCDRAM
(Section 4: "every thread can have its active set in MCDRAM").
"""

from __future__ import annotations

import enum
import math

from repro.errors import ConfigError
from repro.simknl.node import KNLNode, MemoryMode


class UsageMode(enum.Enum):
    """Software usage modes studied by the paper."""

    FLAT = "flat"
    HYBRID = "hybrid"
    IMPLICIT = "implicit"
    CACHE = "cache"
    DDR = "ddr"


_MODE_LABELS = {
    UsageMode.FLAT: "flat (explicit chunking)",
    UsageMode.HYBRID: "hybrid (explicit chunking, partial cache)",
    UsageMode.IMPLICIT: "implicit cache (chunked, no copies)",
    UsageMode.CACHE: "hardware cache (unchunked)",
    UsageMode.DDR: "DDR only",
}


def mode_label(mode: UsageMode) -> str:
    """Human-readable label used by experiment reports."""
    return _MODE_LABELS[mode]


def required_memory_mode(mode: UsageMode) -> MemoryMode | None:
    """The BIOS memory mode a usage mode requires (None: any)."""
    if mode is UsageMode.FLAT:
        return MemoryMode.FLAT
    if mode is UsageMode.HYBRID:
        return MemoryMode.HYBRID
    if mode in (UsageMode.IMPLICIT, UsageMode.CACHE):
        return MemoryMode.CACHE
    return None


def validate_node_mode(node: KNLNode, mode: UsageMode) -> None:
    """Raise :class:`ConfigError` when the node is booted incompatibly."""
    req = required_memory_mode(mode)
    if req is not None and node.mode is not req:
        raise ConfigError(
            f"usage mode {mode.value!r} requires BIOS mode {req.value!r}, "
            f"node is booted in {node.mode.value!r}"
        )


def compute_multipliers(
    node: KNLNode,
    mode: UsageMode,
    working_set: float,
    passes: float,
    write_fraction: float = 1.0,
    cold: bool = True,
) -> dict[str, float]:
    """Per-logical-byte resource multipliers for a compute stage.

    The stage's logical traffic is ``2 * working_set * passes`` bytes
    (read+write per pass). In flat/hybrid modes the chunk is resident
    in addressable MCDRAM, so every logical byte is one MCDRAM byte;
    in DDR mode one DDR byte; in the cache-backed modes the traffic is
    filtered through the analytic direct-mapped cache model, which
    converts it to MCDRAM-hit plus DDR miss/fill/writeback bytes.
    """
    validate_node_mode(node, mode)
    if working_set < 0 or passes < 0:
        raise ConfigError("working_set and passes must be non-negative")
    if mode in (UsageMode.FLAT, UsageMode.HYBRID):
        return {"mcdram": 1.0}
    if mode is UsageMode.DDR:
        return {"ddr": 1.0}
    # Cache-backed modes: each kernel pass is one read sweep plus one
    # (fractional) write sweep over the working set.
    if node.cache_model is None:
        raise ConfigError("cache-backed usage mode on a node without cache")
    sweeps = max(1, int(round(2 * passes)))
    traffic = node.cache_model.stream(
        working_set,
        passes=sweeps,
        write_fraction=write_fraction / 2.0,
        cold=cold,
    )
    logical = working_set * sweeps
    if logical <= 0:
        return {"mcdram": 0.0, "ddr": 0.0}
    return {
        "mcdram": traffic.mcdram_bytes / logical,
        "ddr": traffic.ddr_bytes / logical,
    }


def dc_cache_split(
    node: KNLNode,
    mode: UsageMode,
    working_set: float,
    levels: float,
    level_offset: float = 0.0,
) -> tuple[float, float]:
    """Split a divide-and-conquer kernel's levels into (uncached, cached).

    A recursive sort over ``working_set`` bytes halves its active set
    each level. Under a cache-backed usage mode, the first
    ``log2(working_set / cache)`` levels stream a working set larger
    than the MCDRAM cache (thrashing to DDR); all deeper levels are
    cache-resident and run at MCDRAM speed. In flat/hybrid/DDR modes
    there is no cache: all levels run against the chunk's home device,
    so the split is (0, levels) for flat and (levels, 0) is meaningless
    — callers use :func:`compute_multipliers` directly instead.

    Returns the pair ``(uncached_levels, cached_levels)`` with
    ``uncached + cached == levels``.
    """
    if levels < 0:
        raise ConfigError("levels must be non-negative")
    if mode not in (UsageMode.IMPLICIT, UsageMode.CACHE):
        raise ConfigError("dc_cache_split applies to cache-backed modes only")
    validate_node_mode(node, mode)
    if level_offset < 0:
        raise ConfigError("level_offset must be non-negative")
    cache = node.cache_model.usable_capacity if node.cache_model else 0.0
    if cache <= 0 or working_set <= cache:
        return (0.0, levels)
    uncached = min(levels, max(0.0, math.log2(working_set / cache) - level_offset))
    return (uncached, levels - uncached)
