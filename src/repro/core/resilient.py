"""Fault-tolerant chunked execution: the graceful-degradation layer.

:class:`ResilientPipeline` wraps the chunked execution discipline of
:class:`~repro.core.buffering.BufferedPipeline` with the recovery
paths a production system needs when the stack misbehaves:

* **per-chunk retry** — a chunk hit by a transient fault is retried up
  to a bounded budget before the run aborts with
  :class:`~repro.errors.RetryExhaustedError`;
* **straggler detection** — a chunk whose simulated time exceeds
  ``straggler_factor`` x the median of its predecessors is re-run once
  and the better time kept (the classic speculative-execution move);
* **allocation fallback** — each chunk's MCDRAM buffer goes through
  the fault-aware memkind heap: an injected allocation failure lands
  the buffer in DDR (counted, warned) and that chunk runs the DDR
  path, exactly the ``HBW_PREFERRED`` discipline;
* **mode degradation** — when MCDRAM becomes unusable (its effective
  bandwidth no longer beats DDR, or its region cannot hold a buffer),
  the remaining chunks permanently downgrade from the FLAT/HYBRID
  plan to the MLM-ddr path. Functional correctness is preserved: the
  same chunks are processed, just placed and timed differently.

Capacity-loss and worker-loss fault events recorded by the engine are
applied between chunks: the heap region shrinks (live buffers
survive) and the thread pools re-split between compute and copy roles.

Extension beyond the paper (DESIGN.md Section 7) layered over the
Section 3 / Fig. 2 chunked pipeline.
"""

from __future__ import annotations

import statistics
import warnings
from dataclasses import dataclass, field

from repro.core.chunking import Chunk, Chunker
from repro.core.kernel import Kernel
from repro.core.modes import UsageMode, compute_multipliers, validate_node_mode
from repro.errors import (
    AllocationError,
    CapacityError,
    ConfigError,
    DegradedModeWarning,
    RetryExhaustedError,
    TransientFaultError,
)
from repro.faults import FaultCounters, FaultInjector, FaultKind
from repro.memkind.allocator import Heap
from repro.memkind.kinds import MEMKIND_HBW
from repro.model.params import ModelParams
from repro.simknl.engine import Engine, Phase, Plan
from repro.simknl.flows import Flow
from repro.simknl.node import KNLNode
from repro.telemetry import names as _tn
from repro.telemetry import runtime as _tm
from repro.threads.pool import PoolSet

#: Copy threads per direction used when no pool split is supplied.
_DEFAULT_COPY_THREADS = 8


@dataclass
class ChunkOutcome:
    """What happened to one chunk."""

    index: int
    elapsed: float
    attempts: int
    device: str
    straggler: bool = False


@dataclass
class ResilienceReport:
    """Outcome of a resilient run, including the degradation ledger."""

    elapsed: float
    traffic: dict[str, float]
    chunks: list[ChunkOutcome]
    counters: FaultCounters
    mode: UsageMode
    degraded_mode: bool = False
    degraded_at_chunk: int | None = None
    fault_log: list[str] = field(default_factory=list)

    def traffic_gb(self, resource: str) -> float:
        """Physical traffic on ``resource`` in decimal GB."""
        return self.traffic.get(resource, 0.0) / 1e9

    @property
    def total_attempts(self) -> int:
        """Chunk executions including retries and straggler re-runs."""
        return sum(c.attempts for c in self.chunks)

    @property
    def recovery_events(self) -> int:
        """Fallback/retry/degradation actions taken during the run."""
        return self.counters.recovery_events


class ResilientPipeline:
    """Chunk-at-a-time execution with retries and degradation paths.

    Parameters
    ----------
    node:
        Booted node (BIOS mode must match ``mode``).
    mode:
        Usage mode the run *starts* in; FLAT/HYBRID may degrade to DDR.
    chunker:
        Chunk geometry of the data set.
    kernel:
        The compute stage (timed and, for :meth:`run_functional`,
        functional).
    pools:
        Thread partition; defaults to a standard compute/copy split
        for explicit modes and compute-only otherwise.
    params:
        Model parameters supplying ``s_copy``/``s_comp``.
    injector:
        Optional :class:`~repro.faults.FaultInjector`; without one the
        pipeline still retries stragglers but sees no faults.
    max_chunk_retries:
        Transient-fault retries allowed per chunk before aborting.
    straggler_factor:
        A chunk slower than this multiple of the running median is
        re-run once.
    """

    def __init__(
        self,
        node: KNLNode,
        mode: UsageMode,
        chunker: Chunker,
        kernel: Kernel,
        pools: PoolSet | None = None,
        params: ModelParams | None = None,
        injector: FaultInjector | None = None,
        max_chunk_retries: int = 2,
        straggler_factor: float = 4.0,
    ) -> None:
        validate_node_mode(node, mode)
        if max_chunk_retries < 0:
            raise ConfigError("max_chunk_retries must be non-negative")
        if straggler_factor <= 1.0:
            raise ConfigError("straggler_factor must exceed 1")
        self.node = node
        self.mode = mode
        self.chunker = chunker
        self.kernel = kernel
        self.params = params or ModelParams()
        self.injector = injector
        self.counters: FaultCounters = (
            injector.counters if injector is not None else FaultCounters()
        )
        self.max_chunk_retries = max_chunk_retries
        self.straggler_factor = straggler_factor
        self.pools = pools or self._default_pools()

    def _default_pools(self) -> PoolSet:
        if self.mode in (UsageMode.FLAT, UsageMode.HYBRID):
            copy = min(
                _DEFAULT_COPY_THREADS, max(1, self.node.total_threads // 8)
            )
            return PoolSet.split(
                self.node,
                compute=self.node.total_threads - 2 * copy,
                copy_in=copy,
            )
        return PoolSet.compute_only(self.node)

    # ---- plan construction ----------------------------------------------

    def _chunk_plan(self, chunk: Chunk, mode: UsageMode) -> Plan:
        """Unbuffered per-chunk sub-plan (copy-in / compute / copy-out)."""
        nbytes = float(chunk.nbytes)
        plan = Plan(name=f"{self.kernel.name}/chunk{chunk.index}")
        explicit = mode in (UsageMode.FLAT, UsageMode.HYBRID)
        copy_res = {"ddr": 1.0, "mcdram": 1.0}
        if explicit:
            threads = self.pools.copy_in.size or self.pools.compute.size
            plan.add(
                Phase(
                    f"chunk{chunk.index}/in",
                    [Flow("copy-in", threads, self.params.s_copy, copy_res, nbytes)],
                )
            )
        multipliers = compute_multipliers(
            self.node,
            mode,
            working_set=nbytes,
            passes=self.kernel.passes(nbytes),
            write_fraction=self.kernel.write_fraction,
            cold=True,
        )
        plan.add(
            Phase(
                f"chunk{chunk.index}/compute",
                [
                    Flow(
                        "compute",
                        self.pools.compute.size,
                        self.params.s_comp,
                        multipliers,
                        self.kernel.logical_bytes(nbytes),
                    )
                ],
            )
        )
        if explicit:
            threads = self.pools.copy_out.size or self.pools.compute.size
            plan.add(
                Phase(
                    f"chunk{chunk.index}/out",
                    [Flow("copy-out", threads, self.params.s_copy, copy_res, nbytes)],
                )
            )
        return plan

    # ---- degradation plumbing -------------------------------------------

    def _mcdram_unusable(self, engine: Engine) -> bool:
        """Whether degraded MCDRAM no longer beats DDR for this run."""
        mc = engine.resources.get("mcdram")
        dd = engine.resources.get("ddr")
        return mc is not None and dd is not None and mc.capacity <= dd.capacity

    def _degrade_to_ddr(self, mode: UsageMode, index: int, log: list[str], why: str) -> UsageMode:
        if mode is UsageMode.DDR:
            return mode
        self.counters.mode_degradations += 1
        tel = _tm.current()
        if tel.enabled:
            tel.metrics.counter(
                _tn.RESILIENCE_MODE_DEGRADATIONS_TOTAL
            ).inc()
            tel.events.emit(
                _tn.EVENT_MODE_DEGRADE,
                from_mode=mode.value,
                to_mode=UsageMode.DDR.value,
                chunk=index,
                reason=why,
            )
        log.append(f"chunk {index}: degraded {mode.value} -> ddr ({why})")
        warnings.warn(
            f"MCDRAM unusable ({why}); degrading {mode.value!r} plan to the "
            "DDR path from chunk "
            f"{index} onward",
            DegradedModeWarning,
            stacklevel=3,
        )
        return UsageMode.DDR

    def _apply_recorded_events(
        self, heap: Heap, seen: int, log: list[str]
    ) -> int:
        """React to capacity-/worker-loss events the engine recorded."""
        if self.injector is None:
            return seen
        events = self.injector.events
        for ev in events[seen:]:
            if ev.kind is FaultKind.CAPACITY_LOSS and ev.target:
                region = heap.regions.get(ev.target)
                if region is not None:
                    lost = heap.shrink_device(
                        ev.target, int(ev.severity * region.size)
                    )
                    log.append(
                        f"{ev.target}: capacity loss surrendered {lost} bytes"
                    )
                self.node.apply_fault(ev)
            elif ev.kind is FaultKind.WORKER_LOSS:
                owned = (
                    self.pools.compute.threads
                    + self.pools.copy_in.threads
                    + self.pools.copy_out.threads
                )
                k = int(round(ev.severity * len(owned)))
                if k > 0:
                    # Deterministic victims: the highest-numbered ids.
                    victims = sorted(owned)[-k:]
                    with warnings.catch_warnings():
                        warnings.simplefilter("ignore", DegradedModeWarning)
                        self.pools = self.pools.resplit_after_loss(victims)
                    self.counters.worker_losses += 1
                    log.append(
                        f"worker loss: {k} thread(s) dropped; pools re-split "
                        f"to compute={self.pools.compute.size}, "
                        f"copy={self.pools.copy_threads}"
                    )
        return len(events)

    def _check_chunk_with_retries(self, index: int) -> int:
        """Consume injected chunk faults; returns attempts used."""
        attempts = 1
        while True:
            try:
                if self.injector is not None:
                    self.injector.check_chunk(index)
                return attempts
            except TransientFaultError as exc:
                if attempts > self.max_chunk_retries:
                    raise RetryExhaustedError(
                        f"chunk {index} failed after {attempts} attempts",
                        attempts=attempts,
                    ) from exc
                self.counters.chunk_retries += 1
                attempts += 1
                tel = _tm.current()
                if tel.enabled:
                    tel.metrics.counter(
                        _tn.RESILIENCE_CHUNK_RETRIES_TOTAL
                    ).inc()
                    tel.events.emit(
                        _tn.EVENT_CHUNK_RETRY, chunk=index, attempt=attempts
                    )

    # ---- execution ------------------------------------------------------

    def run(self, heap: Heap | None = None) -> ResilienceReport:
        """Execute all chunks with fault recovery; returns the report."""
        engine = Engine(
            self.node.resources(), record_events=False, injector=self.injector
        )
        own_heap = heap or Heap(self.node, injector=self.injector)
        mode = self.mode
        degraded_at: int | None = None
        log: list[str] = []
        outcomes: list[ChunkOutcome] = []
        traffic: dict[str, float] = {}
        times: list[float] = []
        clock = 0.0
        events_seen = len(self.injector.events) if self.injector else 0

        for chunk in self.chunker.chunks():
            if mode is not UsageMode.DDR and self._mcdram_unusable(engine):
                mode = self._degrade_to_ddr(
                    mode, chunk.index, log, "bandwidth below DDR"
                )
                degraded_at = degraded_at or chunk.index
            chunk_mode = mode
            alloc = None
            if mode in (UsageMode.FLAT, UsageMode.HYBRID):
                try:
                    alloc = own_heap.allocate(chunk.nbytes, MEMKIND_HBW)
                    if "ddr" in alloc.devices:
                        # Injected allocation fault: this chunk's buffer
                        # lives in DDR, so it runs the DDR path.
                        chunk_mode = UsageMode.DDR
                except (AllocationError, CapacityError):
                    mode = self._degrade_to_ddr(
                        mode, chunk.index, log, "buffer allocation failed"
                    )
                    degraded_at = degraded_at or chunk.index
                    chunk_mode = mode
            try:
                attempts = self._check_chunk_with_retries(chunk.index)
                subplan = self._chunk_plan(chunk, chunk_mode)
                res = engine.run(subplan)
                engine.phase_offset += len(subplan.phases)
                elapsed = res.elapsed
                straggler = False
                if len(times) >= 2:
                    typical = statistics.median(times)
                    if typical > 0 and elapsed > self.straggler_factor * typical:
                        # Speculative re-execution: run it again, keep
                        # the better of the two attempts.
                        straggler = True
                        self.counters.stragglers += 1
                        tel = _tm.current()
                        if tel.enabled:
                            tel.metrics.counter(
                                _tn.RESILIENCE_STRAGGLERS_TOTAL
                            ).inc()
                            tel.events.emit(
                                _tn.EVENT_CHUNK_STRAGGLER,
                                chunk=chunk.index,
                                seconds=elapsed,
                                median_seconds=typical,
                            )
                        retry = engine.run(subplan)
                        engine.phase_offset += len(subplan.phases)
                        attempts += 1
                        if retry.elapsed < elapsed:
                            res, elapsed = retry, retry.elapsed
                        log.append(
                            f"chunk {chunk.index}: straggler "
                            f"({elapsed:.3g}s vs median {typical:.3g}s), re-run"
                        )
                for name, moved in res.traffic.items():
                    traffic[name] = traffic.get(name, 0.0) + moved
                log.extend(res.faults)
                times.append(elapsed)
                clock += elapsed
                device = "ddr" if chunk_mode is UsageMode.DDR else "mcdram"
                tel = _tm.current()
                if tel.enabled:
                    tel.metrics.counter(
                        _tn.RESILIENCE_CHUNKS_TOTAL
                    ).inc(device=device)
                outcomes.append(
                    ChunkOutcome(
                        index=chunk.index,
                        elapsed=elapsed,
                        attempts=attempts,
                        device=device,
                        straggler=straggler,
                    )
                )
            finally:
                if alloc is not None:
                    own_heap.free(alloc)
            events_seen = self._apply_recorded_events(own_heap, events_seen, log)

        return ResilienceReport(
            elapsed=clock,
            traffic=traffic,
            chunks=outcomes,
            counters=self.counters,
            mode=mode,
            degraded_mode=mode is not self.mode,
            degraded_at_chunk=degraded_at,
            fault_log=log,
        )

    def run_functional(self, array, heap: Heap | None = None) -> list:
        """Apply the kernel to a real array with the same recovery paths.

        Each chunk's buffer is allocated through the fault-aware heap
        (recording DDR fallbacks) and transient chunk faults are
        retried, so functional outputs stay correct under any fault
        plan that is not permanently fatal. Returns per-chunk outputs.
        """
        own_heap = heap or Heap(self.node, injector=self.injector)
        explicit = self.mode in (UsageMode.FLAT, UsageMode.HYBRID)
        outs = []
        for chunk, view in zip(
            self.chunker.chunks(), self.chunker.split_array(array)
        ):
            alloc = None
            if explicit:
                try:
                    alloc = own_heap.allocate(chunk.nbytes, MEMKIND_HBW)
                except (AllocationError, CapacityError):
                    alloc = None  # DDR-resident chunk; compute anyway.
            try:
                self._check_chunk_with_retries(chunk.index)
                outs.append(self.kernel.apply(view))
            finally:
                if alloc is not None:
                    own_heap.free(alloc)
        return outs
