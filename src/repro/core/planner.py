"""Model-driven configuration choices: chunk size and thread split.

The paper's guidance (Sections 3.2 and 4.2): use the largest chunk the
near memory allows (Fig. 7 shows time falling monotonically with chunk
size) and the model-optimal number of copy threads (Table 3).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.core.modes import UsageMode
from repro.model.optimizer import optimal_copy_threads
from repro.model.params import ModelParams
from repro.simknl.node import KNLNode
from repro.threads.pool import PoolSet
from repro.units import INT64


def plan_chunk_bytes(
    node: KNLNode,
    mode: UsageMode,
    total_bytes: int,
    buffered: bool = True,
    element_size: int = INT64,
) -> int:
    """Largest chunk size (bytes) the usage mode permits.

    Flat/hybrid must fit all live buffers in addressable MCDRAM
    (3 when buffered). Implicit mode sizes chunks to the hardware
    cache so a *generic* streaming kernel re-hits on every pass after
    the cold fill — MLM-sort's megachunk-beyond-MCDRAM trick is
    specific to divide-and-conquer kernels whose active sets shrink
    (pass ``megachunk_elements`` explicitly there). Cache and DDR
    modes process the data set in place.
    """
    if total_bytes <= 0:
        raise ConfigError("total_bytes must be positive")
    if mode in (UsageMode.FLAT, UsageMode.HYBRID):
        buffers = 3 if buffered else 1
        budget = int(node.addressable_mcdram) // buffers
        budget = (budget // element_size) * element_size
        if budget < element_size:
            raise ConfigError(
                f"mode {mode.value!r} has no addressable MCDRAM for buffers"
            )
        return min(budget, total_bytes)
    if mode is UsageMode.IMPLICIT:
        if node.cache_model is None:
            raise ConfigError("implicit mode requires a cache-mode node")
        budget = int(node.cache_model.usable_capacity)
        budget = (budget // element_size) * element_size
        return min(budget, total_bytes)
    return total_bytes


def plan_pools(
    node: KNLNode,
    mode: UsageMode,
    params: ModelParams | None = None,
    passes: float = 1.0,
    total_threads: int | None = None,
) -> PoolSet:
    """Thread split for a usage mode.

    Explicit-copy modes get the model-optimal copy pools (Eqs. 1-5);
    all other modes dedicate every thread to compute, as the paper's
    implicit mode prescribes ("all available threads are dedicated to
    performing the compute").
    """
    budget = total_threads if total_threads is not None else node.total_threads
    if budget < 1:
        raise ConfigError("thread budget must be >= 1")
    if mode in (UsageMode.FLAT, UsageMode.HYBRID) and budget >= 3:
        p = params or ModelParams()
        best = optimal_copy_threads(p, total_threads=budget, passes=passes)
        return PoolSet.split(
            node,
            compute=budget - 2 * best.p_in,
            copy_in=best.p_in,
            copy_out=best.p_in,
        )
    return PoolSet.compute_only(node, threads=budget)
