"""Double-level chunking over a three-level memory (NVM / DDR / MCDRAM).

Implements the paper's future-work sketch: when the data set lives in
a high-capacity, low-bandwidth third level, chunking happens twice —
*outer* chunks stage NVM → DDR while *inner* chunks stage DDR → MCDRAM
for compute, each level with its own copy pools and overlap.

Three strategies are provided for comparison:

* ``direct``   — compute streams straight from NVM (no chunking);
* ``single``   — one-level chunking NVM → MCDRAM (skipping DDR);
* ``double``   — the full two-level pipeline: the outer copy of the
  next chunk overlaps the inner pipeline of the current one.

The paper's conclusion sketches this future work; chunk geometry
follows Section 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CapacityError, ConfigError
from repro.core.chunking import Chunker
from repro.core.kernel import Kernel
from repro.model.params import ModelParams
from repro.simknl.engine import Engine, Phase, Plan, RunResult
from repro.simknl.flows import Flow
from repro.simknl.node import KNLNode, MemoryMode
from repro.simknl.nvm import nvm_device
from repro.units import GiB


@dataclass(frozen=True)
class ThreeLevelConfig:
    """Configuration of a two-level chunking run.

    Parameters
    ----------
    data_bytes:
        Data set size resident in NVM.
    outer_chunk_bytes:
        NVM -> DDR staging chunk (must fit a DDR staging area).
    inner_chunk_bytes:
        DDR -> MCDRAM compute chunk (3 buffers must fit MCDRAM).
    outer_copy_threads / inner_copy_threads:
        Per-direction copy pool sizes at each level.
    compute_threads:
        Compute pool size.
    s_nvm_copy:
        Per-thread NVM<->DDR copy rate (NVM latency-bound, below
        ``s_copy``).
    """

    data_bytes: int
    outer_chunk_bytes: int = 8 * GiB
    inner_chunk_bytes: int = 4 * GiB
    outer_copy_threads: int = 8
    inner_copy_threads: int = 8
    compute_threads: int = 224
    s_nvm_copy: float = 0.6e9

    def __post_init__(self) -> None:
        if self.data_bytes <= 0:
            raise ConfigError("data_bytes must be positive")
        if self.outer_chunk_bytes <= 0 or self.inner_chunk_bytes <= 0:
            raise ConfigError("chunk sizes must be positive")
        if self.inner_chunk_bytes > self.outer_chunk_bytes:
            raise ConfigError("inner chunk cannot exceed outer chunk")
        for name in (
            "outer_copy_threads",
            "inner_copy_threads",
            "compute_threads",
        ):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1")
        if self.s_nvm_copy <= 0:
            raise ConfigError("s_nvm_copy must be positive")


class ThreeLevelPipeline:
    """Builds and runs NVM-resident kernels on an extended node.

    The node must be booted flat; the NVM device is attached as an
    extra resource.
    """

    def __init__(
        self,
        node: KNLNode,
        kernel: Kernel,
        config: ThreeLevelConfig,
        params: ModelParams | None = None,
        nvm_bandwidth: float | None = None,
    ) -> None:
        if node.mode is not MemoryMode.FLAT:
            raise ConfigError("three-level pipeline requires flat mode")
        self.node = node
        self.kernel = kernel
        self.config = config
        self.params = params or ModelParams()
        if nvm_bandwidth is not None and nvm_bandwidth <= 0:
            raise ConfigError(
                f"nvm_bandwidth must be positive, got {nvm_bandwidth}"
            )
        self.nvm = (
            nvm_device(bandwidth=nvm_bandwidth)
            if nvm_bandwidth is not None
            else nvm_device()
        )
        if config.data_bytes > self.nvm.capacity:
            raise CapacityError("data set exceeds NVM capacity")
        if 3 * config.inner_chunk_bytes > node.addressable_mcdram:
            raise CapacityError("3 inner buffers exceed addressable MCDRAM")
        if 2 * config.outer_chunk_bytes > node.ddr.capacity:
            raise CapacityError("2 outer staging buffers exceed DDR")
        # One engine serves every strategy of this pipeline: the
        # memoized water-filling solves (and the batched plan groups
        # they feed) are shared across run()/compare() calls instead of
        # being rebuilt per strategy.
        self._engine = Engine(
            [*node.resources(), self.nvm.resource()], record_events=False
        )

    # ---- flow builders ---------------------------------------------------

    def _outer_copy(self, nbytes: float, label: str) -> Flow:
        return Flow(
            label,
            self.config.outer_copy_threads,
            self.config.s_nvm_copy,
            {"nvm": 1.0, "ddr": 1.0},
            nbytes,
        )

    def _inner_copy(self, nbytes: float, label: str) -> Flow:
        return Flow(
            label,
            self.config.inner_copy_threads,
            self.params.s_copy,
            {"ddr": 1.0, "mcdram": 1.0},
            nbytes,
        )

    def _compute(self, nbytes: float, resources: dict, label: str) -> Flow:
        return Flow(
            label,
            self.config.compute_threads,
            self.params.s_comp,
            resources,
            self.kernel.logical_bytes(nbytes),
        )

    # ---- strategies --------------------------------------------------------

    def build_plan(self, strategy: str = "double") -> Plan:
        """Emit the plan for one of the three strategies."""
        if strategy == "direct":
            return self._plan_direct()
        if strategy == "single":
            return self._plan_single()
        if strategy == "double":
            return self._plan_double()
        raise ConfigError(f"unknown strategy {strategy!r}")

    def _plan_direct(self) -> Plan:
        """Compute streams straight out of NVM."""
        plan = Plan("three-level/direct")
        plan.add(
            Phase(
                "compute",
                [
                    self._compute(
                        self.config.data_bytes, {"nvm": 1.0}, "compute"
                    )
                ],
            )
        )
        return plan

    def _plan_single(self) -> Plan:
        """One-level chunking NVM -> MCDRAM, triple buffered."""
        cfg = self.config
        chunks = Chunker(cfg.data_bytes, cfg.inner_chunk_bytes).chunks()
        plan = Plan("three-level/single")
        n = len(chunks)
        for s in range(n + 2):
            flows = []
            if s < n:
                flows.append(
                    Flow(
                        f"copy-in[{s}]",
                        cfg.outer_copy_threads,
                        cfg.s_nvm_copy,
                        {"nvm": 1.0, "mcdram": 1.0},
                        chunks[s].nbytes,
                    )
                )
            if 0 <= s - 1 < n:
                flows.append(
                    self._compute(
                        chunks[s - 1].nbytes, {"mcdram": 1.0}, f"compute[{s - 1}]"
                    )
                )
            if 0 <= s - 2 < n:
                flows.append(
                    Flow(
                        f"copy-out[{s - 2}]",
                        cfg.outer_copy_threads,
                        cfg.s_nvm_copy,
                        {"nvm": 1.0, "mcdram": 1.0},
                        chunks[s - 2].nbytes,
                    )
                )
            plan.add(Phase(f"step{s}", flows, static_rates=True))
        return plan

    def _plan_double(self) -> Plan:
        """Two-level pipeline: outer staging overlaps inner compute."""
        cfg = self.config
        outer = Chunker(cfg.data_bytes, cfg.outer_chunk_bytes).chunks()
        plan = Plan("three-level/double")
        # Prime: stage the first outer chunk into DDR.
        plan.add(
            Phase(
                "outer0/stage-in",
                [self._outer_copy(outer[0].nbytes, "outer-in[0]")],
            )
        )
        for oc in outer:
            inner = Chunker(oc.nbytes, cfg.inner_chunk_bytes).chunks()
            n = len(inner)
            # Inner triple-buffered pipeline over this outer chunk;
            # the *next* outer chunk streams in concurrently, and the
            # *previous* one streams back out.
            background = []
            if oc.index + 1 < len(outer):
                nxt = outer[oc.index + 1]
                background.append(
                    self._outer_copy(nxt.nbytes, f"outer-in[{nxt.index}]")
                )
            if oc.index > 0:
                prev = outer[oc.index - 1]
                background.append(
                    self._outer_copy(prev.nbytes, f"outer-out[{prev.index}]")
                )
            remaining = {id(f): f.bytes_total for f in background}
            for s in range(n + 2):
                flows = []
                if s < n:
                    flows.append(
                        self._inner_copy(inner[s].nbytes, f"inner-in[{s}]")
                    )
                if 0 <= s - 1 < n:
                    flows.append(
                        self._compute(
                            inner[s - 1].nbytes,
                            {"mcdram": 1.0},
                            f"compute[{s - 1}]",
                        )
                    )
                if 0 <= s - 2 < n:
                    flows.append(
                        self._inner_copy(
                            inner[s - 2].nbytes, f"inner-out[{s - 2}]"
                        )
                    )
                # Spread each background outer transfer evenly over the
                # inner steps; the final step takes whatever remains so
                # the per-step shares sum exactly to bytes_total.
                for bg in background:
                    share = bg.bytes_total // (n + 2)
                    if s == n + 1:
                        take = remaining[id(bg)]
                    else:
                        take = min(share, remaining[id(bg)])
                    if take > 0:
                        remaining[id(bg)] -= take
                        flows.append(
                            Flow(
                                bg.name,
                                bg.threads,
                                bg.per_thread_rate,
                                dict(bg.resources),
                                take,
                            )
                        )
                plan.add(
                    Phase(f"outer{oc.index}/step{s}", flows, static_rates=False)
                )
        # Drain: stage the last outer chunk back to NVM.
        plan.add(
            Phase(
                "drain/stage-out",
                [self._outer_copy(outer[-1].nbytes, "outer-out[last]")],
            )
        )
        return plan

    # ---- execution ---------------------------------------------------------

    def run(self, strategy: str = "double") -> RunResult:
        """Execute one strategy on the pipeline's shared engine.

        The engine is built once per pipeline (not per call), so the
        memoized water-filling solves are reused across strategies —
        ``single`` and ``double`` emit structurally identical inner
        steps — and the ``single`` plan's triple-buffered steady state
        takes the engine's batched group path.
        """
        plan = self.build_plan(strategy)
        return self._engine.run(plan)

    def compare(self) -> dict[str, RunResult]:
        """Run all three strategies on the shared engine."""
        return {s: self.run(s) for s in ("direct", "single", "double")}
