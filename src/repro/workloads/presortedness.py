"""Presortedness measures: from input structure to cost-model factors.

The cost model discounts sort work on structured inputs through a
per-order factor (`SortCostModel.order_factor`), with labels for the
paper's two evaluated orders. Real inputs are not labelled, so this
module measures the classic presortedness quantities —

* ``count_ascending_runs`` / ``count_monotone_runs`` — Knuth's RUNS,
* ``count_inversions`` — Kendall-tau disorder (exact, O(n log n)),
* ``rem`` — elements outside the longest non-decreasing subsequence,

— and maps them to an *estimated* order factor:
introsort-family sorts run fast on inputs made of few long monotone
runs (sorted, reverse, organ-pipe, nearly-sorted) and slow on
run-free random data, so the factor interpolates on the normalized
monotone-run count.

Grounds the Table 1 input-order effect (random vs reverse inputs).
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.errors import ConfigError
from repro.algorithms.costs import SortCostModel


def _require_1d(arr: np.ndarray) -> np.ndarray:
    arr = np.asarray(arr)
    if arr.ndim != 1:
        raise ConfigError("expects a one-dimensional array")
    return arr


def count_ascending_runs(arr: np.ndarray) -> int:
    """Number of maximal non-decreasing runs (>= 1 for non-empty)."""
    arr = _require_1d(arr)
    if len(arr) == 0:
        return 0
    return int(np.sum(np.diff(arr) < 0)) + 1


def count_monotone_runs(arr: np.ndarray) -> int:
    """Number of maximal monotone (non-decreasing *or* non-increasing)
    runs — the structure introsort's pivoting exploits.

    Greedy segmentation: each run extends while the direction
    (established by its first non-equal pair) is maintained.
    """
    arr = _require_1d(arr)
    n = len(arr)
    if n == 0:
        return 0
    d = np.sign(np.diff(arr))
    runs = 1
    direction = 0
    for step in d:
        if step == 0:
            continue
        if direction == 0:
            direction = step
        elif step != direction:
            runs += 1
            direction = 0
    return runs


def count_inversions(arr: np.ndarray) -> int:
    """Exact inversion count (pairs i < j with a[i] > a[j])."""
    arr = _require_1d(arr)

    def rec(a: np.ndarray) -> tuple[np.ndarray, int]:
        n = len(a)
        if n <= 1:
            return a, 0
        mid = n // 2
        left, inv_l = rec(a[:mid])
        right, inv_r = rec(a[mid:])
        # Cross inversions: for each right element, left elements
        # strictly greater than it precede it.
        pos = np.searchsorted(left, right, side="right")
        cross = int(np.sum(len(left) - pos))
        merged = np.empty(n, dtype=a.dtype)
        ia = np.searchsorted(right, left, side="left") + np.arange(len(left))
        ib = pos + np.arange(len(right))
        merged[ia] = left
        merged[ib] = right
        return merged, inv_l + inv_r + cross

    _, inv = rec(arr)
    return inv


def rem(arr: np.ndarray) -> int:
    """REM: elements to remove to leave a non-decreasing sequence
    (n minus the longest non-decreasing subsequence)."""
    arr = _require_1d(arr)
    tails: list = []
    for x in arr.tolist():
        i = bisect.bisect_right(tails, x)
        if i == len(tails):
            tails.append(x)
        else:
            tails[i] = x
    return len(arr) - len(tails)


def normalized_inversions(arr: np.ndarray) -> float:
    """Inversions over the maximum ``n (n-1) / 2`` (0 sorted, 1
    reverse, ~0.5 random)."""
    arr = _require_1d(arr)
    n = len(arr)
    if n < 2:
        return 0.0
    return count_inversions(arr) / (n * (n - 1) / 2)


def run_structure(arr: np.ndarray) -> float:
    """Normalized monotone-run density in [0, 1].

    0 = one monotone run (sorted or reverse), ~1 = random (expected
    monotone run length is ~e for random permutations, normalized
    against that expectation).
    """
    arr = _require_1d(arr)
    n = len(arr)
    if n < 2:
        return 0.0
    runs = count_monotone_runs(arr)
    # Random data has ~n / e monotone runs; normalize against that.
    expected_random = max(1.0, n / np.e)
    return min(1.0, (runs - 1) / expected_random)


def estimate_order_factor(
    arr: np.ndarray, cost: SortCostModel | None = None, gnu: bool = False
) -> float:
    """Estimated effective-level factor for an arbitrary input.

    Interpolates between the structured floor (the calibrated reverse
    factor — introsort's best case on monotone inputs) and 1.0
    (random) on the monotone-run density. Agrees with the calibrated
    labels at the extremes: sorted/reverse inputs land at the floor,
    random inputs at ~1.
    """
    cost = cost or SortCostModel()
    floor = cost.reverse_factor_gnu if gnu else cost.reverse_factor_mlm
    return floor + (1.0 - floor) * run_structure(arr)


def classify_order(arr: np.ndarray) -> str:
    """Nearest workload label for an input: ``sorted``, ``reverse``,
    ``nearly-sorted``, or ``random``."""
    arr = _require_1d(arr)
    if len(arr) < 2:
        return "sorted"
    inv = normalized_inversions(arr)
    if inv <= 0.01:
        return "sorted"
    if inv >= 0.95:
        return "reverse"
    if inv <= 0.10 or rem(arr) <= max(1, len(arr) // 10):
        return "nearly-sorted"
    return "random"
