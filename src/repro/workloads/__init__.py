"""Workload generators for the paper's experiments.

Two forms:

* **descriptors** (:class:`WorkloadSpec`) — size/order/dtype only, fed
  to the timed plan builders at paper scale (billions of elements,
  never materialized);
* **materialized arrays** (:func:`generate`) — real NumPy arrays at
  test/example scale, in the input orders the paper evaluates
  (random, reverse-sorted) plus the standard extras (sorted,
  nearly-sorted, few-unique) used by the extended test suite.

The input orders (random, reverse, ...) are those of Table 1.
"""

from repro.workloads.generators import (
    ORDERS,
    WorkloadSpec,
    generate,
    paper_table1_specs,
)
from repro.workloads.presortedness import (
    classify_order,
    count_inversions,
    estimate_order_factor,
)

__all__ = [
    "ORDERS",
    "WorkloadSpec",
    "generate",
    "paper_table1_specs",
    "classify_order",
    "count_inversions",
    "estimate_order_factor",
]
