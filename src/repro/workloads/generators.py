"""Input generators and workload descriptors."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.units import INT64

#: Input orders supported by both generators and cost model.
ORDERS = ("random", "reverse", "sorted", "nearly-sorted", "few-unique")

#: Orders the paper's Table 1 evaluates.
PAPER_ORDERS = ("random", "reverse")


@dataclass(frozen=True)
class WorkloadSpec:
    """A sorting workload descriptor (size-only, for timed plans)."""

    n: int
    order: str = "random"
    element_size: int = INT64

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigError("n must be >= 1")
        if self.order not in ORDERS:
            raise ConfigError(f"unknown order {self.order!r}")
        if self.element_size <= 0:
            raise ConfigError("element_size must be positive")

    @property
    def nbytes(self) -> int:
        """Data set size in bytes."""
        return self.n * self.element_size

    def materialize(self, seed: int = 0) -> np.ndarray:
        """Generate the actual array (test scale only)."""
        return generate(self.n, self.order, seed=seed)


def generate(n: int, order: str = "random", seed: int = 0) -> np.ndarray:
    """Generate ``n`` int64 elements in the requested ``order``."""
    if n < 0:
        raise ConfigError("n must be non-negative")
    rng = np.random.default_rng(seed)
    if order == "random":
        return rng.integers(0, max(n, 2) * 4, n, dtype=np.int64)
    if order == "reverse":
        return np.arange(n, 0, -1, dtype=np.int64)
    if order == "sorted":
        return np.arange(n, dtype=np.int64)
    if order == "nearly-sorted":
        out = np.arange(n, dtype=np.int64)
        swaps = max(1, n // 100)
        if n >= 2:
            i = rng.integers(0, n, swaps)
            j = rng.integers(0, n, swaps)
            out[i], out[j] = out[j].copy(), out[i].copy()
        return out
    if order == "few-unique":
        return rng.integers(0, 8, n, dtype=np.int64)
    raise ConfigError(f"unknown order {order!r}")


def paper_table1_specs() -> list[WorkloadSpec]:
    """The six workloads of Table 1: {2, 4, 6} billion x {random,
    reverse}."""
    return [
        WorkloadSpec(n=b * 1_000_000_000, order=o)
        for o in PAPER_ORDERS
        for b in (2, 4, 6)
    ]
