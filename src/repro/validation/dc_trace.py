"""Instrumented divide-and-conquer sort driving the line-level cache.

:func:`traced_mergesort` runs a bottom-up mergesort whose every read
and write is replayed against a :class:`DirectMappedCache`, with
per-recursion-level hit/miss accounting. :func:`measure_dc_levels`
summarizes which levels thrash — the empirical counterpart of
:func:`repro.core.modes.dc_cache_split`'s prediction that exactly the
top ``log2(W / C)`` levels miss.

The trace works at line granularity (whole-line touches per element
range), so element counts in the hundreds of thousands stay fast in
pure Python.

Validates the active-set split behind the Section 3 timed plans and
reproduces Section 1.1's direct-mapped thrashing pathology.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.simknl.cache import DirectMappedCache


@dataclass(frozen=True)
class DCLevelStats:
    """Per-level cache behaviour of a traced divide-and-conquer sort.

    Attributes
    ----------
    level:
        Merge level (0 merges runs of the base size).
    run_bytes:
        Size of each merged output run at this level.
    hits, misses:
        Line events charged to this level.
    """

    level: int
    run_bytes: int
    hits: int
    misses: int

    @property
    def miss_rate(self) -> float:
        """Fraction of this level's line accesses that missed."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


def traced_mergesort(
    working_set: int,
    cache: DirectMappedCache,
    base_run: int = 4096,
    temp_offset: int | None = None,
) -> list[DCLevelStats]:
    """Replay a bottom-up mergesort's traffic through ``cache``.

    Parameters
    ----------
    working_set:
        Bytes being sorted (a synthetic address range starting at 0).
    cache:
        The cache to drive; reset it first for a cold start.
    base_run:
        Bytes of the pre-sorted base runs (the insertion-sort base
        case of a real implementation).
    temp_offset:
        Address of the merge temp buffer; defaults to just past the
        data plus half the cache, so data and temp don't alias
        set-for-set in the direct-mapped cache (placing the temp an
        exact multiple of the cache size away makes every set collide
        — a real direct-mapped pathology worth avoiding in real
        allocations too). The data/temp ping-pong is what a real
        out-of-place mergesort does.

    Returns per-level statistics, shallowest level last.
    """
    if working_set <= 0:
        raise ConfigError("working_set must be positive")
    if base_run <= 0:
        raise ConfigError("base_run must be positive")
    if temp_offset is None:
        temp_offset = working_set + cache.usable_capacity // 2 + cache.line_size
    levels: list[DCLevelStats] = []
    src, dst = 0, temp_offset
    run = base_run
    level = 0
    while run < working_set:
        out_run = run * 2
        h0 = cache.stats.hits
        m0 = cache.stats.misses
        # Merge consecutive run pairs: read both inputs, write output.
        for start in range(0, working_set, out_run):
            size = min(out_run, working_set - start)
            cache.access_range(src + start, size, write=False)
            cache.access_range(dst + start, size, write=True)
        levels.append(
            DCLevelStats(
                level=level,
                run_bytes=out_run,
                hits=cache.stats.hits - h0,
                misses=cache.stats.misses - m0,
            )
        )
        src, dst = dst, src
        run = out_run
        level += 1
    return levels


def traced_mergesort_depth_first(
    working_set: int,
    cache: DirectMappedCache,
    base_run: int = 4096,
    temp_offset: int | None = None,
) -> list[DCLevelStats]:
    """Depth-first (recursive) counterpart of :func:`traced_mergesort`.

    A real serial sort recurses: it finishes one subproblem entirely
    before touching its sibling, so small merges of one subtree happen
    adjacently in time and their footprints stay cache-resident. This
    ordering — not the level structure itself — is what the paper's
    active-set argument (and MLM-implicit's tolerance of oversized
    megachunks) relies on; the breadth-first trace demonstrates the
    alternative, which thrashes at *every* level.
    """
    if working_set <= 0:
        raise ConfigError("working_set must be positive")
    if base_run <= 0:
        raise ConfigError("base_run must be positive")
    if temp_offset is None:
        temp_offset = working_set + cache.usable_capacity // 2 + cache.line_size
    total_levels = max(1, math.ceil(math.log2(max(2, working_set / base_run))))
    acc: list[list[int]] = [[0, 0] for _ in range(total_levels)]

    def sort(start: int, size: int) -> int:
        """Recursively sort [start, start+size); returns its level."""
        if size <= base_run:
            cache.access_range(start, size, write=True)
            return -1
        half = size // 2
        left_level = sort(start, half)
        sort(start + half, size - half)
        level = left_level + 1
        h0, m0 = cache.stats.hits, cache.stats.misses
        # Merge the halves through the temp buffer and copy back.
        cache.access_range(start, size, write=False)
        cache.access_range(temp_offset + start, size, write=True)
        cache.access_range(temp_offset + start, size, write=False)
        cache.access_range(start, size, write=True)
        if level < total_levels:
            acc[level][0] += cache.stats.hits - h0
            acc[level][1] += cache.stats.misses - m0
        return level

    sort(0, working_set)
    out = []
    run = base_run * 2
    for level, (h, m) in enumerate(acc):
        if h == 0 and m == 0:
            continue
        out.append(DCLevelStats(level=level, run_bytes=run, hits=h, misses=m))
        run *= 2
    return out


def measure_dc_levels(
    working_set: int,
    cache_capacity: int,
    line_size: int = 64,
    base_run: int = 4096,
    miss_threshold: float = 0.5,
    depth_first: bool = True,
) -> tuple[float, float]:
    """Empirical (thrashing_levels, total_levels) of a traced sort.

    A level counts as thrashing when its miss rate exceeds
    ``miss_threshold``. Compare against the analytic prediction
    ``log2(2 * working_set / cache)`` (factor 2: data + temp are both
    live, like the GNU working-set factor). ``depth_first`` selects
    the recursion order; only the depth-first order satisfies the
    active-set assumption.
    """
    if working_set < 2 * base_run:
        raise ConfigError("working_set must cover at least two base runs")
    cache = DirectMappedCache(capacity=cache_capacity, line_size=line_size)
    temp_offset = working_set + cache.usable_capacity // 2 + cache.line_size
    # Warm both buffers so cold misses don't pollute level accounting.
    cache.access_range(0, working_set, write=True)
    cache.access_range(temp_offset, working_set, write=True)
    trace = traced_mergesort_depth_first if depth_first else traced_mergesort
    levels = trace(working_set, cache, base_run=base_run, temp_offset=temp_offset)
    thrashing = sum(1.0 for s in levels if s.miss_rate > miss_threshold)
    return thrashing, float(len(levels))


def predicted_thrashing_levels(
    working_set: int, cache_capacity: int, total_levels: float
) -> float:
    """The analytic counterpart: ``min(total, log2(2 W / C))``."""
    if working_set <= 0 or cache_capacity <= 0:
        raise ConfigError("sizes must be positive")
    live = 2.0 * working_set  # data + temp ping-pong
    if live <= cache_capacity:
        return 0.0
    return min(total_levels, math.log2(live / cache_capacity))
