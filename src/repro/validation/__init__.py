"""Cross-model validation: functional ground truth vs analytic models.

The timed experiments rest on two analytic shortcuts:

1. the streaming cache model (validated against the line-level
   simulator in ``tests/simknl/test_cache_analytic.py``), and
2. the divide-and-conquer *active-set* split — the claim that a
   recursive sort over a working set ``W`` behind a cache of size
   ``C`` misses only during its first ``~log2(W / C)`` levels.

This package provides instrumented reference algorithms whose memory
accesses feed the line-level cache, so claim (2) can be checked
empirically at small scale (:func:`~repro.validation.dc_trace.measure_dc_levels`).

Covers the Section 3 cost model's active-set split and the Section 1.1
thrashing caveat.
"""

from repro.validation.dc_trace import (
    DCLevelStats,
    measure_dc_levels,
    traced_mergesort,
)

__all__ = ["DCLevelStats", "measure_dc_levels", "traced_mergesort"]
