"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
asserts the paper's qualitative claims about it, so ``pytest
benchmarks/ --benchmark-only`` both times the drivers and re-validates
the reproduction.
"""

from __future__ import annotations

import pytest

from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode


@pytest.fixture
def flat_node() -> KNLNode:
    return KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))


@pytest.fixture
def cache_node() -> KNLNode:
    return KNLNode(KNLNodeConfig(mode=MemoryMode.CACHE))
