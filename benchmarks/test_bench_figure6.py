"""Benchmark: regenerate Figure 6 (speedups over GNU-flat)."""

from __future__ import annotations

from repro.experiments.figure6 import run_figure6


def test_bench_figure6(benchmark):
    result = benchmark.pedantic(run_figure6, rounds=3, iterations=1)
    # Paper headline: up to 1.9x over GNU sort without MCDRAM.
    best = max(r["speedup"] for r in result.rows)
    assert 1.8 <= best <= 2.3
    # Every MLM variant beats both GNU baselines everywhere.
    for row in result.rows:
        if row["algorithm"].startswith("MLM"):
            assert row["speedup"] > 1.15


def test_bench_figure6_panels(benchmark):
    result = benchmark.pedantic(run_figure6, rounds=1, iterations=1)
    panels = {r["panel"] for r in result.rows}
    assert panels == {"6a", "6b"}
    # Reverse-sorted inputs (6b) show the larger MLM-over-GNU gaps.
    def best_mlm(panel):
        return max(
            r["speedup"]
            for r in result.rows
            if r["panel"] == panel and r["algorithm"].startswith("MLM")
        )

    assert best_mlm("6b") > best_mlm("6a")
