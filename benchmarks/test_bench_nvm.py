"""Benchmarks of plan evaluation for the NVM three-level pipeline.

The ``single`` strategy emits one ``static_rates`` phase per inner
chunk, all sharing a flow structure in the triple-buffered steady
state. ``Plan.compile`` collapses that steady state into one compiled
group which the engine evaluates with array ops, so per-phase Python
overhead is paid once per *group* rather than once per *chunk*. These
benchmarks time an identical plan through the batched and reference
paths and gate the speedup the batched path exists to provide.
"""

from __future__ import annotations

import time

from repro.core.kernel import StreamKernel
from repro.core.multilevel import ThreeLevelConfig, ThreeLevelPipeline
from repro.simknl.engine import Engine
from repro.units import GiB, MiB

# ~1600 inner chunks -> ~1602 phases, one large steady-state group.
DATA_BYTES = 100 * GiB
INNER_CHUNK = 64 * MiB


def _pipeline(flat_node) -> ThreeLevelPipeline:
    return ThreeLevelPipeline(
        flat_node,
        StreamKernel(passes=2),
        ThreeLevelConfig(
            data_bytes=DATA_BYTES, inner_chunk_bytes=INNER_CHUNK
        ),
    )


def _engines(pipe: ThreeLevelPipeline) -> tuple[Engine, Engine]:
    resources = [*pipe.node.resources(), pipe.nvm.resource()]
    batched = Engine(resources, record_events=False)
    reference = Engine(
        resources, record_events=False, batch_phases=False
    )
    return batched, reference


def test_bench_nvm_batched_plan(benchmark, flat_node):
    pipe = _pipeline(flat_node)
    plan = pipe.build_plan("single")
    eng, _ = _engines(pipe)
    eng.run(plan)  # warm: compile the plan, memoize the rate solves
    result = benchmark(eng.run, plan)
    assert eng.batched_groups > 0
    assert result.elapsed > 0


def test_bench_nvm_reference_plan(benchmark, flat_node):
    pipe = _pipeline(flat_node)
    plan = pipe.build_plan("single")
    _, eng = _engines(pipe)
    eng.run(plan)  # warm the memoized rate solves
    result = benchmark(eng.run, plan)
    assert eng.batched_groups == 0
    assert result.elapsed > 0


def test_batched_at_least_5x_faster(flat_node):
    """The acceptance bar: compiled-group evaluation of a chunked NVM
    plan is at least 5x faster than the per-phase reference loop."""
    pipe = _pipeline(flat_node)
    plan = pipe.build_plan("single")
    batched, reference = _engines(pipe)
    base = batched.run(plan)  # warm both paths
    ref = reference.run(plan)
    assert ref.elapsed == base.elapsed  # same simulated answer

    def best_of(fn, rounds=5):
        times = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    fast = best_of(lambda: batched.run(plan))
    slow = best_of(lambda: reference.run(plan))
    assert slow >= 5.0 * fast, (
        f"reference {slow * 1e3:.2f}ms vs batched {fast * 1e3:.2f}ms "
        f"({slow / fast:.1f}x)"
    )
