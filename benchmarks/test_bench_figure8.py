"""Benchmark: regenerate Figure 8 (merge-benchmark curves)."""

from __future__ import annotations

from repro.experiments.figure8 import run_figure8


def test_bench_figure8(benchmark):
    result = benchmark.pedantic(run_figure8, rounds=2, iterations=1)
    # 7 repeats x 6 copy-thread candidates, model + empirical per cell.
    assert len(result.rows) == 42
    for row in result.rows:
        # Empirical (with fill/drain) tracks the model from above.
        assert row["empirical_s"] >= row["model_s"] * 0.95
        assert row["empirical_s"] <= row["model_s"] * 1.30


def test_bench_figure8_shapes(benchmark):
    result = benchmark.pedantic(
        run_figure8, kwargs={"repeats": (1, 64)}, rounds=2, iterations=1
    )
    low = [r["empirical_s"] for r in result.rows if r["repeats"] == 1]
    high = [r["empirical_s"] for r in result.rows if r["repeats"] == 64]
    # Copy-bound regime: adding copy threads helps monotonically.
    assert low == sorted(low, reverse=True)
    # Compute-bound regime: too many copy threads hurt (U-shape tail).
    assert high[-1] > min(high)


def test_bench_merge_pipeline_single(benchmark, flat_node):
    """Micro: one pipelined merge-benchmark execution."""
    from repro.algorithms.merge_bench import MergeBenchConfig, run_merge_bench

    cfg = MergeBenchConfig(repeats=8, copy_in_threads=4)
    res = benchmark(run_merge_bench, flat_node, cfg)
    assert res.elapsed > 0
