"""Benchmarks for the future-work and ablation extensions."""

from __future__ import annotations

from repro.experiments.extensions import (
    run_ablation,
    run_designspace,
    run_energy,
    run_hybrid,
    run_nvm,
    run_oblivious,
)


def test_bench_nvm(benchmark):
    result = benchmark.pedantic(
        run_nvm, kwargs={"data_gib": 50}, rounds=3, iterations=1
    )
    times = {r["strategy"]: r["seconds"] for r in result.rows}
    assert times["single"] < times["direct"]
    assert times["double"] < times["direct"]


def test_bench_designspace(benchmark):
    result = benchmark.pedantic(run_designspace, rounds=3, iterations=1)
    ratio_rows = [r for r in result.rows if r["sweep"] == "mcdram/ddr ratio"]
    # Beyond the balance point, more near-memory bandwidth is wasted.
    assert ratio_rows[-1]["best_time_s"] == ratio_rows[-2]["best_time_s"]


def test_bench_hybrid_sweep(benchmark):
    result = benchmark.pedantic(run_hybrid, rounds=3, iterations=1)
    times = [r["seconds"] for r in result.rows]
    assert max(times) / min(times) < 1.02


def test_bench_ablation(benchmark):
    result = benchmark.pedantic(run_ablation, rounds=2, iterations=1)
    assert len(result.rows) == 5


def test_bench_oblivious(benchmark):
    result = benchmark.pedantic(run_oblivious, rounds=3, iterations=1)
    for row in result.rows:
        assert 1.0 < row["oblivious_vs_implicit"] < 1.4


def test_bench_energy(benchmark):
    result = benchmark.pedantic(run_energy, rounds=3, iterations=1)
    by_algo = {r["algorithm"]: r["energy_j"] for r in result.rows}
    assert by_algo["MLM-implicit"] < by_algo["GNU-flat"]


def test_bench_external(benchmark):
    from repro.experiments.extensions import run_external

    result = benchmark.pedantic(run_external, rounds=3, iterations=1)
    rows = {r["config"]: r["seconds"] for r in result.rows}
    in_mem = next(v for k, v in rows.items() if "in-memory" in k)
    ext = next(v for k, v in rows.items() if k == "2B external sort")
    assert in_mem < ext


def test_bench_pollution(benchmark):
    from repro.experiments.extensions import run_pollution

    result = benchmark.pedantic(run_pollution, rounds=5, iterations=1)
    t = {r["scenario"]: r["victim_s"] for r in result.rows}
    assert (
        t["full cache, no copies"]
        < t["hybrid half-cache, copy pollution"]
        < t["no cache (DDR)"]
    )


def test_bench_adaptive(benchmark):
    from repro.experiments.extensions import run_adaptive

    result = benchmark.pedantic(run_adaptive, rounds=3, iterations=1)
    deg = {r["strategy"]: r["degradation"] for r in result.rows}
    assert deg["aware-full"] > deg["adaptive-dc"]
