"""Benchmark: regenerate the Bender et al. corroboration."""

from __future__ import annotations

from repro.experiments.bender import run_bender


def test_bench_bender(benchmark):
    result = benchmark.pedantic(run_bender, rounds=3, iterations=1)
    rows = {r["metric"]: r["simulated"] for r in result.rows}
    assert rows["chunking speedup over GNU-flat"] > 1.05
    assert rows["DDR traffic reduction"] > 2.5
    assert rows["sort is memory-bandwidth bound (Snir test)"] == 1.0
