"""Benchmarks of the sweep dispatch backends.

Measures per-cell dispatch overhead — the cell function is deliberately
trivial, so the timings are dominated by what each backend pays to get
a cell to a worker and its result back: process startup plus one pickle
round-trip per cell for ``fork``, chunked pipe messages plus a
shared-memory ring read for ``persistent``.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments.pool import PersistentPool, get_pool, shutdown_pool
from repro.experiments.runner import sweep_map

JOBS = 8
CELLS = [(i, 1.0) for i in range(64)]

# Skewed sweep: one pathological tail cell costs 50x the others, the
# classic shape the blind halving taper loses to (the heavy cell lands
# in the first, widest chunk and serialises half the sweep behind it).
SKEW_JOBS = 4
SKEW_BASE_S = 0.008
SKEW_HEAVY = 24
SKEW_FACTOR = 50
SKEW_CELLS = [(i,) for i in range(96)]


def _tiny(i: int, x: float) -> float:
    return i * x


def _skew_cell(i: int) -> float:
    time.sleep(SKEW_BASE_S * (SKEW_FACTOR if i == SKEW_HEAVY else 1))
    return float(i)


def _skew_pool(adaptive: bool) -> PersistentPool:
    # Huge deadlines keep speculation out of the timings: the contrast
    # under test is purely chunk shape + stealing, not recovery.
    return PersistentPool(
        SKEW_JOBS,
        adaptive=adaptive,
        min_workers=SKEW_JOBS,
        deadline_factor=1000.0,
        cold_deadline_s=60.0,
    )


@pytest.fixture(autouse=True, scope="module")
def _pool_lifetime():
    shutdown_pool()
    yield
    shutdown_pool()


def test_bench_pool_persistent_dispatch(benchmark):
    pool = get_pool(JOBS)
    pool.map(_tiny, CELLS)  # warm: spawn workers outside the timed region
    out = benchmark(pool.map, _tiny, CELLS)
    assert out == [_tiny(*c) for c in CELLS]


def test_bench_pool_hardened_dispatch(benchmark):
    """Dispatch with the chaos hook consulted (zero-probability plan):
    the hardening machinery — deadline stamping, framing checks, the
    per-dispatch injector call — must add no measurable overhead."""
    from repro.experiments.chaos import (
        HarnessFaultKind,
        HarnessFaultPlan,
        HarnessFaultSpec,
    )

    plan = HarnessFaultPlan(seed=0).add(
        HarnessFaultSpec(
            HarnessFaultKind.PIPE_DROP, at_dispatch=1 << 30
        )
    )
    pool = get_pool(JOBS)
    pool.map(_tiny, CELLS)  # warm
    out = benchmark(
        lambda: pool.map(_tiny, CELLS, chaos=plan.injector())
    )
    assert out == [_tiny(*c) for c in CELLS]
    assert pool.stats.speculative == 0
    assert pool.stats.ring_corrupt == 0


def test_bench_pool_fork_dispatch(benchmark):
    out = benchmark.pedantic(
        lambda: sweep_map(_tiny, CELLS, jobs=JOBS, memo={}, pool="fork"),
        rounds=3,
        iterations=1,
    )
    assert out == [_tiny(*c) for c in CELLS]


def test_bench_pool_skew_adaptive(benchmark):
    """Skewed sweep under the adaptive scheduler: the warm EWMA model
    sees the 50x peak and shrinks chunks so the heavy cell stops
    dragging neighbours, and stealing rebalances the remainder."""
    pool = _skew_pool(adaptive=True)
    try:
        pool.map(_skew_cell, SKEW_CELLS, chunk_cells=48)  # train EWMA
        out = benchmark.pedantic(
            lambda: pool.map(_skew_cell, SKEW_CELLS, chunk_cells=48),
            rounds=2,
            iterations=1,
        )
    finally:
        pool.shutdown()
    assert out == [float(i) for (i,) in SKEW_CELLS]


def test_bench_pool_skew_static_taper(benchmark):
    """The same skewed sweep with adaptive sizing and stealing off:
    the pre-fix halving taper, kept as the regression contrast."""
    pool = _skew_pool(adaptive=False)
    try:
        pool.map(_skew_cell, SKEW_CELLS, chunk_cells=48)  # warm
        out = benchmark.pedantic(
            lambda: pool.map(_skew_cell, SKEW_CELLS, chunk_cells=48),
            rounds=2,
            iterations=1,
        )
    finally:
        pool.shutdown()
    assert out == [float(i) for (i,) in SKEW_CELLS]


def test_adaptive_at_least_1_5x_faster_on_skewed_sweep():
    """The acceptance bar for the scheduler rework: on the skewed
    sweep the warm adaptive pool beats the blind halving taper by at
    least 1.5x wall-clock."""

    def best_of(pool, rounds=2):
        times = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            out = pool.map(_skew_cell, SKEW_CELLS, chunk_cells=48)
            times.append(time.perf_counter() - t0)
            assert out == [float(i) for (i,) in SKEW_CELLS]
        return min(times)

    adaptive_pool = _skew_pool(adaptive=True)
    try:
        adaptive_pool.map(_skew_cell, SKEW_CELLS, chunk_cells=48)
        adaptive = best_of(adaptive_pool)
    finally:
        adaptive_pool.shutdown()
    taper_pool = _skew_pool(adaptive=False)
    try:
        taper_pool.map(_skew_cell, SKEW_CELLS, chunk_cells=48)
        taper = best_of(taper_pool)
    finally:
        taper_pool.shutdown()
    assert taper >= 1.5 * adaptive, (
        f"taper {taper * 1e3:.0f}ms vs adaptive {adaptive * 1e3:.0f}ms "
        f"({taper / adaptive:.2f}x)"
    )


def test_persistent_at_least_2x_lower_overhead():
    """The acceptance bar: per-cell dispatch overhead of the warm
    persistent pool is at least 2x below the fork-per-sweep backend."""
    pool = get_pool(JOBS)
    pool.map(_tiny, CELLS)  # warm

    def best_of(fn, rounds=3):
        times = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    persistent = best_of(lambda: pool.map(_tiny, CELLS))
    fork = best_of(
        lambda: sweep_map(_tiny, CELLS, jobs=JOBS, memo={}, pool="fork")
    )
    assert fork >= 2.0 * persistent, (
        f"fork {fork * 1e6 / len(CELLS):.1f}us/cell vs persistent "
        f"{persistent * 1e6 / len(CELLS):.1f}us/cell"
    )
