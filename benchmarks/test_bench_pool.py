"""Benchmarks of the sweep dispatch backends.

Measures per-cell dispatch overhead — the cell function is deliberately
trivial, so the timings are dominated by what each backend pays to get
a cell to a worker and its result back: process startup plus one pickle
round-trip per cell for ``fork``, chunked pipe messages plus a
shared-memory ring read for ``persistent``.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments.pool import get_pool, shutdown_pool
from repro.experiments.runner import sweep_map

JOBS = 8
CELLS = [(i, 1.0) for i in range(64)]


def _tiny(i: int, x: float) -> float:
    return i * x


@pytest.fixture(autouse=True, scope="module")
def _pool_lifetime():
    shutdown_pool()
    yield
    shutdown_pool()


def test_bench_pool_persistent_dispatch(benchmark):
    pool = get_pool(JOBS)
    pool.map(_tiny, CELLS)  # warm: spawn workers outside the timed region
    out = benchmark(pool.map, _tiny, CELLS)
    assert out == [_tiny(*c) for c in CELLS]


def test_bench_pool_hardened_dispatch(benchmark):
    """Dispatch with the chaos hook consulted (zero-probability plan):
    the hardening machinery — deadline stamping, framing checks, the
    per-dispatch injector call — must add no measurable overhead."""
    from repro.experiments.chaos import (
        HarnessFaultKind,
        HarnessFaultPlan,
        HarnessFaultSpec,
    )

    plan = HarnessFaultPlan(seed=0).add(
        HarnessFaultSpec(
            HarnessFaultKind.PIPE_DROP, at_dispatch=1 << 30
        )
    )
    pool = get_pool(JOBS)
    pool.map(_tiny, CELLS)  # warm
    out = benchmark(
        lambda: pool.map(_tiny, CELLS, chaos=plan.injector())
    )
    assert out == [_tiny(*c) for c in CELLS]
    assert pool.stats.speculative == 0
    assert pool.stats.ring_corrupt == 0


def test_bench_pool_fork_dispatch(benchmark):
    out = benchmark.pedantic(
        lambda: sweep_map(_tiny, CELLS, jobs=JOBS, memo={}, pool="fork"),
        rounds=3,
        iterations=1,
    )
    assert out == [_tiny(*c) for c in CELLS]


def test_persistent_at_least_2x_lower_overhead():
    """The acceptance bar: per-cell dispatch overhead of the warm
    persistent pool is at least 2x below the fork-per-sweep backend."""
    pool = get_pool(JOBS)
    pool.map(_tiny, CELLS)  # warm

    def best_of(fn, rounds=3):
        times = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    persistent = best_of(lambda: pool.map(_tiny, CELLS))
    fork = best_of(
        lambda: sweep_map(_tiny, CELLS, jobs=JOBS, memo={}, pool="fork")
    )
    assert fork >= 2.0 * persistent, (
        f"fork {fork * 1e6 / len(CELLS):.1f}us/cell vs persistent "
        f"{persistent * 1e6 / len(CELLS):.1f}us/cell"
    )
