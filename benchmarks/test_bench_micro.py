"""Micro-benchmarks of the library's hot paths.

These measure the *Python implementation itself* (not the simulated
KNL): the water-filling allocator, the line-level cache simulator, the
vectorized merge, introsort, and the functional MLM-sort.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.merge_bench import merge_halves
from repro.algorithms.mlm_sort import mlm_sort
from repro.algorithms.multiway_merge import merge_two, multiway_merge
from repro.algorithms.serial_sort import introsort
from repro.simknl.cache import DirectMappedCache
from repro.simknl.flows import Flow, Resource, allocate_rates
from repro.units import GB


def test_bench_allocator(benchmark):
    resources = {
        "ddr": Resource("ddr", 90 * GB),
        "mcdram": Resource("mcdram", 400 * GB),
    }
    flows = [
        Flow(f"f{i}", 8 + i, 4.8 * GB, {"ddr": 1.0, "mcdram": 1.0}, 1.0)
        for i in range(16)
    ]
    rates = benchmark(allocate_rates, flows, resources)
    assert len(rates) == 16


def test_bench_cache_sim(benchmark):
    cache = DirectMappedCache(capacity=1 << 16, line_size=64)

    def sweep():
        cache.reset()
        cache.access_range(0, 1 << 18, write=True)
        return cache.stats.misses

    misses = benchmark(sweep)
    assert misses == (1 << 18) // 64


def test_bench_merge_two(benchmark):
    rng = np.random.default_rng(0)
    a = np.sort(rng.integers(0, 1 << 30, 200_000, dtype=np.int64))
    b = np.sort(rng.integers(0, 1 << 30, 200_000, dtype=np.int64))
    out = benchmark(merge_two, a, b)
    assert len(out) == 400_000


def test_bench_multiway_merge(benchmark):
    rng = np.random.default_rng(1)
    runs = [
        np.sort(rng.integers(0, 1 << 30, 50_000, dtype=np.int64))
        for _ in range(16)
    ]
    out = benchmark(multiway_merge, runs)
    assert len(out) == 800_000


def test_bench_losertree_merge(benchmark):
    """Galloping loser-tree drain over clustered runs.

    Runs with mostly-disjoint value ranges are the megachunk shape
    MLM-sort's final merge sees (each chunk covers one slice of the
    key space); the galloping drain moves whole leading blocks per
    tournament round instead of popping elements one at a time.
    """
    rng = np.random.default_rng(7)
    runs = []
    for i in range(8):
        base = i * (1 << 30)
        runs.append(
            np.sort(
                rng.integers(
                    base, base + (1 << 29), 50_000 + 500 * i, dtype=np.int64
                )
            )
        )
    total = sum(len(r) for r in runs)
    out = benchmark.pedantic(
        lambda: multiway_merge(runs, strategy="losertree"),
        rounds=5,
        iterations=1,
    )
    assert len(out) == total
    assert np.all(np.diff(out) >= 0)


def test_bench_introsort(benchmark):
    rng = np.random.default_rng(2)
    base = rng.integers(0, 1 << 20, 2_000, dtype=np.int64)
    out = benchmark.pedantic(
        lambda: introsort(base.copy()), rounds=5, iterations=1
    )
    assert np.all(np.diff(out) >= 0)


def test_bench_functional_mlm_sort(benchmark):
    rng = np.random.default_rng(3)
    arr = rng.integers(0, 1 << 40, 500_000, dtype=np.int64)
    out = benchmark(mlm_sort, arr, 100_000, 8)
    assert len(out) == len(arr)


def test_bench_merge_halves_kernel(benchmark):
    rng = np.random.default_rng(4)
    arr = rng.integers(0, 1 << 30, 300_000, dtype=np.int64)
    out = benchmark(merge_halves, arr)
    assert np.all(np.diff(out) >= 0)


def test_bench_funnelsort(benchmark):
    rng = np.random.default_rng(5)
    arr = rng.integers(0, 1 << 40, 100_000, dtype=np.int64)
    from repro.algorithms.funnelsort import funnelsort

    out = benchmark(funnelsort, arr)
    assert np.all(np.diff(out) >= 0)


def test_bench_external_sort(benchmark, tmp_path):
    rng = np.random.default_rng(6)
    arr = rng.integers(0, 1 << 40, 50_000, dtype=np.int64)
    from repro.algorithms.external_sort import external_sort

    out = benchmark.pedantic(
        lambda: external_sort(arr, 8192, workdir=str(tmp_path)),
        rounds=3,
        iterations=1,
    )
    assert np.all(np.diff(out) >= 0)
