"""Benchmarks of the cross-cell tensor sweep path.

Times the core lowering — :func:`run_lowered` over a pre-built
``(cells x live-flow-slots)`` tensor — against the warm persistent
pool fanning the same figure7-class cells across workers that rebuild
node + plan per cell. The acceptance bar: the tensor evaluation is at
least 10x faster than the pool, bit-identically.

Per-cell plan *construction* is deliberately outside the tensor-side
timed region: ``sweep_map`` builds plans once per pending cell on
either path, so the backends differ exactly in how built plans are
evaluated — that difference is what these benchmarks pin.
"""

from __future__ import annotations

import time

import pytest

from repro.core.buffering import BufferedPipeline
from repro.core.chunking import Chunker
from repro.core.kernel import StreamKernel
from repro.core.modes import UsageMode
from repro.experiments.pool import get_pool, shutdown_pool
from repro.simknl.batch import lower_plans, run_lowered
from repro.simknl.engine import Engine
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode
from repro.threads.pool import PoolSet
from repro.units import GiB, MiB

JOBS = 8
#: Shrinking by whole elements keeps every cell's chunk count — and
#: hence plan structure — identical; only the ragged final chunk varies.
CELLS = [(int(16 * GiB) - 8 * i,) for i in range(64)]


def _pipeline(nbytes: int) -> BufferedPipeline:
    node = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))
    pools = PoolSet.split(
        node, compute=node.total_threads - 16, copy_in=8
    )
    return BufferedPipeline(
        node,
        UsageMode.FLAT,
        pools,
        Chunker(nbytes, int(512 * MiB)),
        StreamKernel(passes=4.0),
    )


def _cell(nbytes: int) -> float:
    """One pool-side cell: rebuild node + plan, run, return elapsed."""
    return _pipeline(nbytes).run().elapsed


def _build_lowered():
    plans = []
    engine = None
    for (nbytes,) in CELLS:
        pipe = _pipeline(nbytes)
        plans.append(pipe.prepare())
        if engine is None:
            engine = Engine(
                list(pipe.node.resources()), record_events=False
            )
    lowered, tensor = lower_plans(plans)
    return engine, lowered, tensor


@pytest.fixture(autouse=True, scope="module")
def _pool_lifetime():
    shutdown_pool()
    yield
    shutdown_pool()


def test_bench_sweep_tensor(benchmark):
    engine, lowered, tensor = _build_lowered()
    warm = run_lowered(engine, lowered, tensor)  # warm the allocate memo
    assert warm is not None
    results = benchmark(run_lowered, engine, lowered, tensor)
    assert [r.elapsed for r in results] == [r.elapsed for r in warm]


def test_bench_sweep_pool(benchmark):
    pool = get_pool(JOBS)
    pool.map(_cell, CELLS)  # warm: spawn workers outside the timed region
    out = benchmark.pedantic(
        lambda: pool.map(_cell, CELLS), rounds=3, iterations=1
    )
    assert len(out) == len(CELLS)


def test_tensor_at_least_10x_faster_than_pool():
    """The acceptance bar: evaluating the lowered sweep is >=10x faster
    than fanning the same cells across the warm persistent pool — and
    bit-identical to it."""
    engine, lowered, tensor = _build_lowered()
    batched = run_lowered(engine, lowered, tensor)
    assert batched is not None

    pool = get_pool(JOBS)
    pooled = pool.map(_cell, CELLS)  # warm
    assert [r.elapsed for r in batched] == pooled

    def best_of(fn, rounds=3):
        times = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    tensor_s = best_of(lambda: run_lowered(engine, lowered, tensor))
    pool_s = best_of(lambda: pool.map(_cell, CELLS))
    assert pool_s >= 10.0 * tensor_s, (
        f"pool {pool_s * 1e3:.1f}ms vs tensor {tensor_s * 1e3:.1f}ms "
        f"({pool_s / tensor_s:.1f}x)"
    )
