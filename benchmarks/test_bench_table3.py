"""Benchmark: regenerate Table 3 (optimal copy threads, model vs
empirical)."""

from __future__ import annotations

from repro.experiments.table3 import run_table3


def test_bench_table3(benchmark):
    result = benchmark.pedantic(run_table3, rounds=3, iterations=1)
    rows = {r["repeats"]: r for r in result.rows}
    # Both columns decrease monotonically with compute intensity.
    models = [rows[r]["model"] for r in sorted(rows)]
    emps = [rows[r]["empirical_pow2"] for r in sorted(rows)]
    assert models == sorted(models, reverse=True)
    assert emps == sorted(emps, reverse=True)
    # Exact paper agreement at the extremes.
    assert rows[1]["model"] == rows[1]["paper_model"] == 10
    assert rows[64]["model"] == rows[64]["paper_model"] == 1
    assert rows[1]["empirical_pow2"] == rows[1]["paper_empirical_pow2"] == 16
    assert rows[64]["empirical_pow2"] == rows[64]["paper_empirical_pow2"] == 1


def test_bench_model_optimizer(benchmark):
    """Micro: one full model sweep (127 candidate splits)."""
    from repro.model.optimizer import optimal_copy_threads
    from repro.model.params import ModelParams

    res = benchmark(optimal_copy_threads, ModelParams(), 256, 8.0)
    assert 1 <= res.p_in <= 16
