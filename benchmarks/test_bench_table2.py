"""Benchmark: regenerate Table 2 (STREAM-measured model parameters)."""

from __future__ import annotations

from repro.experiments.table2 import run_table2


def test_bench_table2(benchmark):
    result = benchmark.pedantic(run_table2, rounds=5, iterations=1)
    cells = {r["parameter"]: r for r in result.rows}
    for name in ("B_copy", "DDR_max", "MCDRAM_max", "S_copy", "S_comp"):
        row = cells[name]
        assert abs(row["measured_gb"] - row["paper_gb"]) / row["paper_gb"] < 0.05


def test_bench_stream_triad(benchmark, flat_node):
    """Micro: one STREAM-triad measurement on the simulated node."""
    from repro.algorithms.stream import measure_bandwidth

    bw = benchmark(measure_bandwidth, flat_node, "mcdram")
    assert abs(bw - 400e9) / 400e9 < 0.01
