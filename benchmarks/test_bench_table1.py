"""Benchmark: regenerate Table 1 (raw sort times, 30 cells)."""

from __future__ import annotations

from repro.experiments.table1 import run_table1


def test_bench_table1(benchmark):
    result = benchmark.pedantic(run_table1, rounds=3, iterations=1)
    assert len(result.rows) == 30
    # Paper claim: the MLM variants win in every workload.
    for order in ("random", "reverse"):
        for n in (2_000_000_000, 4_000_000_000, 6_000_000_000):
            cells = {
                r["algorithm"]: r["simulated_s"]
                for r in result.rows
                if r["elements"] == n and r["order"] == order
            }
            assert min(cells, key=cells.get).startswith("MLM")
            assert max(cells, key=cells.get) == "GNU-flat"


def test_bench_table1_single_cell(benchmark):
    """Time one representative cell (MLM-implicit, 2B random)."""
    from repro.experiments.runner import sort_variant_seconds

    t = benchmark(
        sort_variant_seconds, "MLM-implicit", 2_000_000_000, "random"
    )
    assert abs(t - 7.37) / 7.37 < 0.10
