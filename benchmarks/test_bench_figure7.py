"""Benchmark: regenerate Figure 7 (chunk-size sweep at 6B elements)."""

from __future__ import annotations

from repro.experiments.figure7 import run_figure7


def test_bench_figure7(benchmark):
    result = benchmark.pedantic(run_figure7, rounds=3, iterations=1)
    flat = [(r["chunk_elements"], r["flat_s"]) for r in result.rows if "flat_s" in r]
    implicit = {r["chunk_elements"]: r["implicit_s"] for r in result.rows}
    # Larger chunks are better (monotone within 2% wiggle).
    for (_, a), (_, b) in zip(flat, flat[1:]):
        assert b <= a * 1.02
    # 1-1.5 GB chunks (≈1.5e9 elements of int64 is 12 GB; the paper's
    # 1-1.5 GB refers to per-thread slices — at whole-megachunk level
    # the knee sits at 1-1.5 B elements) are near-minimal.
    assert flat[-2][1] <= min(t for _, t in flat) * 1.03
    # Implicit keeps working past MCDRAM capacity.
    assert implicit[6_000_000_000] <= min(implicit.values()) * 1.05


def test_bench_figure7_hybrid_matches_flat(benchmark):
    result = benchmark.pedantic(run_figure7, rounds=1, iterations=1)
    for row in result.rows:
        if "hybrid_s" in row and "flat_s" in row:
            assert abs(row["hybrid_s"] - row["flat_s"]) / row["flat_s"] < 0.02
