"""Validation of the divide-and-conquer cache-split assumption.

The timed sort plans assume that a recursive sort over a working set
``W`` behind a cache ``C`` thrashes only during its top
``~log2(W / C)`` levels (``dc_cache_split``). These tests check that
assumption against the line-level cache simulator using instrumented
mergesorts — including the ordering caveat (depth-first required) and
the empirical justification of the ``thrash_level_offset`` knob.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.simknl.cache import DirectMappedCache
from repro.validation.dc_trace import (
    measure_dc_levels,
    predicted_thrashing_levels,
    traced_mergesort,
    traced_mergesort_depth_first,
)

CACHE = 1 << 16  # 64 KiB
BASE = 1 << 10  # 1 KiB base runs


class TestTracedMergesort:
    def test_level_count(self):
        cache = DirectMappedCache(capacity=CACHE)
        levels = traced_mergesort(8 * BASE, cache, base_run=BASE)
        assert len(levels) == 3  # 8 runs -> 3 doubling levels

    def test_run_sizes_double(self):
        cache = DirectMappedCache(capacity=CACHE)
        levels = traced_mergesort(8 * BASE, cache, base_run=BASE)
        assert [s.run_bytes for s in levels] == [2 * BASE, 4 * BASE, 8 * BASE]

    def test_fitting_sort_hits_after_warm(self):
        cache = DirectMappedCache(capacity=CACHE)
        ws = CACHE // 4
        temp = ws + cache.usable_capacity // 2 + cache.line_size
        cache.access_range(0, ws, write=True)
        cache.access_range(temp, ws, write=True)
        levels = traced_mergesort(ws, cache, base_run=BASE, temp_offset=temp)
        for s in levels:
            assert s.miss_rate < 0.05

    def test_invalid_args(self):
        cache = DirectMappedCache(capacity=CACHE)
        with pytest.raises(ConfigError):
            traced_mergesort(0, cache)
        with pytest.raises(ConfigError):
            traced_mergesort(1024, cache, base_run=0)
        with pytest.raises(ConfigError):
            traced_mergesort_depth_first(0, cache)


class TestDepthFirstMatchesAnalyticSplit:
    @pytest.mark.parametrize("mult", [2, 4, 8, 16])
    def test_thrashing_levels_match_prediction(self, mult):
        """Measured thrashing levels equal log2(2W/C) exactly once the
        data/temp aliasing pathology is avoided — the analytic
        dc_cache_split is validated against line-level ground truth."""
        ws = CACHE * mult
        measured, total = measure_dc_levels(ws, CACHE, base_run=BASE)
        predicted = predicted_thrashing_levels(ws, CACHE, total)
        assert measured == pytest.approx(predicted, abs=0.5)

    def test_fitting_working_set_never_thrashes(self):
        measured, _ = measure_dc_levels(CACHE // 4, CACHE, base_run=BASE)
        assert measured == 0

    def test_deeper_levels_hit(self):
        """The thrashing band is the *top* of the recursion."""
        cache = DirectMappedCache(capacity=CACHE)
        ws = CACHE * 4
        cache.access_range(0, ws, write=True)
        cache.access_range(ws, ws, write=True)
        levels = traced_mergesort_depth_first(ws, cache, base_run=BASE)
        # Level 0 pays residual cold misses on its temp halves; all
        # other cache-resident levels hit nearly perfectly.
        small = [
            s for s in levels if s.level > 0 and s.run_bytes <= CACHE // 4
        ]
        big = [s for s in levels if s.run_bytes >= 2 * CACHE]
        assert all(s.miss_rate < 0.1 for s in small)
        assert all(s.miss_rate > 0.5 for s in big)


class TestOrderingMatters:
    def test_breadth_first_thrashes_every_level(self):
        """Bottom-up merging streams the whole working set per level,
        so nothing survives — the active-set argument requires
        depth-first order, as the paper's serial sorts provide."""
        ws = CACHE * 4
        measured, total = measure_dc_levels(
            ws, CACHE, base_run=BASE, depth_first=False
        )
        assert measured == total

    def test_depth_first_strictly_better(self):
        ws = CACHE * 4
        df, total_df = measure_dc_levels(ws, CACHE, base_run=BASE)
        bf, _ = measure_dc_levels(ws, CACHE, base_run=BASE, depth_first=False)
        assert df < bf
        assert df <= total_df / 2


class TestPrediction:
    def test_fitting_zero(self):
        assert predicted_thrashing_levels(100, 1000, 10.0) == 0.0

    def test_clamped_to_total(self):
        assert predicted_thrashing_levels(1 << 40, 1 << 10, 5.0) == 5.0

    def test_invalid(self):
        with pytest.raises(ConfigError):
            predicted_thrashing_levels(0, 1, 1.0)

    def test_tiny_working_set_rejected(self):
        with pytest.raises(ConfigError):
            measure_dc_levels(BASE, CACHE, base_run=BASE)
