"""Tests for the first-fit heap, kinds, and hbw API."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError, ConfigError
from repro.memkind import (
    MEMKIND_DEFAULT,
    MEMKIND_HBW,
    MEMKIND_HBW_INTERLEAVE,
    MEMKIND_HBW_PREFERRED,
    Heap,
    HbwAPI,
    Region,
)
from repro.memkind.kinds import Kind, Policy
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode
from repro.units import GiB, MiB


def flat_node() -> KNLNode:
    return KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))


def cache_node() -> KNLNode:
    return KNLNode(KNLNodeConfig(mode=MemoryMode.CACHE))


class TestRegion:
    def test_alloc_and_free_roundtrip(self):
        r = Region("ddr", 0, 1024)
        b = r.alloc(256)
        assert b.size == 256
        assert r.allocated == 256
        r.free(b)
        assert r.allocated == 0
        assert r.free_bytes == 1024

    def test_first_fit_reuses_gap(self):
        r = Region("ddr", 0, 1024)
        a = r.alloc(256)
        b = r.alloc(256)
        r.free(a)
        c = r.alloc(128)
        assert c.addr == a.addr  # reused the first gap
        r.free(b)
        r.free(c)

    def test_exhaustion_raises(self):
        r = Region("ddr", 0, 1024)
        r.alloc(1024)
        with pytest.raises(AllocationError):
            r.alloc(1)

    def test_fragmentation_blocks_large_alloc(self):
        r = Region("ddr", 0, 1024)
        blocks = [r.alloc(256) for _ in range(4)]
        r.free(blocks[0])
        r.free(blocks[2])
        # 512 free but split in two 256 holes.
        assert r.free_bytes == 512
        with pytest.raises(AllocationError):
            r.alloc(512)
        assert r.fragmentation() == pytest.approx(0.5)

    def test_coalescing_merges_neighbours(self):
        r = Region("ddr", 0, 1024)
        blocks = [r.alloc(256) for _ in range(4)]
        for b in blocks:
            r.free(b)
        assert r.largest_free == 1024

    def test_double_free_detected(self):
        r = Region("ddr", 0, 1024)
        b = r.alloc(256)
        r.free(b)
        with pytest.raises(AllocationError):
            r.free(b)

    def test_foreign_block_rejected(self):
        r = Region("ddr", 0, 1024)
        other = Region("mcdram", 0, 1024)
        b = other.alloc(64)
        with pytest.raises(AllocationError):
            r.free(b)

    def test_zero_alloc_rejected(self):
        r = Region("ddr", 0, 1024)
        with pytest.raises(AllocationError):
            r.alloc(0)

    def test_invalid_region(self):
        with pytest.raises(ConfigError):
            Region("ddr", 0, 0)
        with pytest.raises(ConfigError):
            Region("ddr", -1, 10)


class TestHeapKinds:
    def test_default_goes_to_ddr(self):
        h = Heap(flat_node())
        a = h.allocate(MiB, MEMKIND_DEFAULT)
        assert a.devices == {"ddr"}

    def test_hbw_goes_to_mcdram(self):
        h = Heap(flat_node())
        a = h.allocate(MiB, MEMKIND_HBW)
        assert a.devices == {"mcdram"}

    def test_hbw_bind_fails_when_full(self):
        h = Heap(flat_node())
        h.allocate(16 * GiB, MEMKIND_HBW)
        with pytest.raises(AllocationError):
            h.allocate(1, MEMKIND_HBW)

    def test_hbw_preferred_spills_to_ddr(self):
        """The numactl behaviour Li et al. used: fill MCDRAM, then DDR."""
        h = Heap(flat_node())
        h.allocate(16 * GiB, MEMKIND_HBW_PREFERRED)
        spill = h.allocate(GiB, MEMKIND_HBW_PREFERRED)
        assert spill.devices == {"ddr"}

    def test_interleave_stripes_devices(self):
        h = Heap(flat_node(), page=4096)
        a = h.allocate(4096 * 4, MEMKIND_HBW_INTERLEAVE)
        assert a.devices == {"ddr", "mcdram"}
        assert a.bytes_on("mcdram") == 2 * 4096
        assert a.bytes_on("ddr") == 2 * 4096

    def test_interleave_partial_last_page(self):
        h = Heap(flat_node(), page=4096)
        a = h.allocate(4096 + 100, MEMKIND_HBW_INTERLEAVE)
        assert a.size == 4096 + 100
        assert a.bytes_on("mcdram") == 4096
        assert a.bytes_on("ddr") == 100

    def test_cache_mode_has_no_hbw(self):
        h = Heap(cache_node())
        assert not h.has_hbw()
        with pytest.raises(AllocationError):
            h.allocate(MiB, MEMKIND_HBW)

    def test_cache_mode_preferred_falls_back(self):
        h = Heap(cache_node())
        a = h.allocate(MiB, MEMKIND_HBW_PREFERRED)
        assert a.devices == {"ddr"}

    def test_cache_mode_interleave_all_ddr(self):
        h = Heap(cache_node())
        a = h.allocate(MiB, MEMKIND_HBW_INTERLEAVE)
        assert a.devices == {"ddr"}

    def test_hybrid_mode_partial_hbw(self):
        node = KNLNode(
            KNLNodeConfig(mode=MemoryMode.HYBRID, hybrid_cache_fraction=0.5)
        )
        h = Heap(node)
        h.allocate(8 * GiB, MEMKIND_HBW)  # exactly the flat half
        with pytest.raises(AllocationError):
            h.allocate(1, MEMKIND_HBW)

    def test_free_and_usage(self):
        h = Heap(flat_node())
        a = h.allocate(MiB, MEMKIND_HBW)
        assert h.usage()["mcdram"] == MiB
        h.free(a)
        assert h.usage()["mcdram"] == 0

    def test_double_free_allocation(self):
        h = Heap(flat_node())
        a = h.allocate(MiB, MEMKIND_HBW)
        h.free(a)
        with pytest.raises(AllocationError):
            h.free(a)

    def test_interleave_rollback_on_failure(self):
        """A failed interleave allocation frees its partial blocks."""
        node = KNLNode(
            KNLNodeConfig(mode=MemoryMode.FLAT, ddr_capacity=8192.0)
        )
        h = Heap(node, page=4096)
        before = h.usage()
        with pytest.raises(AllocationError):
            # Needs 17 GiB total; DDR side (half) exceeds 8 KiB DDR.
            h.allocate(34 * GiB, MEMKIND_HBW_INTERLEAVE)
        assert h.usage() == before

    def test_addresses_disjoint_across_devices(self):
        h = Heap(flat_node())
        a = h.allocate(MiB, MEMKIND_DEFAULT)
        b = h.allocate(MiB, MEMKIND_HBW)
        assert a.blocks[0].addr < Heap.MCDRAM_BASE <= b.blocks[0].addr

    def test_invalid_size(self):
        h = Heap(flat_node())
        with pytest.raises(AllocationError):
            h.allocate(0, MEMKIND_DEFAULT)

    def test_unknown_policy_kind(self):
        h = Heap(flat_node())
        bad = Kind("X", "mcdram", Policy.INTERLEAVE, fallback=None)
        with pytest.raises(ConfigError):
            h.allocate(MiB, bad)


class TestHbwAPI:
    def test_check_available(self):
        assert HbwAPI(Heap(flat_node())).check_available()
        assert not HbwAPI(Heap(cache_node())).check_available()

    def test_malloc_strict_default(self):
        api = HbwAPI(Heap(flat_node()))
        a = api.malloc(MiB)
        assert a.devices == {"mcdram"}

    def test_set_policy_preferred(self):
        api = HbwAPI(Heap(cache_node()))
        api.set_policy(preferred=True)
        a = api.malloc(MiB)
        assert a.devices == {"ddr"}

    def test_calloc(self):
        api = HbwAPI(Heap(flat_node()))
        a = api.calloc(16, 64)
        assert a.size == 1024

    def test_calloc_invalid(self):
        api = HbwAPI(Heap(flat_node()))
        with pytest.raises(AllocationError):
            api.calloc(0, 64)

    def test_ddr_malloc(self):
        api = HbwAPI(Heap(flat_node()))
        assert api.ddr_malloc(MiB).devices == {"ddr"}

    def test_free(self):
        api = HbwAPI(Heap(flat_node()))
        a = api.malloc(MiB)
        api.free(a)
        assert api.heap.usage()["mcdram"] == 0


# ---- property-based ------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=1, max_value=2048)),
        max_size=60,
    )
)
def test_region_conservation(ops):
    """allocated + free == size at every step; frees always succeed."""
    r = Region("ddr", 0, 1 << 20)
    live = []
    for is_alloc, size in ops:
        if is_alloc or not live:
            try:
                live.append(r.alloc(size))
            except AllocationError:
                pass
        else:
            r.free(live.pop())
        assert r.allocated + r.free_bytes == 1 << 20
    for b in live:
        r.free(b)
    assert r.free_bytes == 1 << 20
    assert r.largest_free == 1 << 20


@settings(max_examples=100, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=1 << 16), max_size=30)
)
def test_allocations_never_overlap(sizes):
    r = Region("ddr", 0, 1 << 22)
    blocks = []
    for s in sizes:
        try:
            blocks.append(r.alloc(s))
        except AllocationError:
            break
    spans = sorted((b.addr, b.addr + b.size) for b in blocks)
    for (a0, a1), (b0, _b1) in zip(spans, spans[1:]):
        assert a1 <= b0


@settings(max_examples=50, deadline=None)
@given(size=st.integers(min_value=1, max_value=1 << 24))
def test_interleave_split_is_balanced(size):
    """Interleaved allocations put each device within one page of half."""
    h = Heap(flat_node(), page=4096)
    a = h.allocate(size, MEMKIND_HBW_INTERLEAVE)
    assert abs(a.bytes_on("mcdram") - a.bytes_on("ddr")) <= 4096
    assert a.size == size


class TestRegionFaultHardening:
    def test_non_positive_size_rejected(self):
        r = Region("ddr", 0, 1024)
        with pytest.raises(AllocationError, match="must be positive"):
            r.alloc(0)
        with pytest.raises(AllocationError, match="must be positive"):
            r.alloc(-8)
        assert r.free_bytes == 1024

    def test_double_free_same_block_raises(self):
        r = Region("ddr", 0, 1024)
        b = r.alloc(256)
        r.free(b)
        with pytest.raises(AllocationError, match="double free"):
            r.free(b)
        # Free list stays consistent: the full region is reusable.
        assert r.free_bytes == 1024
        assert r.largest_free == 1024

    def test_double_free_after_coalescing_raises(self):
        """Re-freeing a block whose extent was coalesced into a larger
        free extent must be caught (the overlap probes alone miss it)."""
        r = Region("ddr", 0, 1024)
        a = r.alloc(256)
        b = r.alloc(256)
        r.free(a)
        r.free(b)  # coalesces with a's extent
        with pytest.raises(AllocationError, match="double free"):
            r.free(a)
        with pytest.raises(AllocationError, match="double free"):
            r.free(b)
        assert r.free_bytes == 1024

    def test_foreign_block_rejected(self):
        r = Region("ddr", 0, 1024)
        r.alloc(256)
        from repro.memkind.allocator import Block

        with pytest.raises(AllocationError, match="double free|foreign"):
            r.free(Block("ddr", 128, 64))

    def test_shrink_surrenders_free_space_only(self):
        r = Region("mcdram", 0, 1024)
        live = r.alloc(512)
        removed = r.shrink(1024)
        assert removed == 512  # only the free half could be given up
        assert r.surrendered == 512
        assert r.free_bytes == 0
        # The live block is untouched and still freeable.
        r.free(live)
        assert r.allocated == 0


class TestHeapFaultFallback:
    def test_injected_fault_falls_back_to_ddr(self):
        from repro.errors import DegradedModeWarning
        from repro.faults import FaultKind, FaultPlan, FaultSpec

        inj = FaultPlan(
            0, [FaultSpec(FaultKind.ALLOC_FAIL, "mcdram", probability=1.0)]
        ).injector()
        h = Heap(flat_node(), injector=inj)
        with pytest.warns(DegradedModeWarning):
            a = h.allocate(1 * MiB, MEMKIND_HBW)
        assert a.devices == {"ddr"}
        assert inj.counters.alloc_fallbacks == 1

    def test_no_fault_no_fallback(self):
        from repro.faults import FaultKind, FaultPlan, FaultSpec

        inj = FaultPlan(
            0, [FaultSpec(FaultKind.ALLOC_FAIL, "mcdram", probability=0.0,
                          at_phase=5)]
        ).injector()
        h = Heap(flat_node(), injector=inj)
        a = h.allocate(1 * MiB, MEMKIND_HBW)
        assert a.devices == {"mcdram"}
        assert inj.counters.alloc_fallbacks == 0

    def test_shrink_device_unknown_is_noop(self):
        h = Heap(flat_node())
        assert h.shrink_device("nvm", 1024) == 0
