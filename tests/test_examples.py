"""Smoke tests: every example script runs end to end.

``reproduce_paper.py`` is excluded (it re-runs every driver and is
covered by the benchmark harness); the others execute in seconds.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

SCRIPTS = [
    ("quickstart.py", []),
    ("out_of_core_sort.py", []),
    ("tune_copy_threads.py", ["4"]),
    ("usage_mode_explorer.py", ["20", "4"]),
    ("three_level_memory.py", ["25"]),
    ("trace_pipeline.py", []),
    ("fault_injection.py", ["0.5"]),
    ("telemetry_tour.py", []),
    ("store_replay.py", []),
]


@pytest.mark.parametrize("script,argv", SCRIPTS, ids=[s for s, _ in SCRIPTS])
def test_example_runs(script, argv, capsys, monkeypatch):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    monkeypatch.setattr(sys, "argv", [str(path), *argv])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_trace_example_writes_chrome_trace(tmp_path, capsys, monkeypatch):
    path = EXAMPLES / "trace_pipeline.py"
    trace = tmp_path / "trace.json"
    monkeypatch.setattr(sys, "argv", [str(path), str(trace)])
    runpy.run_path(str(path), run_name="__main__")
    assert trace.exists()
    assert "traceEvents" in trace.read_text()
