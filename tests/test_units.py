"""Tests for unit conversions."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.units import (
    CACHE_LINE,
    GB,
    GiB,
    INT64,
    bytes_to_elements,
    elements_to_bytes,
    gb,
    gib,
    to_gb,
    to_gib,
)


class TestConstants:
    def test_decimal_vs_binary(self):
        assert GB == 10**9
        assert GiB == 2**30
        assert GiB > GB

    def test_knl_constants(self):
        assert CACHE_LINE == 64
        assert INT64 == 8


class TestConversions:
    def test_gb_roundtrip(self):
        assert to_gb(gb(14.9)) == pytest.approx(14.9)

    def test_gib_roundtrip(self):
        assert to_gib(gib(16)) == pytest.approx(16.0)

    def test_paper_sizes(self):
        """2 B int64 elements = 16 GB, the Table 1 smallest workload."""
        assert to_gb(elements_to_bytes(2_000_000_000)) == pytest.approx(16.0)

    def test_elements_roundtrip(self):
        assert bytes_to_elements(elements_to_bytes(12345)) == 12345

    def test_bytes_to_elements_floors(self):
        assert bytes_to_elements(15) == 1
        assert bytes_to_elements(7) == 0

    def test_custom_element_size(self):
        assert elements_to_bytes(10, element_size=4) == 40
        assert bytes_to_elements(40, element_size=4) == 10

    def test_invalid_inputs(self):
        with pytest.raises(ReproError):
            elements_to_bytes(-1)
        with pytest.raises(ReproError):
            elements_to_bytes(1, element_size=0)
        with pytest.raises(ReproError):
            bytes_to_elements(8, element_size=0)
