"""Functional and timed tests for the GNU baseline and MLM-sort."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.algorithms.costs import SortCostModel
from repro.algorithms.mlm_sort import (
    MLMSortConfig,
    basic_chunked_sort,
    basic_chunked_sort_plan,
    mlm_sort,
    mlm_sort_plan,
)
from repro.algorithms.parallel_sort import gnu_parallel_sort, gnu_sort_plan
from repro.core.modes import UsageMode
from repro.errors import ConfigError
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode


def flat_node():
    return KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))


def cache_node():
    return KNLNode(KNLNodeConfig(mode=MemoryMode.CACHE))


# ---- functional -----------------------------------------------------------


class TestGnuParallelSortFunctional:
    def test_sorts_random(self):
        rng = np.random.default_rng(0)
        a = rng.integers(-500, 500, 3000, dtype=np.int64)
        assert np.array_equal(gnu_parallel_sort(a, threads=5), np.sort(a))

    def test_empty(self):
        a = np.array([], dtype=np.int64)
        assert len(gnu_parallel_sort(a)) == 0

    def test_threads_exceed_elements(self):
        a = np.array([3, 1], dtype=np.int64)
        assert np.array_equal(gnu_parallel_sort(a, threads=16), [1, 3])

    def test_input_unmodified(self):
        a = np.array([3, 1, 2], dtype=np.int64)
        gnu_parallel_sort(a, threads=2)
        assert np.array_equal(a, [3, 1, 2])

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            gnu_parallel_sort(np.array([1]), threads=0)
        with pytest.raises(ConfigError):
            gnu_parallel_sort(np.zeros((2, 2)))


class TestMlmSortFunctional:
    def test_sorts_random(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 10**6, 5000, dtype=np.int64)
        out = mlm_sort(a, megachunk_elements=1234, threads=4)
        assert np.array_equal(out, np.sort(a))

    def test_megachunk_equals_n_implicit_style(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 100, 2000, dtype=np.int64)
        assert np.array_equal(mlm_sort(a, len(a), threads=8), np.sort(a))

    def test_megachunk_larger_than_n(self):
        a = np.array([5, 1, 3], dtype=np.int64)
        assert np.array_equal(mlm_sort(a, 10**9, threads=2), [1, 3, 5])

    def test_single_thread(self):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 50, 500, dtype=np.int64)
        assert np.array_equal(mlm_sort(a, 100, threads=1), np.sort(a))

    def test_empty(self):
        assert len(mlm_sort(np.array([], dtype=np.int64), 10)) == 0

    def test_invalid(self):
        with pytest.raises(ConfigError):
            mlm_sort(np.array([1]), 0)
        with pytest.raises(ConfigError):
            mlm_sort(np.array([1]), 1, threads=0)


class TestBasicChunkedFunctional:
    def test_sorts(self):
        rng = np.random.default_rng(4)
        a = rng.integers(-100, 100, 3000, dtype=np.int64)
        assert np.array_equal(basic_chunked_sort(a, 700, threads=3), np.sort(a))

    def test_empty(self):
        assert len(basic_chunked_sort(np.array([], dtype=np.int64), 10)) == 0


@settings(max_examples=60, deadline=None)
@given(
    arr=arrays(
        dtype=np.int64,
        shape=st.integers(min_value=0, max_value=400),
        elements=st.integers(min_value=-(10**6), max_value=10**6),
    ),
    mega=st.integers(min_value=1, max_value=500),
    threads=st.integers(min_value=1, max_value=8),
)
def test_mlm_sort_property(arr, mega, threads):
    assert np.array_equal(mlm_sort(arr, mega, threads), np.sort(arr))


@settings(max_examples=60, deadline=None)
@given(
    arr=arrays(
        dtype=np.int64,
        shape=st.integers(min_value=0, max_value=400),
        elements=st.integers(min_value=-(10**6), max_value=10**6),
    ),
    threads=st.integers(min_value=1, max_value=8),
)
def test_gnu_sort_property(arr, threads):
    assert np.array_equal(gnu_parallel_sort(arr, threads), np.sort(arr))


# ---- timed ----------------------------------------------------------------

N2 = 2_000_000_000
MEGA = 1_000_000_000


class TestGnuPlan:
    def test_gnu_flat_near_paper(self):
        node = flat_node()
        t = node.run(gnu_sort_plan(node, N2, "random", UsageMode.DDR)).elapsed
        assert t == pytest.approx(11.92, rel=0.10)

    def test_gnu_cache_beats_flat(self):
        nf, nc = flat_node(), cache_node()
        tf = nf.run(gnu_sort_plan(nf, N2, "random", UsageMode.DDR)).elapsed
        tc = nc.run(gnu_sort_plan(nc, N2, "random", UsageMode.CACHE)).elapsed
        assert tc < tf

    def test_reverse_faster_than_random(self):
        node = flat_node()
        tr = node.run(gnu_sort_plan(node, N2, "random", UsageMode.DDR)).elapsed
        tv = node.run(gnu_sort_plan(node, N2, "reverse", UsageMode.DDR)).elapsed
        assert tv < tr

    def test_mode_validation(self):
        with pytest.raises(ConfigError):
            gnu_sort_plan(flat_node(), N2, "random", UsageMode.FLAT)
        with pytest.raises(ConfigError):
            gnu_sort_plan(flat_node(), N2, "random", UsageMode.CACHE)

    def test_invalid_n(self):
        with pytest.raises(ConfigError):
            gnu_sort_plan(flat_node(), 0, "random", UsageMode.DDR)


class TestMlmPlan:
    def test_mlm_sort_near_paper(self):
        node = flat_node()
        cfg = MLMSortConfig(N2, MEGA, UsageMode.FLAT, "random")
        t = node.run(mlm_sort_plan(node, cfg)).elapsed
        assert t == pytest.approx(8.09, rel=0.10)

    def test_mlm_implicit_near_paper(self):
        node = cache_node()
        cfg = MLMSortConfig(N2, N2, UsageMode.IMPLICIT, "random")
        t = node.run(mlm_sort_plan(node, cfg)).elapsed
        assert t == pytest.approx(7.37, rel=0.10)

    def test_headline_speedup_1_6x_to_1_9x(self):
        """The paper's headline: 1.6-1.9x over GNU sort without MCDRAM."""
        for order, expected in (("random", 11.92 / 7.37), ("reverse", 7.97 / 4.10)):
            nf, nc = flat_node(), cache_node()
            t_gnu = nf.run(gnu_sort_plan(nf, N2, order, UsageMode.DDR)).elapsed
            cfg = MLMSortConfig(N2, N2, UsageMode.IMPLICIT, order)
            t_mlm = nc.run(mlm_sort_plan(nc, cfg)).elapsed
            assert t_gnu / t_mlm == pytest.approx(expected, rel=0.20)
            assert 1.4 < t_gnu / t_mlm < 2.4

    def test_ordering_matches_table1(self):
        """GNU-flat > GNU-cache > MLM-ddr > MLM-sort > MLM-implicit."""
        nf, nc = flat_node(), cache_node()
        t = [
            nf.run(gnu_sort_plan(nf, N2, "random", UsageMode.DDR)).elapsed,
            nc.run(gnu_sort_plan(nc, N2, "random", UsageMode.CACHE)).elapsed,
            nf.run(
                mlm_sort_plan(nf, MLMSortConfig(N2, MEGA, UsageMode.DDR))
            ).elapsed,
            nf.run(
                mlm_sort_plan(nf, MLMSortConfig(N2, MEGA, UsageMode.FLAT))
            ).elapsed,
            nc.run(
                mlm_sort_plan(nc, MLMSortConfig(N2, N2, UsageMode.IMPLICIT))
            ).elapsed,
        ]
        assert t == sorted(t, reverse=True)

    def test_flat_megachunk_capacity_enforced(self):
        node = flat_node()
        cfg = MLMSortConfig(N2 * 3, N2 * 3, UsageMode.FLAT)
        with pytest.raises(ConfigError):
            mlm_sort_plan(node, cfg)

    def test_implicit_megachunk_may_exceed_mcdram(self):
        node = cache_node()
        cfg = MLMSortConfig(6_000_000_000, 6_000_000_000, UsageMode.IMPLICIT)
        t = node.run(mlm_sort_plan(node, cfg)).elapsed
        assert t > 0

    def test_single_megachunk_skips_final_merge(self):
        node = cache_node()
        one = mlm_sort_plan(node, MLMSortConfig(N2, N2, UsageMode.IMPLICIT))
        many = mlm_sort_plan(node, MLMSortConfig(N2, MEGA, UsageMode.IMPLICIT))
        assert not any("final-merge" in p.name for p in one.phases)
        assert any("final-merge" in p.name for p in many.phases)

    def test_hybrid_mode_runs(self):
        node = KNLNode(
            KNLNodeConfig(mode=MemoryMode.HYBRID, hybrid_cache_fraction=0.5)
        )
        cfg = MLMSortConfig(N2, 500_000_000, UsageMode.HYBRID)
        t = node.run(mlm_sort_plan(node, cfg)).elapsed
        assert t > 0

    def test_hybrid_near_flat_given_same_chunk(self):
        """Paper Section 4.2: hybrid ~ flat at equal chunk size."""
        mega = 500_000_000
        nf = flat_node()
        nh = KNLNode(
            KNLNodeConfig(mode=MemoryMode.HYBRID, hybrid_cache_fraction=0.5)
        )
        tf = nf.run(mlm_sort_plan(nf, MLMSortConfig(N2, mega, UsageMode.FLAT))).elapsed
        th = nh.run(
            mlm_sort_plan(nh, MLMSortConfig(N2, mega, UsageMode.HYBRID))
        ).elapsed
        assert th == pytest.approx(tf, rel=0.02)

    def test_buffered_megachunks_extension_not_slower(self):
        """The future-work buffered variant hides copy-in latency."""
        node = flat_node()
        base = node.run(
            mlm_sort_plan(node, MLMSortConfig(N2 * 3, MEGA, UsageMode.FLAT))
        ).elapsed
        buf = node.run(
            mlm_sort_plan(
                node,
                MLMSortConfig(
                    N2 * 3, MEGA, UsageMode.FLAT, buffered_megachunks=True
                ),
            )
        ).elapsed
        assert buf <= base

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            MLMSortConfig(0, 1)
        with pytest.raises(ConfigError):
            MLMSortConfig(1, 0)
        with pytest.raises(ConfigError):
            MLMSortConfig(1, 1, UsageMode.CACHE)
        with pytest.raises(ConfigError):
            MLMSortConfig(
                1, 1, buffered_megachunks=True, copy_in_threads=256, threads=256
            )


class TestBasicChunkedPlan:
    def test_beats_gnu_flat(self):
        """Bender corroboration: chunking speeds up the basic sort."""
        node = flat_node()
        t_basic = node.run(
            basic_chunked_sort_plan(node, N2, 600_000_000)
        ).elapsed
        t_gnu = node.run(gnu_sort_plan(node, N2, "random", UsageMode.DDR)).elapsed
        assert 1.05 < t_gnu / t_basic < 1.6

    def test_reduces_ddr_traffic(self):
        node = flat_node()
        r_basic = node.run(basic_chunked_sort_plan(node, N2, 600_000_000))
        r_gnu = node.run(gnu_sort_plan(node, N2, "random", UsageMode.DDR))
        assert r_gnu.traffic["ddr"] / r_basic.traffic["ddr"] > 2.0

    def test_no_compute_threads_rejected(self):
        with pytest.raises(ConfigError):
            basic_chunked_sort_plan(
                flat_node(), N2, 600_000_000, threads=16, copy_in_threads=8
            )


class TestCostSensitivity:
    def test_slower_sort_rate_slower_time(self):
        node = flat_node()
        cfg = MLMSortConfig(N2, MEGA, UsageMode.FLAT)
        fast = node.run(mlm_sort_plan(node, cfg, SortCostModel())).elapsed
        slow = node.run(
            mlm_sort_plan(node, cfg, SortCostModel(s_sort_random=0.1e9))
        ).elapsed
        assert slow > fast

    def test_chunk_overhead_scales_with_chunks(self):
        node = flat_node()
        c = SortCostModel(chunk_overhead_s=1.0)
        few = node.run(
            mlm_sort_plan(node, MLMSortConfig(N2, MEGA, UsageMode.FLAT), c)
        ).elapsed
        many = node.run(
            mlm_sort_plan(node, MLMSortConfig(N2, MEGA // 4, UsageMode.FLAT), c)
        ).elapsed
        assert many > few
