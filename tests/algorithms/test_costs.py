"""Tests for the sort cost model."""

from __future__ import annotations

import pytest

from repro.algorithms.costs import SortCostModel, sort_levels
from repro.errors import ConfigError


class TestValidation:
    def test_defaults_valid(self):
        SortCostModel()

    def test_rejects_bad_rates(self):
        with pytest.raises(ConfigError):
            SortCostModel(s_sort_random=0)
        with pytest.raises(ConfigError):
            SortCostModel(s_merge=-1)

    def test_rejects_bad_factors(self):
        with pytest.raises(ConfigError):
            SortCostModel(reverse_factor_mlm=0.0)
        with pytest.raises(ConfigError):
            SortCostModel(cache_bw_factor=1.5)
        with pytest.raises(ConfigError):
            SortCostModel(thrash_rate_factor=0.0)

    def test_rejects_negative_overheads(self):
        with pytest.raises(ConfigError):
            SortCostModel(chunk_overhead_s=-0.1)
        with pytest.raises(ConfigError):
            SortCostModel(level_const=-1)

    def test_replace(self):
        c = SortCostModel().replace(s_merge=1.0)
        assert c.s_merge == 1.0
        assert SortCostModel().s_merge != 1.0


class TestOrderFactor:
    def test_random_is_one(self):
        c = SortCostModel()
        assert c.order_factor("random", gnu=False) == 1.0
        assert c.order_factor("random", gnu=True) == 1.0

    def test_reverse_distinguishes_gnu(self):
        """The paper: MLM exploits reversed structure more than GNU."""
        c = SortCostModel()
        assert c.order_factor("reverse", gnu=False) < c.order_factor(
            "reverse", gnu=True
        )

    def test_sorted_easier_than_reverse(self):
        c = SortCostModel()
        assert c.order_factor("sorted", gnu=False) < c.order_factor(
            "reverse", gnu=False
        )

    def test_unknown_order_rejected(self):
        with pytest.raises(ConfigError):
            SortCostModel().order_factor("shuffled", gnu=False)


class TestSortLevels:
    def test_levels_grow_with_m(self):
        c = SortCostModel()
        assert sort_levels(1 << 24, c) > sort_levels(1 << 20, c)

    def test_mlm_levels_grow_sublogarithmically(self):
        """4x the chunk adds only level_log_weight * 2 levels."""
        c = SortCostModel()
        delta = sort_levels(4 << 20, c) - sort_levels(1 << 20, c)
        assert delta == pytest.approx(c.level_overhead * c.level_log_weight * 2)

    def test_gnu_levels_fully_logarithmic(self):
        c = SortCostModel()
        delta = sort_levels(4 << 20, c, gnu=True) - sort_levels(
            1 << 20, c, gnu=True
        )
        assert delta == pytest.approx(c.gnu_level_overhead * 2)

    def test_reverse_fewer_levels(self):
        c = SortCostModel()
        assert sort_levels(1 << 22, c, order="reverse") < sort_levels(
            1 << 22, c, order="random"
        )

    def test_minimum_one_level(self):
        c = SortCostModel(level_const=0.0, level_log_weight=0.01)
        assert sort_levels(2, c) >= 1.0

    def test_rejects_tiny_m(self):
        with pytest.raises(ConfigError):
            sort_levels(0, SortCostModel())
