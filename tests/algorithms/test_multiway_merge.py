"""Tests for the loser tree, vectorized merges, and exact splitting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.multiway_merge import (
    LoserTree,
    merge_two,
    multiseq_partition,
    multiway_merge,
    parallel_multiway_merge,
)
from repro.errors import ConfigError


def sorted_runs(seed: int, k: int, max_len: int = 50) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [
        np.sort(rng.integers(0, 100, rng.integers(0, max_len), dtype=np.int64))
        for _ in range(k)
    ]


class TestMergeTwo:
    def test_basic(self):
        a = np.array([1, 3, 5], dtype=np.int64)
        b = np.array([2, 4, 6], dtype=np.int64)
        assert np.array_equal(merge_two(a, b), [1, 2, 3, 4, 5, 6])

    def test_empty_sides(self):
        a = np.array([], dtype=np.int64)
        b = np.array([1, 2], dtype=np.int64)
        assert np.array_equal(merge_two(a, b), [1, 2])
        assert np.array_equal(merge_two(b, a), [1, 2])

    def test_duplicates_stable(self):
        """Equal keys from the first array precede the second's."""
        # Merge equal keys from both inputs: each input's duplicates
        # appear together in the output.
        keys_a = np.array([1, 2], dtype=np.int64)
        keys_b = np.array([1, 2], dtype=np.int64)
        merged = merge_two(keys_a, keys_b)
        assert np.array_equal(merged, [1, 1, 2, 2])

    def test_dtype_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            merge_two(np.array([1], dtype=np.int64), np.array([1], dtype=np.int32))

    def test_all_interleavings(self):
        a = np.array([1, 1, 1], dtype=np.int64)
        b = np.array([1, 1], dtype=np.int64)
        assert np.array_equal(merge_two(a, b), [1, 1, 1, 1, 1])


class TestLoserTree:
    def test_single_run(self):
        lt = LoserTree([np.array([1, 2, 3], dtype=np.int64)])
        assert np.array_equal(lt.merge(), [1, 2, 3])

    def test_k_runs(self):
        runs = sorted_runs(0, 5)
        expected = np.sort(np.concatenate(runs))
        assert np.array_equal(LoserTree(runs).merge(), expected)

    def test_non_power_of_two_k(self):
        runs = sorted_runs(1, 7)
        expected = np.sort(np.concatenate(runs))
        assert np.array_equal(LoserTree(runs).merge(), expected)

    def test_with_empty_runs(self):
        runs = [
            np.array([], dtype=np.int64),
            np.array([2, 4], dtype=np.int64),
            np.array([], dtype=np.int64),
            np.array([1], dtype=np.int64),
        ]
        assert np.array_equal(LoserTree(runs).merge(), [1, 2, 4])

    def test_pop_order(self):
        lt = LoserTree([np.array([3], dtype=np.int64), np.array([1], dtype=np.int64)])
        assert lt.pop() == 1
        assert lt.pop() == 3
        assert lt.empty

    def test_pop_exhausted_raises(self):
        lt = LoserTree([np.array([], dtype=np.int64)])
        with pytest.raises(ConfigError):
            lt.pop()

    def test_no_runs_rejected(self):
        with pytest.raises(ConfigError):
            LoserTree([])


class TestMultiwayMerge:
    @pytest.mark.parametrize("strategy", ["tournament", "losertree"])
    def test_strategies_agree(self, strategy):
        runs = sorted_runs(3, 6)
        expected = np.sort(np.concatenate(runs))
        assert np.array_equal(multiway_merge(runs, strategy), expected)

    def test_single_run_passthrough(self):
        r = np.array([1, 5, 9], dtype=np.int64)
        assert np.array_equal(multiway_merge([r]), r)

    def test_unknown_strategy(self):
        with pytest.raises(ConfigError):
            multiway_merge([np.array([1])], strategy="bogus")

    def test_empty_list_rejected(self):
        with pytest.raises(ConfigError):
            multiway_merge([])


class TestMultiseqPartition:
    def test_rank_zero_and_total(self):
        runs = sorted_runs(4, 3)
        total = sum(len(r) for r in runs)
        assert multiseq_partition(runs, 0) == [0, 0, 0]
        assert multiseq_partition(runs, total) == [len(r) for r in runs]

    def test_split_property(self):
        """Every selected element <= every unselected element."""
        runs = sorted_runs(5, 4, max_len=30)
        total = sum(len(r) for r in runs)
        for rank in range(0, total + 1, max(1, total // 7)):
            splits = multiseq_partition(runs, rank)
            assert sum(splits) == rank
            left = [r[:s] for r, s in zip(runs, splits)]
            right = [r[s:] for r, s in zip(runs, splits)]
            lmax = max((r[-1] for r in left if len(r)), default=None)
            rmin = min((r[0] for r in right if len(r)), default=None)
            if lmax is not None and rmin is not None:
                assert lmax <= rmin

    def test_bad_rank_rejected(self):
        runs = [np.array([1, 2], dtype=np.int64)]
        with pytest.raises(ConfigError):
            multiseq_partition(runs, 3)
        with pytest.raises(ConfigError):
            multiseq_partition(runs, -1)

    def test_float_dtype_supported(self):
        assert multiseq_partition([np.array([1.0, 2.0])], 1) == [1]

    def test_float_split_property(self):
        rng = np.random.default_rng(11)
        runs = [
            np.sort(rng.normal(size=rng.integers(0, 40)))
            for _ in range(4)
        ]
        total = sum(len(r) for r in runs)
        for rank in range(total + 1):
            splits = multiseq_partition(runs, rank)
            assert sum(splits) == rank
            left = [r[:s] for r, s in zip(runs, splits)]
            right = [r[s:] for r, s in zip(runs, splits)]
            lmax = max((r[-1] for r in left if len(r)), default=None)
            rmin = min((r[0] for r in right if len(r)), default=None)
            if lmax is not None and rmin is not None:
                assert lmax <= rmin

    def test_float_ties_distributed(self):
        runs = [
            np.array([0.5, 0.5, 0.5]),
            np.array([0.5, 0.5]),
        ]
        for rank in range(6):
            splits = multiseq_partition(runs, rank)
            assert sum(splits) == rank


class TestParallelMultiwayMerge:
    def test_matches_serial(self):
        runs = sorted_runs(6, 5)
        expected = np.sort(np.concatenate(runs))
        for threads in (1, 2, 3, 8):
            assert np.array_equal(
                parallel_multiway_merge(runs, threads), expected
            )

    def test_more_threads_than_elements(self):
        runs = [np.array([2], dtype=np.int64), np.array([1], dtype=np.int64)]
        assert np.array_equal(parallel_multiway_merge(runs, 16), [1, 2])

    def test_all_empty(self):
        runs = [np.array([], dtype=np.int64)] * 3
        assert len(parallel_multiway_merge(runs, 4)) == 0

    def test_bad_threads(self):
        with pytest.raises(ConfigError):
            parallel_multiway_merge([np.array([1])], 0)


# ---- property-based ------------------------------------------------------

runs_strategy = st.lists(
    st.lists(
        st.integers(min_value=-1000, max_value=1000), max_size=40
    ).map(lambda xs: np.sort(np.array(xs, dtype=np.int64))),
    min_size=1,
    max_size=8,
)


@settings(max_examples=120, deadline=None)
@given(runs=runs_strategy)
def test_merge_equals_sorted_concat(runs):
    expected = np.sort(np.concatenate(runs))
    assert np.array_equal(multiway_merge(runs), expected)


@settings(max_examples=60, deadline=None)
@given(runs=runs_strategy)
def test_losertree_equals_tournament(runs):
    assert np.array_equal(
        multiway_merge(runs, "losertree"), multiway_merge(runs, "tournament")
    )


@settings(max_examples=120, deadline=None)
@given(runs=runs_strategy)
def test_galloping_losertree_equals_sorted_concat(runs):
    """The galloping block drain must be indistinguishable from
    sorting the concatenation."""
    assert np.array_equal(
        LoserTree(runs).merge(), np.sort(np.concatenate(runs))
    )


@settings(max_examples=60, deadline=None)
@given(
    runs=st.lists(
        st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6, allow_nan=False
            ),
            max_size=40,
        ).map(lambda xs: np.sort(np.array(xs, dtype=np.float64))),
        min_size=1,
        max_size=6,
    )
)
def test_galloping_losertree_floats(runs):
    assert np.array_equal(
        LoserTree(runs).merge(), np.sort(np.concatenate(runs))
    )


def test_galloping_losertree_clustered_runs():
    """Nearly-disjoint runs exercise the long-block gallop path."""
    rng = np.random.default_rng(3)
    runs = []
    for i in range(6):
        base = i * 10_000
        runs.append(
            np.sort(
                rng.integers(base, base + 9_000, 5_000, dtype=np.int64)
            )
        )
    # a spoiler run spanning everything forces mid-block challenges
    runs.append(np.sort(rng.integers(0, 60_000, 500, dtype=np.int64)))
    assert np.array_equal(
        LoserTree(runs).merge(), np.sort(np.concatenate(runs))
    )


def test_losertree_pop_then_galloping_merge():
    """Interleaving per-element pops with the galloping drain."""
    rng = np.random.default_rng(4)
    runs = [
        np.sort(rng.integers(0, 50, rng.integers(0, 20), dtype=np.int64))
        for _ in range(4)
    ]
    expected = np.sort(np.concatenate(runs))
    lt = LoserTree(runs)
    popped = np.array(
        [lt.pop() for _ in range(min(5, len(expected)))], dtype=np.int64
    )
    rest = lt.merge()
    assert np.array_equal(np.concatenate([popped, rest]), expected)


@settings(max_examples=60, deadline=None)
@given(runs=runs_strategy, threads=st.integers(min_value=1, max_value=6))
def test_parallel_merge_matches(runs, threads):
    expected = np.sort(np.concatenate(runs))
    assert np.array_equal(parallel_multiway_merge(runs, threads), expected)


@settings(max_examples=80, deadline=None)
@given(
    a=st.lists(st.integers(min_value=-50, max_value=50), max_size=60),
    b=st.lists(st.integers(min_value=-50, max_value=50), max_size=60),
)
def test_merge_two_property(a, b):
    aa = np.sort(np.array(a, dtype=np.int64))
    bb = np.sort(np.array(b, dtype=np.int64))
    out = merge_two(aa, bb)
    assert np.array_equal(out, np.sort(np.concatenate([aa, bb])))
