"""Tests for the funnelsort implementation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.algorithms.funnelsort import (
    FUNNEL_BASE,
    funnelsort,
    funnelsort_merge_depth,
)
from repro.errors import ConfigError


class TestFunnelsort:
    def test_sorts_random(self):
        rng = np.random.default_rng(0)
        a = rng.integers(-(10**6), 10**6, 5000, dtype=np.int64)
        assert np.array_equal(funnelsort(a), np.sort(a))

    def test_base_case(self):
        a = np.array([5, 2, 9], dtype=np.int64)
        assert len(a) <= FUNNEL_BASE
        assert np.array_equal(funnelsort(a), [2, 5, 9])

    def test_empty(self):
        assert len(funnelsort(np.array([], dtype=np.int64))) == 0

    def test_reverse(self):
        a = np.arange(1000, dtype=np.int64)[::-1].copy()
        assert np.array_equal(funnelsort(a), np.arange(1000))

    def test_duplicates(self):
        a = np.full(500, 7, dtype=np.int64)
        assert np.array_equal(funnelsort(a), a)

    def test_input_unmodified(self):
        a = np.array([3, 1, 2] * 100, dtype=np.int64)
        snapshot = a.copy()
        funnelsort(a)
        assert np.array_equal(a, snapshot)

    def test_rejects_2d(self):
        with pytest.raises(ConfigError):
            funnelsort(np.zeros((2, 2)))


class TestMergeDepth:
    def test_tiny_is_zero(self):
        assert funnelsort_merge_depth(FUNNEL_BASE) == 0

    def test_grows_very_slowly(self):
        """Θ(log log n): a 10^6x size increase adds only a couple of
        rounds — the structural difference vs binary mergesort."""
        assert funnelsort_merge_depth(10**9) <= funnelsort_merge_depth(10**3) + 4

    def test_monotone(self):
        depths = [funnelsort_merge_depth(n) for n in (10**2, 10**4, 10**6, 10**8)]
        assert depths == sorted(depths)

    def test_invalid(self):
        with pytest.raises(ConfigError):
            funnelsort_merge_depth(0)


@settings(max_examples=60, deadline=None)
@given(
    arr=arrays(
        dtype=np.int64,
        shape=st.integers(min_value=0, max_value=1500),
        elements=st.integers(min_value=-(10**9), max_value=10**9),
    )
)
def test_funnelsort_matches_numpy(arr):
    assert np.array_equal(funnelsort(arr), np.sort(arr))


class TestTimedFunnelsort:
    def test_between_implicit_and_gnu_cache(self):
        from repro.algorithms.funnelsort import funnelsort_plan
        from repro.experiments.runner import sort_variant_run
        from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode

        n = 2_000_000_000
        node = KNLNode(KNLNodeConfig(mode=MemoryMode.CACHE))
        t_fun = node.run(funnelsort_plan(node, n)).elapsed
        t_imp = sort_variant_run("MLM-implicit", n, "random").elapsed
        t_gnu = sort_variant_run("GNU-cache", n, "random").elapsed
        assert t_imp < t_fun < t_gnu

    def test_funnelsort_beats_naive_oblivious(self):
        """Fewer cross-block rounds than the plain binary mergesort."""
        from repro.algorithms.funnelsort import funnelsort_plan
        from repro.algorithms.oblivious import oblivious_sort_plan
        from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode

        n = 2_000_000_000
        node = KNLNode(KNLNodeConfig(mode=MemoryMode.CACHE))
        t_fun = node.run(funnelsort_plan(node, n)).elapsed
        t_obl = node.run(oblivious_sort_plan(node, n)).elapsed
        assert t_fun <= t_obl

    def test_invalid(self):
        from repro.algorithms.funnelsort import funnelsort_plan
        from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode
        import pytest as _pytest
        from repro.errors import ConfigError

        node = KNLNode(KNLNodeConfig(mode=MemoryMode.CACHE))
        with _pytest.raises(ConfigError):
            funnelsort_plan(node, 0)
