"""Tests for the serial introsort building block."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.algorithms.serial_sort import (
    INSERTION_THRESHOLD,
    insertion_sort,
    introsort,
    serial_sort,
)
from repro.errors import ConfigError


class TestInsertionSort:
    def test_full_array(self):
        a = np.array([5, 2, 8, 1, 9, 3])
        insertion_sort(a)
        assert np.array_equal(a, [1, 2, 3, 5, 8, 9])

    def test_subrange_only(self):
        a = np.array([9, 5, 2, 8, 0])
        insertion_sort(a, 1, 4)
        assert np.array_equal(a, [9, 2, 5, 8, 0])

    def test_empty_and_single(self):
        a = np.array([], dtype=np.int64)
        insertion_sort(a)
        b = np.array([7])
        insertion_sort(b)
        assert b[0] == 7


class TestIntrosort:
    def test_random(self):
        rng = np.random.default_rng(1)
        a = rng.integers(-1000, 1000, 500, dtype=np.int64)
        expected = np.sort(a.copy())
        assert np.array_equal(introsort(a), expected)

    def test_sorted_input(self):
        a = np.arange(200, dtype=np.int64)
        assert np.array_equal(introsort(a.copy()), a)

    def test_reverse_input(self):
        a = np.arange(200, dtype=np.int64)[::-1].copy()
        assert np.array_equal(introsort(a), np.arange(200))

    def test_all_equal(self):
        a = np.full(100, 42, dtype=np.int64)
        assert np.array_equal(introsort(a.copy()), a)

    def test_few_unique(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 3, 300, dtype=np.int64)
        assert np.array_equal(introsort(a.copy()), np.sort(a))

    def test_small_below_insertion_threshold(self):
        a = np.array([3, 1, 2], dtype=np.int64)
        assert np.array_equal(introsort(a), [1, 2, 3])
        assert len(a) <= INSERTION_THRESHOLD

    def test_in_place(self):
        a = np.array([2, 1], dtype=np.int64)
        out = introsort(a)
        assert out is a

    def test_rejects_2d(self):
        with pytest.raises(ConfigError):
            introsort(np.zeros((2, 2)))

    def test_adversarial_organ_pipe(self):
        """Organ-pipe input stresses median-of-three pivoting."""
        half = np.arange(200, dtype=np.int64)
        a = np.concatenate([half, half[::-1]])
        assert np.array_equal(introsort(a.copy()), np.sort(a))


class TestSerialSort:
    def test_returns_new_array(self):
        a = np.array([3, 1, 2], dtype=np.int64)
        out = serial_sort(a)
        assert np.array_equal(out, [1, 2, 3])
        assert np.array_equal(a, [3, 1, 2])

    def test_rejects_2d(self):
        with pytest.raises(ConfigError):
            serial_sort(np.zeros((2, 2)))


@settings(max_examples=150, deadline=None)
@given(
    arr=arrays(
        dtype=np.int64,
        shape=st.integers(min_value=0, max_value=300),
        elements=st.integers(min_value=-(2**40), max_value=2**40),
    )
)
def test_introsort_matches_numpy(arr):
    assert np.array_equal(introsort(arr.copy()), np.sort(arr))


@settings(max_examples=100, deadline=None)
@given(
    arr=arrays(
        dtype=np.int64,
        shape=st.integers(min_value=0, max_value=300),
        elements=st.integers(min_value=-100, max_value=100),
    )
)
def test_introsort_is_permutation(arr):
    out = introsort(arr.copy())
    assert np.array_equal(np.sort(out), np.sort(arr))
    assert np.all(np.diff(out) >= 0)
