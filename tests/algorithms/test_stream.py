"""Tests for the STREAM measurement procedure."""

from __future__ import annotations

import pytest

from repro.algorithms.stream import (
    host_stream,
    measure_bandwidth,
    measure_per_thread_rates,
    stream_triad_plan,
)
from repro.errors import ConfigError
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode
from repro.units import GB


@pytest.fixture
def node():
    return KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))


class TestMeasureBandwidth:
    def test_recovers_ddr_ceiling(self, node):
        """STREAM on the simulator reads back the configured 90 GB/s."""
        bw = measure_bandwidth(node, "ddr")
        assert bw == pytest.approx(90 * GB, rel=0.01)

    def test_recovers_mcdram_ceiling(self, node):
        bw = measure_bandwidth(node, "mcdram")
        assert bw == pytest.approx(400 * GB, rel=0.01)

    def test_custom_bandwidths_recovered(self):
        node = KNLNode(
            KNLNodeConfig(
                mode=MemoryMode.FLAT,
                ddr_bandwidth=120 * GB,
                mcdram_bandwidth=500 * GB,
            )
        )
        assert measure_bandwidth(node, "ddr") == pytest.approx(120 * GB, rel=0.01)
        assert measure_bandwidth(node, "mcdram") == pytest.approx(
            500 * GB, rel=0.01
        )

    def test_unknown_device(self, node):
        with pytest.raises(ConfigError):
            stream_triad_plan(node, "l2")


class TestPerThreadRates:
    def test_close_to_table2(self, node):
        """Little's-law micro-measurements land near 4.8 / 6.78 GB/s."""
        s_copy, s_comp = measure_per_thread_rates(node)
        assert s_copy == pytest.approx(4.8 * GB, rel=0.05)
        assert s_comp == pytest.approx(6.78 * GB, rel=0.05)

    def test_copy_rate_below_compute_rate(self, node):
        s_copy, s_comp = measure_per_thread_rates(node)
        assert s_copy < s_comp


class TestMeasureParams:
    def test_measure_params_roundtrip(self, node):
        """measure_params recovers a coherent Table 2 from the node."""
        from repro.model.params import measure_params

        p = measure_params(node)
        assert p.ddr_max == pytest.approx(90 * GB, rel=0.01)
        assert p.mcdram_max == pytest.approx(400 * GB, rel=0.01)
        assert p.s_copy == pytest.approx(4.8 * GB, rel=0.05)
        assert p.s_comp == pytest.approx(6.78 * GB, rel=0.05)


class TestHostStream:
    def test_returns_four_kernels(self):
        out = host_stream(n=100_000)
        assert set(out) == {"copy", "scale", "add", "triad"}
        assert all(v > 0 for v in out.values())

    def test_invalid_n(self):
        with pytest.raises(ConfigError):
            host_stream(n=0)
