"""Tests for the Section 5 streaming merge benchmark."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.merge_bench import (
    MergeBenchConfig,
    empirical_optimal_copy_threads,
    merge_bench_kernel,
    merge_halves,
    run_merge_bench,
    sweep_merge_bench,
)
from repro.core.modes import UsageMode
from repro.errors import ConfigError
from repro.model.params import ModelParams
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode


def flat_node():
    return KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))


class TestFunctionalKernel:
    def test_merge_halves_sorts(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 100, 101, dtype=np.int64)
        out = merge_halves(a)
        assert np.array_equal(out, np.sort(a))
        assert len(out) == len(a)

    def test_merge_halves_rejects_2d(self):
        with pytest.raises(ConfigError):
            merge_halves(np.zeros((2, 2)))

    def test_kernel_applies_repeats(self):
        k = merge_bench_kernel(3)
        a = np.array([3, 1, 2, 5], dtype=np.int64)
        assert np.array_equal(k.apply(a), np.sort(a))

    def test_kernel_passes(self):
        assert merge_bench_kernel(8).passes(12345) == 8

    def test_invalid_repeats(self):
        with pytest.raises(ConfigError):
            merge_bench_kernel(0)


class TestConfig:
    def test_compute_threads(self):
        cfg = MergeBenchConfig(repeats=1, copy_in_threads=8, total_threads=256)
        assert cfg.compute_threads == 240

    def test_implicit_mode_uses_all_threads(self):
        cfg = MergeBenchConfig(
            repeats=1, copy_in_threads=0, mode=UsageMode.IMPLICIT
        )
        assert cfg.compute_threads == 256

    def test_validation(self):
        with pytest.raises(ConfigError):
            MergeBenchConfig(repeats=0)
        with pytest.raises(ConfigError):
            MergeBenchConfig(repeats=1, copy_in_threads=0)  # flat needs copies
        with pytest.raises(ConfigError):
            MergeBenchConfig(repeats=1, copy_in_threads=128)


class TestTimedBench:
    def test_matches_model_copy_bound(self):
        """At repeats=1 and saturating copy threads the benchmark hits
        the model's 2B/DDR_max floor."""
        node = flat_node()
        cfg = MergeBenchConfig(repeats=1, copy_in_threads=16)
        res = run_merge_bench(node, cfg)
        floor = 2 * cfg.data_bytes / (90e9)
        assert res.elapsed == pytest.approx(floor, rel=0.10)

    def test_more_repeats_more_time(self):
        node = flat_node()
        t = [
            run_merge_bench(
                node, MergeBenchConfig(repeats=r, copy_in_threads=8)
            ).elapsed
            for r in (1, 8, 32)
        ]
        assert t[0] < t[1] < t[2]

    def test_sweep_returns_all_candidates(self):
        node = flat_node()
        times = sweep_merge_bench(node, 4, [1, 4, 16])
        assert set(times) == {1, 4, 16}
        assert all(t > 0 for t in times.values())

    def test_copy_threads_tradeoff_exists(self):
        """Few copy threads starve the pipeline at low repeats; many
        copy threads crowd compute at high repeats (Fig. 8b)."""
        node = flat_node()
        low = sweep_merge_bench(node, 1, [1, 16])
        assert low[16] < low[1]
        high = sweep_merge_bench(node, 64, [1, 32])
        assert high[1] < high[32]


class TestEmpiricalOptimum:
    def test_decreasing_in_repeats(self):
        node = flat_node()
        opts = [
            empirical_optimal_copy_threads(node, r) for r in (1, 8, 64)
        ]
        assert opts[0] >= opts[1] >= opts[2]

    def test_matches_paper_endpoints(self):
        """Table 3 empirical column: 16 at repeats=1, 1 at repeats=64."""
        node = flat_node()
        assert empirical_optimal_copy_threads(node, 1) == 16
        assert empirical_optimal_copy_threads(node, 64) == 1

    def test_model_and_empirical_nearby(self):
        """The paper's conclusion: the model picks nearly the same
        copy-thread counts the empirical sweep finds."""
        from repro.model.optimizer import optimal_copy_threads

        node = flat_node()
        for repeats in (1, 16, 64):
            emp = empirical_optimal_copy_threads(node, repeats)
            mod = optimal_copy_threads(
                ModelParams(), 256, passes=repeats
            ).p_in
            assert 0.3 <= (mod / emp) <= 3.0
