"""Tests for the out-of-core external mergesort."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.algorithms.external_sort import (
    disk_device,
    external_sort,
    external_sort_plan,
    run_external_sort_plan,
)
from repro.errors import ConfigError
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode
from repro.units import GB, GiB


class TestDiskDevice:
    def test_defaults(self):
        d = disk_device()
        assert d.name == "disk"
        assert d.bandwidth < 90 * GB  # slower than DDR
        assert d.latency > 1e-6


class TestFunctionalExternalSort:
    def test_sorts_with_tiny_budget(self, tmp_path):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 10**6, 10_000, dtype=np.int64)
        out = external_sort(a, memory_budget_elements=512, workdir=str(tmp_path))
        assert np.array_equal(out, np.sort(a))

    def test_many_runs(self, tmp_path):
        rng = np.random.default_rng(1)
        a = rng.integers(-100, 100, 5_000, dtype=np.int64)
        out = external_sort(a, memory_budget_elements=100, workdir=str(tmp_path))
        assert np.array_equal(out, np.sort(a))

    def test_fits_in_memory_fast_path(self):
        a = np.array([3, 1, 2], dtype=np.int64)
        assert np.array_equal(external_sort(a, 100), [1, 2, 3])

    def test_empty(self):
        assert len(external_sort(np.array([], dtype=np.int64), 10)) == 0

    def test_budget_exactly_n(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 50, 100, dtype=np.int64)
        assert np.array_equal(external_sort(a, 100), np.sort(a))

    def test_invalid(self):
        with pytest.raises(ConfigError):
            external_sort(np.array([1]), 1)
        with pytest.raises(ConfigError):
            external_sort(np.zeros((2, 2)), 10)


@settings(max_examples=25, deadline=None)
@given(
    arr=arrays(
        dtype=np.int64,
        shape=st.integers(min_value=0, max_value=600),
        elements=st.integers(min_value=-(10**6), max_value=10**6),
    ),
    budget=st.integers(min_value=2, max_value=200),
)
def test_external_sort_property(arr, budget):
    assert np.array_equal(external_sort(arr, budget), np.sort(arr))


class TestTimedPlan:
    @pytest.fixture
    def node(self):
        return KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))

    def test_plan_structure(self, node):
        plan = external_sort_plan(node, 10**9, memory_budget_bytes=GiB)
        names = [p.name for p in plan.phases]
        assert names[0] == "run-formation/io"
        assert names[1] == "run-formation/sort"
        assert any("merge-pass" in n for n in names)

    def test_more_runs_more_merge_passes(self, node):
        small = external_sort_plan(
            node, 10**10, memory_budget_bytes=64 * GiB, fan_in=4
        )
        tiny = external_sort_plan(
            node, 10**10, memory_budget_bytes=GiB, fan_in=4
        )
        assert len(tiny.phases) > len(small.phases)

    def test_disk_bound_execution(self, node):
        """With a slow disk the total time is disk-bandwidth limited."""
        n = 10**9
        res = run_external_sort_plan(
            node, n, memory_budget_bytes=16 * GiB, disk_bandwidth=1 * GB
        )
        disk_bytes = res.traffic["disk"]
        assert res.elapsed >= disk_bytes / (1 * GB) * (1 - 1e-9)

    def test_slower_than_in_memory_mlm(self, node):
        """Section 2.2's contrast: when data fits DDR, the in-memory
        sort wins easily."""
        from repro.experiments.runner import sort_variant_seconds

        n = 2_000_000_000
        t_ext = run_external_sort_plan(
            node, n, memory_budget_bytes=14 * GiB
        ).elapsed
        t_mlm = sort_variant_seconds("MLM-sort", n, "random")
        assert t_ext > t_mlm

    def test_faster_disk_helps(self, node):
        n = 10**9
        slow = run_external_sort_plan(
            node, n, 8 * GiB, disk_bandwidth=1 * GB
        ).elapsed
        fast = run_external_sort_plan(
            node, n, 8 * GiB, disk_bandwidth=8 * GB
        ).elapsed
        assert fast < slow

    def test_invalid(self, node):
        with pytest.raises(ConfigError):
            external_sort_plan(node, 0, GiB)
        with pytest.raises(ConfigError):
            external_sort_plan(node, 10, -1.0)
        with pytest.raises(ConfigError):
            external_sort_plan(node, 10, GiB, fan_in=1)


class TestSpillFaultHandling:
    def _arr(self, n=4096, seed=0):
        rng = np.random.default_rng(seed)
        return rng.integers(0, 10**6, size=n).astype(np.int64)

    def test_transient_faults_retried_result_correct(self):
        from repro.faults import FaultKind, FaultPlan, FaultSpec

        a = self._arr()
        inj = FaultPlan(
            11, [FaultSpec(FaultKind.SPILL_IO_FAIL, probability=0.3)]
        ).injector()
        out = external_sort(
            a, memory_budget_elements=256, injector=inj, max_io_retries=100
        )
        assert np.array_equal(out, np.sort(a, kind="stable"))
        assert inj.counters.io_faults >= 1
        assert inj.counters.io_retries == inj.counters.io_faults

    def test_retry_exhaustion_raises(self):
        from repro.errors import RetryExhaustedError
        from repro.faults import FaultKind, FaultPlan, FaultSpec

        a = self._arr(1024)
        inj = FaultPlan(
            0, [FaultSpec(FaultKind.SPILL_IO_FAIL, probability=1.0)]
        ).injector()
        with pytest.raises(RetryExhaustedError) as exc:
            external_sort(
                a, memory_budget_elements=128, injector=inj, max_io_retries=3
            )
        assert exc.value.attempts == 4

    def test_permanent_fault_aborts_immediately(self):
        from repro.errors import PermanentFaultError
        from repro.faults import FaultKind, FaultPlan, FaultSpec

        a = self._arr(1024)
        inj = FaultPlan(
            0,
            [
                FaultSpec(
                    FaultKind.SPILL_IO_FAIL, probability=1.0, permanent=True
                )
            ],
        ).injector()
        with pytest.raises(PermanentFaultError):
            external_sort(a, memory_budget_elements=128, injector=inj)
        # No retries were attempted against a permanent fault.
        assert inj.counters.io_retries == 0

    def test_failing_merge_leaves_no_orphan_spill_files(self, tmp_path):
        """Satellite bugfix: spill files are removed on *every* exit
        path, including a fault mid-merge."""
        from repro.errors import RetryExhaustedError
        from repro.faults import FaultKind, FaultPlan, FaultSpec

        a = self._arr(2048)
        inj = FaultPlan(
            3, [FaultSpec(FaultKind.SPILL_IO_FAIL, probability=0.05)]
        ).injector()
        with pytest.raises((RetryExhaustedError,)):
            # Low per-op probability but zero retry budget: the sort
            # gets far enough to create runs, then dies mid-stream.
            external_sort(
                a,
                memory_budget_elements=64,
                workdir=str(tmp_path),
                injector=inj,
                max_io_retries=0,
            )
        assert list(tmp_path.iterdir()) == []

    def test_clean_run_leaves_no_spill_files(self, tmp_path):
        a = self._arr(1024)
        out = external_sort(
            a, memory_budget_elements=128, workdir=str(tmp_path)
        )
        assert np.array_equal(out, np.sort(a, kind="stable"))
        assert list(tmp_path.iterdir()) == []

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_sorted_permutation_under_seeded_faults(self, seed):
        """Property: transient spill faults never corrupt the output."""
        from repro.faults import FaultKind, FaultPlan, FaultSpec

        rng = np.random.default_rng(seed)
        a = rng.integers(-100, 100, size=512).astype(np.int64)
        inj = FaultPlan(
            seed, [FaultSpec(FaultKind.SPILL_IO_FAIL, probability=0.2)]
        ).injector()
        out = external_sort(
            a, memory_budget_elements=64, injector=inj, max_io_retries=100
        )
        assert np.all(np.diff(out) >= 0)
        assert np.array_equal(out, np.sort(a, kind="stable"))

    def test_degraded_disk_slows_timed_plan(self):
        from repro.faults import FaultKind, FaultPlan, FaultSpec

        node = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))
        n = 10**9
        clean = run_external_sort_plan(node, n, 8 * GiB).elapsed
        inj = FaultPlan(
            0,
            [
                FaultSpec(
                    FaultKind.BANDWIDTH_DEGRADE,
                    "disk",
                    severity=0.5,
                    at_phase=0,
                )
            ],
        ).injector()
        degraded = run_external_sort_plan(node, n, 8 * GiB, injector=inj).elapsed
        assert degraded > clean
