"""Tests for the cache-oblivious mergesort comparison point."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.algorithms.oblivious import (
    BASE_CASE,
    oblivious_mergesort,
    oblivious_sort_plan,
)
from repro.core.modes import UsageMode
from repro.errors import ConfigError
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode


class TestFunctional:
    def test_sorts_random(self):
        rng = np.random.default_rng(0)
        a = rng.integers(-1000, 1000, 2000, dtype=np.int64)
        assert np.array_equal(oblivious_mergesort(a), np.sort(a))

    def test_base_case(self):
        a = np.array([3, 1, 2], dtype=np.int64)
        assert len(a) <= BASE_CASE
        assert np.array_equal(oblivious_mergesort(a), [1, 2, 3])

    def test_empty(self):
        assert len(oblivious_mergesort(np.array([], dtype=np.int64))) == 0

    def test_rejects_2d(self):
        with pytest.raises(ConfigError):
            oblivious_mergesort(np.zeros((2, 2)))


@settings(max_examples=60, deadline=None)
@given(
    arr=arrays(
        dtype=np.int64,
        shape=st.integers(min_value=0, max_value=500),
        elements=st.integers(min_value=-(10**9), max_value=10**9),
    )
)
def test_oblivious_matches_numpy(arr):
    assert np.array_equal(oblivious_mergesort(arr), np.sort(arr))


class TestTimed:
    def test_same_plan_shape_in_every_mode(self):
        """Obliviousness: the phase structure is machine-independent."""
        n = 2_000_000_000
        cache = KNLNode(KNLNodeConfig(mode=MemoryMode.CACHE))
        flat = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))
        p1 = oblivious_sort_plan(cache, n, mode=UsageMode.CACHE)
        p2 = oblivious_sort_plan(flat, n, mode=UsageMode.DDR)
        # Same logical bytes regardless of mode.
        assert p1.total_bytes == pytest.approx(p2.total_bytes)

    def test_lands_between_implicit_and_gnu_cache(self):
        """The Section 2.1 conjecture, quantified."""
        from repro.experiments.runner import sort_variant_run

        n = 2_000_000_000
        node = KNLNode(KNLNodeConfig(mode=MemoryMode.CACHE))
        t_obl = node.run(
            oblivious_sort_plan(node, n, mode=UsageMode.CACHE)
        ).elapsed
        t_imp = sort_variant_run("MLM-implicit", n, "random").elapsed
        t_gnu = sort_variant_run("GNU-cache", n, "random").elapsed
        assert t_imp < t_obl < t_gnu

    def test_cache_mode_beats_ddr_mode(self):
        """The oblivious algorithm benefits from MCDRAM untouched."""
        n = 2_000_000_000
        cache = KNLNode(KNLNodeConfig(mode=MemoryMode.CACHE))
        flat = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))
        t_cache = cache.run(
            oblivious_sort_plan(cache, n, mode=UsageMode.CACHE)
        ).elapsed
        t_ddr = flat.run(oblivious_sort_plan(flat, n, mode=UsageMode.DDR)).elapsed
        assert t_cache < t_ddr

    def test_reverse_faster(self):
        n = 2_000_000_000
        node = KNLNode(KNLNodeConfig(mode=MemoryMode.CACHE))
        t_rand = node.run(
            oblivious_sort_plan(node, n, "random", UsageMode.CACHE)
        ).elapsed
        t_rev = node.run(
            oblivious_sort_plan(node, n, "reverse", UsageMode.CACHE)
        ).elapsed
        assert t_rev < t_rand

    def test_invalid_args(self):
        node = KNLNode(KNLNodeConfig(mode=MemoryMode.CACHE))
        with pytest.raises(ConfigError):
            oblivious_sort_plan(node, 0)
        with pytest.raises(ConfigError):
            oblivious_sort_plan(node, 10, threads=0)
