"""Tests for chunk partitioning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chunking import Chunk, Chunker
from repro.errors import ConfigError


class TestChunk:
    def test_elements(self):
        c = Chunk(index=0, offset=0, nbytes=80)
        assert c.elements() == 10

    def test_end(self):
        c = Chunk(index=1, offset=100, nbytes=50)
        assert c.end == 150


class TestChunker:
    def test_even_partition(self):
        ch = Chunker(total_bytes=800, chunk_bytes=200)
        chunks = ch.chunks()
        assert len(chunks) == 4
        assert all(c.nbytes == 200 for c in chunks)
        assert [c.offset for c in chunks] == [0, 200, 400, 600]

    def test_final_partial_chunk(self):
        ch = Chunker(total_bytes=800, chunk_bytes=296)
        chunks = ch.chunks()
        assert [c.nbytes for c in chunks] == [296, 296, 208]

    def test_chunks_cover_exactly(self):
        ch = Chunker(total_bytes=1000, chunk_bytes=304)
        chunks = ch.chunks()
        assert chunks[0].offset == 0
        for a, b in zip(chunks, chunks[1:]):
            assert a.end == b.offset
        assert chunks[-1].end == 1000

    def test_chunk_larger_than_total_clamped(self):
        ch = Chunker(total_bytes=800, chunk_bytes=10_000)
        assert ch.num_chunks == 1
        assert ch.chunks()[0].nbytes == 800

    def test_chunk_aligned_to_elements(self):
        ch = Chunker(total_bytes=800, chunk_bytes=101, element_size=8)
        assert ch.chunk_bytes == 96  # aligned down

    def test_from_elements(self):
        ch = Chunker.from_elements(n=1000, chunk_elements=300)
        assert ch.total_bytes == 8000
        assert ch.chunk_bytes == 2400
        assert ch.num_chunks == 4
        assert ch.chunk_elements() == 300

    def test_invalid_total(self):
        with pytest.raises(ConfigError):
            Chunker(total_bytes=0, chunk_bytes=10)

    def test_invalid_chunk(self):
        with pytest.raises(ConfigError):
            Chunker(total_bytes=100, chunk_bytes=0)

    def test_chunk_below_element_size(self):
        with pytest.raises(ConfigError):
            Chunker(total_bytes=80, chunk_bytes=4, element_size=8)

    def test_non_integral_elements(self):
        with pytest.raises(ConfigError):
            Chunker(total_bytes=81, chunk_bytes=8, element_size=8)


class TestSplitArray:
    def test_views_match_geometry(self):
        arr = np.arange(100, dtype=np.int64)
        ch = Chunker(total_bytes=800, chunk_bytes=240)
        parts = ch.split_array(arr)
        assert [len(p) for p in parts] == [30, 30, 30, 10]
        assert np.concatenate(parts).tolist() == arr.tolist()

    def test_views_not_copies(self):
        arr = np.arange(10, dtype=np.int64)
        ch = Chunker(total_bytes=80, chunk_bytes=40)
        parts = ch.split_array(arr)
        parts[0][0] = 99
        assert arr[0] == 99

    def test_size_mismatch_rejected(self):
        arr = np.arange(10, dtype=np.int64)
        ch = Chunker(total_bytes=88, chunk_bytes=40)
        with pytest.raises(ConfigError):
            ch.split_array(arr)

    def test_itemsize_mismatch_rejected(self):
        arr = np.arange(20, dtype=np.int32)
        ch = Chunker(total_bytes=80, chunk_bytes=40, element_size=8)
        with pytest.raises(ConfigError):
            ch.split_array(arr)


@settings(max_examples=150, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=10_000),
    chunk=st.integers(min_value=1, max_value=12_000),
)
def test_chunks_partition_invariant(n, chunk):
    """Chunks are contiguous, non-empty, ordered, and cover the data."""
    ch = Chunker(total_bytes=n * 8, chunk_bytes=max(chunk * 8, 8))
    chunks = ch.chunks()
    assert len(chunks) == ch.num_chunks
    assert chunks[0].offset == 0
    total = 0
    for i, c in enumerate(chunks):
        assert c.index == i
        assert c.nbytes > 0
        total += c.nbytes
    for a, b in zip(chunks, chunks[1:]):
        assert a.end == b.offset
        assert a.nbytes >= b.nbytes or a.nbytes == ch.chunk_bytes
    assert total == n * 8


@settings(max_examples=80, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=2000),
    chunk_elems=st.integers(min_value=1, max_value=2500),
)
def test_split_array_roundtrip(n, chunk_elems):
    arr = np.arange(n, dtype=np.int64)
    ch = Chunker.from_elements(n, chunk_elems)
    parts = ch.split_array(arr)
    assert np.array_equal(np.concatenate(parts), arr)
