"""Tests for model-driven chunk-size and pool planning."""

from __future__ import annotations

import pytest

from repro.core.modes import UsageMode
from repro.core.planner import plan_chunk_bytes, plan_pools
from repro.errors import ConfigError
from repro.model.params import ModelParams
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode
from repro.units import GiB


def node_in(mode, **kw):
    return KNLNode(KNLNodeConfig(mode=mode, **kw))


class TestChunkBytes:
    def test_flat_buffered_one_third(self):
        n = node_in(MemoryMode.FLAT)
        c = plan_chunk_bytes(n, UsageMode.FLAT, total_bytes=100 * GiB)
        assert c <= 16 * GiB // 3
        assert c >= 16 * GiB // 3 - 8

    def test_flat_unbuffered_full(self):
        n = node_in(MemoryMode.FLAT)
        c = plan_chunk_bytes(n, UsageMode.FLAT, 100 * GiB, buffered=False)
        assert c == 16 * GiB

    def test_hybrid_smaller_than_flat(self):
        flat = plan_chunk_bytes(node_in(MemoryMode.FLAT), UsageMode.FLAT, 100 * GiB)
        hyb = plan_chunk_bytes(
            node_in(MemoryMode.HYBRID, hybrid_cache_fraction=0.5),
            UsageMode.HYBRID,
            100 * GiB,
        )
        assert hyb < flat

    def test_implicit_sized_to_cache(self):
        """Generic kernels get cache-resident implicit chunks; the
        beyond-MCDRAM megachunk trick is MLM-sort-specific."""
        n = node_in(MemoryMode.CACHE)
        assert plan_chunk_bytes(n, UsageMode.IMPLICIT, 48 * GiB) == 16 * GiB

    def test_implicit_small_total_not_padded(self):
        n = node_in(MemoryMode.CACHE)
        assert plan_chunk_bytes(n, UsageMode.IMPLICIT, 4 * GiB) == 4 * GiB

    def test_cache_mode_processes_in_place(self):
        n = node_in(MemoryMode.CACHE)
        assert plan_chunk_bytes(n, UsageMode.CACHE, 48 * GiB) == 48 * GiB

    def test_small_total_not_padded(self):
        n = node_in(MemoryMode.FLAT)
        assert plan_chunk_bytes(n, UsageMode.FLAT, 1 * GiB) == 1 * GiB

    def test_element_aligned(self):
        n = node_in(MemoryMode.FLAT)
        c = plan_chunk_bytes(n, UsageMode.FLAT, 100 * GiB, element_size=8)
        assert c % 8 == 0

    def test_invalid_total(self):
        with pytest.raises(ConfigError):
            plan_chunk_bytes(node_in(MemoryMode.FLAT), UsageMode.FLAT, 0)


class TestPools:
    def test_flat_uses_model_optimum(self):
        n = node_in(MemoryMode.FLAT)
        pools = plan_pools(n, UsageMode.FLAT, ModelParams(), passes=1, total_threads=256)
        assert pools.copy_in.size == 10  # Table 3 row 1
        assert pools.total == 256

    def test_flat_many_passes_few_copy_threads(self):
        n = node_in(MemoryMode.FLAT)
        pools = plan_pools(n, UsageMode.FLAT, ModelParams(), passes=64, total_threads=256)
        assert pools.copy_in.size == 1  # Table 3 row 7

    def test_implicit_all_compute(self):
        n = node_in(MemoryMode.CACHE)
        pools = plan_pools(n, UsageMode.IMPLICIT, total_threads=256)
        assert pools.compute.size == 256
        assert pools.copy_threads == 0

    def test_default_budget_is_node_threads(self):
        n = node_in(MemoryMode.CACHE)
        pools = plan_pools(n, UsageMode.CACHE)
        assert pools.compute.size == n.total_threads

    def test_tiny_budget_flat_falls_back_to_compute(self):
        n = node_in(MemoryMode.FLAT)
        pools = plan_pools(n, UsageMode.FLAT, total_threads=2)
        assert pools.compute.size == 2

    def test_invalid_budget(self):
        with pytest.raises(ConfigError):
            plan_pools(node_in(MemoryMode.FLAT), UsageMode.FLAT, total_threads=0)
