"""Tests for the triple-buffered pipeline."""

from __future__ import annotations

import pytest

from repro.core.buffering import BufferedPipeline
from repro.core.chunking import Chunker
from repro.core.kernel import StreamKernel
from repro.core.modes import UsageMode
from repro.errors import CapacityError, ConfigError
from repro.memkind.allocator import Heap
from repro.model.analytic import predict
from repro.model.params import ModelParams
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode
from repro.threads.pool import PoolSet
from repro.units import GB, GiB


def flat_node():
    return KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))


def cache_node():
    return KNLNode(KNLNodeConfig(mode=MemoryMode.CACHE))


def make_pipeline(node, mode, passes=8, p_in=5, chunk=GiB, total=None, **kw):
    total = total or (int(14.9 * GB) // 8 * 8)
    chunker = Chunker(total_bytes=total, chunk_bytes=chunk)
    kernel = StreamKernel(passes=passes, name="merge")
    if mode in (UsageMode.FLAT, UsageMode.HYBRID):
        pools = PoolSet.split(node, compute=256 - 2 * p_in, copy_in=p_in)
    else:
        pools = PoolSet.compute_only(node, threads=256)
    return BufferedPipeline(
        node, mode, pools, chunker, kernel, ModelParams(), **kw
    )


class TestPlanStructure:
    def test_buffered_has_n_plus_2_steps(self):
        pipe = make_pipeline(flat_node(), UsageMode.FLAT, total=8 * GiB, chunk=GiB)
        plan = pipe.build_plan()
        assert len(plan.phases) == 8 + 2

    def test_buffered_steady_state_has_three_flows(self):
        pipe = make_pipeline(flat_node(), UsageMode.FLAT, total=8 * GiB, chunk=GiB)
        plan = pipe.build_plan()
        assert len(plan.phases[0].flows) == 1  # fill: copy-in only
        assert len(plan.phases[1].flows) == 2  # copy-in + compute
        assert len(plan.phases[4].flows) == 3  # steady state
        assert len(plan.phases[-1].flows) == 1  # drain: copy-out only

    def test_unbuffered_sequential_phases(self):
        pipe = make_pipeline(
            flat_node(), UsageMode.FLAT, total=4 * GiB, chunk=GiB, buffered=False
        )
        plan = pipe.build_plan()
        assert len(plan.phases) == 4 * 3
        assert all(len(p.flows) == 1 for p in plan.phases)

    def test_implicit_one_phase_per_chunk(self):
        pipe = make_pipeline(cache_node(), UsageMode.IMPLICIT, total=4 * GiB, chunk=GiB)
        plan = pipe.build_plan()
        assert len(plan.phases) == 4
        assert all(len(p.flows) == 1 for p in plan.phases)

    def test_mode_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            make_pipeline(cache_node(), UsageMode.FLAT)


class TestBuffers:
    def test_flat_buffered_needs_three(self):
        pipe = make_pipeline(flat_node(), UsageMode.FLAT)
        assert pipe.required_buffers() == 3

    def test_flat_unbuffered_needs_one(self):
        pipe = make_pipeline(flat_node(), UsageMode.FLAT, buffered=False)
        assert pipe.required_buffers() == 1

    def test_implicit_needs_none(self):
        pipe = make_pipeline(cache_node(), UsageMode.IMPLICIT)
        assert pipe.required_buffers() == 0

    def test_chunk_too_large_for_three_buffers(self):
        """The paper's constraint: 2/3 of MCDRAM goes to copy buffers."""
        node = flat_node()
        pipe = make_pipeline(node, UsageMode.FLAT, chunk=6 * GiB, total=24 * GiB)
        with pytest.raises(CapacityError):
            pipe.run()

    def test_unbuffered_allows_larger_chunks(self):
        node = flat_node()
        pipe = make_pipeline(
            node, UsageMode.FLAT, chunk=15 * GiB, total=30 * GiB, buffered=False
        )
        res = pipe.run()
        assert res.buffers_bytes == 15 * GiB

    def test_buffers_released_after_run(self):
        node = flat_node()
        heap = Heap(node)
        pipe = make_pipeline(node, UsageMode.FLAT, total=4 * GiB, chunk=GiB)
        pipe.run(heap)
        assert heap.usage()["mcdram"] == 0

    def test_buffers_released_on_failure(self):
        node = flat_node()
        heap = Heap(node)
        pipe = make_pipeline(node, UsageMode.FLAT, chunk=6 * GiB, total=6 * GiB)
        with pytest.raises(CapacityError):
            pipe.run(heap)
        assert heap.usage().get("mcdram", 0) == 0


class TestTimingAgainstModel:
    def test_matches_model_within_fill_drain(self):
        """Simulated time is within ~20% of Eq. 1 for ~15 chunks."""
        pipe = make_pipeline(flat_node(), UsageMode.FLAT, passes=8, p_in=5)
        res = pipe.run()
        model = predict(ModelParams(), 246, 5, 5, passes=8).t_total
        assert res.elapsed == pytest.approx(model, rel=0.20)
        assert res.elapsed >= model  # fill/drain only adds time

    def test_copy_bound_configuration(self):
        """With one copy thread the pipeline is copy-dominated."""
        pipe = make_pipeline(flat_node(), UsageMode.FLAT, passes=1, p_in=1)
        res = pipe.run()
        model = predict(ModelParams(), 254, 1, 1, passes=1).t_total
        assert res.elapsed == pytest.approx(model, rel=0.15)

    def test_more_passes_takes_longer(self):
        t = [
            make_pipeline(flat_node(), UsageMode.FLAT, passes=p).run().elapsed
            for p in (1, 8, 32)
        ]
        assert t[0] < t[1] < t[2]

    def test_traffic_accounting_flat(self):
        """Copies move the data set through DDR and MCDRAM once each way."""
        total = 8 * GiB
        pipe = make_pipeline(
            flat_node(), UsageMode.FLAT, passes=4, total=total, chunk=GiB
        )
        res = pipe.run()
        # copy-in + copy-out = 2 * total on each device; compute adds
        # 2 * passes * total on MCDRAM only.
        assert res.run.traffic["ddr"] == pytest.approx(2 * total, rel=1e-6)
        assert res.run.traffic["mcdram"] == pytest.approx(
            2 * total + 2 * 4 * total, rel=1e-6
        )

    def test_implicit_saves_ddr_traffic(self):
        """Implicit mode re-reads each chunk from cache, not DDR."""
        total = 8 * GiB
        flat = make_pipeline(
            flat_node(), UsageMode.FLAT, passes=8, total=total, chunk=GiB
        ).run()
        imp = make_pipeline(
            cache_node(), UsageMode.IMPLICIT, passes=8, total=total, chunk=GiB
        ).run()
        assert imp.run.traffic["ddr"] < flat.run.traffic["ddr"]

    def test_implicit_thrashing_chunk_slower_per_byte(self):
        """Chunks beyond cache capacity drive implicit mode to DDR speed."""
        small = make_pipeline(
            cache_node(), UsageMode.IMPLICIT, passes=8, total=8 * GiB, chunk=GiB
        ).run()
        big = make_pipeline(
            cache_node(),
            UsageMode.IMPLICIT,
            passes=8,
            total=64 * GiB,
            chunk=32 * GiB,
        ).run()
        assert big.elapsed / 8 > small.elapsed  # 8x data, >8x time

    def test_ddr_mode_all_ddr(self):
        node = flat_node()
        pipe = make_pipeline(node, UsageMode.DDR, passes=2, total=4 * GiB)
        res = pipe.run()
        assert res.run.traffic["mcdram"] == 0.0
        assert res.run.traffic["ddr"] > 0


class TestHybrid:
    def test_hybrid_runs_with_smaller_chunks(self):
        node = KNLNode(
            KNLNodeConfig(mode=MemoryMode.HYBRID, hybrid_cache_fraction=0.5)
        )
        chunker = Chunker(total_bytes=8 * GiB, chunk_bytes=2 * GiB)
        pools = PoolSet.split(node, compute=246, copy_in=5)
        pipe = BufferedPipeline(
            node, UsageMode.HYBRID, pools, chunker, StreamKernel(passes=4)
        )
        res = pipe.run()
        assert res.elapsed > 0

    def test_hybrid_rejects_flat_sized_chunks(self):
        node = KNLNode(
            KNLNodeConfig(mode=MemoryMode.HYBRID, hybrid_cache_fraction=0.5)
        )
        chunker = Chunker(total_bytes=16 * GiB, chunk_bytes=4 * GiB)
        pools = PoolSet.split(node, compute=246, copy_in=5)
        pipe = BufferedPipeline(
            node, UsageMode.HYBRID, pools, chunker, StreamKernel(passes=4)
        )
        with pytest.raises(CapacityError):
            pipe.run()


class TestPipelineResult:
    def test_result_fields(self):
        pipe = make_pipeline(cache_node(), UsageMode.IMPLICIT, total=4 * GiB)
        res = pipe.run()
        assert res.mode is UsageMode.IMPLICIT
        assert res.num_chunks == 4
        assert res.buffers_bytes == 0
        assert res.traffic_gb("mcdram") > 0
