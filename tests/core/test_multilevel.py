"""Tests for the three-level (NVM/DDR/MCDRAM) double-chunking pipeline."""

from __future__ import annotations

import pytest

from repro.core.kernel import StreamKernel
from repro.core.multilevel import ThreeLevelConfig, ThreeLevelPipeline
from repro.errors import CapacityError, ConfigError
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode
from repro.simknl.nvm import nvm_device
from repro.units import GB, GiB


def flat_node():
    return KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))


def make_pipe(data_gib=50, passes=8, **cfg_kw):
    cfg = ThreeLevelConfig(data_bytes=int(data_gib * GiB), **cfg_kw)
    return ThreeLevelPipeline(flat_node(), StreamKernel(passes=passes), cfg)


class TestNvmDevice:
    def test_defaults(self):
        d = nvm_device()
        assert d.name == "nvm"
        assert d.bandwidth == 10 * GB
        assert d.capacity == 1024 * GiB
        assert d.latency > 100e-9  # microsecond-class

    def test_slower_than_ddr(self):
        from repro.simknl.devices import ddr4_device

        assert nvm_device().bandwidth < ddr4_device().bandwidth


class TestConfigValidation:
    def test_defaults_valid(self):
        ThreeLevelConfig(data_bytes=GiB)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigError):
            ThreeLevelConfig(data_bytes=0)
        with pytest.raises(ConfigError):
            ThreeLevelConfig(data_bytes=GiB, outer_chunk_bytes=0)
        with pytest.raises(ConfigError):
            ThreeLevelConfig(
                data_bytes=GiB,
                outer_chunk_bytes=GiB,
                inner_chunk_bytes=2 * GiB,
            )

    def test_rejects_bad_threads(self):
        with pytest.raises(ConfigError):
            ThreeLevelConfig(data_bytes=GiB, compute_threads=0)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigError):
            ThreeLevelConfig(data_bytes=GiB, s_nvm_copy=0)


class TestPipelineConstruction:
    def test_requires_flat_node(self):
        node = KNLNode(KNLNodeConfig(mode=MemoryMode.CACHE))
        with pytest.raises(ConfigError):
            ThreeLevelPipeline(
                node, StreamKernel(passes=1), ThreeLevelConfig(data_bytes=GiB)
            )

    def test_inner_buffers_must_fit_mcdram(self):
        with pytest.raises(CapacityError):
            make_pipe(inner_chunk_bytes=8 * GiB, outer_chunk_bytes=8 * GiB)

    def test_data_must_fit_nvm(self):
        with pytest.raises(CapacityError):
            make_pipe(data_gib=2048)

    def test_unknown_strategy(self):
        with pytest.raises(ConfigError):
            make_pipe().build_plan("triple")


class TestStrategies:
    def test_chunking_beats_direct(self):
        pipe = make_pipe(data_gib=50)
        res = pipe.compare()
        assert res["single"].elapsed < res["direct"].elapsed
        assert res["double"].elapsed < res["direct"].elapsed

    def test_double_close_to_single_for_streaming(self):
        """For streaming kernels the DDR hop hides behind NVM."""
        pipe = make_pipe(data_gib=50)
        res = pipe.compare()
        assert res["double"].elapsed == pytest.approx(
            res["single"].elapsed, rel=0.15
        )

    def test_nvm_traffic_identical_across_chunked(self):
        pipe = make_pipe(data_gib=50)
        res = pipe.compare()
        assert res["single"].traffic["nvm"] == pytest.approx(
            res["double"].traffic["nvm"], rel=1e-6
        )

    def test_double_stages_through_ddr(self):
        pipe = make_pipe(data_gib=50)
        res = pipe.compare()
        assert res["double"].traffic["ddr"] > 0
        assert res["single"].traffic["ddr"] == 0

    def test_nvm_floor(self):
        """No strategy beats data-in + data-out over NVM bandwidth."""
        pipe = make_pipe(data_gib=50)
        floor = 2 * 50 * GiB / (10 * GB)
        for res in pipe.compare().values():
            assert res.elapsed >= floor * (1 - 1e-9)

    def test_direct_time_scales_with_passes(self):
        t1 = make_pipe(data_gib=20, passes=1).run("direct").elapsed
        t4 = make_pipe(data_gib=20, passes=4).run("direct").elapsed
        assert t4 == pytest.approx(4 * t1, rel=1e-6)

    def test_background_outer_bytes_conserved_exactly(self):
        """Per-step background shares must sum to the outer chunk size.

        Uses a ragged data size so the even split leaves a residue;
        the final inner step must flush it, keeping the spread integer
        exact (no bytes lost to per-step floor, none double counted).
        """
        from repro.core.chunking import Chunker

        cfg = ThreeLevelConfig(
            data_bytes=int(20 * GiB) + 8,
            outer_chunk_bytes=8 * GiB,
            inner_chunk_bytes=3 * GiB,
        )
        pipe = ThreeLevelPipeline(
            flat_node(), StreamKernel(passes=2), cfg
        )
        plan = pipe.build_plan("double")
        totals: dict[str, float] = {}
        for phase in plan.phases:
            for flow in phase.flows:
                if flow.name.startswith(("outer-in[", "outer-out[")):
                    totals[flow.name] = (
                        totals.get(flow.name, 0) + flow.bytes_total
                    )
        outer = Chunker(cfg.data_bytes, cfg.outer_chunk_bytes).chunks()
        last = len(outer) - 1
        for oc in outer:
            if oc.index >= 1:  # staged in as background of the previous
                assert totals[f"outer-in[{oc.index}]"] == oc.nbytes
            if oc.index < last:  # staged out as background of the next
                assert totals[f"outer-out[{oc.index}]"] == oc.nbytes
        # Prime and drain phases carry the boundary chunks whole.
        assert totals["outer-in[0]"] == outer[0].nbytes
        assert totals["outer-out[last]"] == outer[last].nbytes

    def test_nonpositive_nvm_bandwidth_rejected(self):
        cfg = ThreeLevelConfig(data_bytes=int(10 * GiB))
        for bad in (0.0, -5 * GB):
            with pytest.raises(ConfigError):
                ThreeLevelPipeline(
                    flat_node(),
                    StreamKernel(passes=1),
                    cfg,
                    nvm_bandwidth=bad,
                )

    def test_custom_nvm_bandwidth(self):
        cfg = ThreeLevelConfig(data_bytes=int(20 * GiB))
        node = flat_node()
        slow = ThreeLevelPipeline(
            node, StreamKernel(passes=2), cfg, nvm_bandwidth=5 * GB
        ).run("single")
        fast = ThreeLevelPipeline(
            flat_node(), StreamKernel(passes=2), cfg, nvm_bandwidth=20 * GB
        ).run("single")
        assert fast.elapsed < slow.elapsed
