"""Tests for the kernel abstraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kernel import FunctionKernel, Kernel, StreamKernel
from repro.errors import ConfigError


class TestStreamKernel:
    def test_fixed_passes(self):
        k = StreamKernel(passes=8)
        assert k.passes(1000) == 8
        assert k.passes(10**12) == 8

    def test_logical_bytes_eq4_numerator(self):
        """logical bytes = 2 * B * passes, the paper's Eq. 4 numerator."""
        k = StreamKernel(passes=4)
        assert k.logical_bytes(100.0) == pytest.approx(800.0)

    def test_zero_passes(self):
        k = StreamKernel(passes=0)
        assert k.logical_bytes(100.0) == 0.0

    def test_negative_passes_rejected(self):
        with pytest.raises(ConfigError):
            StreamKernel(passes=-1)

    def test_negative_chunk_rejected(self):
        with pytest.raises(ConfigError):
            StreamKernel(passes=1).logical_bytes(-1.0)

    def test_write_fraction_default(self):
        assert StreamKernel(passes=1).write_fraction == 1.0

    def test_write_fraction_custom(self):
        assert StreamKernel(passes=1, write_fraction=0.25).write_fraction == 0.25

    def test_write_fraction_validated(self):
        with pytest.raises(ConfigError):
            StreamKernel(passes=1, write_fraction=1.5)

    def test_timing_only_apply_raises(self):
        with pytest.raises(NotImplementedError):
            StreamKernel(passes=1).apply(np.zeros(4))

    def test_functional_apply_repeats(self):
        k = StreamKernel(passes=3, fn=lambda a: a + 1)
        out = k.apply(np.zeros(4))
        assert np.array_equal(out, np.full(4, 3.0))


class TestFunctionKernel:
    def test_apply(self):
        k = FunctionKernel(np.sort, name="sort")
        arr = np.array([3, 1, 2])
        assert np.array_equal(k.apply(arr), [1, 2, 3])

    def test_passes_parameter(self):
        k = FunctionKernel(np.sort, passes=2.5)
        assert k.logical_bytes(10.0) == pytest.approx(50.0)

    def test_negative_passes_rejected(self):
        with pytest.raises(ConfigError):
            FunctionKernel(np.sort, passes=-1)

    def test_name(self):
        assert FunctionKernel(np.sort, name="x").name == "x"


class TestKernelABC:
    def test_custom_subclass(self):
        class LogKernel(Kernel):
            name = "log"

            def passes(self, chunk_bytes: float) -> float:
                return max(1.0, np.log2(max(chunk_bytes, 2.0)))

        k = LogKernel()
        assert k.passes(1024) == pytest.approx(10.0)
        assert k.logical_bytes(1024) == pytest.approx(2 * 1024 * 10.0)
        with pytest.raises(NotImplementedError):
            k.apply(np.zeros(1))
