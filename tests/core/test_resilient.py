"""Tests for the resilient pipeline and graceful degradation paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.chunking import Chunker
from repro.core.kernel import StreamKernel
from repro.core.modes import UsageMode
from repro.core.resilient import ResilientPipeline
from repro.errors import (
    ConfigError,
    DegradedModeWarning,
    RetryExhaustedError,
)
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode
from repro.units import GiB


def flat_node() -> KNLNode:
    return KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))


def make_pipeline(node=None, injector=None, chunks=8, **kw):
    node = node or flat_node()
    chunker = Chunker(chunks * 2 * GiB, 2 * GiB)
    return ResilientPipeline(
        node,
        UsageMode.FLAT,
        chunker,
        StreamKernel(passes=4.0),
        injector=injector,
        **kw,
    )


class TestConstruction:
    def test_mode_must_match_node(self):
        with pytest.raises(ConfigError):
            ResilientPipeline(
                KNLNode(),  # cache-mode node
                UsageMode.FLAT,
                Chunker(2 * GiB, GiB),
                StreamKernel(passes=1.0),
            )

    def test_retry_budget_validated(self):
        with pytest.raises(ConfigError):
            make_pipeline(max_chunk_retries=-1)
        with pytest.raises(ConfigError):
            make_pipeline(straggler_factor=0.5)


class TestFaultFreeRun:
    def test_all_chunks_on_mcdram(self):
        report = make_pipeline().run()
        assert len(report.chunks) == 8
        assert all(c.device == "mcdram" for c in report.chunks)
        assert not report.degraded_mode
        assert report.elapsed > 0
        assert report.counters.recovery_events == 0

    def test_matches_replay_without_faults(self):
        assert make_pipeline().run().elapsed == make_pipeline().run().elapsed


class TestAllocFallback:
    def test_faulted_chunks_run_on_ddr(self):
        inj = FaultPlan(
            1,
            [FaultSpec(FaultKind.ALLOC_FAIL, "mcdram", probability=1.0)],
        ).injector()
        with pytest.warns(DegradedModeWarning):
            report = make_pipeline(injector=inj).run()
        assert all(c.device == "ddr" for c in report.chunks)
        assert inj.counters.alloc_fallbacks == len(report.chunks)
        # DDR chunks move no MCDRAM traffic in their compute phase.
        clean = make_pipeline().run()
        assert report.traffic["mcdram"] < clean.traffic["mcdram"]

    def test_ddr_path_is_slower(self):
        inj = FaultPlan(
            1,
            [FaultSpec(FaultKind.ALLOC_FAIL, "mcdram", probability=1.0)],
        ).injector()
        with pytest.warns(DegradedModeWarning):
            faulted = make_pipeline(injector=inj).run()
        assert faulted.elapsed > make_pipeline().run().elapsed


class TestBandwidthDegradation:
    def _run(self, severity):
        inj = FaultPlan(
            2,
            [
                FaultSpec(
                    FaultKind.BANDWIDTH_DEGRADE,
                    "mcdram",
                    severity,
                    at_phase=0,
                )
            ],
        ).injector()
        return make_pipeline(injector=inj).run(), inj

    def test_mild_degradation_slows_but_keeps_flat(self):
        report, inj = self._run(0.5)
        assert not report.degraded_mode
        assert inj.counters.degradations == 1
        assert report.elapsed > make_pipeline().run().elapsed

    def test_severe_degradation_downgrades_to_ddr(self):
        # 95% of 400 GB/s leaves 20 GB/s < the 90 GB/s DDR: from the
        # next chunk on, the plan runs the MLM-ddr path.
        with pytest.warns(DegradedModeWarning):
            report, inj = self._run(0.95)
        assert report.degraded_mode
        assert report.mode is UsageMode.DDR
        assert report.degraded_at_chunk == 1
        assert inj.counters.mode_degradations == 1
        assert [c.device for c in report.chunks[1:]] == ["ddr"] * 7
        # Graceful: after the downgrade, chunks run far faster than
        # the first chunk, which streamed MCDRAM at a crippled 20 GB/s.
        assert report.chunks[1].elapsed < report.chunks[0].elapsed / 2


class TestChunkRetries:
    def test_transient_chunk_fault_retried(self):
        inj = FaultPlan(
            3,
            [FaultSpec(FaultKind.CHUNK_FAIL, probability=0.4)],
        ).injector()
        report = make_pipeline(injector=inj, max_chunk_retries=50).run()
        assert len(report.chunks) == 8
        assert inj.counters.chunk_retries >= 1
        assert report.total_attempts > 8

    def test_retry_exhaustion_aborts(self):
        # A schedule-driven chunk fault fires on every retry of chunk 2.
        inj = FaultPlan(
            0, [FaultSpec(FaultKind.CHUNK_FAIL, at_phase=2)]
        ).injector()
        with pytest.raises(RetryExhaustedError) as exc:
            make_pipeline(injector=inj, max_chunk_retries=2).run()
        assert exc.value.attempts == 3


class TestStallsAndStragglers:
    def test_flow_stall_extends_run(self):
        inj = FaultPlan(
            4,
            [FaultSpec(FaultKind.FLOW_STALL, severity=2.0, at_phase=0)],
        ).injector()
        report = make_pipeline(injector=inj).run()
        clean = make_pipeline().run()
        assert report.elapsed == pytest.approx(clean.elapsed + 2.0)
        assert inj.counters.stall_seconds == 2.0

    def test_straggler_rerun_keeps_better_time(self):
        # A huge stall on one late chunk makes it a straggler; the
        # re-run (no stall scheduled there) restores the typical time.
        inj = FaultPlan(
            5,
            [FaultSpec(FaultKind.FLOW_STALL, severity=50.0, at_phase=13)],
        ).injector()
        report = make_pipeline(injector=inj, straggler_factor=3.0).run()
        assert inj.counters.stragglers == 1
        straggler = [c for c in report.chunks if c.straggler]
        assert len(straggler) == 1
        clean = make_pipeline().run()
        typical = clean.chunks[0].elapsed
        assert straggler[0].elapsed == pytest.approx(typical)


class TestWorkerLoss:
    def test_pools_resplit_after_loss_event(self):
        inj = FaultPlan(
            6,
            [FaultSpec(FaultKind.WORKER_LOSS, severity=0.25, at_phase=0)],
        ).injector()
        pipe = make_pipeline(injector=inj)
        before = pipe.pools.total
        report = pipe.run()
        assert pipe.pools.total == round(before * 0.75)
        assert inj.counters.worker_losses == 1
        assert any("worker loss" in line for line in report.fault_log)
        # Fewer threads -> the run takes at least as long.
        assert report.elapsed >= make_pipeline().run().elapsed


class TestCapacityLoss:
    def test_heap_region_shrinks(self):
        inj = FaultPlan(
            7,
            [
                FaultSpec(
                    FaultKind.CAPACITY_LOSS,
                    "mcdram",
                    severity=0.5,
                    at_phase=0,
                )
            ],
        ).injector()
        pipe = make_pipeline(injector=inj)
        from repro.memkind.allocator import Heap

        heap = Heap(pipe.node, injector=inj)
        report = pipe.run(heap=heap)
        assert heap.regions["mcdram"].surrendered > 0
        assert any("capacity loss" in line for line in report.fault_log)


class TestAcceptanceScenario:
    """The issue's acceptance criteria, verbatim: seeded fault plan
    with MCDRAM allocation failures and 50% bandwidth degradation."""

    def _array(self):
        rng = np.random.default_rng(1234)
        return rng.integers(0, 10**9, size=50_000).astype(np.int64)

    def test_mlm_sort_correct_with_recovery_events(self):
        from repro.algorithms.mlm_sort import resilient_mlm_sort

        a = self._array()
        inj = FaultPlan.degraded_mcdram(seed=42, intensity=0.5).injector()
        with pytest.warns(DegradedModeWarning):
            out = resilient_mlm_sort(
                a, megachunk_elements=5000, threads=4, injector=inj
            )
        # Sorted and permutation-preserved.
        assert np.array_equal(out, np.sort(a, kind="stable"))
        # At least one fallback/retry event recorded.
        assert inj.counters.recovery_events >= 1

    def test_same_seed_identical_simulated_times(self):
        from repro.algorithms.mlm_sort import (
            MLMSortConfig,
            resilient_mlm_sort_plan_run,
        )

        cfg = MLMSortConfig(
            n=2_000_000_000,
            megachunk_elements=250_000_000,
            mode=UsageMode.FLAT,
        )

        def run():
            import warnings as _warnings

            inj = FaultPlan.degraded_mcdram(
                seed=42, intensity=0.5
            ).injector()
            with _warnings.catch_warnings():
                _warnings.simplefilter("ignore", DegradedModeWarning)
                return resilient_mlm_sort_plan_run(
                    flat_node(), cfg, injector=inj
                )

        r1, r2 = run(), run()
        assert r1.elapsed == r2.elapsed
        assert [c.elapsed for c in r1.chunks] == [
            c.elapsed for c in r2.chunks
        ]
        assert r1.fault_log == r2.fault_log
        assert r1.counters.as_dict() == r2.counters.as_dict()

    def test_different_seed_changes_schedule(self):
        from repro.algorithms.mlm_sort import (
            MLMSortConfig,
            resilient_mlm_sort_plan_run,
        )

        cfg = MLMSortConfig(
            n=2_000_000_000,
            megachunk_elements=250_000_000,
            mode=UsageMode.FLAT,
        )
        import warnings as _warnings

        devices = []
        for seed in (1, 2, 3, 4, 5):
            inj = FaultPlan.degraded_mcdram(
                seed=seed, intensity=0.5
            ).injector()
            with _warnings.catch_warnings():
                _warnings.simplefilter("ignore", DegradedModeWarning)
                rep = resilient_mlm_sort_plan_run(
                    flat_node(), cfg, injector=inj
                )
            devices.append(tuple(c.device for c in rep.chunks))
        assert len(set(devices)) > 1

    @pytest.mark.parametrize("seed", [0, 7, 99])
    @pytest.mark.parametrize("intensity", [0.25, 0.75])
    def test_sorted_permutation_property(self, seed, intensity):
        """Property: any seeded fault intensity below fatal preserves
        sortedness and the input multiset."""
        from repro.algorithms.mlm_sort import resilient_mlm_sort

        rng = np.random.default_rng(seed)
        a = rng.integers(-1000, 1000, size=10_000).astype(np.int64)
        inj = FaultPlan.degraded_mcdram(
            seed=seed, intensity=intensity
        ).injector()
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("ignore", DegradedModeWarning)
            out = resilient_mlm_sort(
                a, megachunk_elements=1024, threads=3, injector=inj
            )
        assert np.all(np.diff(out) >= 0)
        assert np.array_equal(np.sort(a, kind="stable"), out)


class TestFunctionalPath:
    def test_functional_outputs_preserved_under_faults(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 10**6, size=32768).astype(np.int64)
        chunker = Chunker.from_elements(len(a), 4096, a.itemsize)
        inj = FaultPlan(
            8,
            [
                FaultSpec(FaultKind.ALLOC_FAIL, "mcdram", probability=0.5),
                FaultSpec(FaultKind.CHUNK_FAIL, probability=0.3),
            ],
        ).injector()
        pipe = ResilientPipeline(
            flat_node(),
            UsageMode.FLAT,
            chunker,
            StreamKernel(passes=1.0, fn=np.sort),
            injector=inj,
            max_chunk_retries=50,
        )
        with pytest.warns(DegradedModeWarning):
            outs = pipe.run_functional(a)
        assert np.array_equal(
            np.concatenate(outs),
            np.concatenate([np.sort(c) for c in chunker.split_array(a)]),
        )
        assert inj.counters.recovery_events >= 1
