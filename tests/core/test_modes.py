"""Tests for usage modes and logical->physical traffic conversion."""

from __future__ import annotations

import pytest

from repro.core.modes import (
    UsageMode,
    compute_multipliers,
    dc_cache_split,
    mode_label,
    required_memory_mode,
    validate_node_mode,
)
from repro.errors import ConfigError
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode
from repro.units import GiB


def node_in(mode: MemoryMode, **kw) -> KNLNode:
    return KNLNode(KNLNodeConfig(mode=mode, **kw))


class TestModeMapping:
    def test_required_memory_modes(self):
        assert required_memory_mode(UsageMode.FLAT) is MemoryMode.FLAT
        assert required_memory_mode(UsageMode.HYBRID) is MemoryMode.HYBRID
        assert required_memory_mode(UsageMode.IMPLICIT) is MemoryMode.CACHE
        assert required_memory_mode(UsageMode.CACHE) is MemoryMode.CACHE
        assert required_memory_mode(UsageMode.DDR) is None

    def test_validate_accepts_matching(self):
        validate_node_mode(node_in(MemoryMode.FLAT), UsageMode.FLAT)
        validate_node_mode(node_in(MemoryMode.CACHE), UsageMode.IMPLICIT)

    def test_validate_rejects_mismatch(self):
        with pytest.raises(ConfigError):
            validate_node_mode(node_in(MemoryMode.CACHE), UsageMode.FLAT)
        with pytest.raises(ConfigError):
            validate_node_mode(node_in(MemoryMode.FLAT), UsageMode.IMPLICIT)

    def test_ddr_mode_runs_anywhere(self):
        for m in (MemoryMode.FLAT, MemoryMode.CACHE, MemoryMode.HYBRID):
            validate_node_mode(node_in(m), UsageMode.DDR)

    def test_labels_exist_for_all_modes(self):
        for m in UsageMode:
            assert mode_label(m)


class TestComputeMultipliers:
    def test_flat_is_pure_mcdram(self):
        n = node_in(MemoryMode.FLAT)
        m = compute_multipliers(n, UsageMode.FLAT, GiB, passes=4)
        assert m == {"mcdram": 1.0}

    def test_ddr_is_pure_ddr(self):
        n = node_in(MemoryMode.FLAT)
        m = compute_multipliers(n, UsageMode.DDR, GiB, passes=4)
        assert m == {"ddr": 1.0}

    def test_implicit_fitting_chunk_mostly_mcdram(self):
        """A cache-resident chunk pays DDR only for cold fill/writeback."""
        n = node_in(MemoryMode.CACHE)
        m = compute_multipliers(
            n, UsageMode.IMPLICIT, GiB, passes=8, write_fraction=1.0
        )
        # 16 sweeps, misses only on sweep 1: ddr mult ~ (1+0.5)/16.
        assert m["ddr"] == pytest.approx(1.5 / 16, rel=0.05)
        assert m["mcdram"] > 0.9

    def test_implicit_thrashing_chunk_ddr_heavy(self):
        n = node_in(MemoryMode.CACHE)
        m = compute_multipliers(
            n, UsageMode.IMPLICIT, 48 * GiB, passes=1, write_fraction=1.0
        )
        # Every sweep misses: each logical byte costs ~1.5 DDR bytes.
        assert m["ddr"] == pytest.approx(1.5, rel=0.05)
        assert m["mcdram"] == pytest.approx(2.5, rel=0.05)

    def test_cache_mode_without_cache_model_rejected(self):
        n = node_in(MemoryMode.FLAT)
        with pytest.raises(ConfigError):
            compute_multipliers(n, UsageMode.IMPLICIT, GiB, passes=1)

    def test_negative_args_rejected(self):
        n = node_in(MemoryMode.FLAT)
        with pytest.raises(ConfigError):
            compute_multipliers(n, UsageMode.FLAT, -1.0, passes=1)

    def test_warm_chunk_no_ddr(self):
        n = node_in(MemoryMode.CACHE)
        m = compute_multipliers(
            n, UsageMode.IMPLICIT, GiB, passes=2, write_fraction=0.0, cold=False
        )
        assert m["ddr"] == 0.0


class TestDcCacheSplit:
    def test_fitting_working_set_fully_cached(self):
        n = node_in(MemoryMode.CACHE)
        unc, cached = dc_cache_split(n, UsageMode.IMPLICIT, 8 * GiB, 20.0)
        assert unc == 0.0
        assert cached == 20.0

    def test_oversize_working_set_split(self):
        n = node_in(MemoryMode.CACHE)
        unc, cached = dc_cache_split(n, UsageMode.IMPLICIT, 64 * GiB, 20.0)
        assert unc == pytest.approx(2.0)
        assert cached == pytest.approx(18.0)

    def test_split_sums_to_levels(self):
        n = node_in(MemoryMode.CACHE)
        unc, cached = dc_cache_split(n, UsageMode.IMPLICIT, 48 * GiB, 22.5)
        assert unc + cached == pytest.approx(22.5)
        assert 0 <= unc <= 22.5

    def test_uncached_clamped_to_levels(self):
        n = node_in(MemoryMode.CACHE)
        unc, cached = dc_cache_split(n, UsageMode.CACHE, 2**60, 3.0)
        assert unc == 3.0
        assert cached == 0.0

    def test_non_cache_mode_rejected(self):
        n = node_in(MemoryMode.FLAT)
        with pytest.raises(ConfigError):
            dc_cache_split(n, UsageMode.FLAT, GiB, 10.0)

    def test_negative_levels_rejected(self):
        n = node_in(MemoryMode.CACHE)
        with pytest.raises(ConfigError):
            dc_cache_split(n, UsageMode.IMPLICIT, GiB, -1.0)

    def test_hybrid_cache_portion_smaller(self):
        """Hybrid's smaller cache pushes the split point earlier."""
        full = node_in(MemoryMode.CACHE)
        # Hybrid nodes reject IMPLICIT; compare via cache capacity.
        hybrid = node_in(MemoryMode.HYBRID, hybrid_cache_fraction=0.5)
        assert hybrid.cache_capacity < full.cache_capacity
