"""Metric registry, event log, and session-scoping semantics."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.telemetry import Telemetry, current, telemetry_session
from repro.telemetry import names as tn
from repro.telemetry.registry import HistogramData


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Telemetry().metrics.counter(tn.ENGINE_RUNS_TOTAL)
        assert c.value() == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_cannot_decrease(self):
        c = Telemetry().metrics.counter(tn.ENGINE_RUNS_TOTAL)
        with pytest.raises(ConfigError):
            c.inc(-1)

    def test_labelled_series_are_independent(self):
        c = Telemetry().metrics.counter(tn.ENGINE_TRAFFIC_BYTES_TOTAL)
        c.inc(10, resource="ddr")
        c.inc(4, resource="mcdram")
        assert c.value(resource="ddr") == 10
        assert c.value(resource="mcdram") == 4
        assert len(list(c.series())) == 2

    def test_label_set_validated(self):
        m = Telemetry().metrics
        with pytest.raises(ConfigError):
            m.counter(tn.ENGINE_TRAFFIC_BYTES_TOTAL).inc(1)  # missing
        with pytest.raises(ConfigError):
            m.counter(tn.ENGINE_RUNS_TOTAL).inc(1, device="x")  # extra

    def test_keyword_label_names_work(self):
        # The cache-miss label is literally called "class".
        c = Telemetry().metrics.counter(tn.CACHE_MISSES_TOTAL)
        c.inc(**{"class": "cold"})
        assert c.value(**{"class": "cold"}) == 1


class TestGauge:
    def test_set_add_and_both_directions(self):
        g = Telemetry().metrics.gauge(tn.DEVICE_RESERVED_BYTES)
        g.set(100, device="ddr")
        g.add(-25, device="ddr")
        assert g.value(device="ddr") == 75

    def test_set_max_is_high_water(self):
        g = Telemetry().metrics.gauge(tn.ALLOC_HIGH_WATER_BYTES)
        g.set_max(10, device="mcdram")
        g.set_max(5, device="mcdram")
        g.set_max(12, device="mcdram")
        assert g.value(device="mcdram") == 12


class TestHistogram:
    def test_aggregates(self):
        h = Telemetry().metrics.histogram(tn.ENGINE_PHASE_SECONDS)
        for v in (1.0, 2.0, 9.0):
            h.observe(v)
        data = h.data()
        assert data.count == 3
        assert data.sum == 12.0
        assert data.min == 1.0 and data.max == 9.0
        assert data.mean == 4.0

    def test_log2_buckets_sparse(self):
        d = HistogramData()
        for v in (1.5, 3.0, 3.9, 100.0, 0.0):
            d.observe(v)
        # floor(log2): 1.5 -> 0; 3.0, 3.9 -> 1; 100 -> 6; 0 -> underflow
        assert d.buckets == {0: 1, 1: 2, 6: 1, None: 1}

    def test_bucket_bounds_cumulative(self):
        d = HistogramData()
        for v in (0.0, 1.5, 3.0, 3.9):
            d.observe(v)
        # underflow bound 0, then 2^(e+1) upper bounds, cumulative.
        assert d.bucket_bounds() == [(0.0, 1), (2.0, 2), (4.0, 4)]


class TestRegistry:
    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            Telemetry().metrics.counter("engine.bogus_total")

    def test_kind_mismatch_rejected(self):
        m = Telemetry().metrics
        with pytest.raises(ConfigError):
            m.gauge(tn.ENGINE_RUNS_TOTAL)  # declared as a counter

    def test_lazy_creation_and_iteration(self):
        m = Telemetry().metrics
        assert tn.ENGINE_RUNS_TOTAL not in m
        c = m.counter(tn.ENGINE_RUNS_TOTAL)
        assert m.counter(tn.ENGINE_RUNS_TOTAL) is c
        assert list(m) == [tn.ENGINE_RUNS_TOTAL]

    def test_snapshot_shapes(self):
        tel = Telemetry()
        tel.metrics.counter(tn.ENGINE_RUNS_TOTAL).inc()
        tel.metrics.histogram(tn.ENGINE_PHASE_SECONDS).observe(2.0)
        snap = tel.metrics.snapshot()
        runs = snap[tn.ENGINE_RUNS_TOTAL]
        assert runs["kind"] == "counter"
        assert runs["series"] == [{"labels": {}, "value": 1.0}]
        hist = snap[tn.ENGINE_PHASE_SECONDS]["series"][0]
        assert hist["count"] == 1 and hist["buckets"] == [[4.0, 1]]


class TestEventLog:
    def test_unknown_event_rejected(self):
        with pytest.raises(ConfigError):
            Telemetry().events.emit("engine.bogus")

    def test_watermark_monotonic(self):
        log = Telemetry().events
        log.emit(tn.EVENT_RUN_START, time=5.0)
        # A stale producer clock cannot move the log backwards.
        ev = log.emit(tn.EVENT_PHASE_START, time=3.0)
        assert ev.time == 5.0
        assert log.now == 5.0
        log.advance(8.0)
        assert log.emit(tn.EVENT_RUN_END).time == 8.0

    def test_sequence_and_queries(self):
        log = Telemetry().events
        log.emit(tn.EVENT_RUN_START, plan="p")
        log.emit(tn.EVENT_PHASE_START, phase="a")
        log.emit(tn.EVENT_PHASE_START, phase="b")
        assert [e.seq for e in log] == [1, 2, 3]
        assert log.names() == {tn.EVENT_RUN_START, tn.EVENT_PHASE_START}
        phases = log.of(tn.EVENT_PHASE_START)
        assert [e.attrs["phase"] for e in phases] == ["a", "b"]

    def test_as_dict_flattens_attrs(self):
        ev = Telemetry().events.emit(tn.EVENT_RUN_START, plan="p")
        assert ev.as_dict() == {
            "seq": 1, "time": 0.0, "name": tn.EVENT_RUN_START, "plan": "p"
        }


class TestSessionScoping:
    def test_disabled_outside_any_session(self):
        tel = current()
        assert not tel.enabled

    def test_session_activates_and_restores(self):
        before = current()
        with telemetry_session() as tel:
            assert current() is tel
            assert tel.enabled
        assert current() is before

    def test_sessions_nest(self):
        with telemetry_session() as outer:
            outer.metrics.counter(tn.ENGINE_RUNS_TOTAL).inc()
            with telemetry_session() as inner:
                assert current() is inner
                assert tn.ENGINE_RUNS_TOTAL not in inner.metrics
            assert current() is outer

    def test_restored_on_exception(self):
        with pytest.raises(RuntimeError):
            with telemetry_session():
                raise RuntimeError("boom")
        assert not current().enabled

    def test_supplied_telemetry_reused(self):
        tel = Telemetry()
        with telemetry_session(tel) as active:
            assert active is tel
