"""docs/OBSERVABILITY.md must document the complete telemetry surface.

The registry and event log refuse names outside the catalog, so
catalog ⊆ documentation is the only direction that needs enforcing
for the guide to be complete.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.telemetry.names import EVENTS, METRICS

DOC = Path(__file__).resolve().parents[2] / "docs" / "OBSERVABILITY.md"


@pytest.fixture(scope="module")
def doc_text() -> str:
    return DOC.read_text(encoding="utf-8")


def test_guide_exists():
    assert DOC.exists()


@pytest.mark.parametrize("name", sorted(METRICS))
def test_metric_documented(name, doc_text):
    assert f"`{name}`" in doc_text, (
        f"metric {name!r} is in the catalog but not documented in "
        "docs/OBSERVABILITY.md"
    )


@pytest.mark.parametrize("name", sorted(EVENTS))
def test_event_documented(name, doc_text):
    assert f"`{name}`" in doc_text, (
        f"event {name!r} is in the catalog but not documented in "
        "docs/OBSERVABILITY.md"
    )


def test_catalog_is_nonempty():
    assert len(METRICS) >= 30 and len(EVENTS) >= 14
