"""Instrumented layers really emit, end to end.

Covers the acceptance path — ``repro-knl table1 --metrics --events``
produces engine phase counters, allocator high-water gauges, and
per-device byte counters, with the event log round-tripping through
the Perfetto exporter — plus per-layer unit checks.
"""

from __future__ import annotations

import json

from repro.cli import main
from repro.memkind.allocator import Heap
from repro.memkind.kinds import MEMKIND_HBW_PREFERRED
from repro.simknl.cache import DirectMappedCache
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode
from repro.telemetry import names as tn
from repro.telemetry import telemetry_session
from repro.threads.pool import PoolSet
from repro.units import GiB


class TestCliAcceptance:
    def test_table1_metrics_and_events(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        events = tmp_path / "e.perfetto.json"
        code = main([
            "table1", "--metrics", str(metrics), "--events", str(events)
        ])
        assert code == 0
        capsys.readouterr()

        snap = json.loads(metrics.read_text())
        m = snap["metrics"]
        # Engine phase counters.
        assert m[tn.ENGINE_PHASES_TOTAL]["series"][0]["value"] > 0
        assert m[tn.ENGINE_RUNS_TOTAL]["series"][0]["value"] >= 30
        # Allocator high-water gauge, per device.
        devices = {
            s["labels"]["device"]: s["value"]
            for s in m[tn.ALLOC_HIGH_WATER_BYTES]["series"]
        }
        assert devices.get("ddr", 0) > 0
        assert devices.get("mcdram", 0) > 0
        # Per-device traffic byte counters.
        resources = {
            s["labels"]["resource"]
            for s in m[tn.ENGINE_TRAFFIC_BYTES_TOTAL]["series"]
        }
        assert {"ddr", "mcdram"} <= resources

        # Event log round-trips through the Perfetto exporter.
        trace = json.loads(events.read_text())
        assert trace["traceEvents"], "no events captured"
        names = {e["name"] for e in trace["traceEvents"]}
        assert tn.EVENT_PHASE_START in names
        assert tn.EVENT_RUN_END in names
        assert all(e["ph"] == "i" for e in trace["traceEvents"])

    def test_no_telemetry_flags_no_session(self, capsys):
        assert main(["table2"]) == 0
        capsys.readouterr()


class TestCacheInstrumentation:
    def test_hits_misses_writebacks(self):
        with telemetry_session() as tel:
            cache = DirectMappedCache(capacity=1024, line_size=64)
            cache.access(0, write=True)   # cold miss
            cache.access(0)               # hit
            cache.access(1024, write=False)  # evicts dirty line 0
            cache.flush()
        m = tel.metrics
        assert m.counter(tn.CACHE_HITS_TOTAL).value() == 1
        misses = m.counter(tn.CACHE_MISSES_TOTAL)
        assert sum(v for _, v in misses.series()) == 2
        assert m.counter(tn.CACHE_WRITEBACKS_TOTAL).value() >= 1
        assert m.counter(tn.CACHE_FLUSHES_TOTAL).value() == 1


class TestAllocatorInstrumentation:
    def test_preferred_fallback_counted_and_evented(self):
        node = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))
        with telemetry_session() as tel:
            heap = Heap(node)
            big = heap.allocate(int(15 * GiB), MEMKIND_HBW_PREFERRED)
            spill = heap.allocate(int(4 * GiB), MEMKIND_HBW_PREFERRED)
            heap.free(spill)
            heap.free(big)
        m = tel.metrics
        assert m.counter(tn.ALLOC_FALLBACKS_TOTAL).value() == 1
        assert m.counter(tn.ALLOC_REQUESTS_TOTAL).value(device="ddr") == 1
        assert m.gauge(tn.ALLOC_HIGH_WATER_BYTES).value(
            device="mcdram"
        ) == 15 * GiB
        fallbacks = tel.events.of(tn.EVENT_ALLOC_FALLBACK)
        assert len(fallbacks) == 1
        assert fallbacks[0].attrs["fallback"] == "ddr"


class TestPoolInstrumentation:
    def test_role_gauges_set_on_construction(self):
        node = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))
        with telemetry_session() as tel:
            PoolSet.split(node, compute=200, copy_in=16, copy_out=8)
        g = tel.metrics.gauge(tn.POOL_THREADS)
        assert g.value(role="compute") == 200
        assert g.value(role="copy-in") == 16
        assert g.value(role="copy-out") == 8


class TestDisabledCost:
    def test_no_session_records_nothing(self):
        from repro.experiments.runner import sort_variant_seconds
        from repro.telemetry import current

        before = current()
        assert not before.enabled
        sort_variant_seconds("MLM-sort", 2_000_000_000, "random")
        # The shared disabled instance stays untouched.
        assert list(before.metrics) == []
        assert len(before.events) == 0
