"""Exporter formats and the trace-merge integration."""

from __future__ import annotations

import csv
import io
import json

from repro.telemetry import (
    Telemetry,
    events_to_json,
    events_to_perfetto,
    metrics_to_csv,
    metrics_to_json,
    metrics_to_prometheus,
    write_events,
    write_metrics,
)
from repro.telemetry import names as tn


def sample_telemetry() -> Telemetry:
    tel = Telemetry()
    tel.metrics.counter(tn.ENGINE_TRAFFIC_BYTES_TOTAL).inc(
        1.5e9, resource="ddr"
    )
    tel.metrics.gauge(tn.ALLOC_HIGH_WATER_BYTES).set_max(
        2048, device="mcdram"
    )
    tel.metrics.histogram(tn.ENGINE_PHASE_SECONDS).observe(3.0)
    tel.events.emit(tn.EVENT_RUN_START, time=0.0, plan="p")
    tel.events.emit(tn.EVENT_PHASE_END, time=3.0, phase="a", seconds=3.0)
    return tel


class TestJson:
    def test_snapshot_includes_sim_time_and_metrics(self):
        payload = json.loads(metrics_to_json(sample_telemetry()))
        assert payload["sim_time"] == 3.0
        traffic = payload["metrics"][tn.ENGINE_TRAFFIC_BYTES_TOTAL]
        assert traffic["series"][0] == {
            "labels": {"resource": "ddr"}, "value": 1.5e9
        }

    def test_bare_registry_accepted(self):
        tel = sample_telemetry()
        payload = json.loads(metrics_to_json(tel.metrics))
        assert tn.ENGINE_PHASE_SECONDS in payload["metrics"]


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        text = metrics_to_prometheus(sample_telemetry())
        assert "# TYPE engine_traffic_bytes_total counter" in text
        assert 'engine_traffic_bytes_total{resource="ddr"} 1.5e+09' in text
        assert 'alloc_high_water_bytes{device="mcdram"} 2048' in text

    def test_histogram_renders_cumulative_buckets(self):
        lines = metrics_to_prometheus(sample_telemetry()).splitlines()
        # 3.0 lands in the [2, 4) bucket -> le="4".
        assert 'engine_phase_seconds_bucket{le="4"} 1' in lines
        assert 'engine_phase_seconds_bucket{le="+Inf"} 1' in lines
        assert "engine_phase_seconds_sum 3" in lines
        assert "engine_phase_seconds_count 1" in lines

    def test_empty_registry_renders_empty(self):
        assert metrics_to_prometheus(Telemetry()) == ""


class TestCsv:
    def test_one_row_per_series_parseable(self):
        rows = list(csv.DictReader(io.StringIO(
            metrics_to_csv(sample_telemetry())
        )))
        by_name = {r["metric"]: r for r in rows}
        assert by_name[tn.ENGINE_TRAFFIC_BYTES_TOTAL]["value"] == "1.5e+09"
        assert by_name[tn.ENGINE_TRAFFIC_BYTES_TOTAL]["labels"] == (
            "resource=ddr"
        )
        hist = by_name[tn.ENGINE_PHASE_SECONDS]
        assert hist["value"] == "" and hist["count"] == "1"


class TestEvents:
    def test_json_array_of_flat_records(self):
        records = json.loads(events_to_json(sample_telemetry().events))
        assert records[0]["name"] == tn.EVENT_RUN_START
        assert records[1]["seconds"] == 3.0

    def test_perfetto_instant_events(self):
        trace = json.loads(events_to_perfetto(sample_telemetry().events))
        events = trace["traceEvents"]
        assert len(events) == 2
        phase_end = events[1]
        assert phase_end["ph"] == "i" and phase_end["s"] == "g"
        assert phase_end["ts"] == 3.0 * 1e6
        assert phase_end["tid"] == "phase"  # category track
        assert phase_end["args"]["seconds"] == 3.0


class TestWriteByExtension:
    def test_metrics_extension_sniffing(self, tmp_path):
        tel = sample_telemetry()
        prom = tmp_path / "m.prom"
        write_metrics(str(prom), tel)
        assert prom.read_text().startswith("# HELP")
        as_csv = tmp_path / "m.csv"
        write_metrics(str(as_csv), tel)
        assert as_csv.read_text().startswith("metric,kind,")
        as_json = tmp_path / "m.json"
        write_metrics(str(as_json), tel)
        assert json.loads(as_json.read_text())["sim_time"] == 3.0

    def test_events_extension_sniffing(self, tmp_path):
        tel = sample_telemetry()
        perfetto = tmp_path / "e.perfetto.json"
        write_events(str(perfetto), tel)
        assert "traceEvents" in json.loads(perfetto.read_text())
        plain = tmp_path / "e.json"
        write_events(str(plain), tel)
        assert isinstance(json.loads(plain.read_text()), list)


class TestTraceMerge:
    def test_chrome_trace_merges_event_log(self):
        from repro.algorithms.merge_bench import (
            MergeBenchConfig,
            run_merge_bench,
        )
        from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode
        from repro.simknl.trace import to_chrome_trace
        from repro.telemetry import telemetry_session

        node = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))
        cfg = MergeBenchConfig(
            repeats=2,
            copy_in_threads=4,
            data_bytes=2 * 10**9,
            chunk_bytes=10**9,
        )
        with telemetry_session() as tel:
            res = run_merge_bench(node, cfg)
        merged = json.loads(
            to_chrome_trace(res.plan, res.run, events=tel.events)
        )
        phases = {e.get("ph") for e in merged["traceEvents"]}
        # Flow spans from the plan plus telemetry instants.
        assert "i" in phases and phases - {"i"}
        names = {e["name"] for e in merged["traceEvents"]}
        assert tn.EVENT_PHASE_END in names
