"""Tests for the telemetry layer: registry, events, exporters, docs."""
