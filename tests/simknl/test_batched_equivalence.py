"""Property tests pinning batched plan evaluation to the per-phase
reference loop.

``Plan.compile()`` groups consecutive ``static_rates`` phases sharing a
flow structure; ``Engine.run`` evaluates those groups with one
water-filling solve and NumPy array ops. ``Engine(batch_phases=False)``
keeps every phase on the per-phase reference loop, and these tests hold
the two bit-identical — ``elapsed``, ``phase_times``, and ``traffic``
— across strategies, odd-sized final chunks, and random plans, and
assert the documented fallbacks (faults, telemetry, recorded events,
dynamic-rate phases) really do bypass the batched path.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernel import StreamKernel
from repro.core.multilevel import ThreeLevelConfig, ThreeLevelPipeline
from repro.errors import SimulationError
from repro.faults import FaultPlan
from repro.simknl.engine import Engine, Phase, Plan
from repro.simknl.flows import Flow, Resource
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode
from repro.telemetry import runtime as _tm
from repro.units import GB, GiB, MiB

RESOURCES = [
    Resource("ddr", 90 * GB),
    Resource("mcdram", 400 * GB),
    Resource("nvm", 10 * GB),
]


def run_both(plan: Plan, **engine_kw) -> tuple:
    fast = Engine(
        RESOURCES, record_events=False, batch_phases=True, **engine_kw
    )
    ref = Engine(
        RESOURCES, record_events=False, batch_phases=False, **engine_kw
    )
    return fast, fast.run(plan), ref, ref.run(plan)


def assert_identical(a, b) -> None:
    assert a.elapsed == b.elapsed
    assert a.phase_times == b.phase_times
    assert a.traffic == b.traffic


# ---- pipeline strategies, including odd-sized final chunks ---------------


@pytest.mark.parametrize("strategy", ["direct", "single", "double"])
@pytest.mark.parametrize(
    "data_bytes",
    [int(20 * GiB), int(20 * GiB) + 8, int(50 * GiB) - 8],
)
def test_pipeline_strategies_bit_identical(strategy, data_bytes):
    def result(batch: bool):
        node = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))
        pipe = ThreeLevelPipeline(
            node,
            StreamKernel(passes=3),
            ThreeLevelConfig(data_bytes=data_bytes),
        )
        pipe._engine.batch_phases = batch
        res = pipe.run(strategy)
        return res, pipe._engine.batched_groups

    fast, fast_groups = result(True)
    ref, ref_groups = result(False)
    assert_identical(fast, ref)
    assert ref_groups == 0
    if strategy == "single":
        assert fast_groups >= 1  # the triple-buffered steady state


def test_single_strategy_uses_batched_path():
    node = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))
    pipe = ThreeLevelPipeline(
        node, StreamKernel(passes=2), ThreeLevelConfig(data_bytes=30 * GiB)
    )
    pipe.run("single")
    assert pipe._engine.batched_groups >= 1


def test_compare_shares_one_engine():
    node = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))
    pipe = ThreeLevelPipeline(
        node, StreamKernel(passes=2), ThreeLevelConfig(data_bytes=30 * GiB)
    )
    pipe.compare()
    solves_after_first = len(pipe._engine._rate_cache)
    assert solves_after_first > 0
    pipe.compare()  # every solve is memoized on the shared engine now
    assert len(pipe._engine._rate_cache) == solves_after_first


# ---- random plans: batched == reference ----------------------------------

flow_strategy = st.tuples(
    st.integers(min_value=1, max_value=64),       # threads
    st.sampled_from([0.2, 1.0, 4.8]),             # per-thread rate (GB/s)
    st.sampled_from(["ddr", "mcdram", "nvm"]),    # extra resource
    st.integers(min_value=0, max_value=30),       # bytes (GiB; 0 = idle)
)

phase_strategy = st.tuples(
    st.booleans(),                                # static_rates
    st.lists(flow_strategy, min_size=1, max_size=3),
)


def build_plan(phases, repeats: int) -> Plan:
    """A plan whose static phases repeat structurally ``repeats`` times
    with varying byte demands — the steady-state shape compile groups."""
    plan = Plan("prop")
    for p, (static, flows) in enumerate(phases):
        for rep in range(repeats if static else 1):
            fl = [
                Flow(
                    f"f{p}.{i}",
                    threads,
                    rate * GB,
                    {"ddr": 1.0, extra: 0.5},
                    float(nbytes * GiB + rep),  # bytes vary per repeat
                )
                for i, (threads, rate, extra, nbytes) in enumerate(flows)
            ]
            if all(f.bytes_total == 0 for f in fl):
                fl[0] = Flow(
                    f"f{p}.0", 1, 1.0 * GB, {"ddr": 1.0}, float(GiB)
                )
            plan.add(Phase(f"p{p}.{rep}", fl, static_rates=static))
    return plan


@settings(max_examples=80, deadline=None)
@given(
    phases=st.lists(phase_strategy, min_size=1, max_size=4),
    repeats=st.integers(min_value=1, max_value=6),
)
def test_random_plans_bit_identical(phases, repeats):
    plan = build_plan(phases, repeats)
    _, fast_res, _, ref_res = run_both(plan)
    assert_identical(fast_res, ref_res)


def test_zero_byte_flows_drop_out_of_structure():
    """A zero-byte flow is dead weight in the reference loop; the
    compiled structure must skip it identically."""
    plan = Plan("zeros")
    for i in range(4):
        plan.add(
            Phase(
                f"s{i}",
                [
                    Flow("live", 8, 1.0 * GB, {"ddr": 1.0}, float(GiB + i)),
                    Flow("idle", 8, 1.0 * GB, {"mcdram": 1.0}, 0.0),
                ],
                static_rates=True,
            )
        )
    fast, fast_res, _, ref_res = run_both(plan)
    assert_identical(fast_res, ref_res)
    assert fast.batched_groups == 1
    assert fast_res.traffic["mcdram"] == 0.0


# ---- fallbacks -----------------------------------------------------------


def steady_plan(n: int = 8) -> Plan:
    plan = Plan("steady")
    for i in range(n):
        plan.add(
            Phase(
                f"s{i}",
                [
                    Flow("in", 8, 0.6 * GB, {"nvm": 1.0}, float(4 * GiB)),
                    Flow("comp", 224, 1.0 * GB, {"ddr": 1.0}, float(8 * GiB + i)),
                ],
                static_rates=True,
            )
        )
    return plan


def test_faulted_runs_fall_back_to_reference():
    plan = steady_plan()
    injector = FaultPlan.degraded_mcdram(seed=7, intensity=0.5).injector()
    faulted = Engine(RESOURCES, record_events=False, injector=injector)
    res = faulted.run(plan)
    assert faulted.batched_groups == 0
    # ... and matches a reference engine driven by an identical plan.
    ref_injector = FaultPlan.degraded_mcdram(seed=7, intensity=0.5).injector()
    ref = Engine(
        RESOURCES,
        record_events=False,
        injector=ref_injector,
        batch_phases=False,
    )
    assert_identical(res, ref.run(plan))


def test_telemetry_enabled_runs_fall_back():
    plan = steady_plan()
    eng = Engine(RESOURCES, record_events=False)
    with _tm.telemetry_session():
        res_tel = eng.run(plan)
    assert eng.batched_groups == 0
    res_fast = eng.run(plan)
    assert eng.batched_groups == 1
    assert_identical(res_tel, res_fast)


def test_recorded_events_fall_back():
    plan = steady_plan()
    eng = Engine(RESOURCES, record_events=True)
    res = eng.run(plan)
    assert eng.batched_groups == 0
    assert res.events  # flow completions were recorded


def test_phase_hooks_fall_back():
    plan = steady_plan()
    eng = Engine(RESOURCES, record_events=False)
    eng.add_phase_hook(lambda engine, index, phase: 0.0)
    eng.run(plan)
    assert eng.batched_groups == 0


def test_starved_group_raises_like_reference():
    """A zero-rate allocation (defensive; unreachable through the real
    max-min allocator) must make the batched path fall back to the
    reference loop, which raises the per-phase starvation error."""
    plan = Plan("starved")
    for i in range(3):
        plan.add(
            Phase(
                f"s{i}",
                [Flow("f", 8, 1.0 * GB, {"ddr": 1.0}, float(GiB))],
                static_rates=True,
            )
        )
    for batch in (True, False):
        eng = Engine(RESOURCES, record_events=False, batch_phases=batch)
        eng._allocate = lambda live: [0.0] * len(live)
        with pytest.raises(SimulationError, match="starved"):
            eng.run(plan)
        assert eng.batched_groups == 0


# ---- compile segmentation -------------------------------------------------


def test_compile_groups_structural_runs():
    plan = steady_plan(6)
    plan.add(Phase("dyn", [Flow("f", 8, 1.0 * GB, {"ddr": 1.0}, float(GiB))]))
    segments = plan.compile()
    kinds = [s[0] for s in segments]
    assert kinds == ["group", "ref"]
    group = segments[0][1]
    assert (group.start, group.count) == (0, 6)
    assert group.bytes_matrix.shape == (6, 2)
    assert segments[1][1:] == (6, 7)


def test_compile_splits_on_structure_change():
    plan = steady_plan(3)
    plan.add(
        Phase(
            "other",
            [Flow("f", 99, 1.0 * GB, {"ddr": 1.0}, float(GiB))],
            static_rates=True,
        )
    )
    plan.add(
        Phase(
            "other2",
            [Flow("f", 99, 1.0 * GB, {"ddr": 1.0}, float(2 * GiB))],
            static_rates=True,
        )
    )
    kinds = [s[0] for s in plan.compile()]
    assert kinds == ["group", "group"]


def test_singleton_static_phases_stay_on_reference():
    plan = Plan("singleton")
    plan.add(
        Phase(
            "only",
            [Flow("f", 8, 1.0 * GB, {"ddr": 1.0}, float(GiB))],
            static_rates=True,
        )
    )
    assert [s[0] for s in plan.compile()] == ["ref"]


def test_compile_cache_invalidated_by_add():
    plan = steady_plan(4)
    first = plan.compile()
    assert plan.compile() is first  # cached
    plan.add(
        Phase(
            "s4",
            [
                Flow("in", 8, 0.6 * GB, {"nvm": 1.0}, float(4 * GiB)),
                Flow("comp", 224, 1.0 * GB, {"ddr": 1.0}, float(12 * GiB)),
            ],
            static_rates=True,
        )
    )
    second = plan.compile()
    assert second is not first
    assert second[0][1].count == 5


def test_inner_chunk_variation_only_in_bytes():
    """Ragged final chunks (odd data size) must not break the group:
    structure excludes bytes, so the run stays one group."""
    node = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))
    pipe = ThreeLevelPipeline(
        node,
        StreamKernel(passes=2),
        ThreeLevelConfig(
            data_bytes=int(20 * GiB) + 128,
            inner_chunk_bytes=3 * GiB,
        ),
    )
    plan = pipe.build_plan("single")
    groups = [s for s in plan.compile() if s[0] == "group"]
    assert len(groups) == 1
    # steady state: all but the pipeline fill/drain steps
    assert groups[0][1].count >= len(plan.phases) - 4


def test_repeated_runs_reuse_compiled_plan():
    plan = steady_plan()
    eng = Engine(RESOURCES, record_events=False)
    first = eng.run(plan)
    compiled = plan._compiled
    second = eng.run(plan)
    assert plan._compiled is compiled
    assert_identical(first, second)


def test_nvm_and_mixed_dynamic_static_interleaving():
    plan = Plan("mix")
    for i in range(3):
        plan.add(
            Phase(
                f"dyn{i}",
                [
                    Flow("a", 8, 1.0 * GB, {"ddr": 1.0}, float(2 * GiB)),
                    Flow("b", 8, 2.0 * GB, {"mcdram": 1.0}, float(GiB)),
                ],
            )
        )
        plan.add(
            Phase(
                f"st{i}.0",
                [Flow("c", 16, 0.5 * GB, {"nvm": 1.0, "ddr": 1.0}, float(MiB))],
                static_rates=True,
            )
        )
        plan.add(
            Phase(
                f"st{i}.1",
                [Flow("c", 16, 0.5 * GB, {"nvm": 1.0, "ddr": 1.0}, float(3 * MiB))],
                static_rates=True,
            )
        )
    fast, fast_res, _, ref_res = run_both(plan)
    assert_identical(fast_res, ref_res)
    assert fast.batched_groups == 3
