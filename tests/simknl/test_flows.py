"""Unit and property tests for the max-min fair bandwidth allocator."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanError
from repro.simknl.flows import Flow, Resource, aggregate_rate, allocate_rates
from repro.units import GB


def _res(**caps: float) -> dict[str, Resource]:
    return {name: Resource(name=name, capacity=cap) for name, cap in caps.items()}


class TestResource:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(PlanError):
            Resource(name="ddr", capacity=0.0)
        with pytest.raises(PlanError):
            Resource(name="ddr", capacity=-1.0)

    def test_rejects_empty_name(self):
        with pytest.raises(PlanError):
            Resource(name="", capacity=1.0)

    def test_infinite_capacity_allowed(self):
        r = Resource(name="x", capacity=math.inf)
        assert math.isinf(r.capacity)


class TestFlowValidation:
    def test_rejects_negative_threads(self):
        with pytest.raises(PlanError):
            Flow("f", -1, 1.0, {"r": 1.0}, 1.0)

    def test_rejects_negative_rate(self):
        with pytest.raises(PlanError):
            Flow("f", 1, -1.0, {"r": 1.0}, 1.0)

    def test_rejects_negative_bytes(self):
        with pytest.raises(PlanError):
            Flow("f", 1, 1.0, {"r": 1.0}, -1.0)

    def test_rejects_negative_multiplier(self):
        with pytest.raises(PlanError):
            Flow("f", 1, 1.0, {"r": -0.5}, 1.0)

    def test_rate_cap(self):
        f = Flow("f", 4, 2.5, {"r": 1.0}, 10.0)
        assert f.rate_cap == 10.0

    def test_bytes_remaining_and_finished(self):
        f = Flow("f", 1, 1.0, {"r": 1.0}, 10.0)
        assert f.bytes_remaining == 10.0
        assert not f.finished
        f.bytes_done = 10.0
        assert f.finished


class TestSingleFlow:
    def test_cap_limited(self):
        """One pool below saturation runs at threads * per-thread rate."""
        res = _res(ddr=90 * GB)
        f = Flow("copy", 10, 4.8 * GB, {"ddr": 1.0}, 1.0)
        rates = allocate_rates([f], res)
        assert rates[id(f)] == pytest.approx(48 * GB)

    def test_resource_limited(self):
        """Eq. 3 second branch: saturated DDR caps the aggregate."""
        res = _res(ddr=90 * GB)
        f = Flow("copy", 32, 4.8 * GB, {"ddr": 1.0}, 1.0)
        rates = allocate_rates([f], res)
        assert rates[id(f)] == pytest.approx(90 * GB)

    def test_zero_thread_flow_gets_zero(self):
        res = _res(ddr=90 * GB)
        f = Flow("copy", 0, 4.8 * GB, {"ddr": 1.0}, 1.0)
        assert allocate_rates([f], res)[id(f)] == 0.0

    def test_unknown_resource_raises(self):
        res = _res(ddr=90 * GB)
        f = Flow("copy", 1, 1.0, {"hbm": 1.0}, 1.0)
        with pytest.raises(PlanError):
            allocate_rates([f], res)

    def test_multiplier_scales_consumption(self):
        """A flow using a resource at 2x saturates it at half the rate."""
        res = _res(ddr=90 * GB)
        f = Flow("rmw", 100, 4.8 * GB, {"ddr": 2.0}, 1.0)
        rates = allocate_rates([f], res)
        assert rates[id(f)] == pytest.approx(45 * GB)

    def test_flow_through_two_resources_limited_by_tighter(self):
        res = _res(ddr=90 * GB, mcdram=400 * GB)
        f = Flow("copy", 64, 4.8 * GB, {"ddr": 1.0, "mcdram": 1.0}, 1.0)
        rates = allocate_rates([f], res)
        assert rates[id(f)] == pytest.approx(90 * GB)


class TestTwoPools:
    """The paper's copy + compute contention structure (Eq. 5)."""

    def test_compute_gets_mcdram_remainder(self):
        """Copy capped by DDR; compute gets MCDRAM minus copy share."""
        res = _res(ddr=90 * GB, mcdram=400 * GB)
        copy = Flow("copy", 32, 4.8 * GB, {"ddr": 1.0, "mcdram": 1.0}, 1.0)
        comp = Flow("comp", 200, 6.78 * GB, {"mcdram": 1.0}, 1.0)
        rates = allocate_rates([copy, comp], res)
        assert rates[id(copy)] == pytest.approx(90 * GB)
        assert rates[id(comp)] == pytest.approx(310 * GB)

    def test_compute_unconstrained_when_total_fits(self):
        """Eq. 5 first branch: no saturation, both pools run at p*S."""
        res = _res(ddr=90 * GB, mcdram=400 * GB)
        copy = Flow("copy", 8, 4.8 * GB, {"ddr": 1.0, "mcdram": 1.0}, 1.0)
        comp = Flow("comp", 40, 6.78 * GB, {"mcdram": 1.0}, 1.0)
        rates = allocate_rates([copy, comp], res)
        assert rates[id(copy)] == pytest.approx(8 * 4.8 * GB)
        assert rates[id(comp)] == pytest.approx(40 * 6.78 * GB)

    def test_fair_split_when_both_unbounded_by_caps(self):
        """Two symmetric pools on one saturated resource split evenly."""
        res = _res(mcdram=400 * GB)
        a = Flow("a", 1000, 1 * GB, {"mcdram": 1.0}, 1.0)
        b = Flow("b", 1000, 1 * GB, {"mcdram": 1.0}, 1.0)
        rates = allocate_rates([a, b], res)
        assert rates[id(a)] == pytest.approx(200 * GB)
        assert rates[id(b)] == pytest.approx(200 * GB)

    def test_maxmin_prefers_small_demand_flow(self):
        """A capped small flow gets its cap; the rest goes to the big one."""
        res = _res(mcdram=400 * GB)
        small = Flow("small", 1, 10 * GB, {"mcdram": 1.0}, 1.0)
        big = Flow("big", 1000, 1 * GB, {"mcdram": 1.0}, 1.0)
        rates = allocate_rates([small, big], res)
        assert rates[id(small)] == pytest.approx(10 * GB)
        assert rates[id(big)] == pytest.approx(390 * GB)


class TestAggregateRate:
    def test_below_saturation(self):
        assert aggregate_rate(10, 4.8, 90.0) == pytest.approx(48.0)

    def test_above_saturation(self):
        assert aggregate_rate(32, 4.8, 90.0) == pytest.approx(90.0)

    def test_exact_saturation_boundary(self):
        assert aggregate_rate(5, 18.0, 90.0) == pytest.approx(90.0)

    def test_negative_threads_raises(self):
        with pytest.raises(PlanError):
            aggregate_rate(-1, 4.8, 90.0)


# ---- property-based tests ------------------------------------------------

flow_strategy = st.builds(
    Flow,
    name=st.just("f"),
    threads=st.integers(min_value=0, max_value=300),
    per_thread_rate=st.floats(min_value=0.0, max_value=20 * GB),
    resources=st.dictionaries(
        st.sampled_from(["ddr", "mcdram", "mesh"]),
        st.floats(min_value=0.1, max_value=3.0),
        min_size=1,
        max_size=3,
    ),
    bytes_total=st.floats(min_value=0.0, max_value=100 * GB),
)

resources_strategy = st.fixed_dictionaries(
    {
        "ddr": st.floats(min_value=1 * GB, max_value=200 * GB).map(
            lambda c: Resource("ddr", c)
        ),
        "mcdram": st.floats(min_value=1 * GB, max_value=800 * GB).map(
            lambda c: Resource("mcdram", c)
        ),
        "mesh": st.floats(min_value=1 * GB, max_value=1000 * GB).map(
            lambda c: Resource("mesh", c)
        ),
    }
)


@settings(max_examples=200, deadline=None)
@given(flows=st.lists(flow_strategy, min_size=1, max_size=8), res=resources_strategy)
def test_allocation_never_exceeds_capacity(flows, res):
    """No resource is driven past its capacity (within tolerance)."""
    rates = allocate_rates(flows, res)
    for name, r in res.items():
        used = sum(
            rates[id(f)] * f.resources.get(name, 0.0)
            for f in flows
            if name in f.resources
        )
        assert used <= r.capacity * (1 + 1e-6)


@settings(max_examples=200, deadline=None)
@given(flows=st.lists(flow_strategy, min_size=1, max_size=8), res=resources_strategy)
def test_allocation_never_exceeds_flow_cap(flows, res):
    rates = allocate_rates(flows, res)
    for f in flows:
        assert rates[id(f)] <= f.rate_cap * (1 + 1e-6)


@settings(max_examples=200, deadline=None)
@given(flows=st.lists(flow_strategy, min_size=1, max_size=8), res=resources_strategy)
def test_allocation_is_work_conserving(flows, res):
    """Every flow is either at its cap or on a saturated resource."""
    rates = allocate_rates(flows, res)
    for f in flows:
        if f.rate_cap == 0:
            assert rates[id(f)] == 0.0
            continue
        at_cap = rates[id(f)] >= f.rate_cap * (1 - 1e-6)
        on_saturated = False
        for name, mult in f.resources.items():
            if mult <= 0:
                continue
            used = sum(
                rates[id(g)] * g.resources.get(name, 0.0)
                for g in flows
                if name in g.resources
            )
            if used >= res[name].capacity * (1 - 1e-6):
                on_saturated = True
        assert at_cap or on_saturated


@settings(max_examples=100, deadline=None)
@given(
    threads=st.integers(min_value=1, max_value=272),
    rate=st.floats(min_value=0.1 * GB, max_value=10 * GB),
    cap=st.floats(min_value=1 * GB, max_value=500 * GB),
)
def test_single_flow_matches_closed_form(threads, rate, cap):
    """The allocator degenerates to Eq. 3 for a single pool."""
    res = {"d": Resource("d", cap)}
    f = Flow("f", threads, rate, {"d": 1.0}, 1.0)
    rates = allocate_rates([f], res)
    assert rates[id(f)] == pytest.approx(aggregate_rate(threads, rate, cap))


@settings(max_examples=100, deadline=None)
@given(
    t1=st.integers(min_value=1, max_value=150),
    t2=st.integers(min_value=1, max_value=150),
)
def test_adding_threads_never_decreases_own_rate(t1, t2):
    """Monotonicity: a pool with more threads gets at least as much."""
    res = _res(ddr=90 * GB, mcdram=400 * GB)
    lo, hi = sorted((t1, t2))
    f_lo = Flow("f", lo, 4.8 * GB, {"ddr": 1.0, "mcdram": 1.0}, 1.0)
    f_hi = Flow("f", hi, 4.8 * GB, {"ddr": 1.0, "mcdram": 1.0}, 1.0)
    r_lo = allocate_rates([f_lo], res)[id(f_lo)]
    r_hi = allocate_rates([f_hi], res)[id(f_hi)]
    assert r_hi >= r_lo * (1 - 1e-9)


class TestSignatureCache:
    """The structural signature is computed lazily, cached on the
    instance, and invalidated when a signature field mutates."""

    def _flow(self) -> Flow:
        return Flow("f", 8, 4.8 * GB, {"ddr": 1.0, "mcdram": 0.5}, 1.0)

    def test_cached_object_is_reused(self):
        f = self._flow()
        assert f.signature is f.signature

    def test_value_matches_definition(self):
        f = self._flow()
        assert f.signature == (
            8,
            4.8 * GB,
            (("ddr", 1.0), ("mcdram", 0.5)),
        )

    def test_mutating_signature_fields_invalidates(self):
        f = self._flow()
        before = f.signature
        f.threads = 16
        assert f.signature != before
        assert f.signature[0] == 16
        f.per_thread_rate = 1.0 * GB
        assert f.signature[1] == 1.0 * GB
        f.resources = {"ddr": 2.0}
        assert f.signature[2] == (("ddr", 2.0),)

    def test_bytes_total_mutation_keeps_signature(self):
        f = self._flow()
        sig = f.signature
        f.bytes_total = 123.0
        assert f.signature is sig  # bytes are not structural

    def test_equal_structures_share_signature_value(self):
        a = Flow("a", 8, 4.8 * GB, {"mcdram": 0.5, "ddr": 1.0}, 1.0)
        b = Flow("b", 8, 4.8 * GB, {"ddr": 1.0, "mcdram": 0.5}, 99.0)
        assert a.signature == b.signature  # name/bytes/dict-order free

    def test_pickle_and_deepcopy_round_trip(self):
        import copy
        import pickle

        f = self._flow()
        _ = f.signature
        for clone in (pickle.loads(pickle.dumps(f)), copy.deepcopy(f)):
            assert clone.signature == f.signature
            clone.threads = 99
            assert clone.signature != f.signature
