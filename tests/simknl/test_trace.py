"""Tests for trace/utilization/Gantt/Chrome-trace exports."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.simknl.engine import Engine, Phase, Plan
from repro.simknl.flows import Flow, Resource
from repro.simknl.trace import (
    phase_utilizations,
    render_gantt,
    to_chrome_trace,
)
from repro.units import GB


@pytest.fixture
def executed():
    resources = [Resource("ddr", 90 * GB), Resource("mcdram", 400 * GB)]
    plan = Plan(
        "p",
        [
            Phase(
                "step0",
                [Flow("copy", 32, 4.8 * GB, {"ddr": 1.0, "mcdram": 1.0}, 9 * GB)],
            ),
            Phase(
                "step1",
                [
                    Flow("copy", 32, 4.8 * GB, {"ddr": 1.0, "mcdram": 1.0}, 9 * GB),
                    Flow("comp", 200, 6.78 * GB, {"mcdram": 1.0}, 40 * GB),
                ],
            ),
        ],
    )
    result = Engine(resources).run(plan)
    return plan, result


class TestUtilization:
    def test_phase_count(self, executed):
        plan, result = executed
        utils = phase_utilizations(
            plan, result, {"ddr": 90 * GB, "mcdram": 400 * GB}
        )
        assert len(utils) == 2

    def test_saturated_device_full_utilization(self, executed):
        plan, result = executed
        utils = phase_utilizations(
            plan, result, {"ddr": 90 * GB, "mcdram": 400 * GB}
        )
        # Step 0: 32 copy threads saturate DDR.
        assert utils[0].device_utilization["ddr"] == pytest.approx(1.0)
        assert utils[0].device_utilization["mcdram"] < 0.5

    def test_timeline_positions(self, executed):
        plan, result = executed
        utils = phase_utilizations(
            plan, result, {"ddr": 90 * GB, "mcdram": 400 * GB}
        )
        assert utils[0].start == 0.0
        assert utils[1].start == pytest.approx(utils[0].duration)

    def test_bytes_per_device(self, executed):
        plan, result = executed
        utils = phase_utilizations(
            plan, result, {"ddr": 90 * GB, "mcdram": 400 * GB}
        )
        assert utils[1].device_bytes["mcdram"] == pytest.approx(49 * GB)

    def test_mismatched_plan_rejected(self, executed):
        plan, result = executed
        bad = Plan("q", plan.phases[:1])
        with pytest.raises(ConfigError):
            phase_utilizations(bad, result, {})


class TestGantt:
    def test_contains_all_phases(self, executed):
        plan, result = executed
        text = render_gantt(plan, result)
        assert "step0" in text
        assert "step1" in text
        assert "#" in text

    def test_zero_run_rejected(self, executed):
        plan, result = executed
        from repro.simknl.engine import RunResult

        empty = RunResult(elapsed=0.0, traffic={}, phase_times=[])
        with pytest.raises(ConfigError):
            render_gantt(plan, empty)


class TestChromeTrace:
    def test_valid_json_with_events(self, executed):
        plan, result = executed
        data = json.loads(to_chrome_trace(plan, result))
        events = data["traceEvents"]
        assert len(events) == 3
        assert all(e["ph"] == "X" for e in events)
        assert events[0]["ts"] == 0.0

    def test_durations_match_phases(self, executed):
        plan, result = executed
        data = json.loads(to_chrome_trace(plan, result))
        durs = {e["args"]["phase"]: e["dur"] for e in data["traceEvents"]}
        assert durs["step0"] == pytest.approx(result.phase_times[0] * 1e6)
