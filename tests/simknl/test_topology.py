"""Tests for the tile/mesh topology model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.simknl.topology import KNLTopology, Tile


class TestDefaults:
    def test_knl_7250_counts(self):
        t = KNLTopology()
        assert t.num_cores == 68
        assert t.num_threads == 272
        assert len(t.tiles) == 34

    def test_tiles_have_two_cores(self):
        t = KNLTopology()
        for tile in t.tiles:
            assert len(tile.cores) == 2

    def test_cores_are_dense_and_unique(self):
        t = KNLTopology()
        all_cores = [c for tile in t.tiles for c in tile.cores]
        assert sorted(all_cores) == list(range(68))

    def test_tile_positions_within_grid(self):
        t = KNLTopology()
        for tile in t.tiles:
            r, c = tile.position
            assert 0 <= r < t.rows
            assert 0 <= c < t.cols


class TestValidation:
    def test_rejects_bad_dimensions(self):
        with pytest.raises(ConfigError):
            KNLTopology(rows=0)
        with pytest.raises(ConfigError):
            KNLTopology(cols=-1)

    def test_rejects_too_many_active_tiles(self):
        with pytest.raises(ConfigError):
            KNLTopology(rows=2, cols=2, active_tiles=5)

    def test_rejects_zero_active_tiles(self):
        with pytest.raises(ConfigError):
            KNLTopology(active_tiles=0)

    def test_rejects_bad_mesh_bandwidth(self):
        with pytest.raises(ConfigError):
            KNLTopology(mesh_bandwidth=0)


class TestLookup:
    def test_tile_of_core(self):
        t = KNLTopology()
        assert t.tile_of_core(0).tile_id == 0
        assert t.tile_of_core(1).tile_id == 0
        assert t.tile_of_core(2).tile_id == 1
        assert t.tile_of_core(67).tile_id == 33

    def test_tile_of_core_out_of_range(self):
        t = KNLTopology()
        with pytest.raises(ConfigError):
            t.tile_of_core(68)
        with pytest.raises(ConfigError):
            t.tile_of_core(-1)

    def test_core_of_thread_compact(self):
        t = KNLTopology()
        assert t.core_of_thread(0) == 0
        assert t.core_of_thread(3) == 0
        assert t.core_of_thread(4) == 1
        assert t.core_of_thread(271) == 67

    def test_core_of_thread_out_of_range(self):
        t = KNLTopology()
        with pytest.raises(ConfigError):
            t.core_of_thread(272)


class TestMesh:
    def test_distance_self_is_zero(self):
        t = KNLTopology()
        assert t.mesh_distance(0, 0) == 0

    def test_distance_is_manhattan_on_grid(self):
        t = KNLTopology()
        a, b = t.tiles[0], t.tiles[10]
        expected = abs(a.position[0] - b.position[0]) + abs(
            a.position[1] - b.position[1]
        )
        assert t.mesh_distance(0, 10) == expected

    def test_distance_symmetric(self):
        t = KNLTopology()
        assert t.mesh_distance(3, 20) == t.mesh_distance(20, 3)

    def test_mean_distance_positive(self):
        t = KNLTopology()
        assert t.mean_mesh_distance() > 0

    def test_mean_distance_single_tile(self):
        t = KNLTopology(rows=1, cols=1, active_tiles=1)
        assert t.mean_mesh_distance() == 0.0

    def test_mesh_resource(self):
        t = KNLTopology(mesh_bandwidth=123.0)
        r = t.mesh_resource()
        assert r.name == "mesh"
        assert r.capacity == 123.0


class TestTile:
    def test_default_l2(self):
        tile = Tile(tile_id=0, position=(0, 0), cores=(0, 1))
        assert tile.l2_bytes == 1 << 20


class TestClusterModes:
    def test_default_is_quadrant(self):
        from repro.simknl.topology import ClusterMode

        assert KNLTopology().cluster_mode is ClusterMode.QUADRANT

    def test_quadrants_partition_tiles(self):
        t = KNLTopology()
        quads = [t.quadrant_of_tile(i) for i in range(len(t.tiles))]
        assert set(quads) == {0, 1, 2, 3}
        # Each quadrant holds a reasonable share of the 34 tiles.
        for q in range(4):
            assert 4 <= quads.count(q) <= 14

    def test_quadrant_of_tile_range(self):
        t = KNLTopology()
        with pytest.raises(ConfigError):
            t.quadrant_of_tile(99)

    def test_all_to_all_costs_more_hops(self):
        from repro.simknl.topology import ClusterMode

        a2a = KNLTopology(cluster_mode=ClusterMode.ALL_TO_ALL)
        quad = KNLTopology(cluster_mode=ClusterMode.QUADRANT)
        for tile in (0, 10, 33):
            assert a2a.memory_access_hops(tile) > quad.memory_access_hops(tile)

    def test_snc4_matches_quadrant_hops(self):
        from repro.simknl.topology import ClusterMode

        snc = KNLTopology(cluster_mode=ClusterMode.SNC4)
        quad = KNLTopology(cluster_mode=ClusterMode.QUADRANT)
        assert snc.memory_access_hops(0) == quad.memory_access_hops(0)

    def test_snc4_local_bandwidth_share(self):
        from repro.simknl.topology import ClusterMode

        assert KNLTopology(
            cluster_mode=ClusterMode.SNC4
        ).snc_local_bandwidth_share() == 0.25
        assert KNLTopology(
            cluster_mode=ClusterMode.QUADRANT
        ).snc_local_bandwidth_share() == 1.0

    def test_hops_positive(self):
        t = KNLTopology()
        assert t.memory_access_hops(5) > 0
