"""Property tests holding the vectorized hot paths to their scalar
reference implementations.

The PR that vectorized :meth:`DirectMappedCache.access_range`, memoized
the engine's water-filling solve, and added galloping to
:class:`LoserTree` kept the scalar/unmemoized paths alive precisely so
these tests can pin the optimized paths to them bit-for-bit.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simknl.cache import DirectMappedCache
from repro.simknl.engine import Engine, Phase, Plan
from repro.simknl.flows import Flow, Resource
from repro.telemetry import runtime as _tm
from repro.telemetry.names import METRICS
from repro.units import GB

# ---- cache: vectorized access_range == scalar access loop ----------------

LINE = 64

ops_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1 << 14),  # start
        st.integers(min_value=0, max_value=1 << 12),  # nbytes
        st.booleans(),  # write
    ),
    min_size=1,
    max_size=12,
)


def _scalar_range(cache: DirectMappedCache, start: int, nbytes: int, write: bool):
    """The per-line reference loop access_range replaces."""
    if nbytes <= 0:
        return
    first = start // LINE
    last = (start + nbytes - 1) // LINE
    for line in range(first, last + 1):
        cache.access(line * LINE, write=write)


def _state(cache: DirectMappedCache):
    s = cache.stats
    return (
        s.hits,
        s.misses,
        s.cold_misses,
        s.conflict_misses,
        s.capacity_misses,
        s.writebacks,
        cache.traffic(),
        tuple(cache._tags.tolist()),
        tuple(cache._dirty.tolist()),
    )


@settings(max_examples=200, deadline=None)
@given(ops=ops_strategy, capacity_lines=st.integers(min_value=1, max_value=32))
def test_access_range_matches_scalar_loop(ops, capacity_lines):
    fast = DirectMappedCache(capacity=capacity_lines * LINE, line_size=LINE)
    ref = DirectMappedCache(capacity=capacity_lines * LINE, line_size=LINE)
    for start, nbytes, write in ops:
        fast.access_range(start, nbytes, write=write)
        _scalar_range(ref, start, nbytes, write)
    assert _state(fast) == _state(ref)


@settings(max_examples=100, deadline=None)
@given(ops=ops_strategy)
def test_access_range_with_flush_matches(ops):
    fast = DirectMappedCache(capacity=8 * LINE, line_size=LINE)
    ref = DirectMappedCache(capacity=8 * LINE, line_size=LINE)
    for i, (start, nbytes, write) in enumerate(ops):
        fast.access_range(start, nbytes, write=write)
        _scalar_range(ref, start, nbytes, write)
        if i % 3 == 2:
            fast.flush()
            ref.flush()
    assert _state(fast) == _state(ref)


# ---- telemetry: one batched inc() == many scalar inc()s ------------------


def _counter_totals(tel):
    totals = {}
    for name in tel.metrics:
        if METRICS[name].kind != "counter":
            continue
        totals[name] = sum(
            value for _, value in tel.metrics.counter(name).series()
        )
    return totals


def test_batched_emission_totals_match_scalar():
    """access_range's single inc(n) calls must leave the same counter
    totals as per-access emission."""
    with _tm.telemetry_session() as tel_fast:
        fast = DirectMappedCache(capacity=8 * LINE, line_size=LINE)
        fast.access_range(0, 32 * LINE, write=True)
        fast.access_range(0, 32 * LINE, write=False)
        fast.flush()
        fast_totals = _counter_totals(tel_fast)
    with _tm.telemetry_session() as tel_ref:
        ref = DirectMappedCache(capacity=8 * LINE, line_size=LINE)
        _scalar_range(ref, 0, 32 * LINE, True)
        _scalar_range(ref, 0, 32 * LINE, False)
        ref.flush()
        ref_totals = _counter_totals(tel_ref)
    assert fast_totals == ref_totals
    assert fast_totals, "expected cache counters to be emitted"
    assert fast.stats == ref.stats


def test_handles_rebound_across_sessions():
    """A cache built inside one session must not leak counts into a
    later session through stale hoisted handles."""
    cache = DirectMappedCache(capacity=4 * LINE, line_size=LINE)
    with _tm.telemetry_session() as first:
        cache.access_range(0, 4 * LINE)
        first_totals = _counter_totals(first)
    with _tm.telemetry_session() as second:
        cache.access_range(0, 4 * LINE)
        second_totals = _counter_totals(second)
    # First sweep cold-misses every line; the second sweep hits the
    # now-resident lines, and its counts must land in the second
    # session's registry, not the first's stale handles.
    assert first_totals["cache.misses_total"] == 4
    assert second_totals["cache.hits_total"] == 4
    assert second_totals["cache.misses_total"] == 0
    assert _counter_totals(first) == first_totals  # untouched afterwards


# ---- engine: memoized allocation == reference allocation -----------------


def _random_plan(rng) -> Plan:
    plan = Plan("random")
    for _ in range(rng.integers(1, 4)):
        flows = []
        for i in range(rng.integers(1, 4)):
            res = {"ddr": 1.0}
            if rng.random() < 0.5:
                res["mcdram"] = float(rng.choice([0.5, 1.0, 2.0]))
            flows.append(
                Flow(
                    f"f{i}",
                    int(rng.integers(1, 64)),
                    float(rng.choice([0.2, 1.0, 4.8])) * GB,
                    res,
                    float(rng.integers(1, 30)) * GB,
                )
            )
        plan.add(Phase(f"p{len(plan.phases)}", flows))
    return plan


def test_memoized_engine_matches_reference():
    resources = [
        Resource("ddr", 90 * GB),
        Resource("mcdram", 400 * GB),
    ]
    rng = np.random.default_rng(123)
    for trial in range(60):
        seed = int(rng.integers(0, 2**31))
        memo = Engine(resources, memoize_rates=True).run(
            _random_plan(np.random.default_rng(seed))
        )
        ref = Engine(resources, memoize_rates=False).run(
            _random_plan(np.random.default_rng(seed))
        )
        assert memo.elapsed == ref.elapsed, trial
        assert memo.traffic == ref.traffic, trial
        assert memo.phase_times == ref.phase_times, trial


def test_memo_cache_reused_across_runs():
    resources = [Resource("ddr", 90 * GB)]
    eng = Engine(resources, memoize_rates=True)
    plan = Plan("memo").add(
        Phase("p", [Flow("f", 8, 1.0 * GB, {"ddr": 1.0}, 10 * GB)])
    )
    first = eng.run(plan)
    assert eng._rate_cache
    hits_before = len(eng._rate_cache)
    second = eng.run(plan)
    assert len(eng._rate_cache) == hits_before  # no new solves
    assert first.elapsed == second.elapsed


def test_degradation_invalidates_memo():
    resources = [Resource("ddr", 90 * GB)]
    eng = Engine(resources, memoize_rates=True)
    plan = Plan("degrade").add(
        Phase("p", [Flow("f", 256, 4.8 * GB, {"ddr": 1.0}, 90 * GB)])
    )
    base = eng.run(plan).elapsed
    assert eng.degrade_resource("ddr", 0.5)
    degraded = eng.run(plan).elapsed
    assert degraded > base * 1.5
    eng.restore_resource("ddr")
    assert eng.run(plan).elapsed == base
