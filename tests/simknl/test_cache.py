"""Tests for the line-granularity direct-mapped MCDRAM cache model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.simknl.cache import CacheStats, DirectMappedCache


class TestConstruction:
    def test_line_count(self):
        c = DirectMappedCache(capacity=1024, line_size=64)
        assert c.num_lines == 16
        assert c.usable_capacity == 1024

    def test_tag_overhead_shrinks_lines(self):
        c = DirectMappedCache(capacity=1024, line_size=64, tag_overhead=0.5)
        assert c.num_lines == 8
        assert c.usable_capacity == 512

    def test_rejects_capacity_below_line(self):
        with pytest.raises(ConfigError):
            DirectMappedCache(capacity=32, line_size=64)

    def test_rejects_bad_tag_overhead(self):
        with pytest.raises(ConfigError):
            DirectMappedCache(capacity=1024, tag_overhead=1.0)
        with pytest.raises(ConfigError):
            DirectMappedCache(capacity=1024, tag_overhead=-0.1)

    def test_rejects_bad_line_size(self):
        with pytest.raises(ConfigError):
            DirectMappedCache(capacity=1024, line_size=0)


class TestBasicBehaviour:
    def test_first_access_cold_misses(self):
        c = DirectMappedCache(capacity=1024)
        assert c.access(0) is False
        assert c.stats.cold_misses == 1

    def test_second_access_hits(self):
        c = DirectMappedCache(capacity=1024)
        c.access(0)
        assert c.access(0) is True
        assert c.stats.hits == 1

    def test_same_line_different_bytes_hit(self):
        c = DirectMappedCache(capacity=1024, line_size=64)
        c.access(0)
        assert c.access(63) is True

    def test_adjacent_line_misses(self):
        c = DirectMappedCache(capacity=1024, line_size=64)
        c.access(0)
        assert c.access(64) is False

    def test_direct_mapped_conflict(self):
        """Addresses capacity apart collide and evict each other."""
        c = DirectMappedCache(capacity=1024, line_size=64)
        c.access(0)
        c.access(1024)  # same set, different tag -> evicts line 0
        assert c.access(0) is False
        assert c.stats.conflict_misses == 1

    def test_negative_address_rejected(self):
        c = DirectMappedCache(capacity=1024)
        with pytest.raises(ConfigError):
            c.access(-1)


class TestMissClassification:
    def test_capacity_misses_when_working_set_exceeds(self):
        c = DirectMappedCache(capacity=1024, line_size=64)  # 16 lines
        c.access_range(0, 2048)  # 32 lines: all cold
        c.access_range(0, 2048)  # all re-misses, classified capacity
        assert c.stats.cold_misses == 32
        assert c.stats.capacity_misses == 32
        assert c.stats.conflict_misses == 0

    def test_conflict_vs_capacity(self):
        c = DirectMappedCache(capacity=1024, line_size=64)
        c.access(0)
        c.access(1024)
        c.access(0)  # conflict: only 2 distinct lines seen, fits
        assert c.stats.conflict_misses == 1
        assert c.stats.capacity_misses == 0


class TestWriteback:
    def test_clean_eviction_no_writeback(self):
        c = DirectMappedCache(capacity=1024, line_size=64)
        c.access(0, write=False)
        c.access(1024, write=False)
        assert c.stats.writebacks == 0

    def test_dirty_eviction_writes_back(self):
        c = DirectMappedCache(capacity=1024, line_size=64)
        c.access(0, write=True)
        c.access(1024, write=False)
        assert c.stats.writebacks == 1

    def test_write_hit_marks_dirty(self):
        c = DirectMappedCache(capacity=1024, line_size=64)
        c.access(0, write=False)
        c.access(0, write=True)  # hit, now dirty
        c.access(1024, write=False)
        assert c.stats.writebacks == 1

    def test_flush_writes_back_dirty_lines(self):
        c = DirectMappedCache(capacity=1024, line_size=64)
        c.access_range(0, 512, write=True)  # 8 dirty lines resident
        assert c.flush() == 8
        assert c.stats.writebacks == 8

    def test_flush_empties_cache(self):
        c = DirectMappedCache(capacity=1024, line_size=64)
        c.access(0)
        c.flush()
        c.access(0)
        # Second access after flush misses again (but not cold).
        assert c.stats.misses == 2


class TestRanges:
    def test_access_range_line_count(self):
        c = DirectMappedCache(capacity=4096, line_size=64)
        c.access_range(0, 1024)
        assert c.stats.accesses == 16

    def test_access_range_partial_lines(self):
        c = DirectMappedCache(capacity=4096, line_size=64)
        c.access_range(32, 64)  # straddles two lines
        assert c.stats.accesses == 2

    def test_empty_range_noop(self):
        c = DirectMappedCache(capacity=4096, line_size=64)
        c.access_range(0, 0)
        assert c.stats.accesses == 0

    def test_negative_range_rejected(self):
        c = DirectMappedCache(capacity=4096)
        with pytest.raises(ConfigError):
            c.access_range(0, -1)


class TestStatsAndTraffic:
    def test_hit_rate_empty(self):
        assert CacheStats().hit_rate == 0.0

    def test_hit_rate(self):
        c = DirectMappedCache(capacity=1024, line_size=64)
        c.access(0)
        c.access(0)
        c.access(0)
        assert c.stats.hit_rate == pytest.approx(2 / 3)

    def test_reset(self):
        c = DirectMappedCache(capacity=1024)
        c.access(0, write=True)
        c.reset()
        assert c.stats.accesses == 0
        assert c.access(0) is False
        assert c.stats.cold_misses == 1  # cold again after reset

    def test_traffic_accounting(self):
        c = DirectMappedCache(capacity=1024, line_size=64)
        c.access(0)          # miss: ddr 64, mcdram 128
        c.access(0)          # hit: mcdram 64
        ddr, mcdram = c.traffic()
        assert ddr == 64.0
        assert mcdram == 192.0

    def test_fitting_stream_reuses(self):
        """A working set that fits hits on every pass after the first."""
        c = DirectMappedCache(capacity=1024, line_size=64)
        c.access_range(0, 1024)
        first_misses = c.stats.misses
        c.access_range(0, 1024)
        c.access_range(0, 1024)
        assert c.stats.misses == first_misses
        assert c.stats.hits == 32


# ---- property-based ------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(
    addrs=st.lists(st.integers(min_value=0, max_value=10_000), max_size=200),
)
def test_hits_plus_misses_equals_accesses(addrs):
    c = DirectMappedCache(capacity=1024, line_size=64)
    for a in addrs:
        c.access(a)
    assert c.stats.hits + c.stats.misses == len(addrs)


@settings(max_examples=100, deadline=None)
@given(
    addrs=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10_000), st.booleans()
        ),
        max_size=200,
    ),
)
def test_writebacks_never_exceed_dirtying_installs(addrs):
    """Every writeback corresponds to a previously installed dirty line."""
    c = DirectMappedCache(capacity=512, line_size=64)
    for a, w in addrs:
        c.access(a, write=w)
    c.flush()
    writes = sum(1 for _, w in addrs if w)
    assert c.stats.writebacks <= writes


@settings(max_examples=100, deadline=None)
@given(
    addrs=st.lists(st.integers(min_value=0, max_value=2_000), max_size=300),
)
def test_larger_cache_never_misses_more(addrs):
    """Miss count is monotone non-increasing in capacity (LRU-free
    direct mapping preserves this for nested power-of-two caches)."""
    small = DirectMappedCache(capacity=512, line_size=64)
    big = DirectMappedCache(capacity=4096, line_size=64)
    for a in addrs:
        small.access(a)
        big.access(a)
    assert big.stats.misses <= small.stats.misses


@settings(max_examples=50, deadline=None)
@given(nlines=st.integers(min_value=1, max_value=64))
def test_distinct_first_touches_are_cold(nlines):
    c = DirectMappedCache(capacity=64 * 128, line_size=64)
    for i in range(nlines):
        c.access(i * 64)
    assert c.stats.cold_misses == nlines
    assert c.stats.conflict_misses == 0
