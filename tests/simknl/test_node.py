"""Tests for the assembled KNL node and its memory modes."""

from __future__ import annotations

import pytest

from repro.errors import CapacityError, ConfigError
from repro.simknl.engine import Phase, Plan
from repro.simknl.flows import Flow
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode
from repro.units import GB, GiB


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = KNLNodeConfig()
        assert cfg.cores == 68
        assert cfg.total_threads == 272
        assert cfg.ddr_bandwidth == 90 * GB
        assert cfg.mcdram_bandwidth == 400 * GB
        assert cfg.mcdram_capacity == 16 * GiB

    def test_rejects_bad_cores(self):
        with pytest.raises(ConfigError):
            KNLNodeConfig(cores=0)

    def test_rejects_bad_hybrid_fraction(self):
        with pytest.raises(ConfigError):
            KNLNodeConfig(mode=MemoryMode.HYBRID, hybrid_cache_fraction=0.0)
        with pytest.raises(ConfigError):
            KNLNodeConfig(mode=MemoryMode.HYBRID, hybrid_cache_fraction=1.0)

    def test_with_mode(self):
        cfg = KNLNodeConfig(mode=MemoryMode.CACHE)
        flat = cfg.with_mode(MemoryMode.FLAT)
        assert flat.mode is MemoryMode.FLAT
        assert cfg.mode is MemoryMode.CACHE  # original untouched

    def test_with_mode_hybrid_fraction(self):
        cfg = KNLNodeConfig().with_mode(MemoryMode.HYBRID, 0.25)
        assert cfg.hybrid_cache_fraction == 0.25


class TestModes:
    def test_flat_mode_all_addressable(self):
        n = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))
        assert n.addressable_mcdram == 16 * GiB
        assert n.cache_capacity == 0
        assert n.cache_model is None

    def test_cache_mode_nothing_addressable(self):
        n = KNLNode(KNLNodeConfig(mode=MemoryMode.CACHE))
        assert n.addressable_mcdram == 0
        assert n.cache_capacity == 16 * GiB
        assert n.cache_model is not None

    def test_hybrid_mode_splits(self):
        n = KNLNode(
            KNLNodeConfig(mode=MemoryMode.HYBRID, hybrid_cache_fraction=0.25)
        )
        assert n.cache_capacity == pytest.approx(4 * GiB)
        assert n.addressable_mcdram == pytest.approx(12 * GiB)
        assert n.cache_model is not None

    def test_tag_overhead_shrinks_cache_model(self):
        n = KNLNode(KNLNodeConfig(mode=MemoryMode.CACHE, tag_overhead=0.03))
        assert n.cache_model.usable_capacity < 16 * GiB


class TestDevices:
    def test_device_names(self):
        n = KNLNode()
        assert n.ddr.name == "ddr"
        assert n.mcdram.name == "mcdram"

    def test_resources_default(self):
        n = KNLNode()
        names = {r.name for r in n.resources()}
        assert names == {"ddr", "mcdram"}

    def test_resources_with_mesh(self):
        n = KNLNode(KNLNodeConfig(model_mesh=True))
        names = {r.name for r in n.resources()}
        assert names == {"ddr", "mcdram", "mesh"}

    def test_capacity_reservation(self):
        n = KNLNode()
        n.mcdram.reserve(8 * GiB)
        assert n.mcdram.free == pytest.approx(8 * GiB)
        n.mcdram.release(8 * GiB)
        assert n.mcdram.free == pytest.approx(16 * GiB)

    def test_over_reservation_raises(self):
        n = KNLNode()
        with pytest.raises(CapacityError):
            n.mcdram.reserve(17 * GiB)

    def test_over_release_raises(self):
        n = KNLNode()
        with pytest.raises(CapacityError):
            n.mcdram.release(1.0)

    def test_per_thread_rate_bound_positive(self):
        n = KNLNode()
        assert n.ddr.per_thread_rate_bound() > 0
        # Little's law: 10 lines * 64B / 130ns ~ 4.9 GB/s, consistent
        # with the paper's measured S_copy of 4.8 GB/s.
        assert n.ddr.per_thread_rate_bound(10) == pytest.approx(
            10 * 64 / 130e-9
        )


class TestTopologyConsistency:
    def test_topology_thread_count_matches_config(self):
        n = KNLNode()
        assert n.topology.num_threads == n.total_threads

    def test_small_node(self):
        n = KNLNode(KNLNodeConfig(cores=4, threads_per_core=2))
        assert n.topology.num_cores >= 4
        assert n.total_threads == 8


class TestExecution:
    def test_run_plan(self):
        n = KNLNode()
        f = Flow("copy", 10, 4.8 * GB, {"ddr": 1.0, "mcdram": 1.0}, 4.8 * GB)
        r = n.run(Plan("p", [Phase("s", [f])]))
        assert r.elapsed == pytest.approx(0.1)

    def test_engine_fresh_each_call(self):
        n = KNLNode()
        assert n.engine() is not n.engine()

    def test_repr_mentions_mode(self):
        assert "cache" in repr(KNLNode())


class TestDeviceFaults:
    def test_degrade_and_restore_bandwidth(self):
        node = KNLNode()
        node.mcdram.degrade_bandwidth(0.5)
        assert node.mcdram.bandwidth == pytest.approx(200 * GB)
        # Degradations are absolute against nominal, not cumulative.
        node.mcdram.degrade_bandwidth(0.25)
        assert node.mcdram.bandwidth == pytest.approx(300 * GB)
        node.mcdram.restore_bandwidth()
        assert node.mcdram.bandwidth == pytest.approx(400 * GB)

    def test_full_degradation_stays_positive(self):
        node = KNLNode()
        node.mcdram.degrade_bandwidth(1.0)
        assert node.mcdram.bandwidth > 0

    def test_channel_failures_accumulate(self):
        node = KNLNode()
        channels = node.mcdram.channels
        node.mcdram.fail_channel()
        node.mcdram.fail_channel()
        assert node.mcdram.failed_channels == 2
        expected = 400 * GB * (1 - 2 / channels)
        assert node.mcdram.bandwidth == pytest.approx(expected)

    def test_capacity_loss_clamps_to_allocated(self):
        node = KNLNode()
        node.mcdram.reserve(10 * GiB)
        lost = node.mcdram.lose_capacity(16 * GiB)
        assert lost == pytest.approx(6 * GiB)
        assert node.mcdram.capacity == pytest.approx(10 * GiB)
        node.mcdram.restore_capacity()
        assert node.mcdram.capacity == pytest.approx(16 * GiB)

    def test_node_applies_fault_events(self):
        from repro.faults import FaultEvent, FaultKind

        node = KNLNode()
        assert node.apply_fault(
            FaultEvent(FaultKind.BANDWIDTH_DEGRADE, "mcdram", 0.5, 0)
        )
        assert node.mcdram.bandwidth == pytest.approx(200 * GB)
        assert node.apply_fault(
            FaultEvent(FaultKind.CAPACITY_LOSS, "ddr", 0.25, 0)
        )
        assert node.ddr.capacity == pytest.approx(72 * GiB)
        # Unknown targets/kinds are not this node's to handle.
        assert not node.apply_fault(
            FaultEvent(FaultKind.BANDWIDTH_DEGRADE, "disk", 0.5, 0)
        )
        assert not node.apply_fault(
            FaultEvent(FaultKind.CHUNK_FAIL, "mcdram", 0.5, 0)
        )

    def test_device_lookup(self):
        node = KNLNode()
        assert node.device("ddr") is node.ddr
        assert node.device("mcdram") is node.mcdram
        assert node.device("nvm") is None
