"""Property tests pinning cross-cell tensor batching to per-cell runs.

``Engine.run_batch`` stacks N structurally identical plans into one
bytes tensor and evaluates the whole sweep with vectorized NumPy ops.
These tests hold it bit-identical — ``elapsed``, ``phase_times``,
``traffic`` — to ``[engine.run(p) for p in plans]`` on a reference
engine, across the three-level pipeline strategies (static ``single``
and dynamic ``double``), odd cell counts, random mixed static/dynamic
structures, and assert the documented fallbacks (faults, telemetry,
starved allocations, zero-byte cells) really do bypass the tensor path.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernel import StreamKernel
from repro.core.multilevel import ThreeLevelConfig, ThreeLevelPipeline
from repro.errors import PlanError, SimulationError
from repro.faults import FaultPlan
from repro.simknl.batch import (
    PlanBatch,
    PlanBatchSpec,
    evaluate_plan_batch,
    lower_plans,
    run_batch,
    run_lowered,
)
from repro.simknl.engine import Engine, Phase, Plan
from repro.simknl.flows import Flow, Resource
from repro.simknl.node import KNLNode, KNLNodeConfig, MemoryMode
from repro.telemetry import runtime as _tm
from repro.units import GB, GiB

RESOURCES = [
    Resource("ddr", 90 * GB),
    Resource("mcdram", 400 * GB),
    Resource("nvm", 10 * GB),
]


def fresh_engine(**kw) -> Engine:
    return Engine(RESOURCES, record_events=False, **kw)


def assert_identical(a, b) -> None:
    assert a.elapsed == b.elapsed
    assert a.phase_times == b.phase_times
    assert a.traffic == b.traffic


def reference_runs(plans) -> list:
    ref = Engine(RESOURCES, record_events=False, batch_phases=False)
    return [ref.run(p) for p in plans]


# ---- pipeline strategies across cells -------------------------------------


def pipeline_plans(strategy: str, data_sizes) -> tuple[Engine, list[Plan]]:
    """Structurally identical three-level plans differing only in the
    ragged final chunks, plus an engine over the pipeline's resources."""
    plans = []
    engine = None
    for nbytes in data_sizes:
        node = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))
        pipe = ThreeLevelPipeline(
            node, StreamKernel(passes=3), ThreeLevelConfig(data_bytes=nbytes)
        )
        plans.append(pipe.build_plan(strategy))
        if engine is None:
            engine = Engine(
                [*node.resources(), pipe.nvm.resource()], record_events=False
            )
    return engine, plans


@pytest.mark.parametrize("strategy", ["single", "double"])
@pytest.mark.parametrize("cells", [2, 3, 5])
def test_pipeline_strategies_bit_identical_across_cells(strategy, cells):
    # Shrink by whole elements: the final chunk goes ragged but chunk
    # counts — and hence plan structure — stay identical across cells.
    sizes = [int(20 * GiB) - 8 * i for i in range(cells)]
    engine, plans = pipeline_plans(strategy, sizes)
    results = run_batch(engine, plans)
    assert engine.batched_plans == cells
    refs = []
    for nbytes, plan in zip(sizes, plans):
        node = KNLNode(KNLNodeConfig(mode=MemoryMode.FLAT))
        pipe = ThreeLevelPipeline(
            node, StreamKernel(passes=3), ThreeLevelConfig(data_bytes=nbytes)
        )
        pipe._engine.batch_phases = False
        refs.append(pipe.run(strategy))
    for got, ref in zip(results, refs):
        assert_identical(got, ref)


def test_single_plan_takes_sequential_path():
    engine, plans = pipeline_plans("single", [int(20 * GiB)])
    results = run_batch(engine, plans)
    assert engine.batched_plans == 0
    ref_engine, ref_plans = pipeline_plans("single", [int(20 * GiB)])
    ref_engine.batch_phases = False
    assert_identical(results[0], ref_engine.run(ref_plans[0]))


# ---- random structures: batched == per-cell reference ----------------------

flow_strategy = st.tuples(
    st.integers(min_value=1, max_value=64),       # threads
    st.sampled_from([0.2, 1.0, 4.8]),             # per-thread rate (GB/s)
    st.sampled_from(["ddr", "mcdram", "nvm"]),    # extra resource
    st.integers(min_value=1, max_value=20),       # base bytes (GiB)
)

phase_strategy = st.tuples(
    st.booleans(),                                # static_rates
    st.lists(flow_strategy, min_size=1, max_size=3),
)


def build_cell_plan(structure, cell: int) -> Plan:
    """One cell's plan: shared structure, bytes offset per cell."""
    plan = Plan(f"cell{cell}")
    for p, (static, flows) in enumerate(structure):
        fl = [
            Flow(
                f"f{p}.{i}",
                threads,
                rate * GB,
                {"ddr": 1.0, extra: 0.5},
                float(nbytes * GiB + cell * (p + i + 1)),
            )
            for i, (threads, rate, extra, nbytes) in enumerate(flows)
        ]
        plan.add(Phase(f"p{p}", fl, static_rates=static))
    return plan


@settings(max_examples=60, deadline=None)
@given(
    structure=st.lists(phase_strategy, min_size=1, max_size=5),
    cells=st.integers(min_value=2, max_value=5),
)
def test_random_structures_bit_identical(structure, cells):
    plans = [build_cell_plan(structure, c) for c in range(cells)]
    engine = fresh_engine()
    results = run_batch(engine, plans)
    assert engine.batched_plans == cells
    for got, ref in zip(results, reference_runs(plans)):
        assert_identical(got, ref)


def test_mixed_static_dynamic_segments():
    def cell_plan(c: int) -> Plan:
        plan = Plan(f"mix{c}")
        for i in range(3):
            plan.add(
                Phase(
                    f"dyn{i}",
                    [
                        Flow("a", 8, 1.0 * GB, {"ddr": 1.0}, float(2 * GiB + c)),
                        Flow("b", 8, 2.0 * GB, {"mcdram": 1.0}, float(GiB + 7 * c)),
                    ],
                )
            )
            plan.add(
                Phase(
                    f"st{i}",
                    [
                        Flow(
                            "c",
                            16,
                            0.5 * GB,
                            {"nvm": 1.0, "ddr": 1.0},
                            float(GiB + c * i + 1),
                        )
                    ],
                    static_rates=True,
                )
            )
        return plan

    plans = [cell_plan(c) for c in range(5)]
    engine = fresh_engine()
    results = run_batch(engine, plans)
    assert engine.batched_plans == 5
    for got, ref in zip(results, reference_runs(plans)):
        assert_identical(got, ref)


def test_structure_mismatch_raises():
    a = build_cell_plan([(True, [(8, 1.0, "ddr", 4)])], 0)
    b = build_cell_plan([(True, [(16, 1.0, "ddr", 4)])], 1)  # threads differ
    with pytest.raises(PlanError, match="structure"):
        run_batch(fresh_engine(), [a, b])


# ---- fallbacks -------------------------------------------------------------


def simple_plans(cells: int = 3, nbytes=None) -> list[Plan]:
    plans = []
    for c in range(cells):
        plan = Plan(f"s{c}")
        for i in range(2):
            plan.add(
                Phase(
                    f"p{i}",
                    [
                        Flow(
                            "f",
                            8,
                            1.0 * GB,
                            {"ddr": 1.0},
                            float(GiB + c + i) if nbytes is None else nbytes[c],
                        )
                    ],
                    static_rates=True,
                )
            )
        plans.append(plan)
    return plans


def test_fault_injector_falls_back_to_sequential():
    plans = simple_plans()
    injector = FaultPlan.degraded_mcdram(seed=3, intensity=0.4).injector()
    engine = fresh_engine(injector=injector)
    results = run_batch(engine, plans)
    assert engine.batched_plans == 0
    ref_injector = FaultPlan.degraded_mcdram(seed=3, intensity=0.4).injector()
    ref = Engine(
        RESOURCES,
        record_events=False,
        injector=ref_injector,
        batch_phases=False,
    )
    for got, want in zip(results, [ref.run(p) for p in plans]):
        assert_identical(got, want)


def test_telemetry_session_falls_back():
    plans = simple_plans()
    engine = fresh_engine()
    with _tm.telemetry_session():
        res_tel = run_batch(engine, plans)
    assert engine.batched_plans == 0
    res_fast = run_batch(engine, plans)
    assert engine.batched_plans == 3
    for a, b in zip(res_tel, res_fast):
        assert_identical(a, b)


def test_starved_allocation_raises_like_reference():
    plans = simple_plans()
    engine = fresh_engine()
    engine._allocate = lambda live: [0.0] * len(live)
    with pytest.raises(SimulationError, match="starved"):
        run_batch(engine, plans)
    assert engine.batched_plans == 0


def test_zero_byte_cell_changes_structure():
    """Liveness (``bytes_total > 0``) is part of a plan's structure, so
    a zero-byte cell cannot ride a batch whose template expects the
    flow live — callers must pre-group by :meth:`Plan.structure`
    (``evaluate_plan_batch`` does)."""
    plans = simple_plans(3, nbytes=[float(GiB), 0.0, float(2 * GiB)])
    with pytest.raises(PlanError, match="structure"):
        run_batch(fresh_engine(), plans)
    # Pre-grouped by structure, both groups evaluate bit-identically.
    groups: dict[tuple, list[Plan]] = {}
    for p in plans:
        groups.setdefault(p.structure(), []).append(p)
    assert len(groups) == 2
    for group in groups.values():
        engine = fresh_engine()
        for got, ref in zip(run_batch(engine, group), reference_runs(group)):
            assert_identical(got, ref)


def test_run_lowered_rejects_ineligible_engine():
    plans = simple_plans()
    lowered, tensor = lower_plans(plans)
    engine = Engine(RESOURCES, record_events=True)
    with pytest.raises(PlanError, match="eligible"):
        run_lowered(engine, lowered, tensor)


def test_run_lowered_rejects_shape_mismatch():
    plans = simple_plans()
    lowered, tensor = lower_plans(plans)
    with pytest.raises(PlanError, match="shape"):
        run_lowered(fresh_engine(), lowered, tensor[:, :1])


# ---- sweep-level entry point ----------------------------------------------


def _spec_cell(threads: int, nbytes: float) -> PlanBatch | None:
    if threads == 0:
        return None  # unbatchable cell: leftover
    plan = Plan("cell")
    plan.add(
        Phase(
            "p",
            [Flow("f", threads, 1.0 * GB, {"ddr": 1.0}, nbytes)],
            static_rates=True,
        )
    )
    return PlanBatch(
        resources=tuple(RESOURCES),
        plans=(plan,),
        finish=lambda runs: runs[0].elapsed,
    )


def test_evaluate_plan_batch_groups_and_leftovers():
    spec = PlanBatchSpec(build=_spec_cell)
    cells = [
        (8, float(GiB)),
        (0, float(GiB)),       # leftover (build declines)
        (8, float(2 * GiB)),
        (16, float(GiB)),      # different structure: its own group
        (8, float(3 * GiB)),
    ]
    results, leftovers = evaluate_plan_batch(spec, cells)
    assert leftovers == [1]
    assert results[1] is None
    for i, (threads, nbytes) in enumerate(cells):
        if i == 1:
            continue
        ref = reference_runs(
            [
                Plan(
                    "ref",
                    phases=[
                        Phase(
                            "p",
                            [Flow("f", threads, 1.0 * GB, {"ddr": 1.0}, nbytes)],
                            static_rates=True,
                        )
                    ],
                )
            ]
        )[0]
        assert results[i] == ref.elapsed
