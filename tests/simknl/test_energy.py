"""Tests for the energy model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.simknl.energy import DEFAULT_ENERGY_PER_BYTE, EnergyModel
from repro.simknl.engine import RunResult


def result(ddr=1e9, mcdram=4e9, elapsed=1.0):
    return RunResult(
        elapsed=elapsed,
        traffic={"ddr": ddr, "mcdram": mcdram},
        phase_times=[elapsed],
    )


class TestEnergyModel:
    def test_dynamic_energy_proportional_to_traffic(self):
        m = EnergyModel(idle_power={})
        r1 = m.report(result(ddr=1e9, mcdram=0))
        r2 = m.report(result(ddr=2e9, mcdram=0))
        assert r2.dynamic_joules["ddr"] == pytest.approx(
            2 * r1.dynamic_joules["ddr"]
        )

    def test_ddr_costs_more_per_byte(self):
        m = EnergyModel(idle_power={})
        rep = m.report(result(ddr=1e9, mcdram=1e9))
        assert rep.dynamic_joules["ddr"] > rep.dynamic_joules["mcdram"]

    def test_idle_energy_scales_with_time(self):
        m = EnergyModel(energy_per_byte={}, idle_power={"ddr": 10.0})
        rep = m.report(result(elapsed=2.0))
        assert rep.idle_joules["ddr"] == pytest.approx(20.0)

    def test_total_and_edp(self):
        m = EnergyModel(
            energy_per_byte={"ddr": 1e-9}, idle_power={"ddr": 1.0}
        )
        rep = m.report(result(ddr=1e9, mcdram=0, elapsed=2.0))
        assert rep.total_joules == pytest.approx(1.0 + 2.0)
        assert rep.energy_delay_product == pytest.approx(6.0)

    def test_unknown_resources_free(self):
        m = EnergyModel(energy_per_byte={}, idle_power={})
        rep = m.report(result())
        assert rep.total_joules == 0.0

    def test_negative_values_rejected(self):
        with pytest.raises(ConfigError):
            EnergyModel(energy_per_byte={"ddr": -1.0})
        with pytest.raises(ConfigError):
            EnergyModel(idle_power={"ddr": -1.0})

    def test_defaults_mcdram_cheaper(self):
        assert (
            DEFAULT_ENERGY_PER_BYTE["mcdram"]
            < DEFAULT_ENERGY_PER_BYTE["ddr"]
        )


class TestIdleDevicePresence:
    """Idle power is charged only for devices present in the run."""

    def test_absent_device_pays_no_idle(self):
        m = EnergyModel(
            energy_per_byte={}, idle_power={"ddr": 8.0, "nvm": 1.0}
        )
        rep = m.report(result(elapsed=3.0))  # traffic: ddr + mcdram only
        assert rep.idle_joules == {"ddr": pytest.approx(24.0)}
        assert "nvm" not in rep.idle_joules

    def test_present_zero_traffic_device_pays_idle(self):
        """The engine seeds traffic entries for every attached resource,
        so a device with zero moved bytes is still present hardware."""
        m = EnergyModel(energy_per_byte={}, idle_power={"nvm": 1.0})
        r = RunResult(
            elapsed=2.0,
            traffic={"ddr": 1e9, "nvm": 0.0},
            phase_times=[2.0],
        )
        assert m.report(r).idle_joules == {"nvm": pytest.approx(2.0)}

    def test_devices_override_charges_always_on_hardware(self):
        m = EnergyModel(
            energy_per_byte={}, idle_power={"ddr": 8.0, "nvm": 1.0}
        )
        rep = m.report(result(elapsed=2.0), devices=["nvm"])
        assert rep.idle_joules == {"nvm": pytest.approx(2.0)}

    def test_devices_override_ignores_unknown(self):
        m = EnergyModel(energy_per_byte={}, idle_power={"ddr": 8.0})
        rep = m.report(result(elapsed=1.0), devices=["ddr", "disk"])
        assert rep.idle_joules == {"ddr": pytest.approx(8.0)}


class TestReportMany:
    def test_matches_scalar_report_bitwise(self):
        m = EnergyModel()
        results = [
            result(ddr=1e9, mcdram=4e9, elapsed=1.5),
            result(ddr=0.0, mcdram=7e9, elapsed=2.25),
            RunResult(
                elapsed=3.0,
                traffic={"nvm": 5e9, "ddr": 1e9},
                phase_times=[3.0],
            ),
        ]
        singles = [m.report(r) for r in results]
        batched = m.report_many(results)
        for one, many in zip(singles, batched):
            assert one.dynamic_joules == many.dynamic_joules
            assert one.idle_joules == many.idle_joules
            assert one.total_joules == many.total_joules
            assert one.energy_delay_product == many.energy_delay_product

    def test_devices_override_matches_scalar(self):
        m = EnergyModel()
        results = [result(elapsed=1.0), result(elapsed=2.0)]
        singles = [m.report(r, devices=["nvm"]) for r in results]
        batched = m.report_many(results, devices=["nvm"])
        for one, many in zip(singles, batched):
            assert one.idle_joules == many.idle_joules

    def test_empty_list(self):
        assert EnergyModel().report_many([]) == []


class TestOnRealRuns:
    def test_implicit_cheaper_than_gnu(self):
        """Chunked MCDRAM-heavy execution saves energy vs DDR-heavy."""
        from repro.experiments.runner import sort_variant_run

        m = EnergyModel()
        e_gnu = m.report(
            sort_variant_run("GNU-flat", 2_000_000_000, "random")
        )
        e_imp = m.report(
            sort_variant_run("MLM-implicit", 2_000_000_000, "random")
        )
        assert e_imp.total_joules < e_gnu.total_joules
        assert e_imp.energy_delay_product < e_gnu.energy_delay_product
